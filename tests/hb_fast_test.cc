#include "hybrid/hb_fast.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/workload.h"
#include "hybrid/bucket_pipeline.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

struct Fixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

template <typename K>
class HbFastTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(HbFastTypedTest, KeyTypes);

TYPED_TEST(HbFastTypedTest, KernelMatchesHostLowerBound) {
  using K = TypeParam;
  Fixture fx;
  typename HBFastTree<K>::Config config;
  HBFastTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(123456, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));

  constexpr std::uint32_t kCount = 3000;
  auto queries = MakeDistributedQueries<K>(kCount, Distribution::kUniform,
                                           /*seed=*/2);
  for (std::size_t i = 0; i < kCount; i += 2) {
    queries[i] = data[(i * 997) % data.size()].key;
  }

  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(K));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(K));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  gpu::KernelStats stats = RunFastSearch<K>(fx.device, params);
  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(results[i], tree.host_tree().LowerBoundIndex(queries[i])) << i;
  }
  // One thread per query: 32 queries per warp.
  EXPECT_EQ(stats.warps_executed, (kCount + 31) / 32);
}

TYPED_TEST(HbFastTypedTest, PipelineMatchesHostSearch) {
  using K = TypeParam;
  Fixture fx;
  typename HBFastTree<K>::Config config;
  HBFastTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(80000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));

  auto queries = MakeLookupQueries(data, /*seed=*/4);
  queries.resize(20000);
  PipelineConfig pconfig;
  pconfig.bucket_size = 2048;
  pconfig.cpu_queries_per_us = 10;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.host_tree().Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << i;
    ASSERT_EQ(results[i].value, expect.value) << i;
  }
}

TYPED_TEST(HbFastTypedTest, LoadBalancedPipelineIsCorrect) {
  using K = TypeParam;
  Fixture fx;
  typename HBFastTree<K>::Config config;
  HBFastTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(200000, /*seed=*/5);
  ASSERT_TRUE(tree.Build(data));
  ASSERT_GE(tree.host_tree().block_levels(), 3);

  auto queries = MakeLookupQueries(data, /*seed=*/6);
  queries.resize(8192);
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10;
  pconfig.cpu_descend_levels = 1;
  pconfig.cpu_split_ratio = 0.5;
  pconfig.cpu_descend_us_per_level = 0.001;
  pconfig.buckets_in_flight = 3;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].found) << i;
  }
}

TEST(HbFast, UncoalescedKernelIssuesMoreTransactionsThanTeamSearch) {
  // The framework ablation: FAST's scalar descent issues roughly one
  // transaction per lane per level, where the HB+-tree team search issues
  // at most 4 per warp per level.
  Fixture fx;
  HBFastTree<Key64>::Config config;
  HBFastTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(500000, /*seed=*/7);
  ASSERT_TRUE(tree.Build(data));

  constexpr std::uint32_t kCount = 4096;
  auto queries = MakeLookupQueries(data, /*seed=*/8);
  queries.resize(kCount);
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  gpu::KernelStats stats = RunFastSearch<Key64>(fx.device, params);

  // Upper block levels have few distinct blocks (coalescible); the lower
  // half scatters. Expect well above the team-search bound of
  // 4 * levels per warp.
  const double per_warp_level =
      static_cast<double>(stats.memory_transactions) /
      stats.warps_executed / tree.host_tree().block_levels();
  EXPECT_GT(per_warp_level, 6.0);
}

}  // namespace
}  // namespace hbtree
