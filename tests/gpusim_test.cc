#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpusim/cost_model.h"
#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "sim/platform.h"

namespace hbtree::gpu {
namespace {

sim::GpuSpec TestSpec() { return sim::PlatformSpec::M1().gpu; }

TEST(Device, AllocFreeTracksCapacity) {
  sim::GpuSpec spec = TestSpec();
  spec.memory_bytes = 1 << 20;
  Device device(spec);
  DevicePtr a = device.Malloc(512 * 1024);
  EXPECT_EQ(device.used_bytes(), 512u * 1024);
  DevicePtr b = device.TryMalloc(600 * 1024);
  EXPECT_TRUE(b.is_null());  // over capacity
  device.Free(a);
  EXPECT_EQ(device.used_bytes(), 0u);
  DevicePtr c = device.TryMalloc(1 << 20);
  EXPECT_FALSE(c.is_null());
}

TEST(Device, HostViewRoundTrips) {
  Device device(TestSpec());
  DevicePtr ptr = device.Malloc(4096);
  std::memset(device.HostView(ptr), 0x5a, 4096);
  EXPECT_EQ(static_cast<unsigned char>(*device.HostView(ptr + 4095)), 0x5au);
}

TEST(Transfer, FunctionalCopyAndPaperCostModel) {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  Device device(platform.gpu);
  TransferEngine transfer(&device, platform.pcie);
  DevicePtr dev = device.Malloc(1 << 16);
  std::vector<std::uint8_t> src(1 << 16, 0xcd), dst(1 << 16, 0);

  double h2d = transfer.CopyToDevice(dev, src.data(), src.size());
  double d2h = transfer.CopyToHost(dst.data(), dev, dst.size());
  EXPECT_EQ(dst, src);

  // T = T_init + bytes / BW (Section 5.4).
  EXPECT_NEAR(h2d,
              platform.pcie.transfer_init_us +
                  65536.0 / (platform.pcie.bandwidth_h2d_gbps * 1e3),
              1e-9);
  EXPECT_GT(h2d, 0);
  EXPECT_GT(d2h, 0);
  // Streamed small copies amortize the initialization latency.
  double streamed = transfer.StreamedCopyToDevice(dev, src.data(), 1024);
  double individual = transfer.HostToDeviceUs(1024);
  EXPECT_LT(streamed, individual);
}

TEST(Warp, CoalescingCountsDistinctSegments) {
  Device device(TestSpec());
  DevicePtr buffer = device.Malloc(1 << 20);
  KernelStats stats;
  {
    WarpScope warp(&device, &stats, 32);
    std::uint64_t offsets[32];
    // All 32 lanes within one 64-byte segment -> 1 transaction.
    for (int lane = 0; lane < 32; ++lane) offsets[lane] = (lane % 8) * 8;
    std::uint64_t out[32];
    warp.Gather(buffer, offsets, 32, out);
    EXPECT_EQ(stats.memory_transactions, 1u);

    // 32 lanes scattered to 32 distinct segments -> 32 transactions.
    for (int lane = 0; lane < 32; ++lane) offsets[lane] = lane * 64;
    warp.Gather(buffer, offsets, 32, out);
    EXPECT_EQ(stats.memory_transactions, 1u + 32u);

    // Straddling a segment boundary costs two.
    offsets[0] = 60;
    warp.Gather(buffer, offsets, 1, out);
    EXPECT_EQ(stats.memory_transactions, 1u + 32u + 2u);
  }
  EXPECT_EQ(stats.warps_executed, 1u);
  EXPECT_EQ(stats.memory_gathers, 3u);
}

TEST(Warp, GatherScatterAreFunctional) {
  Device device(TestSpec());
  DevicePtr buffer = device.Malloc(4096);
  KernelStats stats;
  WarpScope warp(&device, &stats, 8);
  std::uint64_t offsets[8];
  std::uint64_t values[8];
  for (int lane = 0; lane < 8; ++lane) {
    offsets[lane] = lane * 8;
    values[lane] = lane * 111;
  }
  warp.Scatter(buffer, offsets, 8, values);
  std::uint64_t readback[8] = {};
  warp.Gather(buffer, offsets, 8, readback);
  for (int lane = 0; lane < 8; ++lane) EXPECT_EQ(readback[lane], values[lane]);
}

TEST(Warp, SharedMemoryBankConflicts) {
  Device device(TestSpec());
  KernelStats stats;
  WarpScope warp(&device, &stats, 32);
  int banks[32];
  for (int lane = 0; lane < 32; ++lane) banks[lane] = lane;  // conflict-free
  warp.SharedAccess(banks, 32);
  EXPECT_EQ(stats.shared_bank_conflicts, 0u);
  for (int lane = 0; lane < 32; ++lane) banks[lane] = lane % 2;  // 16-way
  warp.SharedAccess(banks, 32);
  EXPECT_EQ(stats.shared_bank_conflicts, 15u);
}

TEST(DeviceL2, SkewRaisesHitRate) {
  Device device(TestSpec());
  DevicePtr buffer = device.Malloc(256 << 20);  // far beyond L2
  KernelStats uniform_stats, skew_stats;
  std::uint64_t offsets[32];
  std::uint64_t out[32];
  // Uniform: new segments every access.
  for (int round = 0; round < 200; ++round) {
    WarpScope warp(&device, &uniform_stats, 32);
    for (int lane = 0; lane < 32; ++lane) {
      offsets[lane] = ((round * 37 + lane) * 64993ull * 64) % (200 << 20);
    }
    warp.Gather(buffer, offsets, 32, out);
  }
  for (int round = 0; round < 200; ++round) {
    WarpScope warp(&device, &skew_stats, 32);
    for (int lane = 0; lane < 32; ++lane) {
      offsets[lane] = (lane % 4) * 64;  // four hot segments
    }
    warp.Gather(buffer, offsets, 32, out);
  }
  EXPECT_GT(uniform_stats.dram_bytes, skew_stats.dram_bytes * 5);
  EXPECT_GT(skew_stats.l2_bytes, uniform_stats.l2_bytes);
}

TEST(KernelCostModel, MemoryBoundVsComputeBound) {
  sim::GpuSpec spec = TestSpec();
  KernelStats stats;
  stats.warps_executed = 10000;
  stats.memory_gathers = 10000 * 8;
  stats.memory_transactions = 10000 * 32;
  stats.dram_bytes = stats.memory_transactions * 64;
  stats.warp_instructions = 10000 * 10;
  KernelTime memory_bound = EstimateKernelTime(spec, stats);
  EXPECT_STREQ(memory_bound.bound, "memory");

  stats.dram_bytes = 64;
  stats.l2_bytes = 0;
  stats.memory_transactions = 1;
  stats.memory_gathers = 1;
  stats.warp_instructions = 100000000;
  KernelTime compute_bound = EstimateKernelTime(spec, stats);
  EXPECT_STREQ(compute_bound.bound, "compute");
  EXPECT_GT(compute_bound.total_us, spec.kernel_launch_us);
}

TEST(KernelCostModel, LowOccupancyIsLatencyBound) {
  sim::GpuSpec spec = TestSpec();
  KernelStats stats;
  stats.warps_executed = 4;  // nearly empty machine
  stats.memory_gathers = 4 * 1000;
  stats.memory_transactions = 4 * 1000;
  stats.dram_bytes = stats.memory_transactions * 64;
  stats.warp_instructions = 4 * 1000;
  KernelTime t = EstimateKernelTime(spec, stats);
  EXPECT_STREQ(t.bound, "latency");
}

TEST(KernelCostModel, LaunchOverheadDominatesTinyKernels) {
  sim::GpuSpec spec = TestSpec();
  KernelStats stats;
  stats.warps_executed = 1;
  stats.memory_gathers = 1;
  stats.memory_transactions = 1;
  stats.dram_bytes = 64;
  stats.warp_instructions = 4;
  KernelTime t = EstimateKernelTime(spec, stats);
  EXPECT_GT(t.launch_us / t.total_us, 0.9);
}

}  // namespace
}  // namespace hbtree::gpu
