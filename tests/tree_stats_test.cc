#include "cpubtree/tree_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.h"

namespace hbtree {
namespace {

TEST(ImplicitStats, OccupancyAndAccounting) {
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(100000, /*seed=*/1);
  tree.Build(data);
  ImplicitTreeStats stats = CollectStats(tree);
  EXPECT_EQ(stats.pairs, 100000u);
  EXPECT_EQ(stats.height, tree.height());
  // Built full: occupancy near 1 up to the allocation padding.
  EXPECT_GT(stats.leaf_occupancy, 0.8);
  EXPECT_LE(stats.leaf_occupancy, 1.0);
  EXPECT_GE(stats.padding_overhead, 0.0);
  EXPECT_LT(stats.padding_overhead, 0.2);
  // 16 bytes of pair data plus the inner overhead.
  EXPECT_GT(stats.bytes_per_pair, 16.0);
  EXPECT_LT(stats.bytes_per_pair, 24.0);
  EXPECT_EQ(stats.i_segment_bytes, tree.i_segment_bytes());
}

class RegularStatsFillTest : public ::testing::TestWithParam<double> {};

TEST_P(RegularStatsFillTest, OccupancyTracksBulkLoadFill) {
  const double fill = GetParam();
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  config.leaf_fill = fill;
  RegularBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(150000, /*seed=*/2);
  tree.Build(data);
  RegularTreeStats stats = CollectStats(tree);
  EXPECT_EQ(stats.pairs, 150000u);
  // Leaf occupancy must land near the requested fill factor (the last
  // leaf may be partial).
  EXPECT_NEAR(stats.leaf_occupancy, fill, 0.06);
  EXPECT_EQ(stats.last_inner_nodes,
            stats.nodes_per_level.at(1));
  // Node counts shrink by ~the fanout per level.
  for (int level = 2; level <= stats.height; ++level) {
    EXPECT_LT(stats.nodes_per_level[level], stats.nodes_per_level[level - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Fills, RegularStatsFillTest,
                         ::testing::Values(0.5, 0.7, 1.0));

TEST(RegularStats, OccupancyDropsAfterDeletes) {
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(50000, /*seed=*/3);
  tree.Build(data);
  const double before = CollectStats(tree).leaf_occupancy;
  for (std::size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Erase(data[i].key));
  }
  RegularTreeStats stats = CollectStats(tree);
  EXPECT_LT(stats.leaf_occupancy, before - 0.3);
  EXPECT_EQ(stats.pairs, 25000u);
}

TEST(RegularStats, HeightBoundsMatchPaperEquation2) {
  // Section 4.1, Eq. 2: log32(N/4+1) <= H <= log16((N/2+1)/2)+1 for the
  // full 64-bit tree (order-of-magnitude bound on the fat-node height).
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  for (std::size_t n : {10000ull, 1000000ull}) {
    auto data = GenerateDataset<Key64>(n, /*seed=*/4);
    tree.Build(data);
    const double lower = std::log(n / 4.0 + 1) / std::log(32.0);
    const double upper =
        std::log((n / 2.0 + 1) / 2.0) / std::log(16.0) + 1;
    EXPECT_GE(tree.height() + 1, std::floor(lower)) << n;  // +1: leaf level
    EXPECT_LE(tree.height(), std::ceil(upper)) << n;
  }
}

}  // namespace
}  // namespace hbtree
