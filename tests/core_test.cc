#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/distributions.h"
#include "core/random.h"
#include "core/simd.h"
#include "core/workload.h"

namespace hbtree {
namespace {

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(KnuthShuffle, IsAPermutation) {
  std::vector<int> items(1000);
  for (int i = 0; i < 1000; ++i) items[i] = i;
  Rng rng(9);
  KnuthShuffle(items, rng);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // Overwhelmingly unlikely to be the identity.
  EXPECT_NE(items[0] * 1000 + items[1], 0 * 1000 + 1);
}

// ---------------------------------------------------------------------------
// Distributions (Section 6.3 parameters).
// ---------------------------------------------------------------------------

class DistributionTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionTest, SamplesInUnitInterval) {
  DistributionSampler sampler(GetParam(), 11);
  for (int i = 0; i < 20000; ++i) {
    double v = sampler.Next();
    ASSERT_GE(v, 0.0) << DistributionName(GetParam());
    ASSERT_LE(v, 1.0) << DistributionName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kNormal,
                                           Distribution::kGamma,
                                           Distribution::kZipf),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

TEST(Distributions, NormalMeanAndSpread) {
  DistributionSampler sampler(Distribution::kNormal, 12);
  double sum = 0;
  int mid = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = sampler.Next();
    sum += v;
    if (v > 0.25 && v < 0.75) ++mid;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mu = 0.5
  // sigma ~ 0.354: ~52% of mass within +-0.25 of the mean.
  EXPECT_GT(static_cast<double>(mid) / n, 0.4);
  EXPECT_LT(static_cast<double>(mid) / n, 0.65);
}

TEST(Distributions, GammaSkewsLow) {
  DistributionSampler sampler(Distribution::kGamma, 13);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Next() < 0.3) ++low;
  }
  // Gamma(3,3)/45: mean 9/45 = 0.2 -> most mass below 0.3.
  EXPECT_GT(static_cast<double>(low) / n, 0.6);
}

TEST(Distributions, ZipfIsHeavilySkewed) {
  DistributionSampler sampler(Distribution::kZipf, 14);
  int rank1 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    // Rank 1 maps to 0.0 exactly; rank 2 to ~6e-8.
    if (sampler.Next() < 3e-8) ++rank1;
  }
  // Zipf(2): P(rank 1) = 1/zeta(2) ~ 0.61.
  EXPECT_NEAR(static_cast<double>(rank1) / n, 0.61, 0.05);
}

TEST(Distributions, ParseRoundTrips) {
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal,
                         Distribution::kGamma, Distribution::kZipf}) {
    EXPECT_EQ(ParseDistribution(DistributionName(d)), d);
  }
}

// ---------------------------------------------------------------------------
// SIMD node search: all algorithms agree with the scalar reference on
// random sorted lines (property sweep over both key widths).
// ---------------------------------------------------------------------------

template <typename K>
class SimdSearchTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(SimdSearchTypedTest, KeyTypes);

TYPED_TEST(SimdSearchTypedTest, AllAlgorithmsMatchScalarReference) {
  using K = TypeParam;
  constexpr int kPer = KeyTraits<K>::kPerCacheLine;
  Rng rng(15);
  for (int round = 0; round < 2000; ++round) {
    alignas(64) K keys[kPer];
    K v = static_cast<K>(rng.NextBounded(100));
    for (int i = 0; i < kPer; ++i) {
      keys[i] = v;
      v = static_cast<K>(v + 1 + rng.NextBounded(1u << 20));
    }
    // Probe below, above, at, and between keys.
    std::vector<K> probes = {0, keys[0], keys[kPer - 1],
                             static_cast<K>(keys[kPer - 1] + 1),
                             KeyTraits<K>::kMax};
    for (int i = 0; i < 10; ++i) {
      probes.push_back(static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax)));
      probes.push_back(keys[rng.NextBounded(kPer)]);
    }
    for (K probe : probes) {
      const int expect = SearchLineBranchless(keys, kPer, probe);
      EXPECT_EQ(SearchCacheLine<K>(keys, probe, NodeSearchAlgo::kSequential),
                expect);
      EXPECT_EQ(SearchCacheLine<K>(keys, probe, NodeSearchAlgo::kLinearSimd),
                expect);
      EXPECT_EQ(SearchCacheLine<K>(keys, probe,
                                   NodeSearchAlgo::kHierarchicalSimd),
                expect);
    }
  }
}

TYPED_TEST(SimdSearchTypedTest, DuplicateKeysHandled) {
  using K = TypeParam;
  constexpr int kPer = KeyTraits<K>::kPerCacheLine;
  alignas(64) K keys[kPer];
  for (int i = 0; i < kPer; ++i) keys[i] = 100;
  for (K probe : {K{50}, K{100}, K{150}}) {
    const int expect = SearchLineBranchless(keys, kPer, probe);
    EXPECT_EQ(SearchCacheLine<K>(keys, probe, NodeSearchAlgo::kLinearSimd),
              expect);
    EXPECT_EQ(
        SearchCacheLine<K>(keys, probe, NodeSearchAlgo::kHierarchicalSimd),
        expect);
  }
}

// ---------------------------------------------------------------------------
// Workload generation.
// ---------------------------------------------------------------------------

template <typename K>
class WorkloadTypedTest : public ::testing::Test {};
TYPED_TEST_SUITE(WorkloadTypedTest, KeyTypes);

TYPED_TEST(WorkloadTypedTest, DatasetIsSortedAndUnique) {
  using K = TypeParam;
  auto data = GenerateDataset<K>(50000, 16);
  ASSERT_EQ(data.size(), 50000u);
  for (std::size_t i = 1; i < data.size(); ++i) {
    ASSERT_LT(data[i - 1].key, data[i].key);
  }
  for (const auto& kv : data) ASSERT_NE(kv.key, KeyTraits<K>::kMax);
}

TYPED_TEST(WorkloadTypedTest, LookupQueriesArePermutationOfKeys) {
  using K = TypeParam;
  auto data = GenerateDataset<K>(10000, 17);
  auto queries = MakeLookupQueries(data, 18);
  ASSERT_EQ(queries.size(), data.size());
  std::vector<K> sorted = queries;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(sorted[i], data[i].key);
  }
}

TYPED_TEST(WorkloadTypedTest, UpdateBatchRespectsFractionAndValidity) {
  using K = TypeParam;
  auto data = GenerateDataset<K>(20000, 19);
  auto batch = MakeUpdateBatch<K>(data, 1000, /*insert_fraction=*/0.6, 20);
  ASSERT_EQ(batch.size(), 1000u);
  std::size_t inserts = 0;
  std::set<K> delete_keys;
  for (const auto& update : batch) {
    auto it = std::lower_bound(
        data.begin(), data.end(), update.pair.key,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    const bool exists = it != data.end() && it->key == update.pair.key;
    if (update.kind == UpdateQuery<K>::Kind::kInsert) {
      ++inserts;
      EXPECT_FALSE(exists);  // inserts are fresh keys
    } else {
      EXPECT_TRUE(exists);  // deletes target existing keys
      EXPECT_TRUE(delete_keys.insert(update.pair.key).second)
          << "duplicate delete";
    }
  }
  EXPECT_EQ(inserts, 600u);
}

TYPED_TEST(WorkloadTypedTest, RangeQueriesStartAtExistingKeys) {
  using K = TypeParam;
  auto data = GenerateDataset<K>(5000, 21);
  auto rq = MakeRangeQueries(data, 200, 16, 22);
  for (const auto& query : rq) {
    auto it = std::lower_bound(
        data.begin(), data.end(), query.first_key,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    ASSERT_TRUE(it != data.end() && it->key == query.first_key);
    EXPECT_EQ(query.match_count, 16);
  }
}

TEST(Workload, Generate32BitHandlesCollisions) {
  // 2^20 keys from a 2^32 domain: collisions certain during generation,
  // output must still be unique.
  auto keys = GenerateSortedUniqueKeys<Key32>(1 << 20, 23);
  ASSERT_EQ(keys.size(), std::size_t{1} << 20);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
}

}  // namespace
}  // namespace hbtree
