#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "mem/page_allocator.h"
#include "mem/paired_pool.h"

namespace hbtree {
namespace {

TEST(PageRegistry, LookupFindsRegisteredRegions) {
  PageRegistry registry;
  PagedBuffer huge(1 << 16, PageSize::k1G, &registry);
  PagedBuffer small(1 << 12, PageSize::k4K, &registry);
  EXPECT_EQ(registry.Lookup(huge.data()), PageSize::k1G);
  EXPECT_EQ(registry.Lookup(huge.data() + huge.size() - 1), PageSize::k1G);
  EXPECT_EQ(registry.Lookup(small.data()), PageSize::k4K);
  int on_stack = 0;
  EXPECT_EQ(registry.Lookup(&on_stack), PageSize::k4K);  // default
}

TEST(PageRegistry, UnregisterOnDestruction) {
  PageRegistry registry;
  const std::byte* where;
  {
    PagedBuffer buffer(4096, PageSize::k2M, &registry);
    where = buffer.data();
    EXPECT_EQ(registry.regions().size(), 1u);
    EXPECT_EQ(registry.Lookup(where), PageSize::k2M);
  }
  EXPECT_TRUE(registry.regions().empty());
}

TEST(PageRegistry, PageNumberUsesBackingPageSize) {
  PageRegistry registry;
  PagedBuffer buffer(1 << 20, PageSize::k2M, &registry);
  // All addresses within one 2M page share a page number.
  auto base = registry.PageNumber(buffer.data());
  auto later = registry.PageNumber(buffer.data() + (1 << 20) - 1);
  EXPECT_LE(later - base, 1u);
}

TEST(PagedBuffer, MoveTransfersOwnership) {
  PageRegistry registry;
  PagedBuffer a(4096, PageSize::k4K, &registry);
  std::memset(a.data(), 0xab, 4096);
  PagedBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 4096u);
  EXPECT_EQ(static_cast<unsigned char>(b.data()[100]), 0xabu);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(registry.regions().size(), 1u);
}

TEST(PagedBuffer, CacheLineAligned) {
  PageRegistry registry;
  for (std::size_t size : {64ull, 100ull, 4096ull, 1000000ull}) {
    PagedBuffer buffer(size, PageSize::k4K, &registry);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  }
}

struct BigPrimary {
  std::uint64_t payload[8];
};
struct SmallSecondary {
  std::uint32_t value;
};

TEST(PairedPool, SharedIndexAddressesBothFragments) {
  PageRegistry registry;
  PairedPool<BigPrimary, SmallSecondary> pool(16, PageSize::k1G,
                                              PageSize::k4K, &registry);
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 100; ++i) {
    auto idx = pool.Allocate();
    pool.primary(idx).payload[0] = i * 7;
    pool.secondary(idx).value = i * 13;
    slots.push_back(idx);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.primary(slots[i]).payload[0], static_cast<unsigned>(i * 7));
    EXPECT_EQ(pool.secondary(slots[i]).value, static_cast<unsigned>(i * 13));
  }
  EXPECT_EQ(pool.live(), 100u);
  EXPECT_GE(pool.capacity(), 100u);
}

TEST(PairedPool, FreedSlotsAreReused) {
  PairedPool<BigPrimary, SmallSecondary> pool(8, PageSize::k4K, nullptr);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  pool.Free(a);
  auto c = pool.Allocate();
  EXPECT_EQ(c, a);  // LIFO free list
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.high_water(), 2u);
  (void)b;
}

TEST(PairedPool, AddressesStableAcrossGrowth) {
  PairedPool<BigPrimary, SmallSecondary> pool(4, PageSize::k4K, nullptr);
  auto first = pool.Allocate();
  BigPrimary* p = &pool.primary(first);
  p->payload[3] = 0xdeadbeef;
  // Force many chunk allocations.
  for (int i = 0; i < 1000; ++i) pool.Allocate();
  EXPECT_EQ(&pool.primary(first), p);
  EXPECT_EQ(p->payload[3], 0xdeadbeefull);
}

TEST(PairedPool, PageTagsDifferPerFragment) {
  PageRegistry registry;
  PairedPool<BigPrimary, SmallSecondary> pool(16, PageSize::k1G,
                                              PageSize::k4K, &registry);
  auto idx = pool.Allocate();
  EXPECT_EQ(registry.Lookup(&pool.primary(idx)), PageSize::k1G);
  EXPECT_EQ(registry.Lookup(&pool.secondary(idx)), PageSize::k4K);
}

TEST(PairedPool, ChunkIterationCoversHighWater) {
  PairedPool<BigPrimary, SmallSecondary> pool(8, PageSize::k4K, nullptr);
  for (int i = 0; i < 30; ++i) {
    auto idx = pool.Allocate();
    pool.primary(idx).payload[0] = idx;
  }
  std::size_t seen = 0;
  for (std::size_t c = 0; c < pool.chunk_count(); ++c) {
    const BigPrimary* chunk = pool.primary_chunk(c);
    for (std::size_t i = 0;
         i < pool.chunk_capacity() && seen < pool.high_water(); ++i, ++seen) {
      EXPECT_EQ(chunk[i].payload[0], seen);
    }
  }
  EXPECT_EQ(seen, 30u);
}

}  // namespace
}  // namespace hbtree
