#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/workload.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "hybrid/load_balancer.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

struct Fixture64 {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

template <typename K>
class HybridTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(HybridTypedTest, KeyTypes);

TYPED_TEST(HybridTypedTest, ImplicitPipelineMatchesHostSearch) {
  using K = TypeParam;
  Fixture64 fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(100000, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeLookupQueries(data, /*seed=*/2);
  queries.resize(40000);

  PipelineConfig pconfig;
  pconfig.bucket_size = 4096;
  pconfig.cpu_queries_per_us = 10.0;
  std::vector<LookupResult<K>> results;
  PipelineStats stats =
      RunSearchPipeline(tree, queries.data(), queries.size(), pconfig,
                        &results);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GT(stats.mqps, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.host_tree().Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << i;
    ASSERT_EQ(results[i].value, expect.value) << i;
  }
}

TYPED_TEST(HybridTypedTest, RegularPipelineMatchesHostSearch) {
  using K = TypeParam;
  Fixture64 fx;
  typename HBRegularTree<K>::Config config;
  HBRegularTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(100000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeLookupQueries(data, /*seed=*/4);
  queries.resize(30000);

  PipelineConfig pconfig;
  pconfig.bucket_size = 4096;
  pconfig.cpu_queries_per_us = 10.0;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.host_tree().Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << i;
    ASSERT_EQ(results[i].value, expect.value) << i;
  }
}

TYPED_TEST(HybridTypedTest, PipelineHandlesMisses) {
  using K = TypeParam;
  Fixture64 fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(50000, /*seed=*/5);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeDistributedQueries<K>(20000, Distribution::kUniform, 6);

  PipelineConfig pconfig;
  pconfig.bucket_size = 2048;
  pconfig.cpu_queries_per_us = 10.0;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); i += 7) {
    auto expect = tree.host_tree().Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << i;
  }
}

TYPED_TEST(HybridTypedTest, LoadBalancedPipelineIsCorrect) {
  using K = TypeParam;
  Fixture64 fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(200000, /*seed=*/7);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeLookupQueries(data, /*seed=*/8);
  queries.resize(20000);

  PipelineConfig pconfig;
  pconfig.bucket_size = 2048;
  pconfig.cpu_queries_per_us = 10.0;
  pconfig.cpu_descend_levels = 2;
  pconfig.cpu_split_ratio = 0.6;
  pconfig.cpu_descend_us_per_level = 0.001;
  pconfig.buckets_in_flight = 3;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].found) << i;
  }
}

TYPED_TEST(HybridTypedTest, BatchUpdateMethodsKeepDeviceMirrorConsistent) {
  using K = TypeParam;
  for (UpdateMethod method :
       {UpdateMethod::kAsyncSingleThread, UpdateMethod::kAsyncParallel,
        UpdateMethod::kSynchronized}) {
    Fixture64 fx;
    typename HBRegularTree<K>::Config config;
    config.tree.leaf_fill = 0.7;
    HBRegularTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
    auto data = GenerateDataset<K>(60000, /*seed=*/9);
    ASSERT_TRUE(tree.Build(data));

    auto batch = MakeUpdateBatch<K>(data, 8000, /*insert_fraction=*/0.6, 10);
    BatchUpdateConfig uconfig;
    uconfig.real_threads = 3;
    BatchUpdateStats stats = RunBatchUpdate(tree, batch, method, uconfig);
    EXPECT_EQ(stats.queries, batch.size());
    EXPECT_GT(stats.applied, 0u);
    tree.host_tree().Validate();

    // All batch effects visible on the host tree.
    for (const auto& update : batch) {
      bool found = tree.host_tree().Search(update.pair.key).found;
      if (update.kind == UpdateQuery<K>::Kind::kInsert) {
        EXPECT_TRUE(found);
      } else {
        EXPECT_FALSE(found);
      }
    }

    // The device mirror must agree with the host: run a pipeline search
    // over a sample of keys and compare.
    auto queries = MakeLookupQueries(data, /*seed=*/11);
    queries.resize(10000);
    PipelineConfig pconfig;
    pconfig.bucket_size = 2048;
    pconfig.cpu_queries_per_us = 10.0;
    std::vector<LookupResult<K>> results;
    RunSearchPipeline(tree, queries.data(), queries.size(), pconfig,
                      &results);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto expect = tree.host_tree().Search(queries[i]);
      ASSERT_EQ(results[i].found, expect.found)
          << UpdateMethodName(method) << " query " << i;
      ASSERT_EQ(results[i].value, expect.value);
    }
  }
}

TYPED_TEST(HybridTypedTest, ImplicitRebuildResyncsDevice) {
  using K = TypeParam;
  Fixture64 fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(30000, /*seed=*/12);
  ASSERT_TRUE(tree.Build(data));
  // Apply a batch by rebuild (the implicit tree's only update path).
  auto data2 = GenerateDataset<K>(35000, /*seed=*/13);
  ASSERT_TRUE(tree.Build(data2));
  double sync_us = tree.SyncISegment();
  EXPECT_GT(sync_us, 0);

  auto queries = MakeLookupQueries(data2, /*seed=*/14);
  queries.resize(8000);
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10.0;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].found) << i;
  }
}

TYPED_TEST(HybridTypedTest, PipelineHandlesQueriesAboveMaximum) {
  // Regression: the GPU kernel must clamp padding descents exactly like
  // the host (out-of-bounds device reads aborted before the fix).
  using K = TypeParam;
  Fixture64 fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(70000, /*seed=*/21);
  ASSERT_TRUE(tree.Build(data));
  std::vector<K> queries(4096, static_cast<K>(KeyTraits<K>::kMax - 1));
  for (std::size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = data[(i * 31) % data.size()].key;
  }
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10.0;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), pconfig, &results);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i].found, i % 2 == 0) << i;
  }
}

TEST(HybridDeterminism, IdenticalRunsProduceIdenticalSimulatedTimings) {
  // Reproducibility contract: same seed, same platform -> bit-identical
  // simulated stats (EXPERIMENTS.md relies on this).
  auto run = [] {
    Fixture64 fx;
    HBImplicitTree<Key64>::Config config;
    HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device,
                               &fx.transfer);
    auto data = GenerateDataset<Key64>(60000, /*seed=*/99);
    EXPECT_TRUE(tree.Build(data));
    auto queries = MakeLookupQueries(data, /*seed=*/100);
    queries.resize(16384);
    PipelineConfig pconfig;
    pconfig.bucket_size = 2048;
    pconfig.cpu_queries_per_us = 25.0;
    return RunSearchPipeline(tree, queries.data(), queries.size(), pconfig);
  };
  PipelineStats a = run();
  PipelineStats b = run();
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.mqps, b.mqps);
  EXPECT_EQ(a.kernel.memory_transactions, b.kernel.memory_transactions);
  EXPECT_EQ(a.kernel.dram_bytes, b.kernel.dram_bytes);
  EXPECT_EQ(a.avg_latency_us, b.avg_latency_us);
}

TEST(HybridCapacity, ISegmentThatDoesNotFitIsRejected) {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  platform.gpu.memory_bytes = 512 * 1024;  // tiny device
  PageRegistry registry;
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &registry, &device, &transfer);
  auto data = GenerateDataset<Key64>(2000000, /*seed=*/15);
  EXPECT_FALSE(tree.Build(data));  // I-segment exceeds device memory
  // Host tree still queryable.
  EXPECT_TRUE(tree.host_tree().Search(data[5].key).found);
}

TEST(HybridScheduling, StrategiesOrderAsInFigure10) {
  // With synthetic stage times the emergent per-bucket period must be
  // sequential >= pipelined >= double-buffered.
  using pipeline_internal::Scheduler;
  auto run = [](BucketStrategy strategy) {
    Scheduler scheduler(strategy);
    std::vector<double> ends;
    for (int i = 0; i < 50; ++i) {
      double ready = ends.size() >= 2 ? ends[ends.size() - 2] : 0.0;
      ends.push_back(
          scheduler.ScheduleBucket(ready, 0, /*t1=*/10, /*t2=*/60,
                                   /*t3=*/5, /*t4=*/50));
    }
    return ends.back() / 50.0;  // average period
  };
  double seq = run(BucketStrategy::kSequential);
  double pip = run(BucketStrategy::kPipelined);
  double dbl = run(BucketStrategy::kDoubleBuffered);
  EXPECT_GT(seq, pip);
  EXPECT_GT(pip, dbl);
  // Sequential period ~ T1+T2+T3+T4; double-buffered ~ max(T2, T4).
  EXPECT_NEAR(seq, 125.0, 2.0);
  EXPECT_NEAR(dbl, 60.0, 5.0);  // startup transient amortized over 50 buckets
}

TEST(HybridLoadBalance, DiscoveryMovesWorkToTheCpuWhenGpuIsWeak) {
  sim::PlatformSpec platform = sim::PlatformSpec::M2();
  // Exaggerate GPU weakness so the discovery must pick D > 0.
  platform.gpu.memory_bandwidth_gbps = 8.0;
  platform.gpu.sm_count = 1;
  PageRegistry registry;
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &registry, &device, &transfer);
  auto data = GenerateDataset<Key64>(500000, /*seed=*/16);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeLookupQueries(data, /*seed=*/17);
  queries.resize(16384);

  PipelineConfig base;
  base.bucket_size = 2048;
  base.cpu_queries_per_us = 40.0;
  base.cpu_descend_us_per_level = 0.005;
  auto setting = DiscoverLoadBalance(tree, queries.data(), queries.size(),
                                     base);
  EXPECT_GT(setting.d, 0);
  EXPECT_GE(setting.r, 0.0);
  EXPECT_LE(setting.r, 1.0);
}

TEST(HybridKernels, KernelStatsAreAccumulated) {
  Fixture64 fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(100000, /*seed=*/18);
  ASSERT_TRUE(tree.Build(data));
  auto queries = MakeLookupQueries(data, /*seed=*/19);
  queries.resize(4096);
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10.0;
  PipelineStats stats =
      RunSearchPipeline(tree, queries.data(), queries.size(), pconfig);
  EXPECT_GT(stats.kernel.warps_executed, 0u);
  EXPECT_GT(stats.kernel.memory_transactions, 0u);
  EXPECT_GT(stats.kernel.warp_instructions, 0u);
  // Every query needs one 64-byte node gather per level; teams sharing a
  // warp may coalesce when they hit the same node (always at the root),
  // so the floor is a quarter of the naive count (4 teams per warp).
  const std::uint64_t naive =
      queries.size() * tree.host_tree().height();
  EXPECT_GE(stats.kernel.memory_transactions, naive / 4);
  EXPECT_LE(stats.kernel.memory_transactions, naive + 4 * queries.size());
}

}  // namespace
}  // namespace hbtree
