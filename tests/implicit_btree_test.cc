#include "cpubtree/implicit_btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/workload.h"

namespace hbtree {
namespace {

template <typename K>
ImplicitBTree<K> MakeTree(bool hybrid, PageRegistry* registry) {
  typename ImplicitBTree<K>::Config config;
  config.hybrid_layout = hybrid;
  return ImplicitBTree<K>(config, registry);
}

template <typename K>
class ImplicitBTreeTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(ImplicitBTreeTypedTest, KeyTypes);

TYPED_TEST(ImplicitBTreeTypedTest, TinyTreeFindsAllKeys) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(false, &registry);
  std::vector<KeyValue<K>> data = {{10, 100}, {20, 200}, {30, 300}};
  tree.Build(data);
  tree.Validate();
  for (const auto& kv : data) {
    auto result = tree.Search(kv.key);
    EXPECT_TRUE(result.found) << kv.key;
    EXPECT_EQ(result.value, kv.value);
  }
  EXPECT_FALSE(tree.Search(K{15}).found);
  EXPECT_FALSE(tree.Search(K{5}).found);
  EXPECT_FALSE(tree.Search(K{35}).found);
}

TYPED_TEST(ImplicitBTreeTypedTest, CpuLayoutAllHitsAndMisses) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(false, &registry);
  auto data = GenerateDataset<K>(20000, /*seed=*/1);
  tree.Build(data);
  tree.Validate();
  for (std::size_t i = 0; i < data.size(); i += 7) {
    auto result = tree.Search(data[i].key);
    ASSERT_TRUE(result.found) << "key index " << i;
    EXPECT_EQ(result.value, data[i].value);
  }
  // Keys between dataset keys must miss.
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    K probe = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax));
    auto it = std::lower_bound(
        data.begin(), data.end(), probe,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    bool expect = it != data.end() && it->key == probe;
    EXPECT_EQ(tree.Search(probe).found, expect);
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, HybridLayoutAllHits) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(true, &registry);
  auto data = GenerateDataset<K>(33333, /*seed=*/2);
  tree.Build(data);
  tree.Validate();
  for (std::size_t i = 0; i < data.size(); i += 5) {
    auto result = tree.Search(data[i].key);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.value, data[i].value);
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, HybridFanoutIsOneLess) {
  using K = TypeParam;
  PageRegistry registry;
  auto cpu = MakeTree<K>(false, &registry);
  auto hb = MakeTree<K>(true, &registry);
  EXPECT_EQ(cpu.fanout(), KeyTraits<K>::kPerCacheLine + 1);
  EXPECT_EQ(hb.fanout(), KeyTraits<K>::kPerCacheLine);
}

TYPED_TEST(ImplicitBTreeTypedTest, RangeScanReturnsSortedRun) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(false, &registry);
  auto data = GenerateDataset<K>(10000, /*seed=*/3);
  tree.Build(data);
  for (std::size_t start : {std::size_t{0}, std::size_t{17}, std::size_t{9000},
                            data.size() - 5}) {
    KeyValue<K> out[32];
    int got = tree.RangeScan(data[start].key, 32, out);
    int expect = static_cast<int>(std::min<std::size_t>(32, data.size() - start));
    ASSERT_EQ(got, expect);
    for (int i = 0; i < got; ++i) {
      EXPECT_EQ(out[i].key, data[start + i].key);
      EXPECT_EQ(out[i].value, data[start + i].value);
    }
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, RangeScanFromMissingKeyStartsAtLowerBound) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(false, &registry);
  // Spaced keys so probes between keys are easy to construct.
  std::vector<KeyValue<K>> data;
  for (K k = 10; k < 1000; k += 10) data.push_back({k, k * 2});
  tree.Build(data);
  KeyValue<K> out[4];
  int got = tree.RangeScan(K{15}, 4, out);
  ASSERT_EQ(got, 4);
  EXPECT_EQ(out[0].key, K{20});
  EXPECT_EQ(out[3].key, K{50});
}

TYPED_TEST(ImplicitBTreeTypedTest, FindLeafLinePlusLeafSearchEqualsSearch) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(true, &registry);
  auto data = GenerateDataset<K>(5000, /*seed=*/4);
  tree.Build(data);
  for (std::size_t i = 0; i < data.size(); i += 11) {
    std::uint64_t line = tree.FindLeafLine(data[i].key);
    auto result = tree.SearchLeafLine(line, data[i].key);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.value, data[i].value);
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, DescendLevelsMatchesFullTraversalPrefix) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(true, &registry);
  auto data = GenerateDataset<K>(100000, /*seed=*/5);
  tree.Build(data);
  ASSERT_GE(tree.height(), 2);
  // Descending all levels must give the same line as FindLeafLine.
  for (std::size_t i = 0; i < data.size(); i += 997) {
    EXPECT_EQ(tree.DescendLevels(data[i].key, tree.height()),
              tree.FindLeafLine(data[i].key));
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, RebuildReflectsNewData) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(false, &registry);
  auto data = GenerateDataset<K>(1000, /*seed=*/6);
  tree.Build(data);
  auto data2 = GenerateDataset<K>(2000, /*seed=*/7);
  tree.Build(data2);
  tree.Validate();
  for (std::size_t i = 0; i < data2.size(); i += 3) {
    EXPECT_TRUE(tree.Search(data2[i].key).found);
  }
}

TYPED_TEST(ImplicitBTreeTypedTest, QueriesAboveMaximumMissSafely) {
  // Regression: keys above the global maximum descend into padding whose
  // implicit children are not materialized; the clamped descent must
  // report a miss instead of reading out of bounds.
  using K = TypeParam;
  for (bool hybrid : {false, true}) {
    PageRegistry registry;
    auto tree = MakeTree<K>(hybrid, &registry);
    for (std::size_t n : {5ull, 100ull, 4097ull, 100000ull}) {
      auto data = GenerateDataset<K>(n, /*seed=*/77);
      tree.Build(data);
      const K max_key = data.back().key;
      for (K probe : {static_cast<K>(max_key + 1), KeyTraits<K>::kMax,
                      static_cast<K>(KeyTraits<K>::kMax - 1)}) {
        if (probe <= max_key) continue;
        EXPECT_FALSE(tree.Search(probe).found) << n;
        KeyValue<K> out[4];
        EXPECT_EQ(tree.RangeScan(probe, 4, out), 0);
      }
      EXPECT_TRUE(tree.Search(max_key).found);
    }
  }
}

TEST(ImplicitBTreeGeometry, HeightMatchesPaperFormula64) {
  // Paper Section 4.1: H = ceil(log9(N/4 + 1)) for the 64-bit CPU layout.
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  for (std::size_t n : {100ull, 10000ull, 1000000ull}) {
    auto data = GenerateDataset<Key64>(n, 42);
    tree.Build(data);
    double expect = std::ceil(std::log(n / 4.0 + 1) / std::log(9.0));
    EXPECT_NEAR(tree.height(), expect, 1) << "n=" << n;
  }
}

TEST(ImplicitBTreeGeometry, SegmentSizesAreReported) {
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  config.inner_page = PageSize::k1G;
  config.leaf_page = PageSize::k4K;
  ImplicitBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(4096, 42);
  tree.Build(data);
  EXPECT_GE(tree.l_segment_bytes(), 4096 * sizeof(KeyValue<Key64>));
  EXPECT_GT(tree.i_segment_bytes(), 0u);
  // Page registry must know both segments.
  EXPECT_EQ(registry.Lookup(tree.i_segment_nodes()), PageSize::k1G);
  EXPECT_EQ(registry.Lookup(tree.l_segment_lines()), PageSize::k4K);
}

}  // namespace
}  // namespace hbtree
