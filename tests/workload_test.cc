// Determinism and distribution tests for the YCSB-style workload
// generators (src/workload/). The golden values pin the exact streams:
// the generators use only fixed-width integer math (Q32.32 fixed point
// for Zipf/zeta, xoshiro256**/SplitMix64 for randomness — no libc rand,
// no libm pow/log), so identical seeds must produce identical key and op
// streams on every platform. A golden mismatch means the stream format
// changed and every checked-in workload baseline is invalid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/random.h"
#include "workload/dataset.h"
#include "workload/fixed_point.h"
#include "workload/key_chooser.h"
#include "workload/op_stream.h"
#include "workload/spec.h"

namespace hbtree::workload {
namespace {

// ---------------------------------------------------------------------------
// Q32.32 fixed point.
// ---------------------------------------------------------------------------

TEST(FixedPoint, BasicIdentities) {
  EXPECT_EQ(MulQ32(kQ32One, kQ32One), kQ32One);
  EXPECT_EQ(DivQ32(kQ32One, kQ32One), kQ32One);
  EXPECT_EQ(Log2Q32(kQ32One), 0u);
  EXPECT_EQ(Log2Q32(Q32{4} << 32), Q32{2} << 32);
  EXPECT_EQ(Exp2Q32(0), kQ32One);
  EXPECT_EQ(Exp2Q32(Q32{3} << 32), Q32{8} << 32);
}

TEST(FixedPoint, MatchesDoubleMathClosely) {
  // Accuracy only (determinism is the golden tests' job): the fixed-point
  // log/exp/pow track libm well below anything a key distribution can
  // observe.
  for (double x : {1.5, 2.0, 3.14159, 10.0, 1000.0, 123456.789}) {
    EXPECT_NEAR(FromQ32(Log2Q32(ToQ32(x))), std::log2(x), 1e-6) << x;
  }
  for (double x : {0.1, 0.25, 0.5, 0.99, 3.99, 7.5}) {
    EXPECT_NEAR(FromQ32(Exp2Q32(ToQ32(x))), std::exp2(x), 1e-4) << x;
  }
  for (std::uint64_t i : {2ull, 3ull, 10ull, 1000ull, 1000000ull}) {
    EXPECT_NEAR(FromQ32(InvPowQ32(i, ToQ32(0.99))),
                std::pow(static_cast<double>(i), -0.99), 1e-6)
        << i;
  }
  EXPECT_NEAR(FromQ32(PowFracQ32(ToQ32(0.37), ToQ32(100.0))),
              std::pow(0.37, 100.0), 1e-6);
}

TEST(FixedPoint, GoldenZetaValues) {
  // Exact Q32.32 raw values — any platform or compiler producing a
  // different bit pattern would silently shift every Zipf stream.
  EXPECT_EQ(ZipfGenerator::Zeta(100, ToQ32(0.99)), 0x000000054b68dcd3ull);
  EXPECT_EQ(ZipfGenerator::Zeta(10000, ToQ32(0.99)), 0x0000000a396fad70ull);
  EXPECT_EQ(InvPowQ32(2, ToQ32(0.99)), 0x0000000080e3eb65ull);
}

// ---------------------------------------------------------------------------
// Key choosers.
// ---------------------------------------------------------------------------

TEST(ZipfGenerator, GoldenRankPrefix) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(42);
  const std::uint64_t expected[16] = {0,   8,  88, 568, 940, 175, 119, 323,
                                      165, 42, 90, 4,   223, 5,   112, 399};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(zipf.Next(rng), want);
  }
}

TEST(ZipfGenerator, DeterministicAcrossInstances) {
  ZipfGenerator a(5000, 0.8), b(5000, 0.8);
  Rng ra(7), rb(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(ra), b.Next(rb));
}

TEST(ZipfGenerator, SkewsTowardLowRanks) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(3);
  std::uint64_t hits_rank0 = 0, hits_top10 = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t rank = zipf.Next(rng);
    ASSERT_LT(rank, 10000u);
    hits_rank0 += rank == 0;
    hits_top10 += rank < 10;
  }
  // zipf(0.99, n=10^4): P(rank 0) ≈ 1/zeta ≈ 9.6%, P(rank < 10) ≈ 37%.
  EXPECT_GT(hits_rank0, draws / 20);
  EXPECT_GT(hits_top10, draws / 4);
}

TEST(KeyChooser, GoldenScrambledPrefix) {
  KeyChooser::Params params;
  params.kind = KeyChooserKind::kScrambledZipfian;
  KeyChooser chooser(params, 1000);
  Rng rng(42);
  const std::uint64_t expected[16] = {883, 618, 240, 426, 681, 730, 166, 148,
                                      983, 741, 935, 431, 916, 386, 451, 762};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(chooser.Next(rng), want);
  }
}

TEST(KeyChooser, ScrambledSpreadsTheHotSet) {
  // The same ranks, scrambled, must not concentrate in a contiguous
  // low-index prefix (that regime is kZipfian's job).
  KeyChooser::Params params;
  params.kind = KeyChooserKind::kScrambledZipfian;
  KeyChooser chooser(params, 10000);
  Rng rng(11);
  std::uint64_t low_half = 0;
  for (int i = 0; i < 4000; ++i) low_half += chooser.Next(rng) < 5000;
  EXPECT_GT(low_half, 1000u);
  EXPECT_LT(low_half, 3000u);
}

TEST(KeyChooser, LatestPrefersNewestRecords) {
  KeyChooser::Params params;
  params.kind = KeyChooserKind::kLatest;
  KeyChooser chooser(params, 1000);
  Rng rng(5);
  std::uint64_t newest_decile = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t idx = chooser.Next(rng, /*inserted=*/100);
    ASSERT_LT(idx, 1100u);
    newest_decile += idx >= 990;  // newest 10% of the grown domain
  }
  EXPECT_GT(newest_decile, 1000u);
}

TEST(KeyChooser, HotspotConcentratesOps) {
  KeyChooser::Params params;
  params.kind = KeyChooserKind::kHotspot;
  params.hot_key_fraction = 0.1;
  params.hot_op_fraction = 0.9;
  KeyChooser chooser(params, 10000);
  Rng rng(13);
  std::uint64_t hot = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t idx = chooser.Next(rng);
    ASSERT_LT(idx, 10000u);
    hot += idx < 1000;
  }
  EXPECT_GT(hot, draws * 85 / 100);
  EXPECT_LT(hot, draws * 95 / 100);
}

TEST(KeyChooser, UniformCoversTheGrownDomain) {
  KeyChooser::Params params;
  params.kind = KeyChooserKind::kUniform;
  KeyChooser chooser(params, 100);
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t idx = chooser.Next(rng, /*inserted=*/20);
    ASSERT_LT(idx, 120u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 120u);
}

// ---------------------------------------------------------------------------
// Datasets.
// ---------------------------------------------------------------------------

TEST(Dataset, SequentialIsSortedWithAppendHeadroom) {
  const BootstrapDataset ds = MakeSequentialDataset(1000, /*value_seed=*/3);
  ASSERT_EQ(ds.pairs.size(), 1000u);
  EXPECT_TRUE(ds.append);
  for (std::size_t i = 1; i < ds.pairs.size(); ++i) {
    EXPECT_LT(ds.pairs[i - 1].key, ds.pairs[i].key);
  }
  EXPECT_GT(ds.append_base, ds.pairs.back().key);
  // Values recomputable from the key alone.
  for (const auto& pair : ds.pairs) {
    EXPECT_EQ(pair.value, BootstrapValue(pair.key, 3));
  }
}

TEST(Dataset, UniformIsSortedUniqueAndDeterministic) {
  const BootstrapDataset a = MakeUniformDataset(2000, 9);
  const BootstrapDataset b = MakeUniformDataset(2000, 9);
  ASSERT_EQ(a.pairs.size(), 2000u);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_FALSE(a.append);
  for (std::size_t i = 1; i < a.pairs.size(); ++i) {
    EXPECT_LT(a.pairs[i - 1].key, a.pairs[i].key);
  }
}

TEST(Dataset, SyntheticOsmKeysAreClustered) {
  const std::vector<Key64> keys = SyntheticOsmKeys(4096, 21);
  ASSERT_GE(keys.size(), 4000u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
  // Clustered keys: most adjacent gaps are small, a few are huge. A
  // uniform draw over [2^32, 2^63) would make the median gap ~2^50.
  std::vector<Key64> gaps;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    gaps.push_back(keys[i] - keys[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  EXPECT_LT(gaps[gaps.size() / 2], Key64{1} << 24);
  EXPECT_GT(gaps.back(), Key64{1} << 40);
}

TEST(Dataset, KeyFileRoundTripAndErrors) {
  const std::string path = testing::TempDir() + "/keys.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n42\n  7\n18446744073709551615\n\n", f);
    std::fclose(f);
  }
  std::vector<Key64> keys;
  ASSERT_TRUE(LoadKeyFile(path, &keys).ok());
  EXPECT_EQ(keys, (std::vector<Key64>{42, 7, 18446744073709551615ull}));

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("12\nnot_a_number\n", f);
    std::fclose(f);
  }
  keys.clear();
  EXPECT_FALSE(LoadKeyFile(path, &keys).ok());
  EXPECT_FALSE(LoadKeyFile("/nonexistent/osm.txt", &keys).ok());
}

TEST(Dataset, OsmLoaderFallsBackToSynthetic) {
  const BootstrapDataset ds = MakeOsmDataset(1024, 5, /*path=*/"");
  EXPECT_GE(ds.pairs.size(), 1000u);
  EXPECT_FALSE(ds.append);
  const BootstrapDataset again = MakeOsmDataset(1024, 5, /*path=*/"");
  EXPECT_EQ(ds.pairs, again.pairs);
}

TEST(Dataset, OsmLoaderUsesTheFile) {
  const std::string path = testing::TempDir() + "/osm_keys.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    for (int i = 1; i <= 64; ++i) std::fprintf(f, "%d\n", i * 1000);
    std::fclose(f);
  }
  const BootstrapDataset ds = MakeOsmDataset(64, 5, path);
  ASSERT_EQ(ds.pairs.size(), 64u);
  EXPECT_EQ(ds.pairs.front().key, 1000u);
  EXPECT_EQ(ds.pairs.back().key, 64000u);
}

// ---------------------------------------------------------------------------
// Workload specs.
// ---------------------------------------------------------------------------

TEST(WorkloadSpec, StandardMixesMatchYcsb) {
  for (char mix : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    const WorkloadSpec spec = WorkloadSpec::YcsbMix(mix);
    EXPECT_EQ(spec.read_bp + spec.update_bp + spec.insert_bp + spec.scan_bp +
                  spec.rmw_bp,
              10000)
        << mix;
  }
  EXPECT_EQ(WorkloadSpec::YcsbMix('a').update_bp, 5000);
  EXPECT_EQ(WorkloadSpec::YcsbMix('b').read_bp, 9500);
  EXPECT_EQ(WorkloadSpec::YcsbMix('c').read_bp, 10000);
  EXPECT_EQ(WorkloadSpec::YcsbMix('d').chooser.kind, KeyChooserKind::kLatest);
  EXPECT_EQ(WorkloadSpec::YcsbMix('e').scan_bp, 9500);
  EXPECT_EQ(WorkloadSpec::YcsbMix('f').rmw_bp, 5000);
}

TEST(WorkloadSpec, MatrixNamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Scenario& scenario : ScenarioMatrix()) {
    EXPECT_TRUE(names.insert(scenario.spec.name).second)
        << scenario.spec.name;
    Scenario found;
    ASSERT_TRUE(FindScenario(scenario.spec.name, &found));
    EXPECT_EQ(found.spec.name, scenario.spec.name);
  }
  EXPECT_GE(names.size(), 11u);  // a-f + hotspot/zipfian/scan/rmw/insert/osm
  Scenario missing;
  EXPECT_FALSE(FindScenario("nope", &missing));
}

// ---------------------------------------------------------------------------
// Op streams.
// ---------------------------------------------------------------------------

TEST(OpStream, GoldenPrefix) {
  const BootstrapDataset ds = MakeSequentialDataset(1024, /*value_seed=*/7);
  const WorkloadSpec spec = WorkloadSpec::YcsbMix('a');
  OpStream stream(spec, &ds, /*client=*/0, /*clients=*/2, /*seed=*/7);
  const Op expected[8] = {
      {OpKind::kUpdate, 552, 17162217024170323296ull, 0},
      {OpKind::kUpdate, 7240, 11801873741075390076ull, 0},
      {OpKind::kRead, 7240, 0ull, 0},
      {OpKind::kUpdate, 3528, 14314900561852409626ull, 0},
      {OpKind::kRead, 3664, 0ull, 0},
      {OpKind::kUpdate, 6024, 5487846310616360942ull, 0},
      {OpKind::kUpdate, 7240, 5702764397473748540ull, 0},
      {OpKind::kRead, 4848, 0ull, 0},
  };
  for (const Op& want : expected) {
    EXPECT_EQ(stream.Next(), want);
  }
}

TEST(OpStream, IdenticalSeedsIdenticalStreams) {
  const BootstrapDataset ds = MakeSequentialDataset(2048, 3);
  for (const Scenario& scenario : ScenarioMatrix()) {
    if (scenario.dataset != DatasetKind::kSequential) continue;
    OpStream a(scenario.spec, &ds, 1, 4, 99);
    OpStream b(scenario.spec, &ds, 1, 4, 99);
    EXPECT_EQ(a.Take(512), b.Take(512)) << scenario.spec.name;
  }
}

TEST(OpStream, MixRatiosMatchTheSpec) {
  const BootstrapDataset ds = MakeSequentialDataset(4096, 1);
  const WorkloadSpec spec = WorkloadSpec::YcsbMix('b');
  OpStream stream(spec, &ds, 0, 1, 31);
  int reads = 0, updates = 0;
  const int n = 20000;
  for (const Op& op : stream.Take(n)) {
    reads += op.kind == OpKind::kRead;
    updates += op.kind == OpKind::kUpdate;
  }
  EXPECT_EQ(reads + updates, n);
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.95, 0.01);
}

TEST(OpStream, ClientsNeverMutateEachOthersKeys) {
  const BootstrapDataset seq = MakeSequentialDataset(4096, 2);
  const BootstrapDataset uni = MakeUniformDataset(4096, 2);
  for (const BootstrapDataset* ds : {&seq, &uni}) {
    std::vector<std::set<Key64>> mutated(3);
    for (int c = 0; c < 3; ++c) {
      OpStream stream(WorkloadSpec::YcsbMix('a'), ds, c, 3, 5);
      for (const Op& op : stream.Take(4000)) {
        if (op.kind != OpKind::kRead) mutated[c].insert(op.key);
      }
      EXPECT_GT(mutated[c].size(), 100u);
    }
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        std::vector<Key64> overlap;
        std::set_intersection(mutated[a].begin(), mutated[a].end(),
                              mutated[b].begin(), mutated[b].end(),
                              std::back_inserter(overlap));
        EXPECT_TRUE(overlap.empty())
            << DatasetKindName(ds->kind) << ": clients " << a << " and " << b
            << " share " << overlap.size() << " mutated keys";
      }
    }
  }
}

TEST(OpStream, InsertsMintFreshDisjointKeys) {
  // Append policy (sequential dataset): fresh keys climb past the
  // bootstrap set. Scatter policy (uniform dataset): fresh keys avoid
  // the bootstrap set and stay per-client disjoint.
  for (const BootstrapDataset& ds :
       {MakeSequentialDataset(2048, 4), MakeUniformDataset(2048, 4)}) {
    std::set<Key64> bootstrap;
    for (const auto& pair : ds.pairs) bootstrap.insert(pair.key);
    std::set<Key64> fresh;
    for (int c = 0; c < 2; ++c) {
      OpStream stream(WorkloadSpec::InsertRatio(5000), &ds, c, 2, 8);
      for (const Op& op : stream.Take(2000)) {
        if (op.kind != OpKind::kInsert) continue;
        EXPECT_EQ(bootstrap.count(op.key), 0u);
        EXPECT_TRUE(fresh.insert(op.key).second)
            << "key " << op.key << " minted twice";
      }
    }
    EXPECT_GT(fresh.size(), 1500u);
  }
}

TEST(OpStream, ScanLengthsStayInRange) {
  const BootstrapDataset ds = MakeSequentialDataset(2048, 6);
  WorkloadSpec spec = WorkloadSpec::YcsbMix('e');
  OpStream stream(spec, &ds, 0, 1, 12);
  int scans = 0;
  for (const Op& op : stream.Take(5000)) {
    if (op.kind != OpKind::kScan) continue;
    ++scans;
    EXPECT_GE(op.scan_len, 1);
    EXPECT_LE(op.scan_len, spec.max_scan_len);
  }
  EXPECT_GT(scans, 4000);
}

TEST(OpStream, LatestMixReachesItsOwnInserts) {
  const BootstrapDataset ds = MakeSequentialDataset(2048, 6);
  OpStream stream(WorkloadSpec::YcsbMix('d'), &ds, 0, 1, 14);
  std::set<Key64> inserted;
  int reads_of_inserted = 0;
  for (const Op& op : stream.Take(20000)) {
    if (op.kind == OpKind::kInsert) {
      inserted.insert(op.key);
    } else if (op.kind == OpKind::kRead && inserted.count(op.key) > 0) {
      ++reads_of_inserted;
    }
  }
  EXPECT_GT(inserted.size(), 50u);
  // Latest skew: a solid share of reads target records inserted during
  // the run, even though they are a sliver of the key population.
  EXPECT_GT(reads_of_inserted, 1000);
}

}  // namespace
}  // namespace hbtree::workload
