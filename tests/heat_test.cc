// Tests for the heat observability layer (obs/heat.h, DESIGN.md §13):
// keyspace sketch determinism under the fixed-point zipf chooser, decay,
// cross-shard merge against unsharded ground truth, tenant attribution,
// per-level traffic reconciliation against the cache hierarchy, and
// segment temperature transitions.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/random.h"
#include "core/trace.h"
#include "obs/heat.h"
#include "sim/cache_sim.h"
#include "workload/key_chooser.h"

namespace hbtree::obs {
namespace {

constexpr std::uint64_t kSeed = 0x5eedbeef;

std::vector<sim::CacheLevel::Config> SmallHierarchy() {
  return {{"L1", 4 * 1024, 4, 64},
          {"L2", 32 * 1024, 8, 64},
          {"L3", 256 * 1024, 16, 64}};
}

// ---------------------------------------------------------------------------
// Keyspace sketch
// ---------------------------------------------------------------------------

// The Q32.32 fixed-point zipf chooser produces bit-identical rank streams
// on every platform, so feeding a fixed seed through the sketch must land
// identical per-bin counts on every run — and the skew must concentrate
// on the low bins (unscrambled zipf ranks map to the low-key prefix).
TEST(KeyRangeSketch, DeterministicUnderFixedPointZipfChooser) {
  constexpr std::uint64_t kItems = 4096;
  constexpr std::size_t kOps = 32768;
  workload::KeyChooser::Params params;
  params.kind = workload::KeyChooserKind::kZipfian;
  const workload::KeyChooser chooser(params, kItems);

  KeyRangeSketch::Options options;
  options.fanout = 64;
  // Keys are (index + 1) * 8, the serving harness's sequential layout.
  KeyRangeSketch sketch(8, kItems * 8, options);
  std::vector<std::uint64_t> reference(64, 0);
  Rng rng(kSeed);
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::uint64_t key = (chooser.Next(rng) + 1) * 8;
    sketch.Record(key);
    reference[static_cast<std::size_t>(sketch.BinFor(key))]++;
  }

  const KeyRangeSketch::Snapshot snap = sketch.TakeSnapshot();
  ASSERT_EQ(snap.total, kOps);
  ASSERT_EQ(snap.bins.size(), reference.size());
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_EQ(snap.bins[b], reference[b]) << "bin " << b;
  }
  // Golden skew shape: rank 0..63 land in bin 0, which takes roughly half
  // the zipf(0.99) mass; a uniform stream would put 512 ops per bin.
  EXPECT_EQ(snap.bins[0],
            *std::max_element(snap.bins.begin(), snap.bins.end()));
  EXPECT_GT(snap.bins[0], kOps * 2 / 5);

  // Bit-exact replay: a second chooser+sketch from the same seed.
  KeyRangeSketch replay(8, kItems * 8, options);
  Rng rng2(kSeed);
  for (std::size_t i = 0; i < kOps; ++i) {
    replay.Record((chooser.Next(rng2) + 1) * 8);
  }
  EXPECT_EQ(replay.TakeSnapshot().bins, snap.bins);
}

TEST(KeyRangeSketch, ClampsOutOfRangeKeysToBoundaryBins) {
  KeyRangeSketch::Options options;
  options.fanout = 8;
  KeyRangeSketch sketch(100, 199, options);
  sketch.Record(5);     // below lo -> bin 0
  sketch.Record(1000);  // above hi -> last bin
  const auto snap = sketch.TakeSnapshot();
  EXPECT_EQ(snap.bins.front(), 1u);
  EXPECT_EQ(snap.bins.back(), 1u);
  EXPECT_EQ(snap.total, 2u);
}

TEST(KeyRangeSketch, ExplicitDecayHalvesRoundingDown) {
  KeyRangeSketch::Options options;
  options.fanout = 4;
  KeyRangeSketch sketch(0, 399, options);
  for (int i = 0; i < 7; ++i) sketch.Record(0);    // bin 0: 7
  for (int i = 0; i < 2; ++i) sketch.Record(399);  // bin 3: 2
  sketch.Decay();
  const auto snap = sketch.TakeSnapshot();
  EXPECT_EQ(snap.bins[0], 3u);  // 7 / 2, rounded down
  EXPECT_EQ(snap.bins[3], 1u);
  EXPECT_EQ(snap.total, 4u);
}

TEST(KeyRangeSketch, AutomaticDecayFiresOnCadence) {
  KeyRangeSketch::Options options;
  options.fanout = 1;
  options.decay_every = 8;
  KeyRangeSketch sketch(0, 100, options);
  for (int i = 0; i < 8; ++i) sketch.Record(0);
  // The 8th record triggered the halving: 8 / 2 = 4.
  EXPECT_EQ(sketch.TakeSnapshot().total, 4u);
  for (int i = 0; i < 8; ++i) sketch.Record(0);
  // (4 + 8) / 2 = 6.
  EXPECT_EQ(sketch.TakeSnapshot().total, 6u);
}

// Sharded sketches over aligned sub-ranges must merge to exactly the
// histogram an unsharded sketch of the whole keyspace would produce:
// same ranges, same counts, same total.
TEST(MergeSketches, CrossShardMergeEqualsUnshardedGroundTruth) {
  constexpr std::uint64_t kSpan = 1u << 16;  // [0, 65535]
  constexpr int kShards = 4;
  constexpr int kShardFanout = 64;

  KeyRangeSketch::Options global_options;
  global_options.fanout = kShards * kShardFanout;  // same bin width
  KeyRangeSketch global(0, kSpan - 1, global_options);

  KeyRangeSketch::Options shard_options;
  shard_options.fanout = kShardFanout;
  // deque: the sketch owns atomics, so it is neither movable nor copyable.
  std::deque<KeyRangeSketch> shards;
  const std::uint64_t shard_span = kSpan / kShards;
  for (int s = 0; s < kShards; ++s) {
    shards.emplace_back(s * shard_span, (s + 1) * shard_span - 1,
                        shard_options);
  }

  Rng rng(kSeed);
  for (int i = 0; i < 100000; ++i) {
    // Mildly skewed: squaring biases draws toward low keys so the top-K
    // order is non-trivial.
    const std::uint64_t u = rng.NextBounded(kSpan);
    const std::uint64_t key = (u * u) / kSpan;
    global.Record(key);
    shards[static_cast<std::size_t>(key / shard_span)].Record(key);
  }

  std::vector<KeyRangeSketch::Snapshot> snaps;
  for (const auto& shard : shards) snaps.push_back(shard.TakeSnapshot());
  MergeOptions merge_options;
  merge_options.top_k = kShards * kShardFanout;  // keep everything
  const KeyspaceHeat heat = MergeSketches(snaps, merge_options);

  const KeyRangeSketch::Snapshot truth = global.TakeSnapshot();
  EXPECT_EQ(heat.total, truth.total);
  EXPECT_EQ(heat.bins, global_options.fanout);
  ASSERT_EQ(heat.shard_totals.size(), static_cast<std::size_t>(kShards));
  std::uint64_t shard_sum = 0;
  for (std::uint64_t t : heat.shard_totals) shard_sum += t;
  EXPECT_EQ(shard_sum, heat.total);

  // Every merged range must match the unsharded bin covering its keys,
  // and together they must account for every non-empty bin.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> truth_bins;
  for (int b = 0; b < truth.fanout; ++b) {
    if (truth.bins[static_cast<std::size_t>(b)] == 0) continue;
    truth_bins[truth.BinRange(b)] = truth.bins[static_cast<std::size_t>(b)];
  }
  ASSERT_EQ(heat.top.size(), truth_bins.size());
  std::uint64_t prev_count = ~0ull;
  for (const HeatRange& range : heat.top) {
    const auto it = truth_bins.find({range.lo, range.hi});
    ASSERT_NE(it, truth_bins.end())
        << "merged range [" << range.lo << ", " << range.hi
        << "] does not exist unsharded";
    EXPECT_EQ(range.count, it->second);
    EXPECT_LE(range.count, prev_count) << "top-K order broken";
    prev_count = range.count;
  }
}

TEST(MergeSketches, TenantCountsSumToRangeCount) {
  KeyRangeSketch::Options options;
  options.fanout = 8;
  options.tenants = 3;
  KeyRangeSketch sketch(0, 799, options);
  Rng rng(kSeed);
  for (int i = 0; i < 5000; ++i) {
    sketch.Record(rng.NextBounded(800), rng.NextBounded(3));
  }
  sketch.Record(42, 99);  // out-of-range tenant folds into tenant 0

  MergeOptions merge_options;
  merge_options.top_k = 8;
  const KeyspaceHeat heat = MergeSketches({sketch.TakeSnapshot()},
                                          merge_options);
  EXPECT_EQ(heat.total, 5001u);
  ASSERT_FALSE(heat.top.empty());
  for (const HeatRange& range : heat.top) {
    std::uint64_t tenant_sum = 0;
    for (std::uint64_t c : range.by_tenant) tenant_sum += c;
    EXPECT_EQ(tenant_sum, range.count);
  }
}

TEST(MergeSketches, HotFlagTracksThresholdShare) {
  KeyRangeSketch::Options options;
  options.fanout = 16;
  KeyRangeSketch sketch(0, 1599, options);
  // 85% of ops into bin 0, the rest spread evenly: only bin 0 exceeds
  // 4x the uniform share (4/16 = 0.25).
  for (int i = 0; i < 850; ++i) sketch.Record(0);
  for (int i = 0; i < 150; ++i) sketch.Record((i % 15 + 1) * 100);
  const KeyspaceHeat heat = MergeSketches({sketch.TakeSnapshot()});
  ASSERT_FALSE(heat.top.empty());
  EXPECT_TRUE(heat.top[0].hot);
  EXPECT_EQ(heat.top[0].lo, 0u);
  for (std::size_t i = 1; i < heat.top.size(); ++i) {
    EXPECT_FALSE(heat.top[i].hot) << "range " << i;
  }
}

TEST(KeyRangeSketch, ConcurrentRecordsAllLand) {
  KeyRangeSketch::Options options;
  options.fanout = 32;
  options.tenants = 2;
  KeyRangeSketch sketch(0, (1u << 20) - 1, options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sketch, t] {
      Rng rng(kSeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        sketch.Record(rng.NextBounded(1u << 20),
                      static_cast<std::size_t>(t % 2));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sketch.TakeSnapshot().total,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Tree-level traffic attribution
// ---------------------------------------------------------------------------

// Every access the tracer attributes also passes through the hierarchy,
// so the per-cell byte totals must reconcile exactly with the
// hierarchy's access counters — including the DRAM split.
TEST(LevelHeatTracer, ReconcilesWithCacheHierarchyTotals) {
  sim::CacheHierarchy caches(SmallHierarchy());
  LevelHeatTracer tracer(&caches);

  // A buffer far larger than L3 so some accesses miss to DRAM.
  std::vector<std::uint64_t> arena(1u << 17);
  Rng rng(kSeed);
  for (int q = 0; q < 200; ++q) {
    tracer.OnQueryStart();
    tracer.OnNodeTouch(2, NodeClass::kInner, 0);
    for (int i = 0; i < 8; ++i) {
      tracer.OnAccess(&arena[rng.NextBounded(arena.size())], 64);
    }
    tracer.OnNodeTouch(1, NodeClass::kLastInner, 1);
    for (int i = 0; i < 4; ++i) {
      tracer.OnAccess(&arena[rng.NextBounded(arena.size())], 64);
    }
    tracer.OnNodeTouch(0, NodeClass::kBigLeaf, 2);
    for (int i = 0; i < 16; ++i) {
      tracer.OnAccess(&arena[rng.NextBounded(arena.size())], 64);
    }
    tracer.OnQueryEnd();
  }

  EXPECT_EQ(tracer.total_bytes(), 64 * caches.accesses());
  EXPECT_EQ(caches.accesses(), 200u * 28);

  std::vector<LevelTraffic> cells;
  tracer.Collect(&cells);
  ASSERT_EQ(cells.size(), 3u);
  std::uint64_t bytes = 0;
  std::uint64_t dram_bytes = 0;
  for (const LevelTraffic& cell : cells) {
    bytes += cell.bytes;
    dram_bytes += cell.hit_bytes[3];
    EXPECT_EQ(cell.hit_bytes[0] + cell.hit_bytes[1] + cell.hit_bytes[2] +
                  cell.hit_bytes[3],
              cell.bytes)
        << LevelCellName(cell.level, cell.node_class);
    EXPECT_EQ(cell.touches, 200u);
  }
  EXPECT_EQ(bytes, tracer.total_bytes());
  EXPECT_EQ(dram_bytes, 64 * caches.memory_accesses());
  EXPECT_GT(caches.memory_accesses(), 0u)
      << "arena should not fit in the modelled L3";
}

TEST(LevelHeatTracer, AttributesUntouchedAccessesToOtherCell) {
  sim::CacheHierarchy caches(SmallHierarchy());
  LevelHeatTracer tracer(&caches);
  std::uint64_t word = 0;
  tracer.OnAccess(&word, 64);  // before any touch
  std::vector<LevelTraffic> cells;
  tracer.Collect(&cells);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].node_class, LevelHeatTracer::kOtherClass);
  EXPECT_EQ(LevelCellName(cells[0].level, cells[0].node_class), "other");
  EXPECT_EQ(cells[0].bytes, 64u);

  tracer.Reset();
  cells.clear();
  tracer.Collect(&cells);
  EXPECT_TRUE(cells.empty());
}

// The core hook compiles to nothing for tracers without OnNodeTouch but
// must both bump the pool's touch counter and notify a heat tracer.
TEST(TraceNodeTouch, FeedsPoolCountersAndHeatTracerOnly) {
  struct CountingPool {
    mutable std::atomic<std::uint64_t> touches{0};
    void NoteTouch(std::uint32_t) const {
      touches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  CountingPool pool;

  NullTracer null_tracer;
  TraceNodeTouch(&null_tracer, pool, 0, NodeClass::kBigLeaf, 7u);
  EXPECT_EQ(pool.touches.load(), 0u)
      << "a heat-blind tracer must not pay the pool counter either";

  sim::CacheHierarchy caches(SmallHierarchy());
  LevelHeatTracer tracer(&caches);
  TraceNodeTouch(&tracer, pool, 3, NodeClass::kInner, 7u);
  EXPECT_EQ(pool.touches.load(), 1u);
  std::vector<LevelTraffic> cells;
  tracer.Collect(&cells);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].level, 3);
  EXPECT_EQ(cells[0].node_class, static_cast<int>(NodeClass::kInner));
  EXPECT_EQ(cells[0].touches, 1u);
}

// ---------------------------------------------------------------------------
// Memory-segment temperature
// ---------------------------------------------------------------------------

TEST(SegmentTemperature, ClassifiesHotWarmColdAcrossEpochs) {
  SegmentTemperature::Options options;
  options.hot_min_touches = 10;
  options.warm_epochs = 2;
  SegmentTemperature temp(options);

  // Epoch 1: segment 0 busy, segment 1 lightly touched, segment 2 never.
  PoolTemperature t = temp.Observe({100, 5, 0});
  EXPECT_EQ(t.segments, 3u);
  EXPECT_EQ(t.hot, 1u);
  EXPECT_EQ(t.warm, 2u);  // light touch + first-epoch grace
  EXPECT_EQ(t.cold, 0u);

  // Segments idle: within warm_epochs they are warm, then cold.
  t = temp.Observe({100, 5, 0});
  EXPECT_EQ(t.hot, 0u);
  EXPECT_EQ(t.warm, 3u);
  // The never-touched segment entered epoch 1 already idle, so it ages
  // past warm_epochs one observation before the touched ones.
  t = temp.Observe({100, 5, 0});
  EXPECT_EQ(t.warm, 2u);
  EXPECT_EQ(t.cold, 1u);
  t = temp.Observe({100, 5, 0});
  EXPECT_EQ(t.warm, 0u);
  EXPECT_EQ(t.cold, 3u);
  EXPECT_DOUBLE_EQ(t.cold_fraction, 1.0);

  // Reheat one segment: back to hot, the others stay cold.
  t = temp.Observe({150, 5, 0});
  EXPECT_EQ(t.hot, 1u);
  EXPECT_EQ(t.cold, 2u);
  EXPECT_DOUBLE_EQ(t.cold_fraction, 2.0 / 3.0);
}

TEST(SegmentTemperature, GrowsWithThePoolAndResetsOnRegression) {
  SegmentTemperature::Options options;
  options.hot_min_touches = 10;
  options.warm_epochs = 1;
  SegmentTemperature temp(options);

  temp.Observe({50});
  // A new chunk appears: observed from scratch, no underflow.
  PoolTemperature t = temp.Observe({50, 30});
  EXPECT_EQ(t.segments, 2u);
  EXPECT_EQ(t.hot, 1u);  // the new chunk's 30 touches all count

  // The pool was cleared (counters regressed): history restarts instead
  // of wrapping the unsigned delta.
  t = temp.Observe({5, 0});
  EXPECT_EQ(t.segments, 2u);
  EXPECT_EQ(t.hot, 0u);
  EXPECT_EQ(t.warm, 2u);
  EXPECT_EQ(t.cold, 0u);
}

}  // namespace
}  // namespace hbtree::obs
