#include "cpubtree/regular_btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/workload.h"

namespace hbtree {
namespace {

template <typename K>
RegularBTree<K> MakeTree(PageRegistry* registry, double leaf_fill = 1.0,
                         double inner_fill = 1.0) {
  typename RegularBTree<K>::Config config;
  config.leaf_fill = leaf_fill;
  config.inner_fill = inner_fill;
  return RegularBTree<K>(config, registry);
}

template <typename K>
class RegularBTreeTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(RegularBTreeTypedTest, KeyTypes);

TYPED_TEST(RegularBTreeTypedTest, BulkBuildFindsAllKeys) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry);
  auto data = GenerateDataset<K>(50000, /*seed=*/1);
  tree.Build(data);
  tree.Validate();
  for (std::size_t i = 0; i < data.size(); i += 3) {
    auto result = tree.Search(data[i].key);
    ASSERT_TRUE(result.found) << i;
    EXPECT_EQ(result.value, data[i].value);
  }
}

TYPED_TEST(RegularBTreeTypedTest, MissesBetweenKeys) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry);
  auto data = GenerateDataset<K>(10000, /*seed=*/2);
  tree.Build(data);
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    K probe = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax));
    auto it = std::lower_bound(
        data.begin(), data.end(), probe,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    bool expect = it != data.end() && it->key == probe;
    EXPECT_EQ(tree.Search(probe).found, expect) << probe;
  }
}

TYPED_TEST(RegularBTreeTypedTest, RangeScanMatchesDataset) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/0.8);
  auto data = GenerateDataset<K>(30000, /*seed=*/3);
  tree.Build(data);
  for (std::size_t start :
       {std::size_t{0}, std::size_t{123}, std::size_t{29990}}) {
    KeyValue<K> out[64];
    int got = tree.RangeScan(data[start].key, 64, out);
    int expect =
        static_cast<int>(std::min<std::size_t>(64, data.size() - start));
    ASSERT_EQ(got, expect);
    for (int i = 0; i < got; ++i) {
      EXPECT_EQ(out[i].key, data[start + i].key);
      EXPECT_EQ(out[i].value, data[start + i].value);
    }
  }
}

TYPED_TEST(RegularBTreeTypedTest, InsertIntoFullTreeSplits) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/1.0);
  auto data = GenerateDataset<K>(20000, /*seed=*/4);
  tree.Build(data);
  // Insert fresh keys; full leaves force splits immediately.
  auto batch = MakeUpdateBatch<K>(data, 2000, /*insert_fraction=*/1.0, 5);
  for (const auto& update : batch) {
    ASSERT_TRUE(tree.Insert(update.pair));
  }
  tree.Validate();
  EXPECT_EQ(tree.size(), data.size() + batch.size());
  for (const auto& update : batch) {
    auto result = tree.Search(update.pair.key);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.value, update.pair.value);
  }
  // Old keys still present.
  for (std::size_t i = 0; i < data.size(); i += 17) {
    EXPECT_TRUE(tree.Search(data[i].key).found);
  }
}

TYPED_TEST(RegularBTreeTypedTest, DuplicateInsertRejected) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry);
  auto data = GenerateDataset<K>(5000, /*seed=*/6);
  tree.Build(data);
  EXPECT_FALSE(tree.Insert({data[100].key, 42}));
  EXPECT_EQ(tree.size(), data.size());
  // Original value unchanged.
  EXPECT_EQ(tree.Search(data[100].key).value, data[100].value);
}

TYPED_TEST(RegularBTreeTypedTest, EraseRemovesKeysAndMerges) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/0.5);
  auto data = GenerateDataset<K>(30000, /*seed=*/7);
  tree.Build(data);
  // Erase 80% of keys to force merges.
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 5 != 0) {
      ASSERT_TRUE(tree.Erase(data[i].key)) << i;
    }
  }
  tree.Validate();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(tree.Search(data[i].key).found, i % 5 == 0);
  }
  EXPECT_FALSE(tree.Erase(data[1].key));  // already gone
}

TYPED_TEST(RegularBTreeTypedTest, FuzzAgainstReferenceModel) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/0.7);
  auto data = GenerateDataset<K>(4000, /*seed=*/8);
  tree.Build(data);
  std::map<K, K> model;
  for (const auto& kv : data) model[kv.key] = kv.value;

  Rng rng(99);
  for (int op = 0; op < 30000; ++op) {
    const int action = static_cast<int>(rng.NextBounded(10));
    K key = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax));
    if (action < 4) {  // insert random key
      K value = static_cast<K>(rng.Next());
      bool inserted = tree.Insert({key, value});
      bool expect = model.emplace(key, value).second;
      ASSERT_EQ(inserted, expect);
    } else if (action < 7 && !model.empty()) {  // erase existing
      auto it = model.lower_bound(key);
      if (it == model.end()) it = model.begin();
      ASSERT_TRUE(tree.Erase(it->first));
      model.erase(it);
    } else if (action == 7) {  // erase probably-missing
      bool erased = tree.Erase(key);
      ASSERT_EQ(erased, model.erase(key) > 0);
    } else {  // lookup
      auto result = tree.Search(key);
      auto it = model.find(key);
      ASSERT_EQ(result.found, it != model.end());
      if (result.found) {
        ASSERT_EQ(result.value, it->second);
      }
    }
    if (op % 5000 == 4999) tree.Validate();
  }
  tree.Validate();
  EXPECT_EQ(tree.size(), model.size());

  // Full sweep via range scan from the smallest key.
  if (!model.empty()) {
    std::vector<KeyValue<K>> out(model.size());
    int got = tree.RangeScan(model.begin()->first,
                             static_cast<int>(model.size()), out.data());
    ASSERT_EQ(static_cast<std::size_t>(got), model.size());
    auto it = model.begin();
    for (int i = 0; i < got; ++i, ++it) {
      EXPECT_EQ(out[i].key, it->first);
      EXPECT_EQ(out[i].value, it->second);
    }
  }
}

TYPED_TEST(RegularBTreeTypedTest, NonStructuralPathMatchesInsert) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/0.6);
  auto data = GenerateDataset<K>(20000, /*seed=*/10);
  tree.Build(data);
  auto batch = MakeUpdateBatch<K>(data, 500, /*insert_fraction=*/1.0, 11);
  int non_structural = 0;
  for (const auto& update : batch) {
    NodeRef ln = tree.FindLastInner(update.pair.key);
    if (!tree.WouldBeStructural(ln, /*is_insert=*/true, update.pair.key)) {
      ASSERT_TRUE(tree.ApplyNonStructural(ln, true, update.pair));
      ++non_structural;
    } else {
      ASSERT_TRUE(tree.Insert(update.pair));
    }
  }
  // With 60% fill, the overwhelming majority must be non-structural
  // (the paper reports > 99%).
  EXPECT_GT(non_structural, static_cast<int>(batch.size() * 95 / 100));
  tree.Validate();
  for (const auto& update : batch) {
    EXPECT_TRUE(tree.Search(update.pair.key).found);
  }
}

TYPED_TEST(RegularBTreeTypedTest, ModifiedNodeReporting) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeTree<K>(&registry, /*leaf_fill=*/1.0);
  auto data = GenerateDataset<K>(10000, /*seed=*/12);
  tree.Build(data);
  auto batch = MakeUpdateBatch<K>(data, 200, /*insert_fraction=*/1.0, 13);
  std::vector<ModifiedNode> modified;
  for (const auto& update : batch) tree.Insert(update.pair, &modified);
  // Full leaves mean every insert splits: plenty of modified nodes, and
  // each split reports both halves plus the parent.
  // Every initially-full leaf splits on its first insert, and each split
  // reports both halves plus the parent.
  EXPECT_GE(modified.size(), data.size() / RegularBTree<K>::kLeafCap);
  tree.Validate();
}

TEST(RegularBTreeGeometry, ShapeConstantsMatchPaper) {
  // Section 4.1: F_I = 64 (64-bit) / 256 (32-bit); 17 / 33 cache lines;
  // big leaf 256 / 2048 pairs.
  EXPECT_EQ(RegularBTree<Key64>::kFanout, 64);
  EXPECT_EQ(RegularBTree<Key32>::kFanout, 256);
  EXPECT_EQ(sizeof(RegularInnerHot<Key64>), 17u * kCacheLineSize);
  EXPECT_EQ(sizeof(RegularInnerHot<Key32>), 33u * kCacheLineSize);
  EXPECT_EQ(RegularBTree<Key64>::kLeafCap, 256);
  EXPECT_EQ(RegularBTree<Key32>::kLeafCap, 2048);
}

TEST(RegularBTreeGeometry, TracedSearchTouchesThreeLinesPerLevel) {
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(1000000, /*seed=*/14);
  tree.Build(data);

  struct CountingTracer {
    int accesses = 0;
    void OnAccess(const void*, std::size_t) { ++accesses; }
    void OnQueryStart() {}
    void OnQueryEnd() {}
  } tracer;
  tree.Search(data[12345].key, &tracer);
  // Paper Section 4.1: ~3H+1 lines per query (last level needs no ref
  // line, so exactly 3(H-1) + 2 + 1).
  const int h = tree.height();
  EXPECT_EQ(tracer.accesses, 3 * (h - 1) + 2 + 1);
}

}  // namespace
}  // namespace hbtree
