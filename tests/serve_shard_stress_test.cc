// Stress and correctness tests for the *sharded* serving topology
// (num_shards > 1, num_read_workers > 1). The single-shard behaviors
// live in serve_stress_test.cc; this suite covers what sharding adds:
// key-range routing, per-shard read-your-writes, cross-shard range
// continuation, per-shard metric series, the capacity validation that
// rejects topologies the device arena cannot back, and the background
// metrics reporter. Written to run cleanly under ASan and TSan (see the
// asan/tsan CMake presets): all cross-thread bookkeeping goes through
// atomics and futures.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace hbtree {
namespace {

// Bootstrap keys are the even numbers 2..2*kBootstrap, so every shard
// owns a quarter of them and the odd numbers in between are free for
// dynamic inserts that route to interior shards (keys above the
// bootstrap range would all land in the last shard).
constexpr std::uint64_t kBootstrap = 16 * 1024;

Key64 StableValue(std::uint64_t key) { return key * 5 + 3; }
Key64 DynamicValue(std::uint64_t key) { return key * 2 + 11; }

std::vector<KeyValue<Key64>> BootstrapDataset() {
  std::vector<KeyValue<Key64>> data;
  data.reserve(kBootstrap);
  for (std::uint64_t i = 1; i <= kBootstrap; ++i) {
    data.push_back(KeyValue<Key64>{2 * i, StableValue(2 * i)});
  }
  return data;
}

serve::ServerOptions ShardedOptions(int shards = 4, int read_workers = 2) {
  serve::ServerOptions options;
  options.num_shards = shards;
  options.num_read_workers = read_workers;
  // Small buckets/batches so many buckets dispatch and many epochs swap
  // per shard; fixed CPU rates keep the modelled costs deterministic.
  options.pipeline.bucket_size = 1024;
  options.pipeline.cpu_queries_per_us = 20.0;
  options.pipeline.cpu_descend_us_per_level = 0.01;
  options.min_sub_bucket = 64;
  options.update_batch_size = 1024;
  return options;
}

UpdateQuery<Key64> Insert(std::uint64_t key, Key64 value) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kInsert,
                            KeyValue<Key64>{key, value}};
}

UpdateQuery<Key64> Delete(std::uint64_t key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kDelete,
                            KeyValue<Key64>{key, 0}};
}

// Differential test against std::map: rounds of randomized inserts,
// overwrites, and deletes spread over the whole key range (so every
// shard sees updates), each round committed and then cross-checked with
// point lookups and range scans — including scans that start just below
// a shard boundary and continue into the next shard. Runs serially
// between rounds so the reference is exact; the concurrency is inside
// the server (4 shards x 2 read workers + 4 update workers).
TEST(ServeShardStress, DifferentialVsStdMapAcrossShards) {
  constexpr int kRounds = 3;
  constexpr int kUpdatesPerRound = 2048;
  constexpr int kProbesPerRound = 1500;
  constexpr int kRangeLen = 24;

  auto data = BootstrapDataset();
  Status status;
  auto server_ptr =
      serve::Server<Key64>::Create(ShardedOptions(), data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::map<std::uint64_t, Key64> reference;
  for (const auto& kv : data) reference[kv.key] = kv.value;

  // The shard bounds Init() derives: the key at index n*i/4 starts
  // shard i, so ranges straddling these keys exercise cross-shard
  // continuation.
  const std::size_t n = data.size();
  const std::uint64_t bounds[] = {data[n / 4].key, data[n / 2].key,
                                  data[3 * n / 4].key};

  std::mt19937_64 rng(7);
  for (int round = 0; round < kRounds; ++round) {
    // One round of updates, mirrored into the reference in submission
    // order (per-key order is preserved: a key always routes to the
    // same shard's FIFO update lane).
    std::vector<std::future<serve::UpdateResult>> pending;
    pending.reserve(kUpdatesPerRound);
    for (int i = 0; i < kUpdatesPerRound; ++i) {
      const std::uint64_t key = 1 + rng() % (2 * kBootstrap + 64);
      if (rng() % 3 == 0 && !reference.empty()) {
        pending.push_back(server.SubmitUpdate(Delete(key)));
        reference.erase(key);
      } else {
        // Inserting a present key is a duplicate no-op in the tree
        // (regular_btree.h), so the reference only takes the value when
        // the key is absent — emplace, not operator[].
        const Key64 value = DynamicValue(key) + round;
        pending.push_back(server.SubmitUpdate(Insert(key, value)));
        reference.emplace(key, value);
      }
    }
    for (auto& f : pending) ASSERT_TRUE(f.get().status.ok());

    // Point probes across the whole range (hits and misses).
    std::vector<std::uint64_t> probe_keys;
    std::vector<std::future<serve::ReadResult<Key64>>> lookups;
    for (int i = 0; i < kProbesPerRound; ++i) {
      const std::uint64_t key = 1 + rng() % (2 * kBootstrap + 128);
      probe_keys.push_back(key);
      lookups.push_back(server.SubmitLookup(key));
    }
    for (int i = 0; i < kProbesPerRound; ++i) {
      auto result = lookups[i].get();
      ASSERT_TRUE(result.status.ok());
      auto it = reference.find(probe_keys[i]);
      if (it == reference.end()) {
        ASSERT_FALSE(result.lookup.found) << "key " << probe_keys[i];
      } else {
        ASSERT_TRUE(result.lookup.found) << "key " << probe_keys[i];
        ASSERT_EQ(result.lookup.value, it->second) << "key " << probe_keys[i];
      }
    }

    // Boundary-crossing range scans: start a few keys below each shard
    // bound so the scan pins one shard's snapshot, exhausts its
    // segment, and continues into the next shard. With no concurrent
    // updates the concatenation must match the reference exactly.
    for (const std::uint64_t bound : bounds) {
      const std::uint64_t start = bound > 16 ? bound - 16 : 1;
      auto range = server.SubmitRange(start, kRangeLen).get();
      ASSERT_TRUE(range.status.ok());
      auto it = reference.lower_bound(start);
      std::size_t expected = 0;
      for (; it != reference.end() && expected < kRangeLen; ++it, ++expected) {
        ASSERT_LT(expected, range.range.size());
        ASSERT_EQ(range.range[expected].key, it->first);
        ASSERT_EQ(range.range[expected].value, it->second);
      }
      ASSERT_EQ(range.range.size(), expected);
    }
  }

  server.Shutdown();
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.num_shards, 4);
  EXPECT_EQ(stats.num_read_workers, 2);
  EXPECT_EQ(stats.updates,
            static_cast<std::uint64_t>(kRounds) * kUpdatesPerRound);
}

// Read-your-writes per client within a shard, on the sharded topology:
// each writer thread owns a disjoint lane of odd keys swept across the
// whole bootstrap range, so consecutive writes of one client land in
// different shards — after an update's future resolves, a lookup for
// that key (routing to the shard that committed it) must observe it.
// Reader threads concurrently verify the untouched even keys stay exact
// in every shard.
TEST(ServeShardStress, ConcurrentChurnReadYourWritesPerClient) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 250;
  constexpr int kReaders = 2;
  constexpr int kReadsPerReader = 1200;

  auto data = BootstrapDataset();
  Status status;
  auto server_ptr =
      serve::Server<Key64>::Create(ShardedOptions(), data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Odd keys, disjoint per writer, striding the full key range:
        // op i of writer w sits in the gap before bootstrap key
        // 2*(w + kWriters*i + 1).
        const std::uint64_t key =
            2 * (static_cast<std::uint64_t>(w) + kWriters * i) + 1;
        ASSERT_TRUE(
            server.SubmitUpdate(Insert(key, DynamicValue(key))).get()
                .status.ok());
        auto after_insert = server.SubmitLookup(key).get().lookup;
        ASSERT_TRUE(after_insert.found)
            << "own insert of " << key << " not visible after commit";
        ASSERT_EQ(after_insert.value, DynamicValue(key));
        if (i % 2 == 0) {
          ASSERT_TRUE(server.SubmitUpdate(Delete(key)).get().status.ok());
          ASSERT_FALSE(server.SubmitLookup(key).get().lookup.found)
              << "own delete of " << key << " not visible after commit";
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(100 + r);
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::uint64_t key = 2 * (1 + rng() % kBootstrap);
        auto result = server.SubmitLookup(key).get().lookup;
        ASSERT_TRUE(result.found) << "bootstrap key " << key;
        ASSERT_EQ(result.value, StableValue(key));
      }
    });
  }

  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();

  server.Shutdown();
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.shed_reads, 0u);
  EXPECT_EQ(stats.shed_updates, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);
  // Per-shard sequences: total batches spread over 4 shards, and the
  // summed epoch matches the summed commit count.
  EXPECT_EQ(stats.epoch, stats.update_batches);
}

// Every shard publishes its own serve.shard<N>.* metric series; the
// sharded sums must reconcile with the global serve.* counters, and the
// per-op admission-wait histogram must have recorded every read.
TEST(ServeShardStress, PerShardMetricsReconcileWithGlobals) {
  constexpr int kShards = 4;
  constexpr int kLookups = 4000;

  auto data = BootstrapDataset();
  Status status;
  auto server_ptr =
      serve::Server<Key64>::Create(ShardedOptions(kShards), data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::mt19937_64 rng(11);
  std::vector<std::future<serve::ReadResult<Key64>>> lookups;
  lookups.reserve(kLookups);
  for (int i = 0; i < kLookups; ++i) {
    lookups.push_back(server.SubmitLookup(2 * (1 + rng() % kBootstrap)));
  }
  for (auto& f : lookups) ASSERT_TRUE(f.get().status.ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        server.SubmitUpdate(Insert(2 * i + 1, DynamicValue(2 * i + 1)))
            .get()
            .status.ok());
  }
  server.Shutdown();

  const obs::MetricsSnapshot snapshot = server.metrics().Collect();
  std::uint64_t shard_buckets = 0;
  std::uint64_t shard_batches = 0;
  for (int i = 0; i < kShards; ++i) {
    const std::string buckets =
        obs::MetricsRegistry::ShardedName("serve", i, "read_buckets");
    const std::string batches =
        obs::MetricsRegistry::ShardedName("serve", i, "update_batches");
    // With lookups spread uniformly over the key space, every shard
    // must have dispatched something.
    EXPECT_GT(snapshot.counter_or(buckets), 0u) << buckets;
    shard_buckets += snapshot.counter_or(buckets);
    shard_batches += snapshot.counter_or(batches);
    // The per-shard queue-wait series exists (histograms are keyed by
    // the same naming scheme).
    const std::string wait =
        obs::MetricsRegistry::ShardedName("serve", i, "queue_wait");
    bool found = false;
    for (const auto& [name, summary] : snapshot.histograms) {
      if (name == wait) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << wait;
  }
  EXPECT_EQ(shard_buckets, snapshot.counter_or("serve.read_buckets"));
  EXPECT_EQ(shard_batches, snapshot.counter_or("serve.committed_batches"));

  // The global admission-wait histogram saw every op exactly once
  // (reads and updates both record their wait at dispatch).
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.queue_wait.count,
            stats.lookups + stats.ranges + stats.updates);
  EXPECT_LE(stats.queue_wait.p50_us, stats.queue_wait.p99_us);
  // Modelled capacity is populated once buckets have dispatched.
  EXPECT_GT(stats.modelled_makespan_us, 0.0);
  EXPECT_GT(stats.modelled_ops_per_second, 0.0);
}

// Topologies the device or key space cannot back must fail at Create()
// with a typed, actionable status — not limp into degenerate serving.
TEST(ServeShardStress, RejectsUnbackedTopologies) {
  auto data = BootstrapDataset();

  {
    serve::ServerOptions options = ShardedOptions();
    options.num_shards = 0;
    Status status;
    EXPECT_EQ(serve::Server<Key64>::Create(options, data, &status), nullptr);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    serve::ServerOptions options = ShardedOptions();
    options.num_read_workers = 0;
    Status status;
    EXPECT_EQ(serve::Server<Key64>::Create(options, data, &status), nullptr);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    // More shards than bootstrap keys: no valid range partition exists.
    std::vector<KeyValue<Key64>> tiny(data.begin(), data.begin() + 8);
    serve::ServerOptions options = ShardedOptions(/*shards=*/16);
    Status status;
    EXPECT_EQ(serve::Server<Key64>::Create(options, tiny, &status), nullptr);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("num_shards"), std::string::npos);
  }
  {
    // The I-segment mirror fits, but the per-worker bucket buffers do
    // not: 4 workers x 1M-key buckets need far more than the shrunken
    // arena. The message must name the read workers so the operator
    // knows which knob to turn.
    serve::ServerOptions options = ShardedOptions(/*shards=*/1,
                                                 /*read_workers=*/4);
    options.pipeline.bucket_size = 1 << 20;
    options.platform.gpu.memory_bytes = 8ull << 20;
    Status status;
    EXPECT_EQ(serve::Server<Key64>::Create(options, data, &status), nullptr);
    EXPECT_EQ(status.code(), StatusCode::kDeviceOom);
    EXPECT_NE(status.message().find("read worker"), std::string::npos);
  }
}

// The background reporter collects CollectWindow() on its interval and
// hands each windowed snapshot to the configured sink; Shutdown() stops
// it promptly.
TEST(ServeShardStress, MetricsReporterDeliversWindowedSnapshots) {
  auto data = BootstrapDataset();
  serve::ServerOptions options = ShardedOptions(/*shards=*/2);
  options.metrics_report_interval = std::chrono::milliseconds(5);

  // The sink runs on the reporter thread; everything it touches is
  // atomic.
  std::atomic<int> windows{0};
  std::atomic<bool> all_windowed{true};
  std::atomic<std::uint64_t> lookups_seen{0};
  options.metrics_report_sink = [&](const obs::MetricsSnapshot& window) {
    if (!window.windowed) all_windowed.store(false);
    lookups_seen.fetch_add(window.counter_or("serve.lookups"));
    windows.fetch_add(1);
  };

  Status status;
  auto server_ptr = serve::Server<Key64>::Create(options, data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  // Keep traffic flowing until at least two windows have been reported
  // (bounded by a generous deadline so a loaded CI host cannot hang).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t submitted = 0;
  while (windows.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(
        server.SubmitLookup(2 * (1 + submitted++ % kBootstrap)).get()
            .status.ok());
  }
  EXPECT_GE(windows.load(), 2);
  EXPECT_TRUE(all_windowed.load());

  server.Shutdown();
  const int after_shutdown = windows.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(windows.load(), after_shutdown) << "reporter survived Shutdown()";
  // Windows are deltas: summed, they cover every lookup the run served
  // up to the last collection (never more than were submitted).
  EXPECT_LE(lookups_seen.load(), submitted);
}

// Tail exemplars across a concurrent sharded run: with a live trace
// session, every shard's read workers offer their slow dispatches to the
// shared serve.read_latency reservoir. After the run the reservoir must
// be bounded, stamped with this session's trace id, carry resolvable
// span ids, and name real shards. This TU compiles with
// HBTREE_OBS_TRACING=1 (see CMakeLists), so under TSan this is the
// exemplar path's concurrency test.
TEST(ServeShardStress, ExemplarsReconcileAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kClients = 4;
  constexpr int kLookupsPerClient = 1500;

  obs::TraceSession::Start();
  auto data = BootstrapDataset();
  Status status;
  auto server_ptr =
      serve::Server<Key64>::Create(ShardedOptions(kShards), data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(200 + c);
      std::vector<std::future<serve::ReadResult<Key64>>> window;
      for (int i = 0; i < kLookupsPerClient; ++i) {
        window.push_back(server.SubmitLookup(2 * (1 + rng() % kBootstrap)));
        if (window.size() == 256) {
          for (auto& f : window) ASSERT_TRUE(f.get().status.ok());
          window.clear();
        }
      }
      for (auto& f : window) ASSERT_TRUE(f.get().status.ok());
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();
  obs::TraceSession::Stop();

  const obs::MetricsSnapshot snapshot = server.metrics().Collect();
  const obs::LatencySummary* read_latency = nullptr;
  for (const auto& [name, summary] : snapshot.histograms) {
    if (name == "serve.read_latency") read_latency = &summary;
  }
  ASSERT_NE(read_latency, nullptr);
  ASSERT_FALSE(read_latency->exemplars.empty())
      << "no exemplar captured despite live tracing";
  ASSERT_LE(read_latency->exemplars.size(),
            static_cast<std::size_t>(obs::LatencyHistogram::kMaxExemplars));
  for (const obs::BucketExemplar& be : read_latency->exemplars) {
    EXPECT_EQ(be.exemplar.trace_id, obs::TraceSession::trace_id());
    EXPECT_NE(be.exemplar.span_id, 0u);
    EXPECT_GE(be.exemplar.shard, 0);
    EXPECT_LT(be.exemplar.shard, kShards);
    EXPECT_GT(be.exemplar.wall_ns, 0u);
    EXPECT_LE(be.exemplar.wall_ns / 1e3, read_latency->max_us + 1e-9);
    // The span id resolves to a recorded dispatch span.
    bool resolved = false;
    for (const obs::TraceEvent& e : obs::TraceSession::Snapshot()) {
      if (e.span_id == be.exemplar.span_id) resolved = true;
    }
    EXPECT_TRUE(resolved) << "span " << be.exemplar.span_id;
  }
  obs::TraceSession::Clear();
}

// Shutdown() flushes one final CollectWindow() to the sink even when the
// reporter interval never elapsed, so short-lived servers still deliver
// their last (only) window — the SLO tracker and any exporter see the
// whole run.
TEST(ServeShardStress, ShutdownFlushesTheFinalMetricsWindow) {
  constexpr int kLookups = 600;

  auto data = BootstrapDataset();
  serve::ServerOptions options = ShardedOptions(/*shards=*/2);
  // An interval far beyond the test's lifetime: every op lands in the
  // final flush, none in a periodic tick.
  options.metrics_report_interval = std::chrono::seconds(3600);
  std::atomic<int> windows{0};
  std::atomic<std::uint64_t> lookups_seen{0};
  options.metrics_report_sink = [&](const obs::MetricsSnapshot& window) {
    windows.fetch_add(1);
    lookups_seen.fetch_add(window.counter_or("serve.lookups"));
  };

  Status status;
  auto server_ptr = serve::Server<Key64>::Create(options, data, &status);
  ASSERT_NE(server_ptr, nullptr) << status.message();
  serve::Server<Key64>& server = *server_ptr;

  for (int i = 0; i < kLookups; ++i) {
    ASSERT_TRUE(
        server.SubmitLookup(2 * (1 + i % kBootstrap)).get().status.ok());
  }
  EXPECT_EQ(windows.load(), 0) << "interval should never have elapsed";
  server.Shutdown();
  EXPECT_EQ(windows.load(), 1) << "Shutdown() must flush the final window";
  EXPECT_EQ(lookups_seen.load(), static_cast<std::uint64_t>(kLookups));

  // The flushed window fed the SLO tracker: every configured objective
  // reports exactly one observed window.
  const serve::ServeStats stats = server.Stats();
  ASSERT_FALSE(stats.slos.empty());
  for (const obs::SloStatus& slo : stats.slos) {
    EXPECT_EQ(slo.windows, 1u) << slo.name;
    EXPECT_FALSE(slo.burning) << slo.name;
  }
}

}  // namespace
}  // namespace hbtree
