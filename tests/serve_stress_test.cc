// Concurrency stress tests for the serving layer (src/serve/). Several
// client threads hammer a Server with point lookups and range queries
// while an update stream commits batches through the epoch-swapped
// snapshot pair; the assertions check that every observed read is
// consistent with *some* linearization of the committed batches. The
// test is written to run cleanly under ThreadSanitizer (see the tsan
// CMake preset): all cross-thread bookkeeping goes through atomics and
// futures, never plain shared variables.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "serve/server.h"

namespace hbtree {
namespace {

// Stable region: keys 1..kStable, never touched by updates, with a
// deterministic value tag. Dynamic region: far above, so stable-region
// range scans can never pick up in-flight keys.
constexpr std::uint64_t kStable = 16 * 1024;
constexpr std::uint64_t kDynBase = 1ull << 40;

Key64 StableValue(std::uint64_t key) { return key * 3 + 1; }
Key64 DynamicValue(std::uint64_t key) { return key + 7; }

std::vector<KeyValue<Key64>> StableDataset() {
  std::vector<KeyValue<Key64>> data;
  data.reserve(kStable);
  for (std::uint64_t k = 1; k <= kStable; ++k) {
    data.push_back(KeyValue<Key64>{k, StableValue(k)});
  }
  return data;
}

serve::ServerOptions StressOptions() {
  serve::ServerOptions options;
  // Small buckets/batches so many epochs swap during the test; the CPU
  // rate fields only drive the simulated cost model, so fixed values
  // keep the test fast and deterministic across hosts.
  options.pipeline.bucket_size = 1024;
  options.pipeline.cpu_queries_per_us = 20.0;
  options.pipeline.cpu_descend_us_per_level = 0.01;
  options.update_batch_size = 1024;
  return options;
}

UpdateQuery<Key64> Insert(std::uint64_t key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kInsert,
                            KeyValue<Key64>{key, DynamicValue(key)}};
}

UpdateQuery<Key64> Delete(std::uint64_t key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kDelete,
                            KeyValue<Key64>{key, 0}};
}

// An updater inserts consecutive key blocks; lookup threads race it and
// check each observation against the block's known lifecycle state:
//   * block fully committed before the lookup was submitted -> must hit,
//   * block not yet submitted when the result arrived      -> must miss,
//   * otherwise the insert is in flight and either outcome is legal,
//     but a hit must carry the inserted value.
TEST(ServeStress, InsertOnlyLinearization) {
  constexpr std::uint64_t kBlock = 1024;
  constexpr int kBlocks = 8;
  constexpr int kClients = 4;
  constexpr int kItersPerClient = 2000;

  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(StressOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  std::atomic<int> blocks_submitted{0};
  std::atomic<int> blocks_committed{0};

  std::thread updater([&] {
    for (int b = 0; b < kBlocks; ++b) {
      // Raised *before* the first push: a partial batch may commit (and
      // become visible to readers) at any point after that, so the
      // "never submitted" classification below stays sound.
      blocks_submitted.store(b + 1, std::memory_order_release);
      std::vector<std::future<serve::UpdateResult>> pending;
      pending.reserve(kBlock);
      for (std::uint64_t j = 0; j < kBlock; ++j) {
        pending.push_back(
            server.SubmitUpdate(Insert(kDynBase + b * kBlock + j)));
      }
      for (auto& f : pending) ASSERT_TRUE(f.get().status.ok());
      blocks_committed.store(b + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(1000 + c);
      for (int i = 0; i < kItersPerClient; ++i) {
        if (rng() % 2 == 0) {
          // Stable keys are invariant under the update stream.
          const std::uint64_t key = 1 + rng() % kStable;
          auto result = server.SubmitLookup(key).get().lookup;
          ASSERT_TRUE(result.found) << "stable key " << key;
          ASSERT_EQ(result.value, StableValue(key));
        } else {
          const int block = static_cast<int>(rng() % kBlocks);
          const std::uint64_t key =
              kDynBase + static_cast<std::uint64_t>(block) * kBlock +
              rng() % kBlock;
          const int committed_before =
              blocks_committed.load(std::memory_order_acquire);
          auto result = server.SubmitLookup(key).get().lookup;
          const int submitted_after =
              blocks_submitted.load(std::memory_order_acquire);
          if (block < committed_before) {
            ASSERT_TRUE(result.found)
                << "key " << key << " of block " << block
                << " was committed before the lookup was submitted";
            ASSERT_EQ(result.value, DynamicValue(key));
          } else if (block >= submitted_after) {
            ASSERT_FALSE(result.found)
                << "key " << key << " of block " << block
                << " was observed before any of its inserts were submitted";
          } else if (result.found) {
            // In flight: visibility is racy, the value is not.
            ASSERT_EQ(result.value, DynamicValue(key));
          }
        }
      }
    });
  }

  updater.join();
  for (auto& t : clients) t.join();

  // Drain and join the workers so the op counters are final: the worker
  // loops fulfil promises *before* bumping the counters, so stats read
  // right after the last .get() could lag by a few operations.
  server.Shutdown();
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kClients) * kItersPerClient);
  EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kBlocks) * kBlock);
  EXPECT_GE(stats.update_batches, static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(stats.epoch, stats.update_batches);
  EXPECT_GT(stats.read_buckets, 0u);
  EXPECT_EQ(stats.read_latency.count, stats.lookups + stats.ranges);
  EXPECT_LE(stats.read_latency.p50_us, stats.read_latency.p99_us);
  EXPECT_LE(stats.read_latency.p99_us, stats.read_latency.max_us);
  EXPECT_LE(stats.update_latency.p50_us, stats.update_latency.p99_us);
}

// Inserts and deletes churn the dynamic region while readers verify the
// stable region stays exact — point lookups, never-present probes, and
// range scans compared against the reference dataset — and that any
// dynamic hit carries the inserted value.
TEST(ServeStress, MixedChurnKeepsStableRegionExact) {
  constexpr std::uint64_t kChurn = 4 * 1024;
  constexpr int kRounds = 4;
  constexpr int kClients = 3;
  constexpr int kItersPerClient = 1500;
  constexpr int kRangeLen = 8;

  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(StressOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  std::atomic<bool> churn_done{false};
  std::thread updater([&] {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::future<serve::UpdateResult>> pending;
      for (std::uint64_t j = 0; j < kChurn; ++j) {
        pending.push_back(server.SubmitUpdate(Insert(kDynBase + j)));
      }
      for (auto& f : pending) ASSERT_TRUE(f.get().status.ok());
      pending.clear();
      for (std::uint64_t j = 0; j < kChurn; ++j) {
        pending.push_back(server.SubmitUpdate(Delete(kDynBase + j)));
      }
      for (auto& f : pending) ASSERT_TRUE(f.get().status.ok());
    }
    churn_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(2000 + c);
      for (int i = 0; i < kItersPerClient; ++i) {
        switch (rng() % 4) {
          case 0: {
            const std::uint64_t key = 1 + rng() % kStable;
            auto result = server.SubmitLookup(key).get().lookup;
            ASSERT_TRUE(result.found);
            ASSERT_EQ(result.value, StableValue(key));
            break;
          }
          case 1: {
            // The gap between the stable and dynamic regions is never
            // populated by anyone.
            const std::uint64_t key = kStable + 1 + rng() % kStable;
            ASSERT_FALSE(server.SubmitLookup(key).get().lookup.found);
            break;
          }
          case 2: {
            // A stable-region range scan must match the reference
            // exactly: the dynamic keys sit far above, so churn cannot
            // leak into the first kRangeLen matches.
            const std::uint64_t first =
                1 + rng() % (kStable - kRangeLen);
            auto range = server.SubmitRange(first, kRangeLen).get().range;
            ASSERT_EQ(range.size(), static_cast<std::size_t>(kRangeLen));
            for (int j = 0; j < kRangeLen; ++j) {
              ASSERT_EQ(range[j].key, first + j);
              ASSERT_EQ(range[j].value, StableValue(first + j));
            }
            break;
          }
          default: {
            const std::uint64_t key = kDynBase + rng() % kChurn;
            auto result = server.SubmitLookup(key).get().lookup;
            if (result.found) {
              ASSERT_EQ(result.value, DynamicValue(key));
            }
            break;
          }
        }
      }
    });
  }

  updater.join();
  for (auto& t : clients) t.join();
  EXPECT_TRUE(churn_done.load(std::memory_order_acquire));

  // After the last round's deletes committed, the dynamic region is
  // empty again on both snapshot instances.
  for (std::uint64_t j = 0; j < kChurn; j += 257) {
    EXPECT_FALSE(server.Lookup(kDynBase + j).found);
  }

  server.Shutdown();
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.lookups + stats.ranges,
            static_cast<std::uint64_t>(kClients) * kItersPerClient +
                (kChurn + 256) / 257);
  EXPECT_EQ(stats.updates,
            static_cast<std::uint64_t>(kRounds) * 2 * kChurn);
  EXPECT_EQ(stats.epoch, stats.update_batches);
}

// A submission racing Shutdown() must be rejected through its future
// with a typed status, not crash the process (regression test for the
// CHECK-on-closed-queue behavior the serving layer used to have).
TEST(ServeStress, SubmitAfterShutdownRejectsViaFuture) {
  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(StressOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;
  ASSERT_TRUE(server.Lookup(1).found);

  server.Shutdown();
  auto read = server.SubmitLookup(1).get();
  EXPECT_EQ(read.status.code(), StatusCode::kUnavailable);
  auto update = server.SubmitUpdate(Insert(kDynBase)).get();
  EXPECT_EQ(update.status.code(), StatusCode::kUnavailable);
}

// A malformed range request resolves through its future instead of
// crashing the serving process.
TEST(ServeStress, InvalidRangeRejectsViaFuture) {
  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(StressOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  auto result = server_ptr->SubmitRange(1, 0).get();
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(result.range.empty());
}

// Invalid options surface through the factory, not an abort.
TEST(ServeStress, CreateRejectsInvalidOptions) {
  auto data = StableDataset();
  serve::ServerOptions options = StressOptions();
  options.pipeline.bucket_size = 0;
  Status status;
  auto server = serve::Server<Key64>::Create(options, data, &status);
  EXPECT_EQ(server, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// Read-your-writes: once an update's future resolved, a subsequently
// submitted lookup must observe it — the epoch swap publishes the batch
// to new read buckets before the update futures fire. Several writer
// threads each own a disjoint key lane and verify their own writes while
// the others churn.
// The adaptive controller must halve the effective bucket M under
// sustained half-empty fill windows and restore it under sustained full
// ones (ServerOptions::adaptive_bucket); both decision counters surface
// in ServeStats.
TEST(ServeStress, AdaptiveBucketShrinksAndRecovers) {
  serve::ServerOptions options = StressOptions();
  options.pipeline.bucket_size = 4096;
  options.min_sub_bucket = 64;
  options.adapt_min_bucket = 64;
  options.adapt_shrink_after = 2;
  options.adapt_grow_after = 2;
  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(options, data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  // Trickle: each lookup is waited on, so every fill window ships with
  // a single op — far below M/2 — and votes shrink.
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto r = server.SubmitLookup(1 + (i % kStable)).get();
    ASSERT_TRUE(r.status.ok());
  }
  const serve::ServeStats mid = server.Stats();
  EXPECT_GT(mid.bucket_shrinks, 0u);
  EXPECT_EQ(mid.bucket_grows, 0u);

  // Flood: a deep closed-loop backlog keeps the queue fuller than the
  // (now shrunken) effective M, so windows ship full and M grows back.
  std::vector<std::future<serve::ReadResult<Key64>>> pending;
  pending.reserve(64 * 1024);
  for (std::uint64_t i = 0; i < 64 * 1024; ++i) {
    pending.push_back(server.SubmitLookup(1 + (i % kStable)));
  }
  for (auto& f : pending) ASSERT_TRUE(f.get().status.ok());
  const serve::ServeStats end = server.Stats();
  EXPECT_GT(end.bucket_grows, 0u);
}

TEST(ServeStress, ReadYourWrites) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 300;

  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(StressOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::uint64_t lane = kDynBase + (1ull << 20) * w;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::uint64_t key = lane + i;
        auto committed = server.SubmitUpdate(Insert(key)).get();
        ASSERT_TRUE(committed.status.ok());
        auto after_insert = server.SubmitLookup(key).get().lookup;
        ASSERT_TRUE(after_insert.found)
            << "own insert of " << key << " not visible after commit";
        ASSERT_EQ(after_insert.value, DynamicValue(key));
        if (i % 2 == 0) {
          auto deleted = server.SubmitUpdate(Delete(key)).get();
          ASSERT_TRUE(deleted.status.ok());
          ASSERT_FALSE(server.SubmitLookup(key).get().lookup.found)
              << "own delete of " << key << " not visible after commit";
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  server.Shutdown();
  serve::ServeStats stats = server.Stats();
  EXPECT_EQ(stats.shed_reads, 0u);
  EXPECT_EQ(stats.shed_updates, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);
}

}  // namespace
}  // namespace hbtree
