#include "hybrid/range_pipeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/workload.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

struct Fixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

template <typename K>
class RangePipelineTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(RangePipelineTypedTest, KeyTypes);

TYPED_TEST(RangePipelineTypedTest, ImplicitMatchesHostRangeScan) {
  using K = TypeParam;
  Fixture fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(60000, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));

  constexpr int kMatches = 16;
  auto rq = MakeRangeQueries(data, 5000, kMatches, /*seed=*/2);
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10;
  std::vector<KeyValue<K>> pairs;
  std::vector<int> counts;
  PipelineStats stats = RunRangePipeline(tree, rq.data(), rq.size(),
                                         kMatches, pconfig, &pairs, &counts);
  EXPECT_EQ(stats.queries, rq.size());
  KeyValue<K> expect[kMatches];
  for (std::size_t i = 0; i < rq.size(); ++i) {
    int expect_count = tree.host_tree().RangeScan(rq[i].first_key, kMatches,
                                                  expect);
    ASSERT_EQ(counts[i], expect_count) << i;
    for (int j = 0; j < expect_count; ++j) {
      ASSERT_EQ(pairs[i * kMatches + j], expect[j]) << i << "," << j;
    }
  }
}

TYPED_TEST(RangePipelineTypedTest, RegularMatchesHostRangeScan) {
  using K = TypeParam;
  Fixture fx;
  typename HBRegularTree<K>::Config config;
  config.tree.leaf_fill = 0.8;
  HBRegularTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<K>(60000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));

  constexpr int kMatches = 8;
  auto rq = MakeRangeQueries(data, 4000, kMatches, /*seed=*/4);
  PipelineConfig pconfig;
  pconfig.bucket_size = 512;
  pconfig.cpu_queries_per_us = 10;
  std::vector<KeyValue<K>> pairs;
  std::vector<int> counts;
  RunRangePipeline(tree, rq.data(), rq.size(), kMatches, pconfig, &pairs,
                   &counts);
  KeyValue<K> expect[kMatches];
  for (std::size_t i = 0; i < rq.size(); ++i) {
    int expect_count = tree.host_tree().RangeScan(rq[i].first_key, kMatches,
                                                  expect);
    ASSERT_EQ(counts[i], expect_count) << i;
    for (int j = 0; j < expect_count; ++j) {
      ASSERT_EQ(pairs[i * kMatches + j], expect[j]);
    }
  }
}

TEST(RangePipeline, StartKeysAboveMaximumYieldZeroMatches) {
  Fixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(10000, /*seed=*/5);
  ASSERT_TRUE(tree.Build(data));
  std::vector<RangeQuery<Key64>> rq(256,
                                    {KeyTraits<Key64>::kMax - 1, 4});
  PipelineConfig pconfig;
  pconfig.bucket_size = 128;
  pconfig.cpu_queries_per_us = 10;
  std::vector<KeyValue<Key64>> pairs;
  std::vector<int> counts;
  RunRangePipeline(tree, rq.data(), rq.size(), 4, pconfig, &pairs, &counts);
  for (int count : counts) EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace hbtree
