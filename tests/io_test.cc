#include "io/tree_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "core/workload.h"

namespace hbtree {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

template <typename K>
class TreeIoTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(TreeIoTypedTest, KeyTypes);

TYPED_TEST(TreeIoTypedTest, RoundTripPreservesEveryLookup) {
  using K = TypeParam;
  const std::string path = TempPath("roundtrip.hbt");
  PageRegistry registry;
  typename ImplicitBTree<K>::Config config;
  config.hybrid_layout = true;
  ImplicitBTree<K> original(config, &registry);
  auto data = GenerateDataset<K>(50000, /*seed=*/1);
  original.Build(data);
  ASSERT_TRUE(SaveTreeFile(original, path).ok());

  PageRegistry registry2;
  ImplicitBTree<K> loaded(config, &registry2);
  Status status = LoadTreeFile(&loaded, path);
  ASSERT_TRUE(status.ok()) << status.message();

  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.height(), original.height());
  loaded.Validate();
  for (std::size_t i = 0; i < data.size(); i += 7) {
    auto result = loaded.Search(data[i].key);
    ASSERT_TRUE(result.found) << i;
    EXPECT_EQ(result.value, data[i].value);
  }
  EXPECT_FALSE(loaded.Search(KeyTraits<K>::kMax - 1).found);
  std::remove(path.c_str());
}

TEST(TreeIo, CorruptionIsDetected) {
  const std::string path = TempPath("corrupt.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  tree.Build(GenerateDataset<Key64>(5000, 2));
  ASSERT_TRUE(SaveTreeFile(tree, path).ok());

  // Flip one byte in the middle of the body.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(1000);
    char byte;
    file.seekg(1000);
    file.get(byte);
    file.seekp(1000);
    file.put(static_cast<char>(byte ^ 0x40));
  }
  ImplicitBTree<Key64> loaded(config, &registry);
  Status status = LoadTreeFile(&loaded, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TreeIo, KeyWidthMismatchRejected) {
  const std::string path = TempPath("width.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config64;
  ImplicitBTree<Key64> tree64(config64, &registry);
  tree64.Build(GenerateDataset<Key64>(1000, 3));
  ASSERT_TRUE(SaveTreeFile(tree64, path).ok());

  ImplicitBTree<Key32>::Config config32;
  ImplicitBTree<Key32> tree32(config32, &registry);
  Status status = LoadTreeFile(&tree32, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("key width"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TreeIo, LayoutMismatchRejected) {
  const std::string path = TempPath("layout.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config cpu_config;  // fanout 9
  ImplicitBTree<Key64> cpu_tree(cpu_config, &registry);
  cpu_tree.Build(GenerateDataset<Key64>(1000, 4));
  ASSERT_TRUE(SaveTreeFile(cpu_tree, path).ok());

  ImplicitBTree<Key64>::Config hb_config;
  hb_config.hybrid_layout = true;  // fanout 8
  ImplicitBTree<Key64> hb_tree(hb_config, &registry);
  Status status = LoadTreeFile(&hb_tree, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("layout"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TreeIo, TruncatedFileRejected) {
  const std::string path = TempPath("trunc.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  tree.Build(GenerateDataset<Key64>(5000, 5));
  ASSERT_TRUE(SaveTreeFile(tree, path).ok());
  // Truncate the file to half its size.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    auto half = static_cast<std::size_t>(in.tellg()) / 2;
    std::vector<char> head(half);
    in.seekg(0);
    in.read(head.data(), static_cast<std::streamsize>(half));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(head.data(), static_cast<std::streamsize>(half));
  }
  ImplicitBTree<Key64> loaded(config, &registry);
  EXPECT_FALSE(LoadTreeFile(&loaded, path).ok());
  std::remove(path.c_str());
}

TEST(TreeIo, MissingFileRejected) {
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  EXPECT_FALSE(LoadTreeFile(&tree, "/nonexistent/path.hbt").ok());
}

TEST(TreeIo, NotAnIndexFileRejected) {
  const std::string path = TempPath("garbage.hbt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is definitely not a serialized index file, promise";
  }
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  Status status = LoadTreeFile(&tree, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TYPED_TEST(TreeIoTypedTest, EmptyTreeRoundTrip) {
  using K = TypeParam;
  const std::string path = TempPath("empty.hbt");
  PageRegistry registry;
  typename ImplicitBTree<K>::Config config;
  ImplicitBTree<K> original(config, &registry);
  original.Build({});
  EXPECT_EQ(original.size(), 0u);
  EXPECT_EQ(original.height(), 0);
  EXPECT_FALSE(original.Search(K{7}).found);
  ASSERT_TRUE(SaveTreeFile(original, path).ok());

  PageRegistry registry2;
  ImplicitBTree<K> loaded(config, &registry2);
  // Pre-populate so the load provably replaces the contents.
  loaded.Build(GenerateDataset<K>(100, /*seed=*/11));
  Status status = LoadTreeFile(&loaded, path);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.height(), 0);
  EXPECT_FALSE(loaded.Search(K{7}).found);
  EXPECT_FALSE(loaded.Search(K{0}).found);
  KeyValue<K> out[4];
  EXPECT_EQ(loaded.RangeScan(K{0}, 4, out), 0);
  std::remove(path.c_str());
}

TYPED_TEST(TreeIoTypedTest, SingleKeyRoundTrip) {
  using K = TypeParam;
  const std::string path = TempPath("single.hbt");
  PageRegistry registry;
  typename ImplicitBTree<K>::Config config;
  ImplicitBTree<K> original(config, &registry);
  original.Build({KeyValue<K>{K{42}, K{1042}}});
  ASSERT_TRUE(SaveTreeFile(original, path).ok());

  PageRegistry registry2;
  ImplicitBTree<K> loaded(config, &registry2);
  Status status = LoadTreeFile(&loaded, path);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(loaded.size(), 1u);
  loaded.Validate();
  auto hit = loaded.Search(K{42});
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.value, K{1042});
  EXPECT_FALSE(loaded.Search(K{41}).found);
  EXPECT_FALSE(loaded.Search(K{43}).found);
  std::remove(path.c_str());
}

TEST(TreeIo, ExactlyOnePageISegmentRoundTrip) {
  // 1920 Key64 pairs at fanout 9 give 480 leaf lines -> inner levels of
  // 54, 6, and 1 nodes, padded to 54 + 9 + 1 = 64 allocated nodes: the
  // I-segment fills one 4K page exactly, exercising the boundary where
  // the segment size is a whole number of pages with no tail.
  const std::string path = TempPath("onepage.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  config.inner_page = PageSize::k4K;
  config.leaf_page = PageSize::k4K;
  ImplicitBTree<Key64> original(config, &registry);
  auto data = GenerateDataset<Key64>(1920, /*seed=*/6);
  original.Build(data);
  ASSERT_EQ(original.i_segment_bytes(), 4096u);
  ASSERT_TRUE(SaveTreeFile(original, path).ok());

  PageRegistry registry2;
  ImplicitBTree<Key64> loaded(config, &registry2);
  Status status = LoadTreeFile(&loaded, path);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(loaded.i_segment_bytes(), 4096u);
  loaded.Validate();
  for (const auto& kv : data) {
    auto result = loaded.Search(kv.key);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.value, kv.value);
  }
  std::remove(path.c_str());
}

TEST(TreeIo, CorruptedHeaderRejected) {
  const std::string path = TempPath("badheader.hbt");
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  tree.Build(GenerateDataset<Key64>(5000, 7));
  ASSERT_TRUE(SaveTreeFile(tree, path).ok());
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }

  // One flipped byte in each header field must yield a clean error. The
  // offsets cover: magic, version, key width, layout flag, pair count,
  // and — critically — the *high* bytes of the segment lengths, which
  // must be caught by the file-size check before any allocation is
  // attempted (a 2^56-byte vector resize would take the process down).
  const std::size_t offsets[] = {0, 4, 8, 12, 16, 24, 31, 32, 39};
  for (std::size_t offset : offsets) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(),
                static_cast<std::streamsize>(pristine.size()));
    }
    {
      std::fstream file(path,
                        std::ios::in | std::ios::out | std::ios::binary);
      file.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      file.get(byte);
      file.seekp(static_cast<std::streamoff>(offset));
      file.put(static_cast<char>(byte ^ 0x80));
    }
    ImplicitBTree<Key64> loaded(config, &registry);
    Status status = LoadTreeFile(&loaded, path);
    EXPECT_FALSE(status.ok()) << "flipped byte at offset " << offset;
  }
  std::remove(path.c_str());
}

TEST(Crc32c, KnownVector) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, SeedChaining) {
  const char data[] = "abcdefgh";
  std::uint32_t whole = Crc32c(data, 8);
  std::uint32_t chained = Crc32c(data + 4, 4, Crc32c(data, 4));
  EXPECT_EQ(whole, chained);
}

}  // namespace
}  // namespace hbtree
