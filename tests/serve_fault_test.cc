// Fault-tolerance acceptance tests for the serving layer: with double-
// digit injected device fault rates a mixed lookup/update workload must
// complete with zero aborts, every future resolved (success or typed
// error), results differentially checked against a std::map reference,
// and the circuit breaker observed both opening (CPU-only buckets
// served) and closing (GPU path restored). Also covers deterministic
// breaker cycling on a scheduled fault, retry accounting, and
// deadline-based load shedding.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <random>
#include <vector>

#include "core/workload.h"
#include "fault/fault_injector.h"
#include "serve/server.h"

namespace hbtree {
namespace {

constexpr std::uint64_t kStable = 8 * 1024;
constexpr std::uint64_t kDynBase = 1ull << 40;
constexpr std::uint64_t kDynSpan = 4096;

Key64 StableValue(std::uint64_t key) { return key * 3 + 1; }
Key64 DynamicValue(std::uint64_t key) { return key + 7; }

std::vector<KeyValue<Key64>> StableDataset() {
  std::vector<KeyValue<Key64>> data;
  data.reserve(kStable);
  for (std::uint64_t k = 1; k <= kStable; ++k) {
    data.push_back(KeyValue<Key64>{k, StableValue(k)});
  }
  return data;
}

UpdateQuery<Key64> Insert(std::uint64_t key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kInsert,
                            KeyValue<Key64>{key, DynamicValue(key)}};
}

UpdateQuery<Key64> Delete(std::uint64_t key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kDelete,
                            KeyValue<Key64>{key, 0}};
}

serve::ServerOptions FaultOptions() {
  serve::ServerOptions options;
  options.pipeline.bucket_size = 256;
  options.pipeline.cpu_queries_per_us = 20.0;
  options.pipeline.cpu_descend_us_per_level = 0.01;
  options.update_batch_size = 256;
  return options;
}

// The acceptance scenario: >=10% transfer fault rate plus kernel faults,
// no pipeline retries (every injected fault kills its bucket), a tight
// breaker. Rounds of concurrent lookups+updates run until the breaker
// has both opened and closed; each round ends with a quiescent
// differential sweep against the std::map reference.
TEST(ServeFault, FaultyDeviceServesExactResultsAndBreakerCycles) {
  auto data = StableDataset();
  serve::ServerOptions options = FaultOptions();
  options.fault = fault::FaultConfig::Transfers(0.15, 7);
  options.fault.site(fault::Site::kKernel).probability = 0.05;
  options.pipeline.max_device_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_probe_interval = 2;

  Status create_status;
  auto server_ptr =
      serve::Server<Key64>::Create(options, data, &create_status);
  ASSERT_NE(server_ptr, nullptr) << create_status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::map<std::uint64_t, std::uint64_t> reference;
  for (const auto& kv : data) reference[kv.key] = kv.value;

  std::mt19937_64 rng(11);
  bool opened = false;
  bool closed = false;
  constexpr int kMaxRounds = 120;
  int rounds = 0;
  for (; rounds < kMaxRounds; ++rounds) {
    // -- Concurrent phase: racy reads + an update batch in flight. Reads
    // can only be checked for invariants here (stable region exact, any
    // dynamic hit carries the inserted value) — the exact check follows
    // once the updates commit.
    std::vector<std::future<serve::ReadResult<Key64>>> reads;
    std::vector<std::uint64_t> read_keys;
    std::vector<std::future<serve::UpdateResult>> writes;
    std::vector<UpdateQuery<Key64>> submitted;
    for (int j = 0; j < 256; ++j) {
      const std::uint64_t key = kDynBase + rng() % kDynSpan;
      const UpdateQuery<Key64> update =
          rng() % 2 == 0 ? Insert(key) : Delete(key);
      submitted.push_back(update);
      writes.push_back(server.SubmitUpdate(update));
      if (j % 2 == 0) {
        const std::uint64_t probe = rng() % 2 == 0
                                        ? 1 + rng() % kStable
                                        : kDynBase + rng() % kDynSpan;
        read_keys.push_back(probe);
        reads.push_back(server.SubmitLookup(probe));
      }
    }
    for (auto& f : writes) {
      const serve::UpdateResult committed = f.get();
      ASSERT_TRUE(committed.status.ok()) << committed.status.message();
    }
    // Updates commit in submission order, so the reference replays them
    // in the same order.
    for (const auto& update : submitted) {
      if (update.kind == UpdateQuery<Key64>::Kind::kInsert) {
        reference[update.pair.key] = update.pair.value;
      } else {
        reference.erase(update.pair.key);
      }
    }
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const serve::ReadResult<Key64> result = reads[i].get();
      ASSERT_TRUE(result.status.ok()) << result.status.message();
      const std::uint64_t key = read_keys[i];
      if (key <= kStable) {
        ASSERT_TRUE(result.lookup.found) << "stable key " << key;
        ASSERT_EQ(result.lookup.value, StableValue(key));
      } else if (result.lookup.found) {
        ASSERT_EQ(result.lookup.value, DynamicValue(key));
      }
    }

    // -- Quiescent differential sweep: every committed update is visible
    // (read-your-writes), so served results must match the reference
    // exactly — through GPU, degraded-CPU, and probe paths alike.
    std::vector<std::future<serve::ReadResult<Key64>>> sweep;
    std::vector<std::uint64_t> sweep_keys;
    for (int j = 0; j < 384; ++j) {
      std::uint64_t key;
      switch (rng() % 3) {
        case 0:
          key = 1 + rng() % kStable;
          break;
        case 1:
          key = kStable + 1 + rng() % kStable;  // never-populated gap
          break;
        default:
          key = kDynBase + rng() % kDynSpan;
          break;
      }
      sweep_keys.push_back(key);
      sweep.push_back(server.SubmitLookup(key));
    }
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const serve::ReadResult<Key64> result = sweep[i].get();
      ASSERT_TRUE(result.status.ok()) << result.status.message();
      const auto it = reference.find(sweep_keys[i]);
      if (it == reference.end()) {
        ASSERT_FALSE(result.lookup.found) << "key " << sweep_keys[i];
      } else {
        ASSERT_TRUE(result.lookup.found) << "key " << sweep_keys[i];
        ASSERT_EQ(result.lookup.value, it->second);
      }
    }

    // A stable-region range scan stays exact under faults too (the scan
    // is host-side, but its bucket shares the pinned snapshot).
    const std::uint64_t first = 1 + rng() % (kStable - 16);
    auto range = server.SubmitRange(first, 8).get();
    ASSERT_TRUE(range.status.ok());
    ASSERT_EQ(range.range.size(), 8u);
    for (int j = 0; j < 8; ++j) {
      ASSERT_EQ(range.range[j].key, first + j);
      ASSERT_EQ(range.range[j].value, StableValue(first + j));
    }

    const serve::ServeStats stats = server.Stats();
    opened = stats.breaker_opens >= 1;
    closed = stats.breaker_closes >= 1;
    if (opened && closed && rounds >= 3) break;
  }

  ASSERT_TRUE(opened) << "breaker never opened in " << rounds << " rounds";
  ASSERT_TRUE(closed) << "breaker never closed in " << rounds << " rounds";

  server.Shutdown();
  const serve::ServeStats stats = server.Stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GE(stats.device_faults, 1u);
  EXPECT_GE(stats.cpu_fallback_buckets, 1u);
  EXPECT_GE(stats.cpu_fallback_lookups, 1u);
  EXPECT_GE(stats.probe_attempts, 1u);
  EXPECT_EQ(stats.shed_reads, 0u);   // no deadlines configured
  EXPECT_EQ(stats.shed_updates, 0u);
}

// A scheduled fault drives one full deterministic breaker cycle:
// bucket 1 fails its query upload (no retries, threshold 1) -> breaker
// opens and the bucket is re-served by the CPU; bucket 2 probes (interval
// 1), succeeds on the device, and closes the breaker. Both lookups
// return exact results throughout.
TEST(ServeFault, ScheduledFaultCyclesBreakerDeterministically) {
  auto data = StableDataset();
  serve::ServerOptions options = FaultOptions();
  options.fault.site(fault::Site::kTransferH2D).fail_ordinals = {1};
  options.pipeline.max_device_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_probe_interval = 1;

  auto server_ptr = serve::Server<Key64>::Create(options, data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  auto first = server.SubmitLookup(17).get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(first.lookup.found);
  EXPECT_EQ(first.lookup.value, StableValue(17));
  serve::ServeStats after_fault = server.Stats();
  EXPECT_EQ(after_fault.device_faults, 1u);
  EXPECT_EQ(after_fault.breaker_opens, 1u);
  EXPECT_EQ(after_fault.cpu_fallback_buckets, 1u);
  EXPECT_EQ(after_fault.breaker_closes, 0u);

  auto second = server.SubmitLookup(18).get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.lookup.found);
  EXPECT_EQ(second.lookup.value, StableValue(18));
  serve::ServeStats after_probe = server.Stats();
  EXPECT_EQ(after_probe.probe_attempts, 1u);
  EXPECT_EQ(after_probe.breaker_closes, 1u);
  EXPECT_EQ(after_probe.cpu_fallback_buckets, 1u);  // probe served on GPU
  EXPECT_EQ(after_probe.faults_injected, 1u);
}

// With retries enabled, transient faults are absorbed below the breaker:
// lookups stay exact, the retry counters account for the recovered
// faults, and (at this fault rate and budget) no bucket fails outright.
TEST(ServeFault, RetriesAbsorbTransientFaults) {
  auto data = StableDataset();
  serve::ServerOptions options = FaultOptions();
  options.fault = fault::FaultConfig::Transfers(0.2, 21);
  options.pipeline.max_device_retries = 4;

  auto server_ptr = serve::Server<Key64>::Create(options, data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  std::mt19937_64 rng(5);
  std::vector<std::future<serve::ReadResult<Key64>>> window;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = 1 + rng() % kStable;
    keys.push_back(key);
    window.push_back(server.SubmitLookup(key));
    if (window.size() == 256) {
      for (std::size_t j = 0; j < window.size(); ++j) {
        const auto result = window[j].get();
        ASSERT_TRUE(result.status.ok());
        ASSERT_TRUE(result.lookup.found);
        ASSERT_EQ(result.lookup.value,
                  StableValue(keys[keys.size() - window.size() + j]));
      }
      window.clear();
    }
  }
  for (auto& f : window) ASSERT_TRUE(f.get().status.ok());

  server.Shutdown();
  const serve::ServeStats stats = server.Stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.transfer_retries, 0u);
}

// Deadline-based load shedding: a request submitted with an already-
// expired budget resolves with kDeadlineExceeded — and a shed update is
// guaranteed NOT to have been applied.
TEST(ServeFault, ExpiredDeadlinesShedTyped) {
  auto data = StableDataset();
  auto server_ptr = serve::Server<Key64>::Create(FaultOptions(), data);
  ASSERT_NE(server_ptr, nullptr);
  serve::Server<Key64>& server = *server_ptr;

  const auto expired = std::chrono::microseconds(-1);
  auto read = server.SubmitLookup(17, expired).get();
  EXPECT_EQ(read.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(read.lookup.found);

  auto update = server.SubmitUpdate(Insert(kDynBase), expired).get();
  EXPECT_EQ(update.status.code(), StatusCode::kDeadlineExceeded);
  // The shed insert must not be visible.
  EXPECT_FALSE(server.SubmitLookup(kDynBase).get().lookup.found);

  // A generous deadline serves normally.
  auto served =
      server.SubmitLookup(17, std::chrono::microseconds(5'000'000)).get();
  ASSERT_TRUE(served.status.ok());
  EXPECT_TRUE(served.lookup.found);

  server.Shutdown();
  const serve::ServeStats stats = server.Stats();
  EXPECT_GE(stats.shed_reads, 1u);
  EXPECT_GE(stats.shed_updates, 1u);
  EXPECT_EQ(stats.faults_injected, 0u);
}

// Two-tenant QoS under sustained faults: with 15% injected transfer
// faults cycling the breaker, low-priority reads are shed in degraded
// mode (kUnavailable) while the high-priority tenant is never shed —
// i.e. every shed that happens is a low-priority shed, so low sheds
// strictly precede any high shed. Both tenants' served results stay
// differentially exact against the std::map reference.
TEST(ServeFault, DegradedModeShedsLowPriorityBeforeHigh) {
  auto data = StableDataset();
  serve::ServerOptions options = FaultOptions();
  options.fault = fault::FaultConfig::Transfers(0.15, 13);
  options.pipeline.max_device_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_probe_interval = 4;
  serve::TenantSpec high;
  high.name = "interactive";
  high.weight = 4;
  high.priority = serve::Priority::kHigh;
  serve::TenantSpec low;
  low.name = "besteffort";
  low.weight = 1;
  low.priority = serve::Priority::kLow;
  low.shed_on_full = true;
  options.tenants = {high, low};

  Status create_status;
  auto server_ptr =
      serve::Server<Key64>::Create(options, data, &create_status);
  ASSERT_NE(server_ptr, nullptr) << create_status.message();
  serve::Server<Key64>& server = *server_ptr;

  std::map<std::uint64_t, std::uint64_t> reference;
  for (const auto& kv : data) reference[kv.key] = kv.value;

  std::mt19937_64 rng(17);
  constexpr int kMaxRounds = 200;
  int rounds = 0;
  std::uint64_t low_served = 0, low_shed = 0;
  for (; rounds < kMaxRounds; ++rounds) {
    // Concurrent phase: both tenants read the never-mutated stable
    // region (served results must be exact regardless of racing
    // updates); the high tenant also commits updates in the dynamic
    // region to exercise the oracle through the tenant-tagged path.
    std::vector<std::future<serve::ReadResult<Key64>>> high_reads;
    std::vector<std::future<serve::ReadResult<Key64>>> low_reads;
    std::vector<std::uint64_t> high_keys, low_keys;
    std::vector<std::future<serve::UpdateResult>> writes;
    std::vector<UpdateQuery<Key64>> submitted;
    for (int j = 0; j < 128; ++j) {
      const std::uint64_t hk = 1 + rng() % kStable;
      high_keys.push_back(hk);
      high_reads.push_back(server.SubmitLookup(hk, {}, /*tenant=*/0));
      const std::uint64_t lk = 1 + rng() % kStable;
      low_keys.push_back(lk);
      low_reads.push_back(server.SubmitLookup(lk, {}, /*tenant=*/1));
      if (j % 4 == 0) {
        const std::uint64_t key = kDynBase + rng() % kDynSpan;
        const UpdateQuery<Key64> update =
            rng() % 2 == 0 ? Insert(key) : Delete(key);
        submitted.push_back(update);
        writes.push_back(server.SubmitUpdate(update, {}, /*tenant=*/0));
      }
    }
    for (auto& f : writes) {
      const serve::UpdateResult committed = f.get();
      ASSERT_TRUE(committed.status.ok()) << committed.status.message();
    }
    for (const auto& update : submitted) {
      if (update.kind == UpdateQuery<Key64>::Kind::kInsert) {
        reference[update.pair.key] = update.pair.value;
      } else {
        reference.erase(update.pair.key);
      }
    }
    // High-priority reads are NEVER shed: no deadline was set and high
    // priority is exempt from degraded-mode shedding.
    for (std::size_t i = 0; i < high_reads.size(); ++i) {
      const serve::ReadResult<Key64> result = high_reads[i].get();
      ASSERT_TRUE(result.status.ok()) << result.status.message();
      ASSERT_TRUE(result.lookup.found);
      ASSERT_EQ(result.lookup.value, StableValue(high_keys[i]));
    }
    // Low-priority reads either serve exactly or shed kUnavailable
    // (degraded mode) — never a wrong answer, never a silent drop.
    for (std::size_t i = 0; i < low_reads.size(); ++i) {
      const serve::ReadResult<Key64> result = low_reads[i].get();
      if (result.status.ok()) {
        ++low_served;
        ASSERT_TRUE(result.lookup.found);
        ASSERT_EQ(result.lookup.value, StableValue(low_keys[i]));
      } else {
        ASSERT_EQ(result.status.code(), StatusCode::kUnavailable)
            << result.status.message();
        ++low_shed;
      }
    }
    const serve::ServeStats stats = server.Stats();
    if (stats.breaker_opens >= 1 && stats.tenants[1].shed_reads >= 1 &&
        rounds >= 3) {
      break;
    }
  }

  // Quiescent differential sweep over the dynamic region through the
  // high tenant (whose reads are never shed).
  std::vector<std::future<serve::ReadResult<Key64>>> sweep;
  std::vector<std::uint64_t> sweep_keys;
  for (int j = 0; j < 384; ++j) {
    const std::uint64_t key = kDynBase + rng() % kDynSpan;
    sweep_keys.push_back(key);
    sweep.push_back(server.SubmitLookup(key, {}, /*tenant=*/0));
  }
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const serve::ReadResult<Key64> result = sweep[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.message();
    const auto it = reference.find(sweep_keys[i]);
    if (it == reference.end()) {
      ASSERT_FALSE(result.lookup.found) << "key " << sweep_keys[i];
    } else {
      ASSERT_TRUE(result.lookup.found) << "key " << sweep_keys[i];
      ASSERT_EQ(result.lookup.value, it->second);
    }
  }

  server.Shutdown();
  const serve::ServeStats stats = server.Stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  // Strict precedence: some low-priority sheds happened, zero
  // high-priority sheds ever did.
  EXPECT_GE(stats.tenants[1].shed_reads, 1u)
      << "breaker opened " << stats.breaker_opens
      << " times in " << rounds << " rounds without a degraded shed";
  EXPECT_EQ(stats.tenants[0].shed_reads, 0u);
  EXPECT_EQ(stats.tenants[0].shed_updates, 0u);
  // Every read shed in this run was a degraded-mode (priority) shed:
  // no deadlines were configured.
  EXPECT_EQ(stats.degraded_sheds, stats.shed_reads);
  EXPECT_EQ(stats.tenants[1].shed_reads, stats.shed_reads);
  EXPECT_EQ(low_shed, stats.tenants[1].shed_reads);
  EXPECT_EQ(low_served, stats.tenants[1].lookups);
  EXPECT_GT(stats.tenants[0].lookups, 0u);
  EXPECT_GT(stats.tenants[0].updates, 0u);
}

}  // namespace
}  // namespace hbtree
