// Admission-queue edge cases and weighted-fair lane scheduling.
//
// The single-FIFO tests pin the two shedding/batching edge cases that
// used to be wrong: an already-expired deadline must shed at the door
// (never ride the condition-variable wait path, which would admit it
// whenever the queue had space), and a capacity-1 queue must not
// livelock a batch fill (the consumer must wake blocked producers while
// it collects instead of sitting out the whole fill window).
//
// The FairAdmissionQueue tests pin the QoS contract: per-lane isolation,
// deficit-round-robin weight shares, work conservation, shed_on_full,
// and FIFO order within a lane.

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission_queue.h"
#include "serve/fair_queue.h"

namespace hbtree::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(AdmissionQueue, ExpiredDeadlineShedsEvenWithSpace) {
  AdmissionQueue<int> queue(16);
  // The queue is empty — the old wait_until path would have admitted
  // this op because the not-full predicate holds immediately.
  EXPECT_EQ(queue.PushUntil(1, steady_clock::now() - milliseconds(1)),
            PushResult::kTimeout);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(AdmissionQueue, ExpiredDeadlineLeavesItemUntouched) {
  AdmissionQueue<std::vector<int>> queue(4);
  std::vector<int> payload = {1, 2, 3};
  EXPECT_EQ(queue.PushUntil(std::move(payload),
                            steady_clock::now() - milliseconds(1)),
            PushResult::kTimeout);
  // kTimeout promises the caller can still reject via the item (resolve
  // its promise); the payload must not have been moved out.
  EXPECT_EQ(payload.size(), 3u);
}

TEST(AdmissionQueue, ZeroCapacityClampsToOne) {
  AdmissionQueue<int> queue(0);
  EXPECT_TRUE(queue.Push(7));  // would deadlock forever if capacity were 0
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 4, microseconds(1000), microseconds(0)),
            1u);
  EXPECT_EQ(out, std::vector<int>({7}));
}

TEST(AdmissionQueue, CapacityOneBatchFillDoesNotLivelock) {
  AdmissionQueue<int> queue(1);
  constexpr int kItems = 64;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.Push(int{i}));
  });
  // The fill window is far longer than the test budget: if the consumer
  // failed to wake producers mid-fill, the batch would stall for the
  // whole 10 s window instead of filling incrementally.
  std::vector<int> out;
  const auto start = steady_clock::now();
  std::size_t popped = 0;
  while (popped < kItems) {
    popped += queue.PopBatch(&out, kItems - popped, microseconds(100'000),
                             microseconds(10'000'000));
    ASSERT_LT(steady_clock::now() - start, std::chrono::seconds(5));
  }
  producer.join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(out[i], i);  // FIFO
}

TEST(AdmissionQueue, PushUntilTimesOutOnFullQueue) {
  AdmissionQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  const auto start = steady_clock::now();
  EXPECT_EQ(queue.PushUntil(2, start + milliseconds(20)),
            PushResult::kTimeout);
  EXPECT_GE(steady_clock::now() - start, milliseconds(19));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(FairQueue, ExpiredDeadlineShedsEvenWithSpace) {
  FairAdmissionQueue<int> queue(16, {{1, false}, {1, false}});
  EXPECT_EQ(queue.PushUntil(1, 9, steady_clock::now() - milliseconds(1)),
            PushResult::kTimeout);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(FairQueue, DrainsBacklogInWeightProportion) {
  // Lanes weighted 3:1, both backlogged beyond the bucket: one bucket
  // window must carry ops in weight proportion.
  FairAdmissionQueue<int> queue(256, {{3, false}, {1, false}});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(0, 1000 + i));
    ASSERT_TRUE(queue.Push(1, 2000 + i));
  }
  std::vector<int> out;
  ASSERT_EQ(queue.PopBatch(&out, 16, microseconds(1000), microseconds(0)),
            16u);
  int lane0 = 0, lane1 = 0;
  for (int v : out) (v < 2000 ? lane0 : lane1)++;
  EXPECT_EQ(lane0, 12);  // 3/4 of the 16-op budget
  EXPECT_EQ(lane1, 4);   // 1/4
}

TEST(FairQueue, FifoWithinLane) {
  FairAdmissionQueue<int> queue(64, {{2, false}, {1, false}});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Push(0, 1000 + i));
    ASSERT_TRUE(queue.Push(1, 2000 + i));
  }
  std::vector<int> out;
  ASSERT_EQ(queue.PopBatch(&out, 16, microseconds(1000), microseconds(0)),
            16u);
  int last0 = -1, last1 = -1;
  for (int v : out) {
    if (v < 2000) {
      EXPECT_GT(v, last0);
      last0 = v;
    } else {
      EXPECT_GT(v, last1);
      last1 = v;
    }
  }
}

TEST(FairQueue, WorkConservingWhenOneLaneIdle) {
  // Only the weight-1 lane has work: it gets the whole bucket, not its
  // 1/4 share.
  FairAdmissionQueue<int> queue(64, {{3, false}, {1, false}});
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(queue.Push(1, int{i}));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 16, microseconds(1000), microseconds(0)),
            16u);
}

TEST(FairQueue, IdleLaneForfeitsBankedCredit) {
  FairAdmissionQueue<int> queue(64, {{1, false}, {1, false}});
  // Lane 0 drains completely across several rounds while lane 1 is idle;
  // then both get backlogged. Lane 0 must not have banked credit: the
  // next window still splits evenly.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue.Push(0, int{i}));
  std::vector<int> out;
  ASSERT_EQ(queue.PopBatch(&out, 8, microseconds(1000), microseconds(0)),
            8u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(queue.Push(0, 1000 + i));
    ASSERT_TRUE(queue.Push(1, 2000 + i));
  }
  out.clear();
  ASSERT_EQ(queue.PopBatch(&out, 8, microseconds(1000), microseconds(0)),
            8u);
  int lane0 = 0;
  for (int v : out) lane0 += v < 2000;
  EXPECT_EQ(lane0, 4);
}

TEST(FairQueue, ShedOnFullLaneShedsImmediatelyAndIsolates) {
  FairAdmissionQueue<int> queue(4, {{1, false}, {1, true}});
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.Push(1, int{i}));
  // Hostile lane full: sheds with no waiting even though the deadline is
  // far out.
  const auto start = steady_clock::now();
  EXPECT_EQ(queue.PushUntil(1, 99, start + std::chrono::seconds(10)),
            PushResult::kTimeout);
  EXPECT_LT(steady_clock::now() - start, milliseconds(100));
  // The other tenant's lane is untouched: admission succeeds instantly.
  EXPECT_EQ(queue.PushUntil(0, 7, steady_clock::now() + milliseconds(100)),
            PushResult::kOk);
  EXPECT_EQ(queue.lane_size(0), 1u);
  EXPECT_EQ(queue.lane_size(1), 4u);
}

TEST(FairQueue, CapacityOneBatchFillDoesNotLivelock) {
  FairAdmissionQueue<int> queue(1, {{1, false}, {1, false}});
  constexpr int kPerLane = 32;
  std::thread p0([&] {
    for (int i = 0; i < kPerLane; ++i) ASSERT_TRUE(queue.Push(0, int{i}));
  });
  std::thread p1([&] {
    for (int i = 0; i < kPerLane; ++i) ASSERT_TRUE(queue.Push(1, int{i}));
  });
  std::vector<int> out;
  const auto start = steady_clock::now();
  std::size_t popped = 0;
  while (popped < 2 * kPerLane) {
    popped += queue.PopBatch(&out, 2 * kPerLane - popped,
                             microseconds(100'000),
                             microseconds(10'000'000));
    ASSERT_LT(steady_clock::now() - start, std::chrono::seconds(5));
  }
  p0.join();
  p1.join();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(2 * kPerLane));
}

TEST(FairQueue, CloseUnblocksProducersAndDrains) {
  FairAdmissionQueue<int> queue(1, {{1, false}});
  ASSERT_TRUE(queue.Push(0, 1));
  std::thread blocked([&] { EXPECT_FALSE(queue.Push(0, 2)); });
  std::this_thread::sleep_for(milliseconds(10));
  queue.Close();
  blocked.join();
  // Items admitted before Close stay poppable.
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 4, microseconds(1000), microseconds(0)),
            1u);
  EXPECT_EQ(queue.PopBatch(&out, 4, microseconds(1000), microseconds(0)),
            0u);
}

}  // namespace
}  // namespace hbtree::serve
