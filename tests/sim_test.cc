#include <gtest/gtest.h>

#include <vector>

#include "mem/page_allocator.h"
#include "sim/cache_sim.h"
#include "sim/cpu_cost_model.h"
#include "sim/platform.h"
#include "sim/resource.h"
#include "sim/tlb_sim.h"

namespace hbtree::sim {
namespace {

// ---------------------------------------------------------------------------
// CacheLevel / CacheHierarchy.
// ---------------------------------------------------------------------------

TEST(CacheLevel, HitsAfterInstall) {
  CacheLevel cache({"t", 8 * 1024, 8, 64});
  EXPECT_FALSE(cache.Access(5));
  EXPECT_TRUE(cache.Access(5));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // 1 set x 4 ways: lines 0..3 fill the set; touching 0 then adding 4
  // must evict 1 (the LRU), not 0.
  CacheLevel cache({"t", 4 * 64, 4, 64});
  for (std::uint64_t line = 0; line < 4; ++line) cache.Access(line);
  EXPECT_TRUE(cache.Access(0));   // 0 becomes MRU
  EXPECT_FALSE(cache.Access(4));  // evicts 1
  EXPECT_TRUE(cache.Access(0));
  EXPECT_FALSE(cache.Access(1));  // 1 was evicted
}

TEST(CacheLevel, SetsIsolateConflicts) {
  // 2 sets x 2 ways; even lines map to set 0, odd to set 1.
  CacheLevel cache({"t", 4 * 64, 2, 64});
  EXPECT_FALSE(cache.Access(0));
  EXPECT_FALSE(cache.Access(2));
  EXPECT_FALSE(cache.Access(1));  // other set
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(2));
  EXPECT_TRUE(cache.Access(1));
}

TEST(CacheHierarchy, MissFallsThroughAndInstallsEverywhere) {
  // L1: one set of 8 ways; L2: one set of 64 ways (inclusive install).
  CacheHierarchy caches({{"L1", 64 * 8, 8, 64}, {"L2", 64 * 64, 64, 64}});
  EXPECT_EQ(caches.AccessLine(42), HitLevel::kMemory);
  EXPECT_EQ(caches.AccessLine(42), HitLevel::kL1);
  // Push 20 other lines through: 42 falls out of the 8-way L1 but was
  // installed in (and survives in) the 64-way L2.
  for (std::uint64_t line = 1; line <= 20; ++line) caches.AccessLine(line);
  EXPECT_EQ(caches.AccessLine(42), HitLevel::kL2);
}

TEST(CacheHierarchy, WorkingSetLargerThanCacheMisses) {
  CacheHierarchy caches({{"L1", 32 * 1024, 8, 64}});
  // Stream 4x the capacity twice: second pass still misses (LRU stream).
  const std::uint64_t lines = 4 * 32 * 1024 / 64;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t line = 0; line < lines; ++line) caches.AccessLine(line);
  }
  EXPECT_EQ(caches.memory_accesses(), 2 * lines);
}

// ---------------------------------------------------------------------------
// TLB.
// ---------------------------------------------------------------------------

TEST(Tlb, HugePagesUseFewerEntries) {
  PageRegistry registry;
  PagedBuffer huge(64ull << 20, PageSize::k1G, &registry);  // one 1G page
  TlbSim::Config config;
  TlbSim tlb(config, &registry);
  // First touch misses; every further touch of the 64MB region hits the
  // single 1G entry.
  EXPECT_GT(tlb.Access(huge.data()), 0);
  for (std::size_t off = 0; off < huge.size(); off += 1 << 20) {
    EXPECT_EQ(tlb.Access(huge.data() + off), 0) << off;
  }
  EXPECT_EQ(tlb.misses_1g(), 1u);
}

TEST(Tlb, SmallPagesThrashWhenWorkingSetExceedsEntries) {
  PageRegistry registry;
  TlbSim::Config config;
  PagedBuffer small(8ull << 20, PageSize::k4K, &registry);  // 2048 4K pages
  TlbSim tlb(config, &registry);
  // Touch 2048 distinct pages round-robin: only 512 entries -> all miss.
  std::uint64_t misses = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t page = 0; page < 2048; ++page) {
      if (tlb.Access(small.data() + page * 4096) > 0) ++misses;
    }
  }
  EXPECT_EQ(misses, 2 * 2048u);
}

TEST(Tlb, WalkCostDependsOnPageSize) {
  // Section 6.2: five accesses for 4K pages, three for 1G pages.
  EXPECT_EQ(TlbSim::WalkAccesses(PageSize::k4K), 5);
  EXPECT_EQ(TlbSim::WalkAccesses(PageSize::k2M), 4);
  EXPECT_EQ(TlbSim::WalkAccesses(PageSize::k1G), 3);
}

// ---------------------------------------------------------------------------
// CPU cost model.
// ---------------------------------------------------------------------------

TEST(CpuCostModel, ThroughputBoundsBehave) {
  PlatformSpec platform = PlatformSpec::M1();
  CpuTracer::Profile profile;
  profile.queries = 1000;
  profile.accesses = 8000;          // 8 lines per query
  profile.stall_ns = 1000 * 400.0;  // 400ns stall per query
  profile.dram_bytes = 1000 * 256.0;

  CpuExecutionParams params;
  params.threads = 16;
  params.pipeline_depth = 16;
  params.compute_ns_per_access = 7.0;
  CpuEstimate with_swp = EstimateCpuThroughput(platform.cpu, profile, params);

  params.pipeline_depth = 1;
  CpuEstimate without = EstimateCpuThroughput(platform.cpu, profile, params);

  // Software pipelining must improve throughput and raise latency.
  EXPECT_GT(with_swp.mqps, 1.5 * without.mqps);
  params.pipeline_depth = 16;
  EXPECT_GT(with_swp.latency_us, without.latency_us);
  // Never above any individual bound.
  EXPECT_LE(with_swp.mqps, with_swp.compute_bound_mqps + 1e-9);
  EXPECT_LE(with_swp.mqps, with_swp.bandwidth_bound_mqps + 1e-9);
  EXPECT_LE(with_swp.mqps, with_swp.latency_bound_mqps + 1e-9);
}

TEST(CpuCostModel, OverlapSaturatesSmoothly) {
  PlatformSpec platform = PlatformSpec::M1();
  CpuTracer::Profile profile;
  profile.queries = 1000;
  profile.accesses = 8000;
  profile.stall_ns = 1000 * 500.0;
  CpuExecutionParams params;
  params.threads = 1;  // isolate the latency bound
  params.compute_ns_per_access = 7.0;

  double prev = 0;
  double gain_2_4 = 0, gain_16_32 = 0;
  for (int depth : {1, 2, 4, 8, 16, 32}) {
    params.pipeline_depth = depth;
    double mqps = EstimateCpuThroughput(platform.cpu, profile, params).mqps;
    EXPECT_GE(mqps, prev);  // monotone
    if (depth == 4) gain_2_4 = mqps / prev;
    if (depth == 32) gain_16_32 = mqps / prev;
    prev = mqps;
  }
  // Diminishing returns: the 2->4 step gains much more than 16->32.
  EXPECT_GT(gain_2_4, gain_16_32 + 0.05);
}

TEST(CpuCostModel, TracerAccumulatesTlbWalks) {
  PlatformSpec platform = PlatformSpec::M1();
  PageRegistry registry;
  PagedBuffer data(16ull << 20, PageSize::k4K, &registry);
  CpuTracer tracer(platform.cpu, &registry);
  tracer.OnQueryStart();
  // Touch 4096 distinct 4K pages: far beyond the TLB.
  for (std::size_t page = 0; page < 4096; ++page) {
    tracer.OnAccess(data.data() + page * 4096, 64);
  }
  tracer.OnQueryEnd();
  EXPECT_GT(tracer.profile().tlb_misses, 3000u);
  EXPECT_EQ(tracer.profile().walk_accesses,
            tracer.profile().tlb_misses * 5);
}

TEST(Platform, PresetsAreConsistent) {
  for (const char* name : {"m1", "m2"}) {
    PlatformSpec platform = PlatformSpec::Parse(name);
    EXPECT_GT(platform.cpu.cores, 0);
    EXPECT_GE(platform.cpu.threads, platform.cpu.cores);
    EXPECT_GT(platform.gpu.memory_bandwidth_gbps,
              platform.cpu.dram_bandwidth_gbps);
    EXPECT_LT(platform.pcie.bandwidth_h2d_gbps,
              platform.cpu.dram_bandwidth_gbps);
    EXPECT_GT(platform.gpu.memory_bytes, 1ull << 30);
    EXPECT_LT(platform.pcie.streamed_init_us, platform.pcie.transfer_init_us);
  }
  // M1 is the stronger platform throughout.
  PlatformSpec m1 = PlatformSpec::M1(), m2 = PlatformSpec::M2();
  EXPECT_GT(m1.cpu.threads, m2.cpu.threads);
  EXPECT_GT(m1.gpu.memory_bandwidth_gbps, m2.gpu.memory_bandwidth_gbps);
}

TEST(ResourceTimeline, SerializesAndTracksUtilization) {
  ResourceTimeline resource;
  EXPECT_DOUBLE_EQ(resource.Acquire(0, 10), 0);
  EXPECT_DOUBLE_EQ(resource.Acquire(5, 10), 10);   // busy until 10
  EXPECT_DOUBLE_EQ(resource.Acquire(50, 10), 50);  // idle gap allowed
  EXPECT_DOUBLE_EQ(resource.busy_time(), 30);
  EXPECT_DOUBLE_EQ(resource.free_at(), 60);
}

}  // namespace
}  // namespace hbtree::sim
