// Cross-module property tests: randomized equivalence against reference
// implementations and model invariants that must hold for any input.

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "core/random.h"
#include "core/workload.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"
#include "hybrid/bucket_pipeline.h"
#include "sim/cache_sim.h"

namespace hbtree {
namespace {

// ---------------------------------------------------------------------------
// CacheLevel vs a reference LRU built from std::list, over random traces.
// ---------------------------------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(std::size_t sets, int ways) : sets_(sets), lru_(sets) {
    ways_ = ways;
  }

  bool Access(std::uint64_t line) {
    auto& set = lru_[line % sets_];
    auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
      set.erase(it);
      set.push_front(line);
      return true;
    }
    set.push_front(line);
    if (static_cast<int>(set.size()) > ways_) set.pop_back();
    return false;
  }

 private:
  std::size_t sets_;
  int ways_;
  std::vector<std::list<std::uint64_t>> lru_;
};

class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheEquivalenceTest, MatchesReferenceLruOnRandomTraces) {
  const auto [log2_sets, ways] = GetParam();
  const std::size_t sets = std::size_t{1} << log2_sets;
  sim::CacheLevel cache({"t", sets * ways * 64, ways, 64});
  ReferenceLru reference(sets, ways);
  Rng rng(17 + log2_sets * 31 + ways);
  for (int i = 0; i < 50000; ++i) {
    // Mix of hot (small range) and cold (wide range) lines.
    std::uint64_t line = (i % 3 == 0) ? rng.NextBounded(sets * ways / 2 + 1)
                                      : rng.NextBounded(sets * ways * 8);
    ASSERT_EQ(cache.Access(line), reference.Access(line)) << "access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheEquivalenceTest,
                         ::testing::Combine(::testing::Values(0, 3, 6),
                                            ::testing::Values(1, 4, 20)));

// ---------------------------------------------------------------------------
// Pipeline scheduler invariants over random stage times.
// ---------------------------------------------------------------------------

TEST(SchedulerProperties, PeriodBoundedByStagesForAllStrategies) {
  Rng rng(23);
  for (int round = 0; round < 200; ++round) {
    const double t1 = 1 + rng.NextDouble() * 50;
    const double t2 = 1 + rng.NextDouble() * 200;
    const double t3 = 1 + rng.NextDouble() * 50;
    const double t4 = 1 + rng.NextDouble() * 200;
    const int in_flight = 1 + static_cast<int>(rng.NextBounded(3));

    for (BucketStrategy strategy :
         {BucketStrategy::kSequential, BucketStrategy::kPipelined,
          BucketStrategy::kDoubleBuffered}) {
      pipeline_internal::Scheduler scheduler(strategy);
      std::vector<double> ends;
      const int buckets = 40;
      for (int b = 0; b < buckets; ++b) {
        double ready = b >= in_flight ? ends[b - in_flight] : 0.0;
        ends.push_back(scheduler.ScheduleBucket(ready, 0, t1, t2, t3, t4));
      }
      const double period = ends.back() / buckets;
      const double chain = t1 + t2 + t3 + t4;
      // No strategy can beat the slowest stage, or lose to full
      // serialization.
      EXPECT_GE(period + 1e-9, std::max({t1, t2, t3, t4}))
          << BucketStrategyName(strategy);
      EXPECT_LE(period, chain + 1e-9) << BucketStrategyName(strategy);
      // Completion times are monotone.
      for (int b = 1; b < buckets; ++b) {
        ASSERT_LE(ends[b - 1], ends[b] + 1e-9);
      }
      if (strategy == BucketStrategy::kSequential) {
        EXPECT_NEAR(period, chain, chain * 0.01);
      }
    }
  }
}

TEST(SchedulerProperties, MoreBucketsInFlightNeverHurts) {
  Rng rng(29);
  for (int round = 0; round < 100; ++round) {
    const double t1 = 1 + rng.NextDouble() * 40;
    const double t2 = 1 + rng.NextDouble() * 150;
    const double t3 = 1 + rng.NextDouble() * 40;
    const double t4 = 1 + rng.NextDouble() * 150;
    double prev_period = 1e100;
    for (int in_flight : {1, 2, 3, 4}) {
      pipeline_internal::Scheduler scheduler(
          BucketStrategy::kDoubleBuffered);
      std::vector<double> ends;
      for (int b = 0; b < 50; ++b) {
        double ready = b >= in_flight ? ends[b - in_flight] : 0.0;
        ends.push_back(scheduler.ScheduleBucket(ready, 0, t1, t2, t3, t4));
      }
      const double period = ends.back() / 50;
      EXPECT_LE(period, prev_period + 1e-9);
      prev_period = period;
    }
  }
}

// ---------------------------------------------------------------------------
// Trees vs std::map over a small exhaustive domain: every key in the
// domain is queried, so boundary routing (first key, last key, gaps,
// duplicates of separators) is covered exhaustively.
// ---------------------------------------------------------------------------

template <typename K>
class ExhaustiveDomainTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(ExhaustiveDomainTest, KeyTypes);

TYPED_TEST(ExhaustiveDomainTest, EveryDomainKeyAgreesWithReference) {
  using K = TypeParam;
  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    // Keys drawn from a small domain so exhaustive probing is feasible.
    const K domain = 3000;
    std::map<K, K> reference;
    std::vector<KeyValue<K>> data;
    const std::size_t n = 50 + rng.NextBounded(1200);
    while (reference.size() < n) {
      K key = static_cast<K>(rng.NextBounded(domain));
      if (reference.emplace(key, static_cast<K>(key * 3 + 1)).second) {
        data.push_back({key, static_cast<K>(key * 3 + 1)});
      }
    }
    std::sort(data.begin(), data.end(),
              [](const KeyValue<K>& a, const KeyValue<K>& b) {
                return a.key < b.key;
              });

    PageRegistry r1, r2, r3;
    typename ImplicitBTree<K>::Config cpu_config;
    ImplicitBTree<K> implicit_cpu(cpu_config, &r1);
    implicit_cpu.Build(data);
    typename ImplicitBTree<K>::Config hb_config;
    hb_config.hybrid_layout = true;
    ImplicitBTree<K> implicit_hb(hb_config, &r2);
    implicit_hb.Build(data);
    typename RegularBTree<K>::Config reg_config;
    reg_config.leaf_fill = 0.5 + 0.5 * rng.NextDouble();
    RegularBTree<K> regular(reg_config, &r3);
    regular.Build(data);

    for (K probe = 0; probe < domain; ++probe) {
      const auto it = reference.find(probe);
      const bool expect = it != reference.end();
      ASSERT_EQ(implicit_cpu.Search(probe).found, expect) << probe;
      ASSERT_EQ(implicit_hb.Search(probe).found, expect) << probe;
      ASSERT_EQ(regular.Search(probe).found, expect) << probe;
      if (expect) {
        ASSERT_EQ(implicit_cpu.Search(probe).value, it->second);
        ASSERT_EQ(implicit_hb.Search(probe).value, it->second);
        ASSERT_EQ(regular.Search(probe).value, it->second);
      }
    }
  }
}

TYPED_TEST(ExhaustiveDomainTest, RangeScansAgreeWithReference) {
  using K = TypeParam;
  Rng rng(37);
  const K domain = 2000;
  std::map<K, K> reference;
  std::vector<KeyValue<K>> data;
  while (reference.size() < 700) {
    K key = static_cast<K>(rng.NextBounded(domain));
    if (reference.emplace(key, key).second) data.push_back({key, key});
  }
  std::sort(data.begin(), data.end(),
            [](const KeyValue<K>& a, const KeyValue<K>& b) {
              return a.key < b.key;
            });
  PageRegistry r1, r2;
  typename ImplicitBTree<K>::Config implicit_config;
  ImplicitBTree<K> implicit(implicit_config, &r1);
  implicit.Build(data);
  typename RegularBTree<K>::Config regular_config;
  RegularBTree<K> regular(regular_config, &r2);
  regular.Build(data);

  KeyValue<K> a[16], b[16];
  for (K start = 0; start < domain; start += 7) {
    const int ia = implicit.RangeScan(start, 16, a);
    const int ib = regular.RangeScan(start, 16, b);
    // Reference: first 16 pairs with key >= start.
    auto it = reference.lower_bound(start);
    int expect = 0;
    for (; it != reference.end() && expect < 16; ++it, ++expect) {
      ASSERT_EQ(a[expect].key, it->first) << start;
      ASSERT_EQ(b[expect].key, it->first) << start;
    }
    ASSERT_EQ(ia, expect) << start;
    ASSERT_EQ(ib, expect) << start;
  }
}

}  // namespace
}  // namespace hbtree
