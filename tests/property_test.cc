// Cross-module property tests: randomized equivalence against reference
// implementations and model invariants that must hold for any input.

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "core/random.h"
#include "core/workload.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "sim/cache_sim.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

// ---------------------------------------------------------------------------
// CacheLevel vs a reference LRU built from std::list, over random traces.
// ---------------------------------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(std::size_t sets, int ways) : sets_(sets), lru_(sets) {
    ways_ = ways;
  }

  bool Access(std::uint64_t line) {
    auto& set = lru_[line % sets_];
    auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
      set.erase(it);
      set.push_front(line);
      return true;
    }
    set.push_front(line);
    if (static_cast<int>(set.size()) > ways_) set.pop_back();
    return false;
  }

 private:
  std::size_t sets_;
  int ways_;
  std::vector<std::list<std::uint64_t>> lru_;
};

class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheEquivalenceTest, MatchesReferenceLruOnRandomTraces) {
  const auto [log2_sets, ways] = GetParam();
  const std::size_t sets = std::size_t{1} << log2_sets;
  sim::CacheLevel cache({"t", sets * ways * 64, ways, 64});
  ReferenceLru reference(sets, ways);
  Rng rng(17 + log2_sets * 31 + ways);
  for (int i = 0; i < 50000; ++i) {
    // Mix of hot (small range) and cold (wide range) lines.
    std::uint64_t line = (i % 3 == 0) ? rng.NextBounded(sets * ways / 2 + 1)
                                      : rng.NextBounded(sets * ways * 8);
    ASSERT_EQ(cache.Access(line), reference.Access(line)) << "access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheEquivalenceTest,
                         ::testing::Combine(::testing::Values(0, 3, 6),
                                            ::testing::Values(1, 4, 20)));

// ---------------------------------------------------------------------------
// Pipeline scheduler invariants over random stage times.
// ---------------------------------------------------------------------------

TEST(SchedulerProperties, PeriodBoundedByStagesForAllStrategies) {
  Rng rng(23);
  for (int round = 0; round < 200; ++round) {
    const double t1 = 1 + rng.NextDouble() * 50;
    const double t2 = 1 + rng.NextDouble() * 200;
    const double t3 = 1 + rng.NextDouble() * 50;
    const double t4 = 1 + rng.NextDouble() * 200;
    const int in_flight = 1 + static_cast<int>(rng.NextBounded(3));

    for (BucketStrategy strategy :
         {BucketStrategy::kSequential, BucketStrategy::kPipelined,
          BucketStrategy::kDoubleBuffered}) {
      pipeline_internal::Scheduler scheduler(strategy);
      std::vector<double> ends;
      const int buckets = 40;
      for (int b = 0; b < buckets; ++b) {
        double ready = b >= in_flight ? ends[b - in_flight] : 0.0;
        ends.push_back(scheduler.ScheduleBucket(ready, 0, t1, t2, t3, t4));
      }
      const double period = ends.back() / buckets;
      const double chain = t1 + t2 + t3 + t4;
      // No strategy can beat the slowest stage, or lose to full
      // serialization.
      EXPECT_GE(period + 1e-9, std::max({t1, t2, t3, t4}))
          << BucketStrategyName(strategy);
      EXPECT_LE(period, chain + 1e-9) << BucketStrategyName(strategy);
      // Completion times are monotone.
      for (int b = 1; b < buckets; ++b) {
        ASSERT_LE(ends[b - 1], ends[b] + 1e-9);
      }
      if (strategy == BucketStrategy::kSequential) {
        EXPECT_NEAR(period, chain, chain * 0.01);
      }
    }
  }
}

TEST(SchedulerProperties, MoreBucketsInFlightNeverHurts) {
  Rng rng(29);
  for (int round = 0; round < 100; ++round) {
    const double t1 = 1 + rng.NextDouble() * 40;
    const double t2 = 1 + rng.NextDouble() * 150;
    const double t3 = 1 + rng.NextDouble() * 40;
    const double t4 = 1 + rng.NextDouble() * 150;
    double prev_period = 1e100;
    for (int in_flight : {1, 2, 3, 4}) {
      pipeline_internal::Scheduler scheduler(
          BucketStrategy::kDoubleBuffered);
      std::vector<double> ends;
      for (int b = 0; b < 50; ++b) {
        double ready = b >= in_flight ? ends[b - in_flight] : 0.0;
        ends.push_back(scheduler.ScheduleBucket(ready, 0, t1, t2, t3, t4));
      }
      const double period = ends.back() / 50;
      EXPECT_LE(period, prev_period + 1e-9);
      prev_period = period;
    }
  }
}

// ---------------------------------------------------------------------------
// Trees vs std::map over a small exhaustive domain: every key in the
// domain is queried, so boundary routing (first key, last key, gaps,
// duplicates of separators) is covered exhaustively.
// ---------------------------------------------------------------------------

template <typename K>
class ExhaustiveDomainTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(ExhaustiveDomainTest, KeyTypes);

TYPED_TEST(ExhaustiveDomainTest, EveryDomainKeyAgreesWithReference) {
  using K = TypeParam;
  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    // Keys drawn from a small domain so exhaustive probing is feasible.
    const K domain = 3000;
    std::map<K, K> reference;
    std::vector<KeyValue<K>> data;
    const std::size_t n = 50 + rng.NextBounded(1200);
    while (reference.size() < n) {
      K key = static_cast<K>(rng.NextBounded(domain));
      if (reference.emplace(key, static_cast<K>(key * 3 + 1)).second) {
        data.push_back({key, static_cast<K>(key * 3 + 1)});
      }
    }
    std::sort(data.begin(), data.end(),
              [](const KeyValue<K>& a, const KeyValue<K>& b) {
                return a.key < b.key;
              });

    PageRegistry r1, r2, r3;
    typename ImplicitBTree<K>::Config cpu_config;
    ImplicitBTree<K> implicit_cpu(cpu_config, &r1);
    implicit_cpu.Build(data);
    typename ImplicitBTree<K>::Config hb_config;
    hb_config.hybrid_layout = true;
    ImplicitBTree<K> implicit_hb(hb_config, &r2);
    implicit_hb.Build(data);
    typename RegularBTree<K>::Config reg_config;
    reg_config.leaf_fill = 0.5 + 0.5 * rng.NextDouble();
    RegularBTree<K> regular(reg_config, &r3);
    regular.Build(data);

    for (K probe = 0; probe < domain; ++probe) {
      const auto it = reference.find(probe);
      const bool expect = it != reference.end();
      ASSERT_EQ(implicit_cpu.Search(probe).found, expect) << probe;
      ASSERT_EQ(implicit_hb.Search(probe).found, expect) << probe;
      ASSERT_EQ(regular.Search(probe).found, expect) << probe;
      if (expect) {
        ASSERT_EQ(implicit_cpu.Search(probe).value, it->second);
        ASSERT_EQ(implicit_hb.Search(probe).value, it->second);
        ASSERT_EQ(regular.Search(probe).value, it->second);
      }
    }
  }
}

TYPED_TEST(ExhaustiveDomainTest, RangeScansAgreeWithReference) {
  using K = TypeParam;
  Rng rng(37);
  const K domain = 2000;
  std::map<K, K> reference;
  std::vector<KeyValue<K>> data;
  while (reference.size() < 700) {
    K key = static_cast<K>(rng.NextBounded(domain));
    if (reference.emplace(key, key).second) data.push_back({key, key});
  }
  std::sort(data.begin(), data.end(),
            [](const KeyValue<K>& a, const KeyValue<K>& b) {
              return a.key < b.key;
            });
  PageRegistry r1, r2;
  typename ImplicitBTree<K>::Config implicit_config;
  ImplicitBTree<K> implicit(implicit_config, &r1);
  implicit.Build(data);
  typename RegularBTree<K>::Config regular_config;
  RegularBTree<K> regular(regular_config, &r2);
  regular.Build(data);

  KeyValue<K> a[16], b[16];
  for (K start = 0; start < domain; start += 7) {
    const int ia = implicit.RangeScan(start, 16, a);
    const int ib = regular.RangeScan(start, 16, b);
    // Reference: first 16 pairs with key >= start.
    auto it = reference.lower_bound(start);
    int expect = 0;
    for (; it != reference.end() && expect < 16; ++it, ++expect) {
      ASSERT_EQ(a[expect].key, it->first) << start;
      ASSERT_EQ(b[expect].key, it->first) << start;
    }
    ASSERT_EQ(ia, expect) << start;
    ASSERT_EQ(ib, expect) << start;
  }
}

// ---------------------------------------------------------------------------
// Differential harness: long interleaved insert/erase sequences mirrored
// into a std::map, with the trees checked against the reference at
// boundary keys (global min/max, domain edges), absent probes adjacent
// to present keys on both sides, and range queries. Covers the regular
// tree (in-place updates), the implicit tree (rebuild-based), and both
// hybrid trees (batch updates / pipeline lookups).
// ---------------------------------------------------------------------------

template <typename K, typename Tree>
void CheckAgainstReference(const Tree& tree, const std::map<K, K>& reference,
                           Rng* rng) {
  // Global boundary keys and their absent neighbours.
  if (!reference.empty()) {
    const auto& [min_key, min_value] = *reference.begin();
    const auto& [max_key, max_value] = *reference.rbegin();
    auto lo = tree.Search(min_key);
    ASSERT_TRUE(lo.found);
    ASSERT_EQ(lo.value, min_value);
    auto hi = tree.Search(max_key);
    ASSERT_TRUE(hi.found);
    ASSERT_EQ(hi.value, max_value);
    if (min_key > 0 && reference.count(static_cast<K>(min_key - 1)) == 0) {
      ASSERT_FALSE(tree.Search(static_cast<K>(min_key - 1)).found);
    }
    if (reference.count(static_cast<K>(max_key + 1)) == 0) {
      ASSERT_FALSE(tree.Search(static_cast<K>(max_key + 1)).found);
    }
  }
  // Domain edges: key 0 and the largest non-sentinel key.
  auto edge = reference.find(K{0});
  ASSERT_EQ(tree.Search(K{0}).found, edge != reference.end());
  ASSERT_FALSE(tree.Search(static_cast<K>(KeyTraits<K>::kMax - 1)).found);
  // Probes adjacent to present keys, on both sides.
  std::size_t checked = 0;
  for (const auto& [key, value] : reference) {
    if (rng->NextBounded(reference.size()) > 40) continue;
    auto result = tree.Search(key);
    ASSERT_TRUE(result.found) << key;
    ASSERT_EQ(result.value, value);
    for (K probe : {static_cast<K>(key - 1), static_cast<K>(key + 1)}) {
      if (key == 0 && probe > key) continue;  // wrapped below zero
      auto it = reference.find(probe);
      auto got = tree.Search(probe);
      ASSERT_EQ(got.found, it != reference.end()) << probe;
      if (it != reference.end()) {
        ASSERT_EQ(got.value, it->second);
      }
    }
    if (++checked >= 64) break;
  }
}

template <typename K, typename Tree>
void CheckRangesAgainstReference(const Tree& tree,
                                 const std::map<K, K>& reference, K domain,
                                 Rng* rng) {
  KeyValue<K> out[24];
  for (int round = 0; round < 32; ++round) {
    const K start = static_cast<K>(rng->NextBounded(domain + 10));
    const int want = 1 + static_cast<int>(rng->NextBounded(24));
    const int got = tree.RangeScan(start, want, out);
    auto it = reference.lower_bound(start);
    int expect = 0;
    for (; it != reference.end() && expect < want; ++it, ++expect) {
      ASSERT_EQ(out[expect].key, it->first) << "start " << start;
      ASSERT_EQ(out[expect].value, it->second);
    }
    ASSERT_EQ(got, expect) << "start " << start;
  }
}

template <typename K>
class DifferentialTest : public ::testing::Test {};

TYPED_TEST_SUITE(DifferentialTest, KeyTypes);

TYPED_TEST(DifferentialTest, InterleavedInsertEraseMatchesReference) {
  using K = TypeParam;
  Rng rng(43);
  const K domain = 6000;
  std::map<K, K> reference;
  std::vector<KeyValue<K>> data;
  while (reference.size() < 800) {
    K key = static_cast<K>(rng.NextBounded(domain));
    K value = static_cast<K>(key * 3 + 1);
    if (reference.emplace(key, value).second) data.push_back({key, value});
  }
  std::sort(data.begin(), data.end(),
            [](const KeyValue<K>& a, const KeyValue<K>& b) {
              return a.key < b.key;
            });

  PageRegistry r1, r2;
  typename RegularBTree<K>::Config reg_config;
  reg_config.leaf_fill = 0.7;
  RegularBTree<K> regular(reg_config, &r1);
  regular.Build(data);
  typename ImplicitBTree<K>::Config imp_config;
  ImplicitBTree<K> implicit(imp_config, &r2);
  implicit.Build(data);

  for (int step = 1; step <= 3000; ++step) {
    const bool insert =
        reference.size() < 50 || rng.NextBounded(100) < 60;
    if (insert) {
      const K key = static_cast<K>(rng.NextBounded(domain));
      const K value = static_cast<K>(key * 3 + 1);
      const bool tree_did = regular.Insert({key, value});
      const bool map_did = reference.emplace(key, value).second;
      ASSERT_EQ(tree_did, map_did) << "insert " << key;
    } else {
      // Half the erases target a key known to be present, half are
      // random probes that usually miss.
      K key;
      if (rng.NextBounded(2) == 0 && !reference.empty()) {
        auto it = reference.lower_bound(
            static_cast<K>(rng.NextBounded(domain)));
        if (it == reference.end()) it = reference.begin();
        key = it->first;
      } else {
        key = static_cast<K>(rng.NextBounded(domain));
      }
      const bool tree_did = regular.Erase(key);
      const bool map_did = reference.erase(key) > 0;
      ASSERT_EQ(tree_did, map_did) << "erase " << key;
    }
    ASSERT_EQ(regular.size(), reference.size());

    if (step % 500 == 0) {
      regular.Validate();
      CheckAgainstReference(regular, reference, &rng);
      CheckRangesAgainstReference(regular, reference, domain, &rng);
      // The implicit tree is rebuild-based (Section 5.6): rebuild from
      // the reference state and hold it to the same checks.
      std::vector<KeyValue<K>> snapshot;
      snapshot.reserve(reference.size());
      for (const auto& [key, value] : reference) {
        snapshot.push_back({key, value});
      }
      implicit.Build(snapshot);
      implicit.Validate();
      CheckAgainstReference(implicit, reference, &rng);
      CheckRangesAgainstReference(implicit, reference, domain, &rng);
    }
  }
}

struct HybridDifferentialFixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

TYPED_TEST(DifferentialTest, HybridRegularMatchesReferenceAcrossBatches) {
  using K = TypeParam;
  Rng rng(47);
  const K domain = 200000;
  HybridDifferentialFixture fx;
  typename HBRegularTree<K>::Config config;
  config.tree.leaf_fill = 0.8;
  HBRegularTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);

  std::map<K, K> reference;
  std::vector<KeyValue<K>> data;
  // Even keys only, so the odd neighbours of every present key are
  // guaranteed-absent probes until a batch inserts them.
  while (reference.size() < 20000) {
    K key = static_cast<K>(rng.NextBounded(domain) * 2);
    K value = static_cast<K>(key + 5);
    if (reference.emplace(key, value).second) data.push_back({key, value});
  }
  std::sort(data.begin(), data.end(),
            [](const KeyValue<K>& a, const KeyValue<K>& b) {
              return a.key < b.key;
            });
  ASSERT_TRUE(tree.Build(data));

  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10;
  BatchUpdateConfig uconfig;
  uconfig.real_threads = 3;

  for (int round = 0; round < 4; ++round) {
    // Mixed batch: inserts of fresh odd keys, deletes of present keys.
    std::vector<UpdateQuery<K>> batch;
    for (int i = 0; i < 1500; ++i) {
      if (rng.NextBounded(2) == 0) {
        K key = static_cast<K>(rng.NextBounded(domain) * 2 + 1);
        batch.push_back(UpdateQuery<K>{UpdateQuery<K>::Kind::kInsert,
                                       {key, static_cast<K>(key + 5)}});
      } else {
        auto it = reference.lower_bound(
            static_cast<K>(rng.NextBounded(domain) * 2));
        if (it == reference.end()) it = reference.begin();
        batch.push_back(UpdateQuery<K>{UpdateQuery<K>::Kind::kDelete,
                                       {it->first, 0}});
      }
    }
    for (const auto& update : batch) {
      if (update.kind == UpdateQuery<K>::Kind::kInsert) {
        reference.emplace(update.pair.key, update.pair.value);
      } else {
        reference.erase(update.pair.key);
      }
    }
    const UpdateMethod method = round % 2 == 0
                                    ? UpdateMethod::kAsyncParallel
                                    : UpdateMethod::kSynchronized;
    RunBatchUpdate(tree, batch, method, uconfig);
    tree.host_tree().Validate();
    ASSERT_EQ(tree.host_tree().size(), reference.size());

    // Device-path lookups: every batch key plus its absent-side
    // neighbours and the global boundary keys, through the pipeline.
    std::vector<K> probes;
    for (const auto& update : batch) {
      probes.push_back(update.pair.key);
      probes.push_back(static_cast<K>(update.pair.key + 1));
      if (update.pair.key > 0) {
        probes.push_back(static_cast<K>(update.pair.key - 1));
      }
    }
    probes.push_back(reference.begin()->first);
    probes.push_back(reference.rbegin()->first);
    probes.push_back(static_cast<K>(KeyTraits<K>::kMax - 1));
    std::vector<LookupResult<K>> results;
    RunSearchPipeline(tree, probes.data(), probes.size(), pconfig, &results);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      auto it = reference.find(probes[i]);
      ASSERT_EQ(results[i].found, it != reference.end())
          << "round " << round << " probe " << probes[i];
      if (it != reference.end()) {
        ASSERT_EQ(results[i].value, it->second);
      }
    }
    CheckAgainstReference(tree.host_tree(), reference, &rng);
  }
}

TYPED_TEST(DifferentialTest, HybridImplicitPipelineMatchesReference) {
  using K = TypeParam;
  Rng rng(53);
  const K domain = 100000;
  HybridDifferentialFixture fx;
  typename HBImplicitTree<K>::Config config;
  HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);

  std::map<K, K> reference;
  std::vector<KeyValue<K>> data;
  while (reference.size() < 30000) {
    K key = static_cast<K>(rng.NextBounded(domain) * 2);
    K value = static_cast<K>(key + 9);
    if (reference.emplace(key, value).second) data.push_back({key, value});
  }
  std::sort(data.begin(), data.end(),
            [](const KeyValue<K>& a, const KeyValue<K>& b) {
              return a.key < b.key;
            });
  ASSERT_TRUE(tree.Build(data));

  // Pipeline lookups over hits, both absent neighbours of each hit, the
  // boundary keys, and the above-maximum edge.
  std::vector<K> probes;
  for (const auto& kv : data) {
    if (rng.NextBounded(8) != 0) continue;
    probes.push_back(kv.key);
    probes.push_back(static_cast<K>(kv.key + 1));
    if (kv.key > 0) probes.push_back(static_cast<K>(kv.key - 1));
  }
  probes.push_back(data.front().key);
  probes.push_back(data.back().key);
  probes.push_back(static_cast<K>(data.back().key + 2));
  probes.push_back(static_cast<K>(KeyTraits<K>::kMax - 1));

  PipelineConfig pconfig;
  pconfig.bucket_size = 2048;
  pconfig.cpu_queries_per_us = 10;
  std::vector<LookupResult<K>> results;
  RunSearchPipeline(tree, probes.data(), probes.size(), pconfig, &results);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto it = reference.find(probes[i]);
    ASSERT_EQ(results[i].found, it != reference.end()) << probes[i];
    if (it != reference.end()) {
      ASSERT_EQ(results[i].value, it->second);
    }
  }
  CheckAgainstReference(tree.host_tree(), reference, &rng);
}

}  // namespace
}  // namespace hbtree
