// Unit tests for the fault-injection subsystem (src/fault/): policy
// semantics (probability vs deterministic schedule), seeded determinism,
// typed error mapping, retry/backoff behaviour, and the wiring through
// the simulated device and transfer engine.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "gpusim/device.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

using fault::FaultConfig;
using fault::FaultInjector;
using fault::RetryPolicy;
using fault::Site;

TEST(FaultInjector, DisabledNeverFails) {
  FaultInjector injector{FaultConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldFail(Site::kTransferH2D));
  }
  EXPECT_EQ(injector.total_injected(), 0u);
  EXPECT_EQ(injector.checks(Site::kTransferH2D), 1000u);
}

TEST(FaultInjector, ScheduleFailsExactOrdinals) {
  FaultConfig config;
  config.site(Site::kKernel).fail_ordinals = {3, 5, 5, 1};  // dups + unsorted
  FaultInjector injector(config);
  std::vector<std::uint64_t> failed;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    if (injector.ShouldFail(Site::kKernel)) failed.push_back(i);
  }
  EXPECT_EQ(failed, (std::vector<std::uint64_t>{1, 3, 5}));
  // Other sites are untouched by the kernel schedule.
  EXPECT_FALSE(injector.ShouldFail(Site::kTransferH2D));
  EXPECT_EQ(injector.injected(Site::kKernel), 3u);
  EXPECT_EQ(injector.total_injected(), 3u);
}

TEST(FaultInjector, ProbabilityIsSeededAndDeterministic) {
  const FaultConfig config = FaultConfig::Transfers(0.3, 99);
  FaultInjector a(config);
  FaultInjector b(config);
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool fa = a.ShouldFail(Site::kTransferH2D);
    EXPECT_EQ(fa, b.ShouldFail(Site::kTransferH2D));
    failures += fa;
  }
  // ~600 expected; generous bounds keep this robust across libstdc++s.
  EXPECT_GT(failures, 400);
  EXPECT_LT(failures, 800);
  // A different seed produces a different stream somewhere.
  FaultInjector c(FaultConfig::Transfers(0.3, 100));
  bool diverged = false;
  FaultInjector a2(config);
  for (int i = 0; i < 2000 && !diverged; ++i) {
    diverged = a2.ShouldFail(Site::kTransferH2D) !=
               c.ShouldFail(Site::kTransferH2D);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, ErrorForMapsSitesToTypedCodes) {
  EXPECT_EQ(FaultInjector::ErrorFor(Site::kDeviceAlloc).code(),
            StatusCode::kDeviceOom);
  EXPECT_EQ(FaultInjector::ErrorFor(Site::kTransferH2D).code(),
            StatusCode::kTransferFailure);
  EXPECT_EQ(FaultInjector::ErrorFor(Site::kTransferD2H).code(),
            StatusCode::kTransferFailure);
  EXPECT_EQ(FaultInjector::ErrorFor(Site::kKernel).code(),
            StatusCode::kKernelFailure);
  EXPECT_TRUE(FaultInjector::ErrorFor(Site::kTransferH2D).IsTransient());
  EXPECT_FALSE(FaultInjector::ErrorFor(Site::kDeviceAlloc).IsTransient());
}

TEST(Retry, RetriesTransientUntilSuccess) {
  int attempts = 0;
  std::uint64_t retries = 0;
  double backoff_us = 0;
  const Status status = fault::RetryTransient(
      RetryPolicy{3, 10.0, 2.0},
      [&]() -> Status {
        if (++attempts < 3) {
          return Status::TransferFailure("transient");
        }
        return Status::Ok();
      },
      &retries, &backoff_us);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_DOUBLE_EQ(backoff_us, 10.0 + 20.0);  // exponential
}

TEST(Retry, DoesNotRetryTerminalErrors) {
  int attempts = 0;
  const Status status = fault::RetryTransient(
      RetryPolicy{5, 10.0, 2.0}, [&]() -> Status {
        ++attempts;
        return Status::DeviceOom("terminal");
      });
  EXPECT_EQ(status.code(), StatusCode::kDeviceOom);
  EXPECT_EQ(attempts, 1);
}

TEST(Retry, GivesUpAfterMaxRetries) {
  int attempts = 0;
  std::uint64_t retries = 0;
  const Status status = fault::RetryTransient(
      RetryPolicy{2, 10.0, 2.0},
      [&]() -> Status {
        ++attempts;
        return Status::KernelFailure("still down");
      },
      &retries);
  EXPECT_EQ(status.code(), StatusCode::kKernelFailure);
  EXPECT_EQ(attempts, 3);  // 1 attempt + 2 retries
  EXPECT_EQ(retries, 2u);
}

TEST(DeviceWiring, InjectedAllocFailureReturnsNull) {
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");
  gpu::Device device(platform.gpu);
  FaultConfig config;
  config.site(Site::kDeviceAlloc).fail_ordinals = {2};
  FaultInjector injector(config);
  device.set_fault_injector(&injector);

  gpu::DevicePtr first = device.TryMalloc(1024);
  EXPECT_FALSE(first.is_null());
  EXPECT_TRUE(device.TryMalloc(1024).is_null());  // ordinal 2 injected
  gpu::DevicePtr third = device.TryMalloc(1024);
  EXPECT_FALSE(third.is_null());
  device.Free(first);
  device.Free(third);
  EXPECT_EQ(device.used_bytes(), 0u);
}

TEST(DeviceWiring, InjectedTransferFaultCopiesNothing) {
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");
  gpu::Device device(platform.gpu);
  gpu::TransferEngine transfer(&device, platform.pcie);
  FaultConfig config;
  config.site(Site::kTransferH2D).fail_ordinals = {1};
  config.site(Site::kTransferD2H).fail_ordinals = {2};
  FaultInjector injector(config);
  device.set_fault_injector(&injector);

  gpu::ScopedDeviceAlloc buffer(&device, sizeof(std::uint64_t));
  ASSERT_TRUE(buffer.ok());
  const std::uint64_t sentinel = 0xdeadbeef;
  EXPECT_EQ(transfer.TryCopyToDevice(buffer.get(), &sentinel,
                                     sizeof(sentinel)).code(),
            StatusCode::kTransferFailure);
  double us = 0;
  ASSERT_TRUE(transfer
                  .TryCopyToDevice(buffer.get(), &sentinel, sizeof(sentinel),
                                   &us)
                  .ok());
  EXPECT_GT(us, 0);
  std::uint64_t read_back = 0;
  ASSERT_TRUE(
      transfer.TryCopyToHost(&read_back, buffer.get(), sizeof(read_back))
          .ok());
  EXPECT_EQ(read_back, sentinel);
  EXPECT_EQ(transfer.TryCopyToHost(&read_back, buffer.get(),
                                   sizeof(read_back)).code(),
            StatusCode::kTransferFailure);
  EXPECT_EQ(injector.total_injected(), 2u);
}

}  // namespace
}  // namespace hbtree
