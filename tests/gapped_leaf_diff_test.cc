#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/workload.h"
#include "cpubtree/regular_btree.h"
#include "fault/fault_injector.h"
#include "gpusim/device.h"
#include "hybrid/gpu_kernels.h"
#include "hybrid/hb_regular.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

/// Differential coverage for the gapped-leaf insert path (DESIGN.md §14):
/// clustered inserts drive lines full and spill into nearby gaps, deletes
/// reopen them, and everything is replayed against std::map with full
/// structural validation. Plus the delta I-segment sync: path selection,
/// mirror correctness after a delta, and the injected-fault fallback to
/// the stale-mirror + full-repair sequence.

template <typename K>
RegularBTree<K> MakeGappedTree(PageRegistry* registry,
                               double leaf_fill = 0.6,
                               double spill_occupancy = 0.85,
                               int spill_window = 8) {
  typename RegularBTree<K>::Config config;
  config.leaf_fill = leaf_fill;
  config.gap_spill_occupancy = spill_occupancy;
  config.gap_spill_window = spill_window;
  return RegularBTree<K>(config, registry);
}

template <typename K>
class GappedLeafDiffTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(GappedLeafDiffTest, KeyTypes);

TYPED_TEST(GappedLeafDiffTest, ClusteredInsertsMatchMapReplay) {
  using K = TypeParam;
  PageRegistry registry;
  auto tree = MakeGappedTree<K>(&registry);
  auto data = GenerateDataset<K>(8000, /*seed=*/21);
  tree.Build(data);
  std::map<K, K> model;
  for (const auto& kv : data) model[kv.key] = kv.value;

  // Clustered runs of consecutive keys: each run lands in one leaf line
  // until it fills, so the spill path fires constantly; interleaved
  // deletes reopen gaps the next run spills back into.
  Rng rng(22);
  for (int round = 0; round < 400; ++round) {
    K anchor = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax - 64));
    const int run = 1 + static_cast<int>(rng.NextBounded(12));
    for (int i = 0; i < run; ++i) {
      const K key = anchor + static_cast<K>(i);
      const K value = static_cast<K>(rng.Next());
      const bool inserted = tree.Insert({key, value});
      ASSERT_EQ(inserted, model.emplace(key, value).second)
          << "round " << round << " key " << key;
    }
    if (round % 3 == 0 && !model.empty()) {
      auto it = model.lower_bound(anchor);
      for (int i = 0; i < 4 && it != model.end(); ++i) {
        ASSERT_TRUE(tree.Erase(it->first));
        it = model.erase(it);
      }
    }
    if (round % 50 == 49) tree.Validate();
  }
  tree.Validate();
  ASSERT_EQ(tree.size(), model.size());
  for (const auto& [key, value] : model) {
    auto result = tree.Search(key);
    ASSERT_TRUE(result.found) << key;
    ASSERT_EQ(result.value, value) << key;
  }
}

TYPED_TEST(GappedLeafDiffTest, SpillAndRedistributePathsConverge) {
  using K = TypeParam;
  // Same insert stream through the gapped tree and through one with
  // spilling disabled (occupancy 0 makes every leaf "crowded", forcing
  // the full gather-and-redistribute fallback on every full line). Both
  // must agree with the model and each other — the gap layout changes
  // where pairs sit inside a leaf, never what the tree contains.
  PageRegistry registry_a;
  PageRegistry registry_b;
  auto gapped = MakeGappedTree<K>(&registry_a);
  auto eager = MakeGappedTree<K>(&registry_b, /*leaf_fill=*/0.6,
                                 /*spill_occupancy=*/0.0);
  auto data = GenerateDataset<K>(6000, /*seed=*/23);
  gapped.Build(data);
  eager.Build(data);
  std::map<K, K> model;
  for (const auto& kv : data) model[kv.key] = kv.value;

  Rng rng(24);
  for (int round = 0; round < 300; ++round) {
    K anchor = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax - 32));
    for (int i = 0; i < 8; ++i) {
      const K key = anchor + static_cast<K>(i);
      const K value = static_cast<K>(rng.Next());
      const bool a = gapped.Insert({key, value});
      const bool b = eager.Insert({key, value});
      ASSERT_EQ(a, b) << key;
      ASSERT_EQ(a, model.emplace(key, value).second) << key;
    }
  }
  gapped.Validate();
  eager.Validate();
  ASSERT_EQ(gapped.size(), model.size());
  ASSERT_EQ(eager.size(), model.size());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(gapped.Search(key).value, value) << key;
    ASSERT_EQ(eager.Search(key).value, value) << key;
  }
}

TYPED_TEST(GappedLeafDiffTest, SpillBoundaryCrossesIntoSplit) {
  using K = TypeParam;
  // Hammer one key neighbourhood until its leaf crosses the occupancy
  // threshold and finally splits: the insert stream walks spill → crowded
  // fallback → structural split in order, validating after every insert.
  PageRegistry registry;
  auto tree = MakeGappedTree<K>(&registry, /*leaf_fill=*/0.5,
                                /*spill_occupancy=*/0.85,
                                /*spill_window=*/2);
  std::vector<KeyValue<K>> data;
  const K base = static_cast<K>(1) << 20;
  for (K k = 0; k < 512; ++k) {
    data.push_back({base + k * 16, k});
  }
  tree.Build(data);
  std::map<K, K> model;
  for (const auto& kv : data) model[kv.key] = kv.value;

  for (K k = 0; k < 2048; ++k) {
    const K key = base + k * 4 + 1;  // between the built keys
    const K value = static_cast<K>(k);
    ASSERT_EQ(tree.Insert({key, value}), model.emplace(key, value).second);
    tree.Validate();
  }
  ASSERT_EQ(tree.size(), model.size());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(tree.Search(key).value, value) << key;
  }
}

struct SyncFixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

/// Inserts clustered runs of consecutive keys so leaf lines fill and the
/// gapped spill (or redistribute) path rewrites separators — in-line
/// inserts with slack deliberately do NOT dirty the mirror (the hot
/// fragment is unchanged), so dirtying requires full lines. Returns the
/// keys that actually went in.
template <typename K>
std::vector<K> InsertClustered(HBRegularTree<K>& tree,
                               const std::vector<KeyValue<K>>& data,
                               int clusters, int per_cluster,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<K> keys;
  for (int c = 0; c < clusters; ++c) {
    const K anchor = data[rng.NextBounded(data.size())].key;
    if (anchor >= KeyTraits<K>::kMax - static_cast<K>(per_cluster) - 1) {
      continue;
    }
    for (int i = 1; i <= per_cluster; ++i) {
      const K key = anchor + static_cast<K>(i);
      if (tree.host_tree().Insert({key, static_cast<K>(i)})) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

template <typename K>
void ExpectKernelFinds(SyncFixture& fx, HBRegularTree<K>& tree,
                       const std::vector<K>& keys) {
  const std::uint32_t count = static_cast<std::uint32_t>(keys.size());
  gpu::DevicePtr q_dev = fx.device.Malloc(count * sizeof(K));
  gpu::DevicePtr r_dev = fx.device.Malloc(count * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, keys.data(), count * sizeof(K));
  auto params = tree.MakeKernelParams(q_dev, r_dev, count);
  RunRegularInnerSearch<K>(fx.device, params);
  std::vector<std::uint64_t> results(count);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         count * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < count; ++i) {
    typename RegularBTree<K>::LeafPosition pos{UnpackLeafNode(results[i]),
                                               UnpackLeafLine(results[i])};
    ASSERT_TRUE(tree.host_tree().SearchLeafLine(pos, keys[i]).found) << i;
  }
  fx.device.Free(q_dev);
  fx.device.Free(r_dev);
}

TEST(DeltaSync, SmallDirtySetStreamsDeltaAndMirrorStaysCorrect) {
  SyncFixture fx;
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.6;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/31);
  ASSERT_TRUE(tree.Build(data));
  ASSERT_TRUE(tree.mirror_valid());

  auto keys = InsertClustered<Key64>(tree, data, 8, 16, /*seed=*/32);
  ASSERT_FALSE(keys.empty());
  ASSERT_GT(tree.host_tree().leaf_pool().dirty_count(), 0u);

  double us = 0;
  ASSERT_TRUE(tree.TrySyncISegment(&us).ok());
  EXPECT_EQ(tree.delta_syncs(), 1u);
  EXPECT_EQ(tree.full_syncs(), 0u);
  EXPECT_GT(tree.delta_nodes_synced(), 0u);
  // The modelled delta must beat the full re-upload — that is the whole
  // point of the cost-based path choice.
  EXPECT_LT(us, fx.transfer.HostToDeviceUs(tree.i_segment_bytes()));
  EXPECT_EQ(tree.host_tree().leaf_pool().dirty_count(), 0u);
  EXPECT_TRUE(tree.mirror_valid());

  // The device mirror must now answer for the new keys.
  ExpectKernelFinds<Key64>(fx, tree, keys);
}

TEST(DeltaSync, LargeDirtySetTakesFullPath) {
  SyncFixture fx;
  HBRegularTree<Key64>::Config config;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(100000, /*seed=*/33);
  ASSERT_TRUE(tree.Build(data));

  // Mark enough fragments dirty that even the worst-case delta estimate
  // exceeds the margin times the full upload; the sync must prefer the
  // bulk path (one big transfer beats thousands of streamed ones).
  using Hot = RegularInnerHot<Key64>;
  const double full_us = fx.transfer.HostToDeviceUs(tree.i_segment_bytes());
  const double per_node_us = fx.transfer.StreamedHostToDeviceUs(sizeof(Hot));
  const std::size_t need = static_cast<std::size_t>(
                               config.delta_sync_cost_margin * full_us /
                               per_node_us) +
                           2;
  auto& pool = tree.host_tree().leaf_pool();
  ASSERT_GT(pool.high_water(), 0u);
  for (std::size_t i = 0; i < need; ++i) {
    pool.MarkDirty(static_cast<NodeRef>(i % pool.high_water()));
  }
  double us = 0;
  ASSERT_TRUE(tree.TrySyncISegment(&us).ok());
  EXPECT_EQ(tree.delta_syncs(), 0u);
  EXPECT_EQ(tree.full_syncs(), 1u);
  EXPECT_EQ(pool.dirty_count(), 0u);  // the bulk upload absorbs everything
  EXPECT_TRUE(tree.mirror_valid());
}

TEST(DeltaSync, FaultOnDeltaPathFallsBackToStaleMirrorThenFullRepair) {
  SyncFixture fx;
  HBRegularTree<Key64>::Config config;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/34);
  ASSERT_TRUE(tree.Build(data));

  auto keys = InsertClustered<Key64>(tree, data, 6, 12, /*seed=*/35);
  ASSERT_FALSE(keys.empty());
  const std::size_t dirty_before =
      tree.host_tree().leaf_pool().dirty_count() +
      tree.host_tree().inner_pool().dirty_count();
  ASSERT_GT(dirty_before, 0u);

  // First H2D op faults: the delta sync must fail WITHOUT half-applying —
  // mirror marked stale, dirty set kept for the repair pass.
  fault::FaultConfig fault_config;
  fault_config.site(fault::Site::kTransferH2D).fail_ordinals = {1};
  fault::FaultInjector injector(fault_config);
  fx.device.set_fault_injector(&injector);
  EXPECT_FALSE(tree.TrySyncISegment().ok());
  EXPECT_FALSE(tree.mirror_valid());
  EXPECT_EQ(tree.delta_syncs(), 0u);
  EXPECT_EQ(tree.host_tree().leaf_pool().dirty_count() +
                tree.host_tree().inner_pool().dirty_count(),
            dirty_before);

  // The retry sees the stale mirror, so it cannot take the delta path:
  // it must run the full upload and repair everything.
  fx.device.set_fault_injector(nullptr);
  double us = 0;
  ASSERT_TRUE(tree.TrySyncISegment(&us).ok());
  EXPECT_EQ(tree.full_syncs(), 1u);
  EXPECT_TRUE(tree.mirror_valid());
  EXPECT_EQ(tree.host_tree().leaf_pool().dirty_count() +
                tree.host_tree().inner_pool().dirty_count(),
            0u);
  ExpectKernelFinds<Key64>(fx, tree, keys);
}

}  // namespace
}  // namespace hbtree
