#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/workload.h"
#include "gpusim/device.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/gpu_kernels.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "obs/heat.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

/// Level-wise dispatch reconciliation (DESIGN.md §14): per launch of a
/// sorted batch, the kernel's modelled node loads at each tree level must
/// equal the number of *distinct* start nodes the batch visits at that
/// level — computed here by an independent host traversal — and never
/// queries x levels. Plus sorted-vs-unsorted result equivalence through
/// the full pipeline.

struct KernelFixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

/// Runs of equal values in an already-ordered sequence.
std::uint64_t CountRuns(const std::vector<std::uint64_t>& seq) {
  if (seq.empty()) return 0;
  std::uint64_t runs = 1;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (seq[i] != seq[i - 1]) ++runs;
  }
  return runs;
}

template <typename K>
std::vector<K> SortedMixedQueries(const std::vector<KeyValue<K>>& data,
                                  std::uint32_t count, std::uint64_t seed) {
  auto queries =
      MakeDistributedQueries<K>(count, Distribution::kUniform, seed);
  for (std::size_t i = 0; i < count; i += 2) {
    queries[i] = data[(i * 131) % data.size()].key;  // guaranteed hits
  }
  std::sort(queries.begin(), queries.end());
  return queries;
}

TEST(ImplicitLevelWise, NodeLoadsEqualDistinctStartNodesPerLevel) {
  KernelFixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(500000, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();
  const int height = host.height();
  ASSERT_GE(height, 2);

  constexpr std::uint32_t kCount = 4096;
  auto queries = SortedMixedQueries<Key64>(data, kCount, /*seed=*/2);

  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);

  gpu::KernelStats base = RunImplicitInnerSearch<Key64>(fx.device, params);
  gpu::KernelStats lw =
      RunImplicitInnerSearchLevelWise<Key64>(fx.device, params);

  // Functional identity: both kernels land every query on the same leaf
  // line the host traversal computes.
  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i], host.FindLeafLine(queries[i])) << "query " << i;
  }

  // Exact reconciliation: at level l the batch's node sequence is the
  // host descent truncated to that level; its run count is the distinct
  // start nodes level-wise dispatch promises to load once each.
  ASSERT_EQ(lw.node_loads_by_level.size(),
            static_cast<std::size_t>(height) + 1);
  for (int level = 1; level <= height; ++level) {
    std::vector<std::uint64_t> nodes(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      nodes[i] = host.DescendLevels(queries[i], height - level);
    }
    EXPECT_EQ(lw.node_loads_by_level[level], CountRuns(nodes))
        << "level " << level;
    EXPECT_EQ(lw.node_queries_by_level[level], kCount) << "level " << level;
    EXPECT_LE(lw.node_loads_by_level[level],
              lw.node_queries_by_level[level]);
  }

  // The per-query kernel reports no per-level counters; the level-wise
  // one must win on the memory side of the cost model and nothing else.
  EXPECT_TRUE(base.node_loads_by_level.empty());
  EXPECT_EQ(lw.warps_executed, base.warps_executed);
  EXPECT_LT(lw.memory_gathers, base.memory_gathers);
  EXPECT_LT(lw.dram_bytes + lw.l2_bytes, base.dram_bytes + base.l2_bytes);
}

TEST(ImplicitLevelWise, ReconcilesFromPreDescendedStartNodes) {
  // Composition with the CPU pre-descent split (Section 5.5): the launch
  // starts below the root, and reconciliation holds per remaining level.
  KernelFixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(500000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();
  const int height = host.height();
  const int cpu_depth = 2;
  ASSERT_GT(height, cpu_depth);
  const int start_level = height - cpu_depth;

  constexpr std::uint32_t kCount = 2048;
  auto queries = SortedMixedQueries<Key64>(data, kCount, /*seed=*/4);

  std::vector<std::uint32_t> starts(kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    starts[i] =
        static_cast<std::uint32_t>(host.DescendLevels(queries[i], cpu_depth));
  }
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  gpu::DevicePtr s_dev = fx.device.Malloc(kCount * sizeof(std::uint32_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  fx.transfer.CopyToDevice(s_dev, starts.data(),
                           kCount * sizeof(std::uint32_t));

  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount, start_level,
                                      s_dev);
  gpu::KernelStats lw =
      RunImplicitInnerSearchLevelWise<Key64>(fx.device, params);

  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i], host.FindLeafLine(queries[i])) << i;
  }

  ASSERT_EQ(lw.node_loads_by_level.size(),
            static_cast<std::size_t>(start_level) + 1);
  for (int level = 1; level <= start_level; ++level) {
    std::vector<std::uint64_t> nodes(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      nodes[i] = host.DescendLevels(queries[i], height - level);
    }
    EXPECT_EQ(lw.node_loads_by_level[level], CountRuns(nodes))
        << "level " << level;
  }
}

TEST(RegularLevelWise, NodeLoadsEqualDistinctStartNodesPerLevel) {
  KernelFixture fx;
  HBRegularTree<Key64>::Config config;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(300000, /*seed=*/5);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();
  const int height = host.height();
  ASSERT_GE(height, 2);

  constexpr std::uint32_t kCount = 2048;
  auto queries = SortedMixedQueries<Key64>(data, kCount, /*seed=*/6);

  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);

  gpu::KernelStats base = RunRegularInnerSearch<Key64>(fx.device, params);
  gpu::KernelStats lw =
      RunRegularInnerSearchLevelWise<Key64>(fx.device, params);

  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    auto expect = host.FindLeafPosition(queries[i]);
    ASSERT_EQ(UnpackLeafNode(results[i]), expect.last_inner) << i;
    ASSERT_EQ(UnpackLeafLine(results[i]), expect.line) << i;
  }

  ASSERT_EQ(lw.node_loads_by_level.size(),
            static_cast<std::size_t>(height) + 1);
  for (int level = 1; level <= height; ++level) {
    std::vector<std::uint64_t> nodes(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      nodes[i] = static_cast<std::uint64_t>(
          host.DescendLevels(queries[i], height - level));
    }
    EXPECT_EQ(lw.node_loads_by_level[level], CountRuns(nodes))
        << "level " << level;
    EXPECT_EQ(lw.node_queries_by_level[level], kCount) << "level " << level;
  }
  EXPECT_EQ(lw.warps_executed, base.warps_executed);
  EXPECT_LT(lw.memory_gathers, base.memory_gathers);
  EXPECT_LT(lw.dram_bytes + lw.l2_bytes, base.dram_bytes + base.l2_bytes);
}

template <typename Tree, typename K>
void ExpectSameResults(Tree& tree, const std::vector<K>& queries,
                       PipelineConfig config) {
  std::vector<LookupResult<K>> level_wise_results;
  std::vector<LookupResult<K>> per_query_results;
  config.level_wise = true;
  PipelineStats lw = RunSearchPipeline(tree, queries.data(), queries.size(),
                                       config, &level_wise_results);
  config.level_wise = false;
  PipelineStats base = RunSearchPipeline(tree, queries.data(), queries.size(),
                                         config, &per_query_results);
  ASSERT_EQ(level_wise_results.size(), queries.size());
  // Write-back through the sort permutation restores the caller's order:
  // result i always answers query i.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(level_wise_results[i].found, per_query_results[i].found) << i;
    if (level_wise_results[i].found) {
      ASSERT_EQ(level_wise_results[i].value, per_query_results[i].value) << i;
    }
  }
  // Accounting invariant across all buckets: strictly fewer node loads
  // than query-level touches, and a cheaper modelled memory side.
  std::uint64_t loads = 0, queries_by_level = 0;
  for (std::uint64_t v : lw.kernel.node_loads_by_level) loads += v;
  for (std::uint64_t v : lw.kernel.node_queries_by_level) queries_by_level += v;
  EXPECT_GT(loads, 0u);
  EXPECT_LT(loads, queries_by_level);
  EXPECT_LT(lw.kernel.memory_gathers, base.kernel.memory_gathers);
  EXPECT_LT(lw.kernel.dram_bytes + lw.kernel.l2_bytes,
            base.kernel.dram_bytes + base.kernel.l2_bytes);
}

TEST(LevelWisePipeline, UnsortedQueriesGetIdenticalAnswers) {
  KernelFixture fx;
  HBImplicitTree<Key64>::Config tree_config;
  HBImplicitTree<Key64> tree(tree_config, &fx.registry, &fx.device,
                             &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/7);
  ASSERT_TRUE(tree.Build(data));

  auto queries = MakeDistributedQueries<Key64>(20000, Distribution::kZipf,
                                               /*seed=*/8);
  for (std::size_t i = 0; i < queries.size(); i += 3) {
    queries[i] = data[(i * 53) % data.size()].key;
  }
  PipelineConfig config;
  config.bucket_size = 4096;
  ExpectSameResults<HBImplicitTree<Key64>, Key64>(tree, queries, config);
}

TEST(LevelWisePipeline, ComposesWithLoadBalancerSplit) {
  KernelFixture fx;
  HBImplicitTree<Key64>::Config tree_config;
  HBImplicitTree<Key64> tree(tree_config, &fx.registry, &fx.device,
                             &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/9);
  ASSERT_TRUE(tree.Build(data));

  auto queries = MakeDistributedQueries<Key64>(16384, Distribution::kUniform,
                                               /*seed=*/10);
  for (std::size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = data[(i * 17) % data.size()].key;
  }
  // D=1, R=0.5: every bucket splits into two balanced launches starting
  // at different levels; both are contiguous slices of the sorted bucket.
  PipelineConfig config;
  config.bucket_size = 4096;
  config.cpu_descend_levels = 1;
  config.cpu_split_ratio = 0.5;
  config.cpu_descend_us_per_level = 0.01;
  config.buckets_in_flight = 3;
  ExpectSameResults<HBImplicitTree<Key64>, Key64>(tree, queries, config);
}

TEST(LevelWisePipeline, RegularTreeGetsIdenticalAnswers) {
  KernelFixture fx;
  HBRegularTree<Key64>::Config tree_config;
  HBRegularTree<Key64> tree(tree_config, &fx.registry, &fx.device,
                            &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/11);
  ASSERT_TRUE(tree.Build(data));

  auto queries = MakeDistributedQueries<Key64>(16384, Distribution::kNormal,
                                               /*seed=*/12);
  for (std::size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = data[(i * 29) % data.size()].key;
  }
  PipelineConfig config;
  config.bucket_size = 4096;
  ExpectSameResults<HBRegularTree<Key64>, Key64>(tree, queries, config);
}

TEST(LevelWisePipeline, HeatSinkCarriesKernelTrafficAndCollapsedTouches) {
  // The regular tree's leaf search is the stage with node-touch heat
  // instrumentation (cpu_leaf big_leaf cells) — use it so the collapsed
  // per-batch touch convention is observable.
  KernelFixture fx;
  HBRegularTree<Key64>::Config tree_config;
  HBRegularTree<Key64> tree(tree_config, &fx.registry, &fx.device,
                            &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/13);
  ASSERT_TRUE(tree.Build(data));

  auto queries = MakeDistributedQueries<Key64>(8192, Distribution::kZipf,
                                               /*seed=*/14);
  obs::PipelineHeat heat(fx.platform.cpu.cache_levels);
  PipelineConfig config;
  config.bucket_size = 4096;
  config.heat = &heat;
  std::vector<LookupResult<Key64>> results;
  RunSearchPipeline(tree, queries.data(), queries.size(), config, &results);

  std::lock_guard<std::mutex> lock(heat.mu);
  ASSERT_FALSE(heat.kernel_node_loads.empty());
  EXPECT_EQ(heat.kernel_launches, 2u);  // 8192 queries / 4096 bucket
  std::uint64_t loads = 0, queries_by_level = 0;
  for (std::uint64_t v : heat.kernel_node_loads) loads += v;
  for (std::uint64_t v : heat.kernel_node_queries) queries_by_level += v;
  EXPECT_GT(loads, 0u);
  EXPECT_LT(loads, queries_by_level);
  EXPECT_GT(heat.kernel_dram_bytes + heat.kernel_l2_bytes, 0u);

  // Collapse-repeats heat semantics: with sorted dispatch the CPU leaf
  // tracer counts distinct leaf visits per batch, so a skewed stream
  // cannot report more touches than queries — and must report fewer
  // (Zipf repeats the hot keys back to back after the sort).
  std::vector<obs::LevelTraffic> cells;
  heat.cpu_leaf.Collect(&cells);
  std::uint64_t touches = 0;
  for (const auto& cell : cells) touches += cell.touches;
  EXPECT_GT(touches, 0u);
  EXPECT_LT(touches, queries.size());
}

}  // namespace
}  // namespace hbtree
