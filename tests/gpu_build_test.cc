#include "hybrid/gpu_build.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/workload.h"
#include "hybrid/hb_implicit.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

struct Fixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

template <typename K>
class GpuBuildTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(GpuBuildTypedTest, KeyTypes);

TYPED_TEST(GpuBuildTypedTest, DeviceBuiltISegmentMatchesHostByteForByte) {
  using K = TypeParam;
  for (std::size_t n : {100ull, 5000ull, 300000ull}) {
    Fixture fx;
    typename HBImplicitTree<K>::Config config;
    HBImplicitTree<K> tree(config, &fx.registry, &fx.device, &fx.transfer);
    auto data = GenerateDataset<K>(n, /*seed=*/n);
    ASSERT_TRUE(tree.Build(data));  // uploads the host-built I-segment

    // Scribble over the device mirror, then rebuild it with the kernel.
    const auto& host = tree.host_tree();
    const std::size_t bytes = host.i_segment_node_count() * kCacheLineSize;
    std::memset(fx.device.HostView(tree.device_nodes()), 0xee, bytes);
    BuildISegmentOnDevice<K>(host, fx.device, fx.transfer,
                             tree.device_nodes());

    EXPECT_EQ(std::memcmp(fx.device.HostView(tree.device_nodes()),
                          host.i_segment_nodes(), bytes),
              0)
        << "n=" << n;
  }
}

TEST(GpuBuild, WorksForCpuLayoutToo) {
  // Fanout 9 (CPU layout): the ninth child has no key; the kernel's
  // subtree-max chain must still match the host build.
  Fixture fx;
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;  // CPU layout, huge pages
  ImplicitBTree<Key64> host(config, &registry);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/7);
  host.Build(data);

  const std::size_t bytes = host.i_segment_node_count() * kCacheLineSize;
  gpu::DevicePtr device_nodes = fx.device.Malloc(bytes);
  BuildISegmentOnDevice<Key64>(host, fx.device, fx.transfer, device_nodes);
  EXPECT_EQ(std::memcmp(fx.device.HostView(device_nodes),
                        host.i_segment_nodes(), bytes),
            0);
}

TEST(GpuBuild, TransfersLessThanFullSegmentUpload) {
  Fixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(1 << 20, /*seed=*/8);
  ASSERT_TRUE(tree.Build(data));

  const std::uint64_t before = fx.transfer.bytes_h2d();
  BuildISegmentOnDevice<Key64>(tree.host_tree(), fx.device, fx.transfer,
                               tree.device_nodes());
  const std::uint64_t maxima_bytes = fx.transfer.bytes_h2d() - before;
  // Uploading leaf maxima moves less data than the full I-segment.
  EXPECT_LT(maxima_bytes, tree.host_tree().i_segment_bytes());
}

}  // namespace
}  // namespace hbtree
