// Metrics registry tests: concurrent counter increments (meaningful under
// TSan), windowed-snapshot correctness, histogram percentiles against a
// sorted reference, LatencyHistogram merge/reset, and the no-NaN JSON
// guarantee the validator relies on.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/serve_stats.h"

namespace hbtree::obs {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) hits.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.Collect().counter_or("test.hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.c");
  Counter& b = registry.counter("test.c");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, WindowedCountersReportDeltas) {
  MetricsRegistry registry;
  Counter& ops = registry.counter("test.ops");
  ops.Add(5);
  MetricsSnapshot w1 = registry.CollectWindow();
  EXPECT_TRUE(w1.windowed);
  EXPECT_EQ(w1.counter_or("test.ops"), 5u);

  ops.Add(7);
  MetricsSnapshot w2 = registry.CollectWindow();
  EXPECT_EQ(w2.counter_or("test.ops"), 7u);

  // An idle window reports zero, not the lifetime total.
  MetricsSnapshot w3 = registry.CollectWindow();
  EXPECT_EQ(w3.counter_or("test.ops"), 0u);

  // Lifetime collection is unaffected by window rolls.
  EXPECT_EQ(registry.Collect().counter_or("test.ops"), 12u);
}

TEST(MetricsRegistry, WindowedHistogramsReportIntervalOnly) {
  MetricsRegistry registry;
  Histogram& lat = registry.histogram("test.latency");
  for (int i = 0; i < 100; ++i) lat.Record(1'000);
  MetricsSnapshot w1 = registry.CollectWindow();
  ASSERT_EQ(w1.histograms.size(), 1u);
  EXPECT_EQ(w1.histograms[0].second.count, 100u);

  for (int i = 0; i < 40; ++i) lat.Record(2'000);
  MetricsSnapshot w2 = registry.CollectWindow();
  EXPECT_EQ(w2.histograms[0].second.count, 40u);

  // Lifetime folds every window plus the live interval.
  MetricsSnapshot lifetime = registry.Collect();
  EXPECT_EQ(lifetime.histograms[0].second.count, 140u);
  EXPECT_EQ(lat.count(), 140u);
}

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.level");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(0.75);
  EXPECT_EQ(g.value(), 0.75);
  g.Set(-3.5);
  EXPECT_EQ(registry.Collect().gauges[0].second, -3.5);
}

TEST(Histogram, PercentilesTrackSortedReference) {
  // Log-normal-ish latencies; the histogram's 4-sub-buckets-per-octave
  // resolution bounds any value's attribution error at ~12.5%.
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(10.0, 0.8);  // ~22us median
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  std::vector<std::uint64_t> samples;
  samples.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const auto ns = static_cast<std::uint64_t>(dist(rng));
    samples.push_back(ns);
    h.Record(ns);
  }
  std::sort(samples.begin(), samples.end());
  const auto reference = [&](double q) {
    return samples[static_cast<std::size_t>(q * (samples.size() - 1))] / 1e3;
  };
  const LatencySummary s = h.LifetimeSummary();
  EXPECT_EQ(s.count, samples.size());
  EXPECT_NEAR(s.p50_us, reference(0.50), reference(0.50) * 0.15);
  EXPECT_NEAR(s.p90_us, reference(0.90), reference(0.90) * 0.15);
  EXPECT_NEAR(s.p99_us, reference(0.99), reference(0.99) * 0.15);
  EXPECT_DOUBLE_EQ(s.max_us, samples.back() / 1e3);
  EXPECT_LE(s.p50_us, s.p90_us);
  EXPECT_LE(s.p90_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.max_us);
}

TEST(Histogram, ConcurrentRecordsKeepTotalCount) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(100 + t * 1000 + i % 97));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.LifetimeSummary().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, MergeFromAddsCountsAndPropagatesMax) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1'000);
  for (int i = 0; i < 50; ++i) b.Record(8'000);
  b.Record(1'000'000);
  a.MergeFrom(b);
  const LatencySummary s = a.Summarize();
  EXPECT_EQ(s.count, 151u);
  EXPECT_DOUBLE_EQ(s.max_us, 1'000.0);
  EXPECT_EQ(b.count(), 51u);  // source untouched
}

TEST(LatencyHistogram, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(5'000);
  h.Reset();
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max_us, 0.0);
  EXPECT_EQ(s.mean_us, 0.0);
}

TEST(MetricsRegistry, JsonIsFiniteAndNonFiniteBecomesNull) {
  MetricsRegistry registry;
  registry.counter("test.ops").Add(3);
  registry.gauge("test.ok").Set(1.5);
  registry.histogram("test.lat").Record(1'000);
  // An empty histogram must serialize as zeros, not NaN.
  registry.histogram("test.empty");
  std::string json = MetricsRegistry::ToJson(registry.Collect());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"hbtree.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.ops\":3"), std::string::npos);

  // A poisoned gauge serializes as null — the validator fails loudly
  // instead of a downstream parser choking on a bare NaN token.
  registry.gauge("test.poisoned")
      .Set(std::numeric_limits<double>::quiet_NaN());
  json = MetricsRegistry::ToJson(registry.Collect());
  EXPECT_NE(json.find("\"test.poisoned\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ServeStats, DefaultStatsHaveFiniteRates) {
  // The serving layer guards wall_seconds == 0; the struct itself must
  // start finite so an immediately-collected Stats() never reports NaN.
  serve::ServeStats stats;
  EXPECT_TRUE(std::isfinite(stats.reads_per_second));
  EXPECT_TRUE(std::isfinite(stats.updates_per_second));
  EXPECT_EQ(stats.reads_per_second, 0.0);
  const std::string text = stats.ToString();
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace hbtree::obs
