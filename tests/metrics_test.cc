// Metrics registry tests: concurrent counter increments (meaningful under
// TSan), windowed-snapshot correctness, histogram percentiles against a
// sorted reference, LatencyHistogram merge/reset, and the no-NaN JSON
// guarantee the validator relies on.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/serve_stats.h"

namespace hbtree::obs {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) hits.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.Collect().counter_or("test.hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.c");
  Counter& b = registry.counter("test.c");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, WindowedCountersReportDeltas) {
  MetricsRegistry registry;
  Counter& ops = registry.counter("test.ops");
  ops.Add(5);
  MetricsSnapshot w1 = registry.CollectWindow();
  EXPECT_TRUE(w1.windowed);
  EXPECT_EQ(w1.counter_or("test.ops"), 5u);

  ops.Add(7);
  MetricsSnapshot w2 = registry.CollectWindow();
  EXPECT_EQ(w2.counter_or("test.ops"), 7u);

  // An idle window reports zero, not the lifetime total.
  MetricsSnapshot w3 = registry.CollectWindow();
  EXPECT_EQ(w3.counter_or("test.ops"), 0u);

  // Lifetime collection is unaffected by window rolls.
  EXPECT_EQ(registry.Collect().counter_or("test.ops"), 12u);
}

TEST(MetricsRegistry, WindowedHistogramsReportIntervalOnly) {
  MetricsRegistry registry;
  Histogram& lat = registry.histogram("test.latency");
  for (int i = 0; i < 100; ++i) lat.Record(1'000);
  MetricsSnapshot w1 = registry.CollectWindow();
  ASSERT_EQ(w1.histograms.size(), 1u);
  EXPECT_EQ(w1.histograms[0].second.count, 100u);

  for (int i = 0; i < 40; ++i) lat.Record(2'000);
  MetricsSnapshot w2 = registry.CollectWindow();
  EXPECT_EQ(w2.histograms[0].second.count, 40u);

  // Lifetime folds every window plus the live interval.
  MetricsSnapshot lifetime = registry.Collect();
  EXPECT_EQ(lifetime.histograms[0].second.count, 140u);
  EXPECT_EQ(lat.count(), 140u);
}

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.level");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(0.75);
  EXPECT_EQ(g.value(), 0.75);
  g.Set(-3.5);
  EXPECT_EQ(registry.Collect().gauges[0].second, -3.5);
}

TEST(Histogram, PercentilesTrackSortedReference) {
  // Log-normal-ish latencies; the histogram's 4-sub-buckets-per-octave
  // resolution bounds any value's attribution error at ~12.5%.
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(10.0, 0.8);  // ~22us median
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  std::vector<std::uint64_t> samples;
  samples.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const auto ns = static_cast<std::uint64_t>(dist(rng));
    samples.push_back(ns);
    h.Record(ns);
  }
  std::sort(samples.begin(), samples.end());
  const auto reference = [&](double q) {
    return samples[static_cast<std::size_t>(q * (samples.size() - 1))] / 1e3;
  };
  const LatencySummary s = h.LifetimeSummary();
  EXPECT_EQ(s.count, samples.size());
  EXPECT_NEAR(s.p50_us, reference(0.50), reference(0.50) * 0.15);
  EXPECT_NEAR(s.p90_us, reference(0.90), reference(0.90) * 0.15);
  EXPECT_NEAR(s.p99_us, reference(0.99), reference(0.99) * 0.15);
  EXPECT_DOUBLE_EQ(s.max_us, samples.back() / 1e3);
  EXPECT_LE(s.p50_us, s.p90_us);
  EXPECT_LE(s.p90_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.max_us);
}

TEST(Histogram, ConcurrentRecordsKeepTotalCount) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(100 + t * 1000 + i % 97));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.LifetimeSummary().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, MergeFromAddsCountsAndPropagatesMax) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1'000);
  for (int i = 0; i < 50; ++i) b.Record(8'000);
  b.Record(1'000'000);
  a.MergeFrom(b);
  const LatencySummary s = a.Summarize();
  EXPECT_EQ(s.count, 151u);
  EXPECT_DOUBLE_EQ(s.max_us, 1'000.0);
  EXPECT_EQ(b.count(), 51u);  // source untouched
}

TEST(LatencyHistogram, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(5'000);
  h.Reset();
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max_us, 0.0);
  EXPECT_EQ(s.mean_us, 0.0);
}

TEST(MetricsRegistry, JsonIsFiniteAndNonFiniteBecomesNull) {
  MetricsRegistry registry;
  registry.counter("test.ops").Add(3);
  registry.gauge("test.ok").Set(1.5);
  registry.histogram("test.lat").Record(1'000);
  // An empty histogram must serialize as zeros, not NaN.
  registry.histogram("test.empty");
  std::string json = MetricsRegistry::ToJson(registry.Collect());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"hbtree.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.ops\":3"), std::string::npos);

  // A poisoned gauge serializes as null — the validator fails loudly
  // instead of a downstream parser choking on a bare NaN token.
  registry.gauge("test.poisoned")
      .Set(std::numeric_limits<double>::quiet_NaN());
  json = MetricsRegistry::ToJson(registry.Collect());
  EXPECT_NE(json.find("\"test.poisoned\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(LatencyHistogram, ExemplarReservoirIsBoundedAndKeepsTheTail) {
  LatencyHistogram h;
  // More distinct buckets than reservoir slots: 1us, 2us, 4us, ... The
  // reservoir must stay bounded and keep the highest buckets.
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 2 * LatencyHistogram::kMaxExemplars; ++i) {
    samples.push_back(std::uint64_t{1'000} << i);
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    Exemplar e;
    e.trace_id = 7;
    e.span_id = i + 1;
    e.shard = static_cast<int>(i);
    h.RecordWithExemplar(samples[i], e);
  }
  const std::vector<BucketExemplar> kept = h.Exemplars();
  ASSERT_EQ(kept.size(),
            static_cast<std::size_t>(LatencyHistogram::kMaxExemplars));
  // Sorted by bucket ascending, and the largest sample survived eviction.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_GT(kept[i].bucket, kept[i - 1].bucket);
  }
  EXPECT_EQ(kept.back().exemplar.wall_ns, samples.back());
  EXPECT_EQ(kept.back().exemplar.span_id, samples.size());
  // The evicted entries are the lowest buckets.
  EXPECT_EQ(kept.front().exemplar.wall_ns,
            samples[samples.size() - kept.size()]);
}

TEST(LatencyHistogram, ExemplarPerBucketKeepsTheMaxLatencySample) {
  LatencyHistogram h;
  // Same bucket (4 sub-buckets per octave: 1100 and 1250 both sit in
  // [1024, 1280)): the slower sample must win the slot, arrival order
  // irrelevant.
  Exemplar fast;
  fast.span_id = 1;
  Exemplar slow;
  slow.span_id = 2;
  h.RecordWithExemplar(1'250, slow);
  h.RecordWithExemplar(1'100, fast);
  std::vector<BucketExemplar> kept = h.Exemplars();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].exemplar.span_id, 2u);
  EXPECT_EQ(kept[0].exemplar.wall_ns, 1'250u);
}

TEST(LatencyHistogram, ExemplarThresholdFiltersTheBody) {
  LatencyHistogram h;
  h.SetExemplarThresholdNs(1'000'000);  // only ~1ms+ samples qualify
  Exemplar e;
  e.span_id = 1;
  h.RecordWithExemplar(10'000, e);  // body sample: recorded, no exemplar
  EXPECT_TRUE(h.Exemplars().empty());
  e.span_id = 2;
  h.RecordWithExemplar(2'000'000, e);
  ASSERT_EQ(h.Exemplars().size(), 1u);
  EXPECT_EQ(h.Exemplars()[0].exemplar.span_id, 2u);
  EXPECT_EQ(h.Summarize().count, 2u);  // both samples still counted
}

TEST(LatencyHistogram, MergeFromCarriesExemplarsAndKeepsTheBound) {
  // Shard-style reconciliation: per-shard histograms each carry a full
  // reservoir; the merged histogram must stay bounded and prefer the
  // global tail.
  LatencyHistogram merged;
  std::uint64_t span = 1;
  std::uint64_t max_ns = 0;
  for (int shard = 0; shard < 4; ++shard) {
    LatencyHistogram h;
    for (int i = 0; i < LatencyHistogram::kMaxExemplars; ++i) {
      const std::uint64_t ns = std::uint64_t{1'000}
                               << (shard + 2 * i % 16);
      Exemplar e;
      e.span_id = span++;
      e.shard = shard;
      h.RecordWithExemplar(ns, e);
      max_ns = std::max(max_ns, ns);
    }
    merged.MergeFrom(h);
  }
  const std::vector<BucketExemplar> kept = merged.Exemplars();
  ASSERT_LE(kept.size(),
            static_cast<std::size_t>(LatencyHistogram::kMaxExemplars));
  ASSERT_FALSE(kept.empty());
  EXPECT_EQ(kept.back().exemplar.wall_ns, max_ns);
  // Exemplars ride Summarize() and stay within the recorded range.
  const LatencySummary s = merged.Summarize();
  EXPECT_EQ(s.exemplars.size(), kept.size());
  for (const BucketExemplar& be : kept) {
    EXPECT_LE(be.exemplar.wall_ns / 1e3, s.max_us + 1e-9);
  }
}

TEST(Histogram, RollWindowAdaptsExemplarThresholdToTheTail) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  h.SetExemplarPercentile(0.99);
  // First interval: body at 10us, a 10% tail at 10ms — big enough that
  // the p99 rank lands inside the tail bucket. Threshold starts at 0,
  // so the first window captures from everywhere.
  for (int i = 0; i < 900; ++i) h.Record(10'000);
  for (int i = 0; i < 100; ++i) h.Record(10'000'000);
  (void)registry.CollectWindow();  // rolls the window, adapts threshold
  // Second interval: the threshold now sits at the previous p99, so a
  // body sample no longer takes an exemplar slot but a tail sample does.
  Exemplar body;
  body.span_id = 1;
  h.RecordWithExemplar(10'000, body);
  MetricsSnapshot after_body = registry.CollectWindow();
  EXPECT_TRUE(after_body.histograms[0].second.exemplars.empty());
  Exemplar tail;
  tail.span_id = 2;
  h.RecordWithExemplar(20'000'000, tail);
  MetricsSnapshot after_tail = registry.CollectWindow();
  ASSERT_EQ(after_tail.histograms[0].second.exemplars.size(), 1u);
  EXPECT_EQ(after_tail.histograms[0].second.exemplars[0].exemplar.span_id,
            2u);
}

TEST(MetricsRegistry, JsonCarriesExemplars) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat");
  Exemplar e;
  e.trace_id = 123456;
  e.span_id = 42;
  e.shard = 3;
  e.modelled_us = 17.5;
  h.RecordWithExemplar(5'000'000, e);
  const std::string json = MetricsRegistry::ToJson(registry.Collect());
  EXPECT_NE(json.find("\"exemplars\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":123456"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":3"), std::string::npos);
  EXPECT_NE(json.find("\"modelled_us\":17.5"), std::string::npos);
}

TEST(SloTracker, EstimateBadFractionInterpolatesTheSummary) {
  LatencySummary s;
  s.count = 1000;
  s.p50_us = 10;
  s.p90_us = 40;
  s.p99_us = 100;
  s.max_us = 500;
  // Above the max: nothing is bad. At/below p50: pessimistic half.
  EXPECT_DOUBLE_EQ(SloTracker::EstimateBadFraction(s, 600), 0.0);
  EXPECT_DOUBLE_EQ(SloTracker::EstimateBadFraction(s, 5), 0.5);
  // At the p99 point: ~1% above.
  EXPECT_NEAR(SloTracker::EstimateBadFraction(s, 100), 0.01, 1e-9);
  // Halfway between p90 and p99 in latency: between 10% and 1%.
  const double mid = SloTracker::EstimateBadFraction(s, 70);
  EXPECT_GT(mid, 0.01);
  EXPECT_LT(mid, 0.10);
  // Empty summaries are never bad.
  EXPECT_DOUBLE_EQ(SloTracker::EstimateBadFraction(LatencySummary{}, 1), 0.0);
}

TEST(SloTracker, RatioTargetBurnsWhenBadCountersOutpaceTheBudget) {
  MetricsRegistry registry;
  Counter& shed = registry.counter("test.shed");
  Counter& served = registry.counter("test.served");
  SloTracker tracker(&registry);
  SloSpec spec;
  spec.name = "shed_ratio";
  spec.kind = SloSpec::Kind::kRatio;
  spec.bad_counters = {"test.shed"};
  spec.total_counters = {"test.served", "test.shed"};
  spec.budget = 0.01;
  spec.long_windows = 3;
  tracker.AddTarget(spec);

  // Window 1: 5% shed — five times over a 1% budget.
  served.Add(95);
  shed.Add(5);
  tracker.Observe(registry.CollectWindow());
  std::vector<SloStatus> status = tracker.Status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_NEAR(status[0].bad_fraction, 0.05, 1e-9);
  EXPECT_NEAR(status[0].burn_short, 5.0, 1e-9);
  EXPECT_TRUE(status[0].burning);  // long window == the one bad window

  // Two clean windows: the short burn clears; the long window still
  // carries the earlier damage, so the page-worthy AND goes quiet.
  for (int i = 0; i < 2; ++i) {
    served.Add(100);
    tracker.Observe(registry.CollectWindow());
  }
  status = tracker.Status();
  EXPECT_DOUBLE_EQ(status[0].burn_short, 0.0);
  EXPECT_GT(status[0].burn_long, 1.0);  // 5 bad of ~305 total / 1% budget
  EXPECT_FALSE(status[0].burning);
  EXPECT_EQ(status[0].windows, 3u);

  // Burn gauges ride the registry for every exporter.
  const MetricsSnapshot snap = registry.Collect();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "slo.shed_ratio.burn_long") {
      found = true;
      EXPECT_GT(value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SloTracker, LatencyTargetReadsTheWindowHistogram) {
  MetricsRegistry registry;
  Histogram& lat = registry.histogram("test.lat");
  SloTracker tracker(&registry);
  SloSpec spec;
  spec.name = "p99";
  spec.kind = SloSpec::Kind::kLatencyP99;
  spec.histogram = "test.lat";
  spec.threshold_us = 100.0;
  spec.budget = 0.01;
  tracker.AddTarget(spec);

  // A window comfortably under the threshold: no burn.
  for (int i = 0; i < 1000; ++i) lat.Record(10'000);  // 10us
  tracker.Observe(registry.CollectWindow());
  EXPECT_DOUBLE_EQ(tracker.Status()[0].burn_short, 0.0);

  // A window whose tail blows through 100us: the estimated bad fraction
  // exceeds the 1% budget and the short burn lights up.
  for (int i = 0; i < 900; ++i) lat.Record(10'000);
  for (int i = 0; i < 100; ++i) lat.Record(1'000'000);  // 1ms tail
  tracker.Observe(registry.CollectWindow());
  const SloStatus status = tracker.Status()[0];
  EXPECT_GT(status.bad_fraction, 0.01);
  EXPECT_GT(status.burn_short, 1.0);
}

TEST(ServeStats, ToStringReportsSloBurnState) {
  serve::ServeStats stats;
  SloStatus slo;
  slo.name = "read_p99";
  slo.budget = 0.01;
  slo.bad_fraction = 0.05;
  slo.burn_short = 5.0;
  slo.burn_long = 2.0;
  slo.windows = 4;
  slo.burning = true;
  stats.slos.push_back(slo);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("slo read_p99"), std::string::npos);
  EXPECT_NE(text.find("** BURNING **"), std::string::npos);
}

TEST(ServeStats, DefaultStatsHaveFiniteRates) {
  // The serving layer guards wall_seconds == 0; the struct itself must
  // start finite so an immediately-collected Stats() never reports NaN.
  serve::ServeStats stats;
  EXPECT_TRUE(std::isfinite(stats.reads_per_second));
  EXPECT_TRUE(std::isfinite(stats.updates_per_second));
  EXPECT_EQ(stats.reads_per_second, 0.0);
  const std::string text = stats.ToString();
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace hbtree::obs
