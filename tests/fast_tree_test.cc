#include "fast/fast_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/workload.h"

namespace hbtree {
namespace {

template <typename K>
class FastTreeTypedTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<Key64, Key32>;
TYPED_TEST_SUITE(FastTreeTypedTest, KeyTypes);

TYPED_TEST(FastTreeTypedTest, FindsAllKeys) {
  using K = TypeParam;
  PageRegistry registry;
  typename FastTree<K>::Config config;
  FastTree<K> tree(config, &registry);
  auto data = GenerateDataset<K>(40000, /*seed=*/1);
  tree.Build(data);
  for (std::size_t i = 0; i < data.size(); i += 3) {
    auto result = tree.Search(data[i].key);
    ASSERT_TRUE(result.found) << i;
    EXPECT_EQ(result.value, data[i].value);
  }
}

TYPED_TEST(FastTreeTypedTest, LowerBoundMatchesStd) {
  using K = TypeParam;
  PageRegistry registry;
  typename FastTree<K>::Config config;
  FastTree<K> tree(config, &registry);
  auto data = GenerateDataset<K>(12345, /*seed=*/2);  // non-power-of-two
  tree.Build(data);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    K probe = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax));
    auto it = std::lower_bound(
        data.begin(), data.end(), probe,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    std::uint64_t expect = static_cast<std::uint64_t>(it - data.begin());
    std::uint64_t got = tree.LowerBoundIndex(probe);
    // Positions beyond the data are all equivalent misses.
    if (expect == data.size()) {
      EXPECT_GE(got, data.size());
    } else {
      EXPECT_EQ(got, expect) << probe;
    }
  }
}

TYPED_TEST(FastTreeTypedTest, MissesReportedAsNotFound) {
  using K = TypeParam;
  PageRegistry registry;
  typename FastTree<K>::Config config;
  FastTree<K> tree(config, &registry);
  std::vector<KeyValue<K>> data;
  for (K k = 10; k < 2000; k += 10) data.push_back({k, k + 1});
  tree.Build(data);
  EXPECT_FALSE(tree.Search(K{15}).found);
  EXPECT_FALSE(tree.Search(K{5}).found);
  EXPECT_FALSE(tree.Search(K{100000}).found);
  EXPECT_TRUE(tree.Search(K{10}).found);
  EXPECT_TRUE(tree.Search(K{1990}).found);
}

TYPED_TEST(FastTreeTypedTest, BlockGeometry) {
  using K = TypeParam;
  // 64-bit: 3 binary levels per 64-byte line; 32-bit: 4 levels.
  if constexpr (sizeof(K) == 8) {
    EXPECT_EQ(FastTree<K>::kBlockDepth, 3);
    EXPECT_EQ(FastTree<K>::kBlockFanout, 8);
  } else {
    EXPECT_EQ(FastTree<K>::kBlockDepth, 4);
    EXPECT_EQ(FastTree<K>::kBlockFanout, 16);
  }
  PageRegistry registry;
  typename FastTree<K>::Config config;
  FastTree<K> tree(config, &registry);
  auto data = GenerateDataset<K>(100000, /*seed=*/4);
  tree.Build(data);
  EXPECT_EQ(tree.depth() % FastTree<K>::kBlockDepth, 0);
  EXPECT_EQ(tree.block_levels(), tree.depth() / FastTree<K>::kBlockDepth);
}

TEST(FastTreeTrace, OneLineAccessPerBlockLevel) {
  PageRegistry registry;
  FastTree<Key64>::Config config;
  FastTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(500000, /*seed=*/5);
  tree.Build(data);
  struct CountingTracer {
    int accesses = 0;
    void OnAccess(const void*, std::size_t) { ++accesses; }
    void OnQueryStart() {}
    void OnQueryEnd() {}
  } tracer;
  tree.Search(data[777].key, &tracer);
  // One line per block level plus the key-value access.
  EXPECT_EQ(tracer.accesses, tree.block_levels() + 1);
}

}  // namespace
}  // namespace hbtree
