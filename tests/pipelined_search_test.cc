#include "cpubtree/pipelined_search.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/workload.h"

namespace hbtree {
namespace {

/// Property sweep: software-pipelined batch search (Algorithm 2) must
/// return exactly what per-query Search returns, for every pipeline
/// depth, both tree variants, hit and miss queries, and odd batch sizes.
class PipelinedSearchTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PipelinedSearchTest, ImplicitMatchesPlainSearch) {
  const auto [depth, count] = GetParam();
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(30000, /*seed=*/1);
  tree.Build(data);

  auto queries = MakeDistributedQueries<Key64>(count, Distribution::kUniform,
                                               /*seed=*/2);
  // Mix in guaranteed hits and the above-maximum edge case.
  for (std::size_t i = 0; i < queries.size(); i += 3) {
    queries[i] = data[(i * 7919) % data.size()].key;
  }
  if (!queries.empty()) queries.back() = KeyTraits<Key64>::kMax - 1;

  std::vector<LookupResult<Key64>> results(queries.size());
  PipelinedSearch(tree, queries.data(), queries.size(), depth,
                  results.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << "depth " << depth << " i "
                                              << i;
    ASSERT_EQ(results[i].value, expect.value);
  }
}

TEST_P(PipelinedSearchTest, RegularMatchesPlainSearch) {
  const auto [depth, count] = GetParam();
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(30000, /*seed=*/3);
  tree.Build(data);

  auto queries = MakeDistributedQueries<Key64>(count, Distribution::kUniform,
                                               /*seed=*/4);
  for (std::size_t i = 0; i < queries.size(); i += 3) {
    queries[i] = data[(i * 104729) % data.size()].key;
  }

  std::vector<LookupResult<Key64>> results(queries.size());
  PipelinedSearch(tree, queries.data(), queries.size(), depth,
                  results.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found);
    ASSERT_EQ(results[i].value, expect.value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndSizes, PipelinedSearchTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(std::size_t{1}, std::size_t{15},
                                         std::size_t{4096},
                                         std::size_t{4097})));

}  // namespace
}  // namespace hbtree
