#include "cpubtree/pipelined_search.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/workload.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/load_balancer.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

/// Property sweep: software-pipelined batch search (Algorithm 2) must
/// return exactly what per-query Search returns, for every pipeline
/// depth, both tree variants, hit and miss queries, and odd batch sizes.
class PipelinedSearchTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PipelinedSearchTest, ImplicitMatchesPlainSearch) {
  const auto [depth, count] = GetParam();
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  ImplicitBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(30000, /*seed=*/1);
  tree.Build(data);

  auto queries = MakeDistributedQueries<Key64>(count, Distribution::kUniform,
                                               /*seed=*/2);
  // Mix in guaranteed hits and the above-maximum edge case.
  for (std::size_t i = 0; i < queries.size(); i += 3) {
    queries[i] = data[(i * 7919) % data.size()].key;
  }
  if (!queries.empty()) queries.back() = KeyTraits<Key64>::kMax - 1;

  std::vector<LookupResult<Key64>> results(queries.size());
  PipelinedSearch(tree, queries.data(), queries.size(), depth,
                  results.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found) << "depth " << depth << " i "
                                              << i;
    ASSERT_EQ(results[i].value, expect.value);
  }
}

TEST_P(PipelinedSearchTest, RegularMatchesPlainSearch) {
  const auto [depth, count] = GetParam();
  PageRegistry registry;
  RegularBTree<Key64>::Config config;
  RegularBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(30000, /*seed=*/3);
  tree.Build(data);

  auto queries = MakeDistributedQueries<Key64>(count, Distribution::kUniform,
                                               /*seed=*/4);
  for (std::size_t i = 0; i < queries.size(); i += 3) {
    queries[i] = data[(i * 104729) % data.size()].key;
  }

  std::vector<LookupResult<Key64>> results(queries.size());
  PipelinedSearch(tree, queries.data(), queries.size(), depth,
                  results.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = tree.Search(queries[i]);
    ASSERT_EQ(results[i].found, expect.found);
    ASSERT_EQ(results[i].value, expect.value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndSizes, PipelinedSearchTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(std::size_t{1}, std::size_t{15},
                                         std::size_t{4096},
                                         std::size_t{4097})));

// -- DiscoverLoadBalance regression coverage --------------------------------
//
// The discovery algorithm (Section 5.5, Algorithm 1) assumes a tree with
// at least two inner levels and a non-empty sample. These tests pin the
// degenerate-input behaviour: no out-of-range D may ever escape, and
// meaningless samples must not drift R away from the all-GPU default.

struct LoadBalanceFixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree{config, &registry, &device, &transfer};
  std::vector<KeyValue<Key64>> data;

  void BuildTree(std::size_t n, std::uint64_t seed) {
    data = GenerateDataset<Key64>(n, seed);
    ASSERT_TRUE(tree.Build(data));
  }

  PipelineConfig BaseConfig() const {
    PipelineConfig base;
    base.bucket_size = 512;
    base.cpu_queries_per_us = 20.0;
    base.cpu_descend_us_per_level = 0.01;
    return base;
  }
};

TEST(DiscoverLoadBalanceRegression, EmptySampleReturnsAllGpuDefault) {
  LoadBalanceFixture fx;
  fx.BuildTree(100000, /*seed=*/21);
  auto setting =
      DiscoverLoadBalance(fx.tree, static_cast<const Key64*>(nullptr), 0,
                          fx.BaseConfig());
  EXPECT_EQ(setting.d, 0);
  EXPECT_EQ(setting.r, 1.0);
}

TEST(DiscoverLoadBalanceRegression, TinyTreeHasNoLevelToShift) {
  LoadBalanceFixture fx;
  // A handful of keys fit under a single inner level (height < 2):
  // max_d == 0, so discovery must stay at the all-GPU setting rather
  // than prescribing partial descents no component can execute.
  fx.BuildTree(16, /*seed=*/22);
  ASSERT_LT(fx.tree.host_tree().height(), 2);
  std::vector<Key64> queries(256);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = fx.data[i % fx.data.size()].key;
  }
  auto setting = DiscoverLoadBalance(fx.tree, queries.data(), queries.size(),
                                     fx.BaseConfig());
  EXPECT_EQ(setting.d, 0);
  EXPECT_EQ(setting.r, 1.0);
}

TEST(DiscoverLoadBalanceRegression, DiscoveredSettingStaysInRange) {
  LoadBalanceFixture fx;
  fx.BuildTree(200000, /*seed=*/23);
  const int height = fx.tree.host_tree().height();
  ASSERT_GE(height, 2);
  auto queries = MakeLookupQueries(fx.data, /*seed=*/24);
  queries.resize(4096);
  auto setting = DiscoverLoadBalance(fx.tree, queries.data(), queries.size(),
                                     fx.BaseConfig());
  EXPECT_GE(setting.d, 0);
  EXPECT_LE(setting.d, height - 2);
  EXPECT_GE(setting.r, 0.0);
  EXPECT_LE(setting.r, 1.0);
  EXPECT_GT(setting.sample_gpu_us, 0.0);
}

}  // namespace
}  // namespace hbtree
