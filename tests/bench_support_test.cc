#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/calibrate.h"
#include "bench_support/harness.h"
#include "bench_support/report.h"
#include "bench_support/table.h"
#include "cpubtree/implicit_btree.h"

namespace hbtree::bench {
namespace {

TEST(Args, ParsesTypesAndDefaults) {
  const char* argv[] = {"prog", "--n_log2=22", "--platform=m2",
                        "--ratio=0.25", "--flag"};
  Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("n_log2", 10), 22);
  EXPECT_EQ(args.GetString("platform", "m1"), "m2");
  EXPECT_DOUBLE_EQ(args.GetDouble("ratio", 0.5), 0.25);
  EXPECT_EQ(args.GetString("flag", ""), "true");
  EXPECT_TRUE(args.Has("flag"));
  EXPECT_FALSE(args.Has("missing"));
  EXPECT_EQ(args.GetInt("missing", 7), 7);
}

TEST(Harness, SizeSweepRespectsBoundsAndStep) {
  const char* argv[] = {"prog", "--min_log2=10", "--max_log2=14"};
  Args args(3, const_cast<char**>(argv));
  auto sizes = SizeSweepFromArgs(args, 0, 0, 2);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1024u);
  EXPECT_EQ(sizes[1], 4096u);
  EXPECT_EQ(sizes[2], 16384u);
}

TEST(TableFormat, NumbersAndSizes) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10, 0), "10");
  EXPECT_EQ(Table::Log2Size(1 << 20), "1M (2^20)");
  EXPECT_EQ(Table::Log2Size(8 << 20), "8M (2^23)");
  EXPECT_EQ(Table::Log2Size(1 << 12), "4K (2^12)");
  EXPECT_EQ(Table::Log2Size(std::size_t{1} << 30), "1G (2^30)");
}

TEST(Calibrate, BiggerTreesAreSlower) {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  double previous = 1e18;
  for (std::size_t n : {std::size_t{1} << 16, std::size_t{1} << 20,
                        std::size_t{1} << 23}) {
    PageRegistry registry;
    ImplicitBTree<Key64>::Config config;
    ImplicitBTree<Key64> tree(config, &registry);
    auto data = GenerateDataset<Key64>(n, 1);
    tree.Build(data);
    auto queries = MakeLookupQueries(data, 2);
    auto m = MeasureCpuSearch(tree, queries, platform, registry,
                              config.search_algo);
    EXPECT_GT(m.estimate.mqps, 0);
    EXPECT_LE(m.estimate.mqps, previous + 1e-9) << n;
    previous = m.estimate.mqps;
  }
}

TEST(Calibrate, LeafRateExceedsFullSearchRate) {
  // The CPU's HB+-tree share (one leaf line) must be far cheaper than a
  // whole traversal — the premise of the hybrid split.
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  ImplicitBTree<Key64>::Config config;
  config.hybrid_layout = true;
  ImplicitBTree<Key64> tree(config, &registry);
  auto data = GenerateDataset<Key64>(1 << 21, 3);
  tree.Build(data);
  auto queries = MakeLookupQueries(data, 4);
  auto full = MeasureCpuSearch(tree, queries, platform, registry,
                               config.search_algo);
  auto rates = CalibrateHbCpuRates(tree, queries, platform, registry);
  EXPECT_GT(rates.leaf_queries_per_us, 1.5 * full.estimate.mqps);
  // Per-depth descent costs are monotone in depth.
  for (std::size_t d = 1; d < rates.descend_us_by_depth.size(); ++d) {
    EXPECT_GT(rates.descend_us_by_depth[d],
              rates.descend_us_by_depth[d - 1]);
  }
}

TEST(BenchReport, RowsKeepInsertionOrderInJson) {
  BenchReport report("unit");
  report.Meta("platform", "m1");
  report.MetaNum("n", 1024);
  report.AddRow().Num("mqps", 12.5, 1).Text("mode", "sync");
  report.AddRow().Num("mqps", 31.25, 2);
  const std::string json = report.ToJson();
  EXPECT_EQ(json.rfind("{\"schema\":\"hbtree.bench.v1\"", 0), 0u);
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"platform\":\"m1\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":1024"), std::string::npos);
  // JSON keeps full precision regardless of the console precision.
  EXPECT_NE(json.find("\"mqps\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"mqps\":31.25"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"sync\""), std::string::npos);
  // No metrics argument, no metrics key.
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(BenchReport, AddServeStatsRowUsesCanonicalColumns) {
  serve::ServeStats stats;
  stats.num_shards = 4;
  stats.num_read_workers = 2;
  stats.reads_per_second = 1000;
  stats.transfer_retries = 2;
  stats.kernel_retries = 1;
  stats.sync_retries = 4;
  stats.shed_reads = 3;
  stats.shed_updates = 2;
  BenchReport report("unit");
  BenchReport::Row& row = report.AddRow();
  row.Num("fault_rate", 0.1, 2);
  report.AddServeStatsRow(row, stats);
  const std::string json = report.ToJson();
  // The canonical serving column set — every serve bench emits exactly
  // these names, so downstream tooling never chases renamed columns.
  for (const char* column :
       {"fault_rate", "shards", "read_workers", "reads_per_s",
        "updates_per_s", "read_p50_us", "read_p99_us", "queue_wait_p99_us",
        "modelled_ops_per_s", "retries", "device_faults", "breaker_opens",
        "breaker_closes", "cpu_fallback_buckets", "shed", "slo_max_burn"}) {
    EXPECT_NE(json.find(std::string("\"") + column + "\":"),
              std::string::npos)
        << column;
  }
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"read_workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":7"), std::string::npos);  // 2 + 1 + 4
  EXPECT_NE(json.find("\"shed\":5"), std::string::npos);     // 3 + 2
}

TEST(BenchReport, SloMaxBurnReportsTheWorstObjective) {
  serve::ServeStats stats;
  obs::SloStatus mild;
  mild.name = "a";
  mild.burn_short = 0.5;
  obs::SloStatus hot;
  hot.name = "b";
  hot.burn_short = 3.25;
  stats.slos = {mild, hot};
  BenchReport report("unit");
  report.AddServeStatsRow(report.AddRow(), stats);
  EXPECT_NE(report.ToJson().find("\"slo_max_burn\":3.25"),
            std::string::npos);
}

TEST(BenchReport, SetStagesEmitsTheWaterfallSection) {
  obs::StageWaterfall waterfall;
  obs::StageStats kernel;
  kernel.count = 10;
  kernel.total_us = 300;
  kernel.max_us = 50;
  kernel.share = 0.75;
  obs::StageStats h2d;
  h2d.count = 10;
  h2d.total_us = 100;
  h2d.max_us = 20;
  h2d.share = 0.25;
  waterfall.total_us = 400;
  waterfall.stages = {{"kernel", kernel}, {"h2d", h2d}};
  obs::StageGroup group;
  group.name = "shard0/slot1";
  group.stages = {{"kernel", kernel}};
  waterfall.groups = {group};

  BenchReport report("unit");
  report.AddRow().Num("x", 1, 0);
  report.SetStages(waterfall);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"stages\":{\"total_us\":400"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":{\"kernel\":{\"count\":10,"
                      "\"total_us\":300,\"mean_us\":30,\"max_us\":50,"
                      "\"share\":0.75}"),
            std::string::npos);
  EXPECT_NE(json.find("\"groups\":{\"shard0/slot1\":{\"kernel\":"),
            std::string::npos);

  // An empty waterfall (e.g. tracing compiled out) emits no section at
  // all rather than a zero-filled one.
  BenchReport bare("unit");
  bare.AddRow().Num("x", 1, 0);
  bare.SetStages(obs::StageWaterfall{});
  EXPECT_EQ(bare.ToJson().find("\"stages\""), std::string::npos);
}

TEST(BenchReport, EmbedsMetricsSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("unit.ops").Add(9);
  BenchReport report("unit");
  report.AddRow().Num("x", 1, 0);
  const obs::MetricsSnapshot snapshot = registry.Collect();
  const std::string json = report.ToJson(&snapshot);
  EXPECT_NE(json.find("\"metrics\":{\"schema\":\"hbtree.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"unit.ops\":9"), std::string::npos);
}

TEST(BenchReport, AddRowReferencesSurviveGrowth) {
  BenchReport report("unit");
  BenchReport::Row& first = report.AddRow();
  for (int i = 0; i < 100; ++i) report.AddRow().Num("i", i, 0);
  first.Num("late", 7, 0);  // must not be a dangling reference
  EXPECT_NE(report.ToJson().find("\"late\":7"), std::string::npos);
}

TEST(Calibrate, RebuildModelScalesLinearly) {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  RebuildModel small = ModelImplicitRebuild(1 << 20, 1 << 17, platform);
  RebuildModel large = ModelImplicitRebuild(1 << 24, 1 << 21, platform);
  EXPECT_NEAR(large.l_build_us / small.l_build_us, 16.0, 0.1);
  EXPECT_GT(large.transfer_us, small.transfer_us);
  // Transfer stays a small share of the total (Figure 15).
  const double share =
      large.transfer_us /
      (large.l_build_us + large.i_build_us + large.transfer_us);
  EXPECT_LT(share, 0.12);
}

}  // namespace
}  // namespace hbtree::bench
