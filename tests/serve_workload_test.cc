// Differential coverage for the YCSB-style workload harness: every
// standard mix A–F (plus the hotspot and scan-heavy matrix variants) is
// replayed through the sharded serving front-end while a std::map
// oracle tracks expected state, and the skewed scenarios are checked to
// actually produce the per-shard imbalance they promise.
//
// Oracle exactness under concurrency rests on the OpStream contract
// (op_stream.h): mutating ops stay on the client's own residue class of
// the record index space and fresh insert keys are minted per-client
// disjoint, so each client can serialize its own mutations (future-
// fenced delete+insert — the tree treats a duplicate insert as a no-op,
// regular_btree.h, so a value change must delete first) and keep a
// per-client exact map. Reads and scans roam the whole key space:
//  - mixes with no blind updates and no RMW (C, D) check every read
//    exactly in flight — bootstrap values never change and the only new
//    keys a client's chooser can pick are its own committed inserts;
//  - mixes with updates/RMW check status and ordering invariants in
//    flight (a concurrent delete+insert toggle makes mid-run values
//    unknowable) and rely on the final quiesced sweep for exactness;
//  - RMW does a blocking read whose value is checked against the
//    client's own map — a lost update surfaces as a version mismatch.
// After the clients join, the merged oracle is swept with point lookups
// for every live key and with range scans that straddle the shard
// bounds Init() derives (data[n*i/4].key starts shard i).
//
// Runs cleanly under ASan and TSan: all cross-thread state is either
// futures, per-thread maps merged after join, or the server's own
// internals.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "workload/dataset.h"
#include "workload/op_stream.h"
#include "workload/spec.h"

namespace hbtree::workload {
namespace {

constexpr int kClients = 3;
constexpr std::size_t kOpsPerClient = 320;
constexpr std::size_t kBootstrap = 4096;
constexpr std::uint64_t kSeed = 2016;
constexpr std::size_t kReadWindow = 128;

// Same shape as serve_shard_stress_test: small buckets and batches so
// many buckets dispatch per shard, fixed CPU rates so modelled costs
// are deterministic.
serve::ServerOptions ShardedOptions(int shards = 4, int read_workers = 2) {
  serve::ServerOptions options;
  options.num_shards = shards;
  options.num_read_workers = read_workers;
  options.pipeline.bucket_size = 512;
  options.pipeline.cpu_queries_per_us = 20.0;
  options.pipeline.cpu_descend_us_per_level = 0.01;
  options.min_sub_bucket = 64;
  options.update_batch_size = 256;
  return options;
}

UpdateQuery<Key64> Insert(Key64 key, Key64 value) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kInsert,
                            KeyValue<Key64>{key, value}};
}

UpdateQuery<Key64> Delete(Key64 key) {
  return UpdateQuery<Key64>{UpdateQuery<Key64>::Kind::kDelete,
                            KeyValue<Key64>{key, 0}};
}

std::uint64_t HistogramCount(const obs::MetricsSnapshot& snapshot,
                             const std::string& name) {
  for (const auto& [metric, summary] : snapshot.histograms) {
    if (metric == name) return summary.count;
  }
  return 0;
}

// One client's replay: serialized own-key mutations against a local
// exact map, windowed async reads/scans with the strongest check the
// mix allows. `*own_out` ends up as the client's final own-key map
// (merged into the shared oracle after join). Void so ASSERT_* works.
void ReplayClient(serve::Server<Key64>& server, const WorkloadSpec& spec,
                  const BootstrapDataset& dataset,
                  const std::map<Key64, Key64>& bootstrap, int client,
                  std::map<Key64, Key64>* own_out) {
  OpStream stream(spec, &dataset, client, kClients, kSeed);
  std::map<Key64, Key64>& own = *own_out;
  // Reads are exactly checkable in flight iff no client blind-writes or
  // RMWs existing keys (see file comment).
  const bool exact_reads = spec.update_bp == 0 && spec.rmw_bp == 0;

  struct PendingRead {
    std::future<serve::ReadResult<Key64>> future;
    Key64 key = 0;
    int scan_len = 0;  // 0 = point lookup
    bool check_exact = false;
    Key64 expected = 0;
  };
  std::deque<PendingRead> window;

  auto expected_value = [&](Key64 key) {
    auto it = own.find(key);
    if (it != own.end()) return it->second;
    auto bit = bootstrap.find(key);
    EXPECT_NE(bit, bootstrap.end()) << "op key " << key << " untracked";
    return bit == bootstrap.end() ? Key64{0} : bit->second;
  };

  auto harvest = [&](PendingRead pending) {
    serve::ReadResult<Key64> result = pending.future.get();
    ASSERT_TRUE(result.status.ok()) << result.status.message();
    if (pending.scan_len > 0) {
      ASSERT_LE(result.range.size(),
                static_cast<std::size_t>(pending.scan_len));
      Key64 previous = 0;
      for (const auto& kv : result.range) {
        EXPECT_GE(kv.key, pending.key);
        EXPECT_GT(kv.key, previous) << "scan results not strictly sorted";
        previous = kv.key;
      }
      return;
    }
    if (pending.check_exact) {
      EXPECT_TRUE(result.lookup.found) << "key " << pending.key;
      EXPECT_EQ(result.lookup.value, pending.expected)
          << "key " << pending.key;
    }
  };

  auto drain_to = [&](std::size_t depth) {
    while (window.size() > depth) {
      harvest(std::move(window.front()));
      window.pop_front();
      if (::testing::Test::HasFatalFailure()) return;
    }
  };

  for (std::size_t i = 0; i < kOpsPerClient; ++i) {
    const Op op = stream.Next();
    switch (op.kind) {
      case OpKind::kRead: {
        PendingRead pending;
        pending.key = op.key;
        if (exact_reads) {
          pending.check_exact = true;
          pending.expected = expected_value(op.key);
        }
        pending.future = server.SubmitLookup(op.key);
        window.push_back(std::move(pending));
        break;
      }
      case OpKind::kScan: {
        PendingRead pending;
        pending.key = op.key;
        pending.scan_len = op.scan_len;
        pending.future = server.SubmitRange(op.key, op.scan_len);
        window.push_back(std::move(pending));
        break;
      }
      case OpKind::kUpdate: {
        // Value change = fenced delete+insert (duplicate insert is a
        // no-op); both commits awaited so `own` stays exact.
        const serve::UpdateResult dropped =
            server.SubmitUpdate(Delete(op.key)).get();
        ASSERT_TRUE(dropped.status.ok()) << dropped.status.message();
        const serve::UpdateResult added =
            server.SubmitUpdate(Insert(op.key, op.value)).get();
        ASSERT_TRUE(added.status.ok()) << added.status.message();
        own[op.key] = op.value;
        break;
      }
      case OpKind::kInsert: {
        const serve::UpdateResult added =
            server.SubmitUpdate(Insert(op.key, op.value)).get();
        ASSERT_TRUE(added.status.ok()) << added.status.message();
        own[op.key] = op.value;
        break;
      }
      case OpKind::kReadModifyWrite: {
        // Dependent read: the blocking lookup must observe this
        // client's latest committed value — a mismatch is a lost
        // update. The write bumps a version so every RMW is visible in
        // the final sweep.
        const serve::ReadResult<Key64> read =
            server.SubmitLookup(op.key).get();
        ASSERT_TRUE(read.status.ok()) << read.status.message();
        ASSERT_TRUE(read.lookup.found) << "rmw key " << op.key;
        const Key64 before = expected_value(op.key);
        ASSERT_EQ(read.lookup.value, before)
            << "rmw read of own key " << op.key << " lost an update";
        const Key64 after = before + 1;
        const serve::UpdateResult dropped =
            server.SubmitUpdate(Delete(op.key)).get();
        ASSERT_TRUE(dropped.status.ok()) << dropped.status.message();
        const serve::UpdateResult added =
            server.SubmitUpdate(Insert(op.key, after)).get();
        ASSERT_TRUE(added.status.ok()) << added.status.message();
        own[op.key] = after;
        break;
      }
    }
    drain_to(kReadWindow);
    if (::testing::Test::HasFatalFailure()) return;
  }
  drain_to(0);
}

// Full differential run of one matrix scenario (forced onto the
// sequential bootstrap dataset so shard bounds and append headroom are
// predictable): concurrent clients with in-flight checks, then a
// quiesced exact sweep of every live key and boundary-straddling scans.
void RunDifferential(const std::string& scenario_name) {
  Scenario scenario;
  ASSERT_TRUE(FindScenario(scenario_name, &scenario)) << scenario_name;

  const BootstrapDataset dataset =
      MakeSequentialDataset(kBootstrap, /*value_seed=*/kSeed);
  std::map<Key64, Key64> bootstrap;
  for (const auto& kv : dataset.pairs) bootstrap.emplace(kv.key, kv.value);

  Status status;
  auto server =
      serve::Server<Key64>::Create(ShardedOptions(), dataset.pairs, &status);
  ASSERT_NE(server, nullptr) << status.message();

  std::vector<std::map<Key64, Key64>> overlays(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ReplayClient(*server, scenario.spec, dataset, bootstrap, c,
                     &overlays[c]);
      });
    }
    for (auto& thread : clients) thread.join();
  }
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  // Merge: bootstrap overlaid with every client's own-key map. The
  // OpStream contract keeps overlay key sets disjoint across clients
  // (workload_test pins that property down); verify it held here too.
  std::map<Key64, Key64> reference = bootstrap;
  std::size_t overlay_keys = 0;
  std::map<Key64, Key64> merged_overlay;
  for (const auto& overlay : overlays) {
    overlay_keys += overlay.size();
    for (const auto& [key, value] : overlay) {
      reference[key] = value;
      merged_overlay[key] = value;
    }
  }
  EXPECT_EQ(merged_overlay.size(), overlay_keys)
      << "clients mutated overlapping keys — oracle not exact";

  // Quiesced exact sweep: every live key must hold the oracle's value.
  {
    std::deque<std::pair<std::future<serve::ReadResult<Key64>>,
                         std::pair<Key64, Key64>>>
        sweep;
    auto harvest_one = [&] {
      auto [future, kv] = std::move(sweep.front());
      sweep.pop_front();
      const serve::ReadResult<Key64> result = future.get();
      ASSERT_TRUE(result.status.ok()) << result.status.message();
      ASSERT_TRUE(result.lookup.found) << "key " << kv.first;
      ASSERT_EQ(result.lookup.value, kv.second) << "key " << kv.first;
    };
    for (const auto& [key, value] : reference) {
      sweep.emplace_back(server->SubmitLookup(key),
                         std::pair<Key64, Key64>{key, value});
      if (sweep.size() > 256) {
        harvest_one();
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
      }
    }
    while (!sweep.empty()) {
      harvest_one();
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
  }

  // Boundary-crossing scans: starts just below each shard bound (the
  // key at index n*i/4 starts shard i) so the range pipeline has to
  // continue into the next shard, plus the domain edges.
  const std::size_t n = dataset.pairs.size();
  std::vector<Key64> starts = {
      dataset.pairs.front().key,
      dataset.pairs[n / 4].key - 3,
      dataset.pairs[n / 2].key - 3,
      dataset.pairs[3 * n / 4].key - 3,
      dataset.pairs[n - 1].key,  // tail: runs into appended keys, if any
  };
  constexpr int kSweepScanLen = 48;
  for (const Key64 start : starts) {
    const serve::ReadResult<Key64> result =
        server->SubmitRange(start, kSweepScanLen).get();
    ASSERT_TRUE(result.status.ok()) << result.status.message();
    std::vector<KeyValue<Key64>> expected;
    for (auto it = reference.lower_bound(start);
         it != reference.end() &&
         expected.size() < static_cast<std::size_t>(kSweepScanLen);
         ++it) {
      expected.push_back(KeyValue<Key64>{it->first, it->second});
    }
    ASSERT_EQ(result.range.size(), expected.size()) << "scan @" << start;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.range[i].key, expected[i].key) << "scan @" << start;
      EXPECT_EQ(result.range[i].value, expected[i].value)
          << "scan @" << start;
    }
  }

  // No deadline is configured, so nothing may have shed.
  const serve::ServeStats stats = server->Stats();
  EXPECT_EQ(stats.shed_reads, 0u);
  EXPECT_EQ(stats.shed_updates, 0u);
  server->Shutdown();
}

TEST(ServeWorkload, DifferentialYcsbA) { RunDifferential("ycsb_a"); }
TEST(ServeWorkload, DifferentialYcsbB) { RunDifferential("ycsb_b"); }
TEST(ServeWorkload, DifferentialYcsbC) { RunDifferential("ycsb_c"); }
TEST(ServeWorkload, DifferentialYcsbD) { RunDifferential("ycsb_d"); }
TEST(ServeWorkload, DifferentialYcsbE) { RunDifferential("ycsb_e"); }
TEST(ServeWorkload, DifferentialYcsbF) { RunDifferential("ycsb_f"); }
TEST(ServeWorkload, DifferentialHotspot) { RunDifferential("hotspot"); }
TEST(ServeWorkload, DifferentialScanHeavy) {
  RunDifferential("scan_heavy");
}

// The unscrambled-zipf scenario exists to hammer one key-range shard:
// rank r maps straight to the r-th smallest key, and with theta=0.99
// the first quarter of the rank space absorbs ~ln(n/4)/ln(n) ≈ 86% of
// the ops. The per-shard serve.shard<N>.* series must show that
// imbalance: shard 0's admission-queue traffic and dispatched buckets
// dominate every other shard.
TEST(ServeWorkload, ZipfianSkewConcentratesTrafficOnShardZero) {
  Scenario scenario;
  ASSERT_TRUE(FindScenario("zipfian", &scenario));
  const BootstrapDataset dataset =
      MakeSequentialDataset(16 * 1024, /*value_seed=*/kSeed);

  Status status;
  auto server = serve::Server<Key64>::Create(ShardedOptions(), dataset.pairs,
                                             &status);
  ASSERT_NE(server, nullptr) << status.message();

  constexpr int kSkewClients = 2;
  constexpr std::size_t kSkewOps = 4000;
  std::vector<std::thread> clients;
  for (int c = 0; c < kSkewClients; ++c) {
    clients.emplace_back([&, c] {
      OpStream stream(scenario.spec, &dataset, c, kSkewClients, kSeed);
      std::deque<std::future<serve::ReadResult<Key64>>> reads;
      std::deque<std::future<serve::UpdateResult>> updates;
      for (std::size_t i = 0; i < kSkewOps; ++i) {
        const Op op = stream.Next();
        if (op.kind == OpKind::kUpdate || op.kind == OpKind::kInsert ||
            op.kind == OpKind::kReadModifyWrite) {
          updates.push_back(server->SubmitUpdate(Insert(op.key, op.value)));
        } else if (op.kind == OpKind::kScan) {
          reads.push_back(server->SubmitRange(op.key, op.scan_len));
        } else {
          reads.push_back(server->SubmitLookup(op.key));
        }
        while (reads.size() > kReadWindow) {
          EXPECT_TRUE(reads.front().get().status.ok());
          reads.pop_front();
        }
        while (updates.size() > 32) {
          EXPECT_TRUE(updates.front().get().status.ok());
          updates.pop_front();
        }
      }
      for (auto& f : reads) EXPECT_TRUE(f.get().status.ok());
      for (auto& f : updates) EXPECT_TRUE(f.get().status.ok());
    });
  }
  for (auto& thread : clients) thread.join();

  const obs::MetricsSnapshot snapshot = server->metrics().Collect();
  const std::uint64_t hot_waits = HistogramCount(
      snapshot, obs::MetricsRegistry::ShardedName("serve", 0, "queue_wait"));
  const std::uint64_t hot_buckets = snapshot.counter_or(
      obs::MetricsRegistry::ShardedName("serve", 0, "read_buckets"));
  EXPECT_GT(hot_waits, 0u);
  EXPECT_GT(hot_buckets, 0u);
  for (int shard = 1; shard < 4; ++shard) {
    const std::uint64_t cold_waits = HistogramCount(
        snapshot,
        obs::MetricsRegistry::ShardedName("serve", shard, "queue_wait"));
    const std::uint64_t cold_buckets = snapshot.counter_or(
        obs::MetricsRegistry::ShardedName("serve", shard, "read_buckets"));
    // ~86% vs ~4.7% of ops: assert a conservative 3x so scheduling
    // noise can't flake the test.
    EXPECT_GE(hot_waits, 3 * std::max<std::uint64_t>(cold_waits, 1))
        << "shard " << shard << " saw as much queue traffic as the hot one";
    // Bucket COUNTS are anti-correlated with load (a busy shard ships
    // full buckets, an idle one ships near-empty fill-window buckets),
    // so the imbalance signal is bucket FILL: ops per dispatched bucket
    // must be at least 2x higher on the hot shard.
    if (cold_waits > 0 && cold_buckets > 0) {
      EXPECT_GE(hot_waits * cold_buckets, 2 * cold_waits * hot_buckets)
          << "shard " << shard << " buckets ran as full as the hot shard's";
    }
  }
  server->Shutdown();
}

// Load shedding under skew must surface on the overloaded shard's
// counters, not smear across the topology. The SLO-bound deadline rides
// on the zipf-hot traffic (the keys routing to shard 0, ~86% of the
// burst); the cold shards' trickle runs deadline-free, which keeps the
// localization deterministic whatever the host's speed — on a starved
// machine (sanitizers, parallel ctest) even an idle shard's fill-window
// wait can exceed any fixed deadline, so a uniform deadline would shed
// on cold shards too and say nothing about attribution. The hot shard
// must shed: one submitter outruns a shard's batch pipeline on any
// host (submission is a queue push, service is a tree search plus
// batching machinery), so the 16k+ backlog can't drain inside 2ms.
TEST(ServeWorkload, SheddingConcentratesOnTheHotShard) {
  // Read-only unscrambled zipf: shed_updates must stay zero everywhere.
  WorkloadSpec spec;
  spec.name = "zipf_read_burst";
  spec.chooser.kind = KeyChooserKind::kZipfian;
  const BootstrapDataset dataset =
      MakeSequentialDataset(16 * 1024, /*value_seed=*/kSeed);

  Status status;
  auto server = serve::Server<Key64>::Create(ShardedOptions(), dataset.pairs,
                                             &status);
  ASSERT_NE(server, nullptr) << status.message();

  // Submit the whole burst before harvesting anything so the hot
  // shard's backlog builds. Shard 0 starts at the lowest key and ends
  // just below the key at index n/4 (Init's bounds on a sequential
  // dataset).
  constexpr std::size_t kBurst = 20000;
  constexpr std::chrono::microseconds kDeadline{2000};
  const Key64 hot_bound = dataset.pairs[dataset.pairs.size() / 4].key;
  OpStream stream(spec, &dataset, /*client=*/0, /*clients=*/1, kSeed);
  std::vector<std::future<serve::ReadResult<Key64>>> pending;
  pending.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    const Key64 key = stream.Next().key;
    pending.push_back(server->SubmitLookup(
        key, key < hot_bound ? kDeadline : std::chrono::microseconds{0}));
  }
  std::uint64_t served = 0, shed = 0;
  for (auto& f : pending) {
    const serve::ReadResult<Key64> result = f.get();
    if (result.status.ok()) {
      ++served;
    } else {
      ASSERT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
          << result.status.message();
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u) << "burst drained inside a 2ms deadline?";
  EXPECT_EQ(served + shed, kBurst);

  const obs::MetricsSnapshot snapshot = server->metrics().Collect();
  const std::uint64_t hot_shed = snapshot.counter_or(
      obs::MetricsRegistry::ShardedName("serve", 0, "shed_reads"));
  EXPECT_GT(hot_shed, 0u) << "overloaded hot shard never shed";
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(snapshot.counter_or(obs::MetricsRegistry::ShardedName(
                  "serve", shard, "shed_updates")),
              0u)
        << "shard " << shard;
    if (shard == 0) continue;
    EXPECT_EQ(snapshot.counter_or(obs::MetricsRegistry::ShardedName(
                  "serve", shard, "shed_reads")),
              0u)
        << "deadline-free shard " << shard << " shed — misattributed";
  }
  // Every shed the clients observed is on the hot shard's counter, and
  // the per-shard counters reconcile with the aggregate stats.
  EXPECT_EQ(hot_shed, shed);
  const serve::ServeStats stats = server->Stats();
  EXPECT_EQ(stats.shed_reads, shed);
  server->Shutdown();
}

}  // namespace
}  // namespace hbtree::workload
