#include "hybrid/gpu_kernels.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/workload.h"
#include "gpusim/device.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

/// Direct kernel-vs-host property tests: for every tree size and start
/// level, the GPU inner search must return exactly the position the host
/// traversal computes — the heterogeneous algorithm's core correctness
/// contract (Section 5.3).

struct KernelFixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

class ImplicitKernelTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ImplicitKernelTest, MatchesHostTraversalFromAnyStartLevel) {
  const auto [n, cpu_depth] = GetParam();
  KernelFixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(n, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();
  if (cpu_depth >= host.height()) GTEST_SKIP() << "tree too shallow";

  constexpr std::uint32_t kCount = 2000;
  auto queries = MakeDistributedQueries<Key64>(kCount, Distribution::kUniform,
                                               /*seed=*/2);
  for (std::size_t i = 0; i < kCount; i += 2) {
    queries[i] = data[(i * 131) % data.size()].key;  // guaranteed hits
  }
  queries[0] = KeyTraits<Key64>::kMax - 1;  // above-maximum edge case

  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  gpu::DevicePtr s_dev = fx.device.Malloc(kCount * sizeof(std::uint32_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));

  std::vector<std::uint32_t> starts(kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    starts[i] =
        static_cast<std::uint32_t>(host.DescendLevels(queries[i], cpu_depth));
  }
  fx.transfer.CopyToDevice(s_dev, starts.data(),
                           kCount * sizeof(std::uint32_t));

  auto params = tree.MakeKernelParams(
      q_dev, r_dev, kCount, host.height() - cpu_depth,
      cpu_depth > 0 ? s_dev : gpu::DevicePtr{});
  gpu::KernelStats stats = RunImplicitInnerSearch<Key64>(fx.device, params);

  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(results[i], host.FindLeafLine(queries[i])) << "query " << i;
  }

  // Team geometry: 8 threads per 64-bit query -> 4 queries per warp.
  EXPECT_EQ(stats.warps_executed, (kCount + 3) / 4);
  EXPECT_GT(stats.shared_accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDepths, ImplicitKernelTest,
    ::testing::Combine(::testing::Values(std::size_t{1000},
                                         std::size_t{50000},
                                         std::size_t{500000}),
                       ::testing::Values(0, 1, 2)));

TEST(ImplicitKernel32, TeamOf16MatchesHost) {
  KernelFixture fx;
  HBImplicitTree<Key32>::Config config;
  HBImplicitTree<Key32> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key32>(200000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();

  constexpr std::uint32_t kCount = 1000;
  auto queries = MakeLookupQueries(data, /*seed=*/4);
  queries.resize(kCount);
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key32));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key32));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  gpu::KernelStats stats = RunImplicitInnerSearch<Key32>(fx.device, params);
  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i], host.FindLeafLine(queries[i]));
  }
  // 16 threads per 32-bit query -> 2 queries per warp.
  EXPECT_EQ(stats.warps_executed, kCount / 2);
}

TEST(RegularKernel, MatchesHostFindLeafPosition) {
  KernelFixture fx;
  HBRegularTree<Key64>::Config config;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(300000, /*seed=*/5);
  ASSERT_TRUE(tree.Build(data));
  const auto& host = tree.host_tree();

  constexpr std::uint32_t kCount = 2000;
  auto queries = MakeDistributedQueries<Key64>(kCount, Distribution::kUniform,
                                               /*seed=*/6);
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  RunRegularInnerSearch<Key64>(fx.device, params);
  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    auto expect = host.FindLeafPosition(queries[i]);
    EXPECT_EQ(UnpackLeafNode(results[i]), expect.last_inner) << i;
    EXPECT_EQ(UnpackLeafLine(results[i]), expect.line) << i;
  }
}

TEST(RegularKernel, StaysCorrectAfterNodeSync) {
  // Update the host tree, mirror only the modified nodes, and verify the
  // kernel sees the updated structure (synchronized method, Section 5.6).
  KernelFixture fx;
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.95;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(100000, /*seed=*/7);
  ASSERT_TRUE(tree.Build(data));

  auto batch = MakeUpdateBatch<Key64>(data, 3000, /*insert_fraction=*/1.0,
                                      /*seed=*/8);
  for (const auto& update : batch) {
    std::vector<ModifiedNode> modified;
    tree.host_tree().Insert(update.pair, &modified);
    for (const auto& node : modified) tree.SyncNode(node);
  }

  constexpr std::uint32_t kCount = 1500;
  std::vector<Key64> queries(kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    queries[i] = batch[i % batch.size()].pair.key;
  }
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  RunRegularInnerSearch<Key64>(fx.device, params);
  std::vector<std::uint64_t> results(kCount);
  fx.transfer.CopyToHost(results.data(), r_dev,
                         kCount * sizeof(std::uint64_t));
  for (std::uint32_t i = 0; i < kCount; ++i) {
    typename RegularBTree<Key64>::LeafPosition pos{
        UnpackLeafNode(results[i]), UnpackLeafLine(results[i])};
    auto result = tree.host_tree().SearchLeafLine(pos, queries[i]);
    ASSERT_TRUE(result.found) << i;
  }
}

TEST(Kernels, CoalescingBeatsWorstCase) {
  // The implicit kernel's team loads touch one 64-byte node per query:
  // a warp (4 teams) must issue at most 4 transactions per level, far
  // below the 32 a scalar-per-lane pattern would cost (Appendix C).
  KernelFixture fx;
  HBImplicitTree<Key64>::Config config;
  HBImplicitTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(100000, /*seed=*/9);
  ASSERT_TRUE(tree.Build(data));

  constexpr std::uint32_t kCount = 4096;
  auto queries = MakeLookupQueries(data, /*seed=*/10);
  queries.resize(kCount);
  gpu::DevicePtr q_dev = fx.device.Malloc(kCount * sizeof(Key64));
  gpu::DevicePtr r_dev = fx.device.Malloc(kCount * sizeof(std::uint64_t));
  fx.transfer.CopyToDevice(q_dev, queries.data(), kCount * sizeof(Key64));
  auto params = tree.MakeKernelParams(q_dev, r_dev, kCount);
  gpu::KernelStats stats = RunImplicitInnerSearch<Key64>(fx.device, params);

  const std::uint64_t height = tree.host_tree().height();
  const std::uint64_t warps = stats.warps_executed;
  // <= 4 transactions per warp per level, plus query loads and result
  // stores (~2 per warp).
  EXPECT_LE(stats.memory_transactions, warps * (4 * height + 4));
}

}  // namespace
}  // namespace hbtree
