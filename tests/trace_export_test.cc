// Trace recorder/export tests. This test binary is compiled with
// HBTREE_OBS_TRACING=1 (see tests/CMakeLists.txt), so the HBTREE_TRACE_*
// macros are live here while staying compiled out of the library targets.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/span_aggregator.h"
#include "obs/trace.h"

namespace hbtree::obs {
namespace {

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceSession::Start(); }
  void TearDown() override {
    TraceSession::Stop();
    TraceSession::Clear();
  }
};

TEST_F(TraceTest, ScopedSpansNestWithinParent) {
  {
    HBTREE_TRACE_SPAN("parent", "test");
    {
      HBTREE_TRACE_SPAN("child", "test");
    }
  }
  TraceSession::Stop();
  const auto events = TraceSession::Snapshot();
  const auto parents = EventsNamed(events, "parent");
  const auto children = EventsNamed(events, "child");
  ASSERT_EQ(parents.size(), 1u);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(parents[0].ph, 'X');
  EXPECT_EQ(parents[0].pid, TraceSession::kWallPid);
  EXPECT_EQ(parents[0].tid, children[0].tid);
  // The child interval lies within the parent interval.
  EXPECT_GE(children[0].ts_us, parents[0].ts_us);
  EXPECT_LE(children[0].ts_us + children[0].dur_us,
            parents[0].ts_us + parents[0].dur_us);
}

TEST_F(TraceTest, SiblingSpansOnOneThreadDoNotOverlap) {
  for (int i = 0; i < 8; ++i) {
    HBTREE_TRACE_SPAN("sibling", "test");
  }
  TraceSession::Stop();
  auto siblings = EventsNamed(TraceSession::Snapshot(), "sibling");
  ASSERT_EQ(siblings.size(), 8u);
  std::sort(siblings.begin(), siblings.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  for (std::size_t i = 1; i < siblings.size(); ++i) {
    EXPECT_GE(siblings[i].ts_us,
              siblings[i - 1].ts_us + siblings[i - 1].dur_us);
  }
}

TEST_F(TraceTest, ThreadsGetDistinctTracks) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      HBTREE_TRACE_THREAD_NAME("trace_test.worker");
      HBTREE_TRACE_SPAN("worker_span", "test");
    });
  }
  for (auto& t : threads) t.join();
  TraceSession::Stop();
  const auto spans = EventsNamed(TraceSession::Snapshot(), "worker_span");
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  std::vector<int> tids;
  for (const TraceEvent& e : spans) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TraceTest, SpanArgAndInstantAreRecorded) {
  {
    HBTREE_TRACE_SPAN_ARG("sized", "test", "keys", 4096);
  }
  HBTREE_TRACE_INSTANT("tick", "test");
  TraceSession::Stop();
  const auto events = TraceSession::Snapshot();
  const auto sized = EventsNamed(events, "sized");
  ASSERT_EQ(sized.size(), 1u);
  ASSERT_NE(sized[0].arg_name, nullptr);
  EXPECT_STREQ(sized[0].arg_name, "keys");
  EXPECT_EQ(sized[0].arg_value, 4096.0);
  const auto ticks = EventsNamed(events, "tick");
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_EQ(ticks[0].ph, 'i');
}

TEST_F(TraceTest, ModelSpansLandOnFixedResourceTracks) {
  HBTREE_TRACE_MODEL_SPAN(0, kTrackH2D, "bucket.h2d", 10.0, 5.0, "bucket",
                          0);
  HBTREE_TRACE_MODEL_SPAN(0, kTrackKernel, "bucket.kernel", 15.0, 7.0,
                          "bucket", 0);
  TraceSession::Stop();
  const auto events = TraceSession::Snapshot();
  const auto h2d = EventsNamed(events, "bucket.h2d");
  const auto kernel = EventsNamed(events, "bucket.kernel");
  ASSERT_EQ(h2d.size(), 1u);
  ASSERT_EQ(kernel.size(), 1u);
  EXPECT_EQ(h2d[0].pid, TraceSession::kModelPid);
  EXPECT_EQ(h2d[0].tid, TraceSession::kTrackH2D);
  EXPECT_EQ(h2d[0].ts_us, 10.0);
  EXPECT_EQ(h2d[0].dur_us, 5.0);
  EXPECT_EQ(kernel[0].tid, TraceSession::kTrackKernel);
}

TEST_F(TraceTest, SlotTrackBasesSeparateAndLabelModelTracks) {
  const int base = 2 * TraceSession::kModelTrackStride;
  TraceSession::RegisterModelTrackPrefix(base, "shard0/slot1");
  HBTREE_TRACE_MODEL_SPAN(base, kTrackKernel, "bucket.kernel", 1.0, 2.0,
                          "bucket", 0);
  HBTREE_TRACE_MODEL_SPAN(3 * TraceSession::kModelTrackStride, kTrackH2D,
                          "bucket.h2d", 1.0, 2.0, "bucket", 0);
  TraceSession::Stop();
  const auto kernel =
      EventsNamed(TraceSession::Snapshot(), "bucket.kernel");
  ASSERT_EQ(kernel.size(), 1u);
  EXPECT_EQ(kernel[0].tid, base + TraceSession::kTrackKernel);
  const std::string json = TraceSession::ToChromeJson();
  // Registered prefix names the block's tracks; an unregistered base
  // still gets a distinguishable fallback label.
  EXPECT_NE(json.find("shard0/slot1/sim.kernel"), std::string::npos);
  EXPECT_NE(json.find("slot3/sim.h2d"), std::string::npos);
  // The slot-0 block keeps its bare names.
  EXPECT_NE(json.find("\"name\":\"sim.kernel\""), std::string::npos);
}

TEST_F(TraceTest, SpanIdsReachTheExportAndTraceIdIsStable) {
  const std::uint64_t trace_id = TraceSession::trace_id();
  ASSERT_NE(trace_id, 0u);
  // Below 2^53: survives a round trip through a JSON double.
  EXPECT_LT(trace_id, 1ull << 53);
  std::uint64_t span_id = 0;
  {
    ScopedSpan span("bucket.dispatch", "serve", "keys", 512.0);
    span_id = span.EnsureSpanId();
    EXPECT_EQ(span.EnsureSpanId(), span_id);  // idempotent
  }
  ASSERT_NE(span_id, 0u);
  EXPECT_EQ(TraceSession::trace_id(), trace_id);  // stable until restart
  TraceSession::Stop();
  const auto spans =
      EventsNamed(TraceSession::Snapshot(), "bucket.dispatch");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, span_id);
  const std::string json = TraceSession::ToChromeJson();
  EXPECT_NE(json.find("\"traceId\":" + std::to_string(trace_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"span_id\":" + std::to_string(span_id)),
            std::string::npos);
  // A fresh session gets a fresh identity.
  TraceSession::Start();
  EXPECT_NE(TraceSession::trace_id(), trace_id);
}

TEST_F(TraceTest, UnarmedSpansDoNotAllocateIds) {
  TraceSession::Stop();
  ScopedSpan span("ghost", "test");
  EXPECT_EQ(span.EnsureSpanId(), 0u);
}

TEST_F(TraceTest, SpanAggregatorBuildsStageWaterfalls) {
  const int slot_base = TraceSession::kModelTrackStride;
  TraceSession::RegisterModelTrackPrefix(slot_base, "shard0/slot0");
  HBTREE_TRACE_THREAD_NAME("serve.shard0.read0");
  HBTREE_TRACE_COMPLETE("queue.wait", "serve", 0.0, 40.0, "ops", 3);
  HBTREE_TRACE_MODEL_SPAN(slot_base, kTrackH2D, "bucket.h2d", 0.0, 10.0,
                          "bucket", 0);
  HBTREE_TRACE_MODEL_SPAN(slot_base, kTrackKernel, "bucket.kernel", 10.0,
                          30.0, "bucket", 0);
  HBTREE_TRACE_MODEL_SPAN(slot_base, kTrackD2H, "bucket.d2h", 40.0, 10.0,
                          "bucket", 0);
  HBTREE_TRACE_MODEL_SPAN(slot_base, kTrackCpuLeaf, "bucket.cpu_leaf", 50.0,
                          10.0, "bucket", 0);
  HBTREE_TRACE_INSTANT("breaker.open", "serve");  // not a stage: ignored
  TraceSession::Stop();

  const StageWaterfall w = SpanAggregator::FromSession();
  ASSERT_FALSE(w.empty());
  EXPECT_DOUBLE_EQ(w.total_us, 100.0);
  // Pipeline order, and shares sum to 1 over the aggregate.
  std::vector<std::string> order;
  double share_sum = 0;
  for (const auto& [stage, stats] : w.stages) {
    order.push_back(stage);
    share_sum += stats.share;
  }
  const std::vector<std::string> expected = {"admission_wait", "h2d",
                                             "kernel", "d2h", "merge"};
  EXPECT_EQ(order, expected);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  for (const auto& [stage, stats] : w.stages) {
    if (stage == "kernel") {
      EXPECT_EQ(stats.count, 1u);
      EXPECT_DOUBLE_EQ(stats.total_us, 30.0);
      EXPECT_DOUBLE_EQ(stats.share, 0.30);
    }
  }

  // Groups: the wall span folds under its shard, the model spans under
  // their slot's registered prefix.
  ASSERT_EQ(w.groups.size(), 2u);
  bool saw_shard = false;
  bool saw_slot = false;
  for (const StageGroup& g : w.groups) {
    if (g.name == "shard0") {
      saw_shard = true;
      ASSERT_EQ(g.stages.size(), 1u);
      EXPECT_EQ(g.stages[0].first, "admission_wait");
      EXPECT_DOUBLE_EQ(g.stages[0].second.share, 1.0);
    }
    if (g.name == "shard0/slot0") {
      saw_slot = true;
      EXPECT_EQ(g.stages.size(), 4u);
    }
  }
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_slot);
}

TEST_F(TraceTest, NothingRecordsWhileStopped) {
  TraceSession::Stop();
  {
    HBTREE_TRACE_SPAN("ghost", "test");
  }
  HBTREE_TRACE_INSTANT("ghost_instant", "test");
  EXPECT_EQ(TraceSession::event_count(), 0u);
  // Restarting clears any previous events and records again.
  TraceSession::Start();
  {
    HBTREE_TRACE_SPAN("real", "test");
  }
  TraceSession::Stop();
  EXPECT_EQ(TraceSession::Snapshot().size(), 1u);
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  HBTREE_TRACE_THREAD_NAME("trace_test.main");
  {
    HBTREE_TRACE_SPAN_ARG("outer", "test", "n", 3);
    HBTREE_TRACE_INSTANT("mark", "test");
  }
  HBTREE_TRACE_MODEL_SPAN(0, kTrackD2H, "bucket.d2h", 1.0, 2.0, "bucket", 1);
  TraceSession::Stop();
  const std::string json = TraceSession::ToChromeJson();

  // Structural validity: balanced nesting (no string in this document
  // contains braces or brackets, so counting is exact).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Chrome trace-event schema markers.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("trace_test.main"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST_F(TraceTest, WriteRefusesWhileActive) {
  EXPECT_TRUE(TraceSession::active());
  EXPECT_FALSE(TraceSession::WriteChromeJson("/tmp/hbtree_trace_test.json"));
}

}  // namespace
}  // namespace hbtree::obs
