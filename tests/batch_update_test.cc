#include "hybrid/batch_update.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/workload.h"
#include "hybrid/bucket_pipeline.h"
#include "sim/platform.h"

namespace hbtree {
namespace {

struct Fixture {
  sim::PlatformSpec platform = sim::PlatformSpec::M1();
  PageRegistry registry;
  gpu::Device device{platform.gpu};
  gpu::TransferEngine transfer{&device, platform.pcie};
};

/// Parameterized over (method, insert fraction): every combination must
/// leave the host tree exactly matching a reference map and the device
/// mirror consistent.
class BatchUpdateTest
    : public ::testing::TestWithParam<std::tuple<UpdateMethod, double>> {};

TEST_P(BatchUpdateTest, TreeMatchesReferenceModelAfterBatch) {
  const auto [method, insert_fraction] = GetParam();
  Fixture fx;
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.75;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(40000, /*seed=*/1);
  ASSERT_TRUE(tree.Build(data));

  std::map<Key64, Key64> model;
  for (const auto& kv : data) model[kv.key] = kv.value;

  auto batch = MakeUpdateBatch<Key64>(data, 6000, insert_fraction,
                                      /*seed=*/2);
  for (const auto& update : batch) {
    if (update.kind == UpdateQuery<Key64>::Kind::kInsert) {
      model.emplace(update.pair.key, update.pair.value);
    } else {
      model.erase(update.pair.key);
    }
  }

  BatchUpdateConfig uconfig;
  uconfig.real_threads = 3;
  BatchUpdateStats stats = RunBatchUpdate(tree, batch, method, uconfig);
  tree.host_tree().Validate();
  EXPECT_EQ(tree.host_tree().size(), model.size());
  EXPECT_EQ(stats.applied, batch.size());  // batch entries never collide

  // Spot-check the host tree against the reference.
  std::size_t i = 0;
  for (const auto& [key, value] : model) {
    if (++i % 17 != 0) continue;
    auto result = tree.host_tree().Search(key);
    ASSERT_TRUE(result.found) << key;
    ASSERT_EQ(result.value, value);
  }

  // Device mirror agrees: pipeline search over the batch keys.
  std::vector<Key64> probes;
  for (const auto& update : batch) probes.push_back(update.pair.key);
  probes.resize(probes.size() / 4 * 4);
  PipelineConfig pconfig;
  pconfig.bucket_size = 1024;
  pconfig.cpu_queries_per_us = 10;
  std::vector<LookupResult<Key64>> results;
  RunSearchPipeline(tree, probes.data(), probes.size(), pconfig, &results);
  for (std::size_t j = 0; j < probes.size(); ++j) {
    ASSERT_EQ(results[j].found, model.count(probes[j]) > 0) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndMixes, BatchUpdateTest,
    ::testing::Combine(::testing::Values(UpdateMethod::kAsyncSingleThread,
                                         UpdateMethod::kAsyncParallel,
                                         UpdateMethod::kSynchronized),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const auto& info) {
      return std::string(UpdateMethodName(std::get<0>(info.param))) ==
                     "async-1t"
                 ? "Async1T_" +
                       std::to_string(
                           static_cast<int>(std::get<1>(info.param) * 100))
             : std::string(UpdateMethodName(std::get<0>(info.param))) ==
                       "async-parallel"
                 ? "AsyncPar_" +
                       std::to_string(
                           static_cast<int>(std::get<1>(info.param) * 100))
                 : "Sync_" + std::to_string(static_cast<int>(
                                 std::get<1>(info.param) * 100));
    });

TEST(BatchUpdate, StructuralShareIsTinyWithBigLeaves) {
  // Section 5.6: "more than 99% of the update queries can be resolved"
  // without splits or merges thanks to the 256-entry big leaves.
  Fixture fx;
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.7;
  HBRegularTree<Key64> tree(config, &fx.registry, &fx.device, &fx.transfer);
  auto data = GenerateDataset<Key64>(200000, /*seed=*/3);
  ASSERT_TRUE(tree.Build(data));
  auto batch = MakeUpdateBatch<Key64>(data, 16384, /*insert_fraction=*/0.5,
                                      /*seed=*/4);
  BatchUpdateConfig uconfig;
  BatchUpdateStats stats =
      RunBatchUpdate(tree, batch, UpdateMethod::kAsyncParallel, uconfig);
  EXPECT_LT(static_cast<double>(stats.structural) / stats.queries, 0.01);
}

TEST(BatchUpdate, ParallelWithManyThreadsMatchesSingleThread) {
  // Concurrency stress: the striped-lock parallel phase must produce the
  // same final tree as the single-threaded path.
  auto data = GenerateDataset<Key64>(60000, /*seed=*/5);
  auto batch = MakeUpdateBatch<Key64>(data, 20000, /*insert_fraction=*/0.6,
                                      /*seed=*/6);
  std::vector<std::size_t> sizes;
  for (int threads : {1, 2, 4, 8}) {
    Fixture fx;
    HBRegularTree<Key64>::Config config;
    config.tree.leaf_fill = 0.7;
    HBRegularTree<Key64> tree(config, &fx.registry, &fx.device,
                              &fx.transfer);
    ASSERT_TRUE(tree.Build(data));
    BatchUpdateConfig uconfig;
    uconfig.real_threads = threads;
    RunBatchUpdate(tree, batch, UpdateMethod::kAsyncParallel, uconfig);
    tree.host_tree().Validate();
    sizes.push_back(tree.host_tree().size());
    for (std::size_t i = 0; i < batch.size(); i += 37) {
      const auto& update = batch[i];
      bool found = tree.host_tree().Search(update.pair.key).found;
      ASSERT_EQ(found, update.kind == UpdateQuery<Key64>::Kind::kInsert);
    }
  }
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[0]);
  }
}

TEST(BatchUpdate, TimingModelOrdering) {
  // Async-parallel must be modelled faster than async-single-thread; the
  // synchronized method's cost must track its transfer stream.
  Fixture fx;
  HBRegularTree<Key64>::Config config;
  config.tree.leaf_fill = 0.7;
  auto data = GenerateDataset<Key64>(100000, /*seed=*/7);
  auto batch = MakeUpdateBatch<Key64>(data, 32768, /*insert_fraction=*/0.5,
                                      /*seed=*/8);
  double single_us = 0, parallel_us = 0;
  for (UpdateMethod method :
       {UpdateMethod::kAsyncSingleThread, UpdateMethod::kAsyncParallel}) {
    Fixture local;
    HBRegularTree<Key64> tree(config, &local.registry, &local.device,
                              &local.transfer);
    ASSERT_TRUE(tree.Build(data));
    BatchUpdateConfig uconfig;
    BatchUpdateStats stats = RunBatchUpdate(tree, batch, method, uconfig);
    if (method == UpdateMethod::kAsyncSingleThread) {
      single_us = stats.update_us;
    } else {
      parallel_us = stats.update_us;
    }
    // Async sync time equals one bulk I-segment transfer.
    EXPECT_GT(stats.sync_us, 0);
  }
  EXPECT_GT(single_us, 2.0 * parallel_us);
}

TEST(MixedWorkload, SyncDecaysFasterWithUpdateShare) {
  auto data = GenerateDataset<Key64>(150000, /*seed=*/9);
  double ratio_low = 0, ratio_high = 0;
  for (double update_ratio : {0.1, 0.8}) {
    double mops[2];
    int i = 0;
    for (UpdateMethod method :
         {UpdateMethod::kSynchronized, UpdateMethod::kAsyncParallel}) {
      Fixture fx;
      HBRegularTree<Key64>::Config config;
      config.tree.leaf_fill = 0.95;  // near-full lines: frequent inner edits
      HBRegularTree<Key64> tree(config, &fx.registry, &fx.device,
                                &fx.transfer);
      ASSERT_TRUE(tree.Build(data));
      auto searches = MakeLookupQueries(data, /*seed=*/10);
      searches.resize(1 << 15);
      auto updates = MakeUpdateBatch<Key64>(
          data, static_cast<std::size_t>((1 << 15) * update_ratio) + 1, 0.5,
          /*seed=*/11);
      BatchUpdateConfig uconfig;
      MixedWorkloadStats stats = RunMixedWorkload(
          tree, searches, updates, update_ratio, method, uconfig, 0.1);
      mops[i++] = stats.mops();
    }
    if (update_ratio < 0.5) {
      ratio_low = mops[0] / mops[1];
    } else {
      ratio_high = mops[0] / mops[1];
    }
  }
  EXPECT_LT(ratio_high, ratio_low);  // sync hurts more at high update share
}

}  // namespace
}  // namespace hbtree
