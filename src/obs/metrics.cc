#include "obs/metrics.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace hbtree::obs {

std::uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

MetricsRegistry::MetricsRegistry()
    : created_(std::chrono::steady_clock::now()), window_start_(created_) {}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  snapshot.windowed = false;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.window_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    created_)
          .count();
  for (const auto& [name, c] : counters_) {
    snapshot.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snapshot.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms.emplace_back(name, h->LifetimeSummary());
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::CollectWindow() {
  MetricsSnapshot snapshot;
  snapshot.windowed = true;
  std::lock_guard<std::mutex> window_lock(window_mutex_);
  const auto now = std::chrono::steady_clock::now();
  snapshot.window_seconds =
      std::chrono::duration<double>(now - window_start_).count();
  window_start_ = now;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    const std::uint64_t total = c->value();
    snapshot.counters.emplace_back(name, total - c->window_base_);
    c->window_base_ = total;
  }
  for (const auto& [name, g] : gauges_) {
    snapshot.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms.emplace_back(name, h->RollWindow());
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::ToText(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "metrics (%s, %.3fs window)\n",
                snapshot.windowed ? "interval" : "lifetime",
                snapshot.window_seconds);
  out += line;
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "  %-32s %.4g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, s] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-32s count %llu  p50 %.1fus  p90 %.1fus  p99 %.1fus  "
                  "max %.1fus%s\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.p50_us, s.p90_us, s.p99_us, s.max_us,
                  s.exemplars.empty() ? "" : "  (+exemplars)");
    out += line;
  }
  return out;
}

void MetricsRegistry::AppendJson(const MetricsSnapshot& snapshot,
                                 JsonWriter* w) {
  w->BeginObject();
  w->Key("schema");
  w->String("hbtree.metrics.v1");
  w->Key("windowed");
  w->Bool(snapshot.windowed);
  w->Key("window_seconds");
  w->Number(snapshot.window_seconds);
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w->Key(name);
    w->Uint(value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w->Key(name);
    w->Number(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, s] : snapshot.histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Uint(s.count);
    w->Key("p50_us");
    w->Number(s.p50_us);
    w->Key("p90_us");
    w->Number(s.p90_us);
    w->Key("p99_us");
    w->Number(s.p99_us);
    w->Key("max_us");
    w->Number(s.max_us);
    w->Key("mean_us");
    w->Number(s.mean_us);
    if (!s.exemplars.empty()) {
      // Tail exemplars: each links a recorded sample back to the trace
      // span that served it (resolve with scripts/validate_metrics.py
      // --trace). bucket_us is the representative (midpoint) value of
      // the histogram bucket the sample landed in.
      w->Key("exemplars");
      w->BeginArray();
      for (const BucketExemplar& be : s.exemplars) {
        w->BeginObject();
        w->Key("bucket_us");
        w->Number(LatencyHistogram::BucketMidpointNs(be.bucket) / 1e3);
        w->Key("trace_id");
        w->Uint(be.exemplar.trace_id);
        w->Key("span_id");
        w->Uint(be.exemplar.span_id);
        w->Key("shard");
        w->Int(be.exemplar.shard);
        w->Key("wall_us");
        w->Number(be.exemplar.wall_ns / 1e3);
        w->Key("modelled_us");
        w->Number(be.exemplar.modelled_us);
        w->EndObject();
      }
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  AppendJson(snapshot, &w);
  return w.str();
}

}  // namespace hbtree::obs
