#ifndef HBTREE_OBS_METRICS_H_
#define HBTREE_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace hbtree::obs {

/// Monotonic counter. Updates are single relaxed fetch_adds — exactly the
/// cost of the raw std::atomic members the serving layer used before the
/// registry existed, so migrating a counter onto the registry does not
/// slow the hot path.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
  std::uint64_t window_base_ = 0;  // guarded by the registry window mutex
};

/// Last-write-wins gauge (a sampled level, not a rate): occupancy, queue
/// depth, device memory in use. Stored as the bit pattern of a double so
/// the update stays a single lock-free relaxed store.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Histogram metric: a windowed (interval) log-scaled histogram plus a
/// lifetime accumulator. Record() lands in the active interval; a window
/// roll summarizes the interval, folds it into the lifetime histogram and
/// resets the interval — so windowed percentile summaries are exact (every
/// sample contributes to exactly one window, modulo samples racing the
/// roll itself).
class Histogram {
 public:
  void Record(std::uint64_t ns) { active_.Record(ns); }

  /// Record() plus tail-exemplar capture (see
  /// LatencyHistogram::RecordWithExemplar). Exemplars ride the interval
  /// histogram and fold into the lifetime reservoir at window rolls, so
  /// both windowed and lifetime summaries carry them.
  void RecordWithExemplar(std::uint64_t ns, const Exemplar& exemplar) {
    active_.RecordWithExemplar(ns, exemplar);
  }

  /// Trailing percentile above which samples compete for exemplar slots
  /// (0.5, 0.9 or 0.99; anything else clamps to the nearest). Until the
  /// first window roll the distribution is unknown and every sample
  /// competes — the bounded reservoir's prefer-higher-buckets eviction
  /// keeps that cheap and correct.
  void SetExemplarPercentile(double q) { exemplar_percentile_ = q; }

  /// Lifetime summary: everything ever recorded (folded windows plus the
  /// current interval).
  LatencySummary LifetimeSummary() const {
    LatencyHistogram merged;
    merged.MergeFrom(lifetime_);
    merged.MergeFrom(active_);
    return merged.Summarize();
  }

  /// Summarizes the current interval, folds it into the lifetime
  /// accumulator and starts a fresh interval. Callers serialize rolls
  /// (the registry rolls under its window mutex). The fresh interval's
  /// exemplar threshold adapts to the window just summarized: samples
  /// below its trailing percentile stop competing for reservoir slots.
  LatencySummary RollWindow() {
    const LatencySummary summary = active_.Summarize();
    lifetime_.MergeFrom(active_);
    active_.Reset();
    if (summary.count > 0 && exemplar_percentile_ > 0) {
      const double threshold_us = exemplar_percentile_ >= 0.99 ? summary.p99_us
                                  : exemplar_percentile_ >= 0.9
                                      ? summary.p90_us
                                      : summary.p50_us;
      active_.SetExemplarThresholdNs(
          static_cast<std::uint64_t>(threshold_us * 1e3));
    }
    return summary;
  }

  std::uint64_t count() const { return active_.count() + lifetime_.count(); }

 private:
  LatencyHistogram active_;
  LatencyHistogram lifetime_;
  double exemplar_percentile_ = 0.99;
};

/// One collected view of a registry: either lifetime totals or the delta
/// since the previous window collection.
struct MetricsSnapshot {
  bool windowed = false;
  double window_seconds = 0;  // elapsed covered by this snapshot
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LatencySummary>> histograms;

  /// Finds a counter by exact name; 0 when absent.
  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;
};

/// Registry of named counters/gauges/histograms.
///
/// Registration (the name → metric lookup) takes a mutex and is meant for
/// setup paths; hot paths capture the returned reference once and then
/// update it lock-free. Metric references stay valid for the registry's
/// lifetime — metrics are never removed.
///
/// Naming convention (see DESIGN.md §8): dotted lowercase
/// `<subsystem>.<what>[_<unit>]`, e.g. `serve.shed_reads`,
/// `gpusim.bytes_h2d`, `serve.read_latency` (histograms record ns).
class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lifetime totals of every registered metric.
  MetricsSnapshot Collect() const;

  /// Interval snapshot: counter deltas and exact histogram interval
  /// summaries since the previous CollectWindow() (or since construction
  /// for the first call). Gauges report their current value — a level has
  /// no meaningful delta.
  MetricsSnapshot CollectWindow();

  /// Process-wide registry for call sites without a natural owner (bench
  /// mains, ad-hoc device instances).
  static MetricsRegistry& Default();

  /// Canonical per-instance label for sharded subsystems:
  /// `<subsystem>.shard<N>.<what>`, e.g. `serve.shard2.read_buckets`.
  /// Dashboards can aggregate across shards with a `<subsystem>.shard*`
  /// prefix match while the unsharded `<subsystem>.<what>` name keeps the
  /// global total.
  static std::string ShardedName(const std::string& subsystem, int shard,
                                 const std::string& what) {
    return subsystem + ".shard" + std::to_string(shard) + "." + what;
  }

  /// Canonical per-tenant label for multi-tenant subsystems:
  /// `<subsystem>.tenant<T>.<what>`, e.g. `serve.tenant0.read_latency`.
  /// Same aggregation convention as ShardedName: prefix-match
  /// `<subsystem>.tenant*` for a per-tenant breakdown, use the flat
  /// `<subsystem>.<what>` name for the global total.
  static std::string TenantName(const std::string& subsystem, int tenant,
                                const std::string& what) {
    return subsystem + ".tenant" + std::to_string(tenant) + "." + what;
  }

  /// Human-readable multi-line dump (sorted by name).
  static std::string ToText(const MetricsSnapshot& snapshot);
  /// Stable machine-readable dump — schema `hbtree.metrics.v1`, validated
  /// by scripts/validate_metrics.py.
  static std::string ToJson(const MetricsSnapshot& snapshot);
  /// Appends the snapshot into an already-open JsonWriter object (the
  /// bench reporter embeds metrics into BENCH_*.json this way).
  static void AppendJson(const MetricsSnapshot& snapshot, class JsonWriter* w);

 private:
  mutable std::mutex mutex_;  // guards the maps (registration + iteration)
  std::mutex window_mutex_;   // serializes CollectWindow rolls
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::chrono::steady_clock::time_point created_;
  std::chrono::steady_clock::time_point window_start_;
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_METRICS_H_
