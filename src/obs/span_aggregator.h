#ifndef HBTREE_OBS_SPAN_AGGREGATOR_H_
#define HBTREE_OBS_SPAN_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace hbtree::obs {

/// Accumulated time of one pipeline stage across every span mapped to it.
struct StageStats {
  std::uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
  /// Fraction of its waterfall's total stage time (filled by Waterfall()).
  double share = 0;

  double mean_us() const { return count != 0 ? total_us / count : 0.0; }
};

/// Stage breakdown of one resource group: a shard's serving threads
/// ("shard0") or a tree slot's model tracks ("shard0/slotB").
struct StageGroup {
  std::string name;
  std::vector<std::pair<std::string, StageStats>> stages;  // pipeline order
};

/// Per-stage latency waterfall: where an op's time goes on the way
/// through the serving pipeline, aggregated and split per shard/slot.
struct StageWaterfall {
  /// Aggregate breakdown in pipeline order (admission_wait → fill_window
  /// → pre_descend → h2d → kernel → d2h → merge → commit); stages with
  /// no samples are omitted.
  std::vector<std::pair<std::string, StageStats>> stages;
  std::vector<StageGroup> groups;
  double total_us = 0;  // sum over aggregate stages

  bool empty() const { return stages.empty(); }
};

/// Folds trace spans into StageWaterfalls. The span → stage mapping is
/// by span name: queue.wait → admission_wait, bucket.fill/update.fill →
/// fill_window, the model resource spans → their stage (bucket.cpu_leaf
/// is the merge stage: leaf search + result merge on the CPU), and
/// update.commit → commit. Spans that are not stages (dispatch envelopes,
/// breaker instants, snapshot publishes) are ignored.
///
/// Feed it manually with Add() (tests), or fold a whole stopped
/// TraceSession with FromSession(), which groups wall spans by the
/// "serve.shard<N>" component of their recording thread's name and model
/// spans by their track block's registered prefix.
class SpanAggregator {
 public:
  /// Stage name for a span name; nullptr when the span is not a stage.
  static const char* StageForSpan(const char* span_name);

  /// Accumulates one span into the aggregate and, when `group` is
  /// non-empty, into that group's breakdown. Non-stage spans are ignored.
  void Add(const TraceEvent& event, const std::string& group = std::string());

  /// Snapshot of everything added so far, shares computed. Group shares
  /// are within the group's own stage total.
  StageWaterfall Waterfall() const;

  /// Aggregates the current (stopped) TraceSession's recorded spans.
  static StageWaterfall FromSession();

 private:
  using StageMap = std::map<std::string, StageStats>;
  StageMap aggregate_;
  std::map<std::string, StageMap> groups_;
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_SPAN_AGGREGATOR_H_
