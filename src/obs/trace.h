#ifndef HBTREE_OBS_TRACE_H_
#define HBTREE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hbtree::obs {

/// One recorded trace event (Chrome trace-event model). `name` and `cat`
/// must be string literals (or otherwise outlive the session): recording
/// stores the pointer, never copies, so the hot path stays a couple of
/// stores into a thread-owned vector.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char ph = 'X';  // 'X' complete span, 'i' instant event
  int pid = 0;
  int tid = 0;
  double ts_us = 0;
  double dur_us = 0;           // valid for 'X'
  const char* arg_name = nullptr;  // optional single numeric arg
  double arg_value = 0;
  /// Nonzero links this span to histogram exemplars: exported as
  /// `args.span_id`, matched against the `span_id` field of
  /// `hbtree.metrics.v1` exemplars. Allocated via NextSpanId() only for
  /// spans something may point at (bucket dispatches, update commits).
  std::uint64_t span_id = 0;
};

/// Process-wide span recorder.
///
/// Two timelines coexist in one trace, separated by pid:
///  * pid kWallPid — real wall-clock spans recorded by RAII ScopedSpans on
///    the serving/bench threads (one track per thread).
///  * pid kModelPid — the simulated platform's modelled-µs timeline. The
///    bucket pipeline's job-shop scheduler knows when each bucket occupies
///    the H2D engine, the kernel, the D2H engine and the CPU leaf stage;
///    those intervals are emitted onto fixed resource tracks, which is
///    what makes double-buffering overlap *visible* in Perfetto.
///
/// Recording is lock-free: each thread appends to its own buffer
/// (registered once under a mutex). Start/Stop/Write/Clear are control
/// operations and must not race recording threads — call them while the
/// workload is quiescent (benches start before submitting load and export
/// after Shutdown()).
///
/// Instrumentation sites compile away by default: the HBTREE_TRACE_*
/// macros below expand to nothing unless the translation unit defines
/// HBTREE_OBS_TRACING=1 (benches and the trace tests opt in per target),
/// so the library hot paths carry zero tracing cost — not even a branch —
/// in the default build.
class TraceSession {
 public:
  static constexpr int kWallPid = 1;
  static constexpr int kModelPid = 2;

  /// Fixed tids under kModelPid, one per simulated resource.
  enum ModelTrack : int {
    kTrackPreDescend = 1,
    kTrackH2D = 2,
    kTrackKernel = 3,
    kTrackD2H = 4,
    kTrackCpuLeaf = 5,
  };

  /// Each tree slot gets its own block of model tracks so multi-shard
  /// traces are not interleaved on one set of resource tracks: slot
  /// ordinal k records on tids `k * kModelTrackStride + ModelTrack`.
  /// Base 0 (single un-sharded pipelines, direct bench runs) keeps the
  /// bare `sim.*` track names.
  static constexpr int kModelTrackStride = 8;

  static bool active() {
    return active_.load(std::memory_order_relaxed);
  }

  /// Clears previous events and starts recording; the session clock
  /// (NowUs) restarts at zero.
  static void Start();
  static void Stop();
  static void Clear();

  /// Microseconds since Start() on the wall clock.
  static double NowUs();

  /// Identity of the current recording session, regenerated at Start()
  /// and exported as the trace JSON's top-level `traceId`. Kept below
  /// 2^48 so it round-trips through JSON doubles; 0 only before the
  /// first Start(). Exemplars captured while this session records carry
  /// this id, which is how a metrics file is matched to its trace file.
  static std::uint64_t trace_id();

  /// Allocates a span id (monotonic, never reused across sessions) for
  /// spans that exemplars may reference. Cheap (one relaxed fetch_add)
  /// but not free — only identified spans pay it.
  static std::uint64_t NextSpanId();

  /// Names the calling thread's track in the exported trace. Unlike
  /// event names, the string is copied — dynamically built worker labels
  /// ("serve.shard0.read1") are fine.
  static void SetThreadName(const char* name);

  /// Labels a block of model tracks (`base + ModelTrack` for every
  /// track) in the export, e.g. RegisterModelTrackPrefix(8, "shard0/slotB")
  /// names tid 10 "shard0/slotB/sim.h2d". Registrations persist across
  /// Start()/Clear() (re-registering a base overwrites it). Unregistered
  /// nonzero bases fall back to a "slot<k>/" prefix.
  static void RegisterModelTrackPrefix(int base, const std::string& prefix);

  // -- Recording (no-ops unless active) -----------------------------------
  static void RecordComplete(const char* name, const char* cat, double ts_us,
                             double dur_us, const char* arg_name = nullptr,
                             double arg_value = 0, std::uint64_t span_id = 0);
  static void RecordInstant(const char* name, const char* cat);
  /// Emits a span on a simulated-resource track. `ts_us` is on the
  /// caller's chosen model timeline (the pipeline offsets each run by the
  /// wall time at run start so successive runs do not stack at zero).
  static void RecordModelSpan(ModelTrack track, const char* name,
                              double ts_us, double dur_us,
                              const char* arg_name = nullptr,
                              double arg_value = 0);
  /// Same, on the track block starting at `base` (a multiple of
  /// kModelTrackStride — the slot's block, see RegisterModelTrackPrefix).
  static void RecordModelSpanAt(int base, ModelTrack track, const char* name,
                                double ts_us, double dur_us,
                                const char* arg_name = nullptr,
                                double arg_value = 0);

  // -- Export -------------------------------------------------------------
  /// All recorded events, in per-thread recording order. For tests and
  /// ad-hoc inspection; requires the session to be stopped.
  static std::vector<TraceEvent> Snapshot();
  static std::size_t event_count();

  /// (tid, name) for every wall thread that named itself — lets the
  /// stage aggregator attribute wall spans to shards without parsing the
  /// exported JSON. Requires the session to be stopped.
  static std::vector<std::pair<int, std::string>> ThreadNames();
  /// (base, prefix) for every registered model track block.
  static std::vector<std::pair<int, std::string>> ModelTrackPrefixes();

  /// Writes chrome://tracing / Perfetto-loadable JSON. Returns false if
  /// the session is still active or the file cannot be written.
  static bool WriteChromeJson(const std::string& path);
  /// The same JSON as a string (tests validate it without file I/O).
  static std::string ToChromeJson();

 private:
  static std::atomic<bool> active_;
};

/// RAII wall-clock span: captures the start timestamp if the session is
/// active at construction, records a complete event at destruction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : name_(name), cat_(cat), armed_(TraceSession::active()) {
    if (armed_) start_us_ = TraceSession::NowUs();
  }
  ScopedSpan(const char* name, const char* cat, const char* arg_name,
             double arg_value)
      : name_(name),
        cat_(cat),
        arg_name_(arg_name),
        arg_value_(arg_value),
        armed_(TraceSession::active()) {
    if (armed_) start_us_ = TraceSession::NowUs();
  }
  ~ScopedSpan() {
    if (armed_) {
      TraceSession::RecordComplete(name_, cat_, start_us_,
                                   TraceSession::NowUs() - start_us_,
                                   arg_name_, arg_value_, span_id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches one numeric argument shown in the trace viewer.
  void set_arg(const char* name, double value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  /// Gives this span an identity that exemplars can reference; returns
  /// it (0 when the span is unarmed, i.e. the session was inactive at
  /// construction — callers can store the result unconditionally).
  std::uint64_t EnsureSpanId() {
    if (armed_ && span_id_ == 0) span_id_ = TraceSession::NextSpanId();
    return span_id_;
  }

 private:
  const char* name_;
  const char* cat_;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0;
  bool armed_;
  double start_us_ = 0;
  std::uint64_t span_id_ = 0;
};

/// Null span with the ScopedSpan interface — the compiled-out policy for
/// template-parameterized hot loops (bench/obs_overhead compares the two
/// the same way core/trace.h's NullTracer compiles away memory tracing).
struct NullSpan {
  NullSpan(const char* /*name*/, const char* /*cat*/) {}
  void set_arg(const char* /*name*/, double /*value*/) {}
  std::uint64_t EnsureSpanId() { return 0; }
};

}  // namespace hbtree::obs

// -- Instrumentation macros -------------------------------------------------
//
// Compiled out by default: a translation unit opts in with
// -DHBTREE_OBS_TRACING=1 (set per bench/test target in CMake). Every
// instantiation of the instrumented templates inside one binary must agree
// on the setting (single-TU benches and tests trivially do).
#ifndef HBTREE_OBS_TRACING
#define HBTREE_OBS_TRACING 0
#endif

#if HBTREE_OBS_TRACING

#define HBTREE_OBS_CONCAT_IMPL(a, b) a##b
#define HBTREE_OBS_CONCAT(a, b) HBTREE_OBS_CONCAT_IMPL(a, b)

/// Wall-clock span covering the rest of the enclosing scope.
#define HBTREE_TRACE_SPAN(name, cat) \
  ::hbtree::obs::ScopedSpan HBTREE_OBS_CONCAT(hbtree_obs_span_, \
                                              __LINE__)(name, cat)
/// Same, with one numeric argument shown in the trace viewer. The
/// argument expression is NOT evaluated when tracing is compiled out —
/// keep it side-effect free.
#define HBTREE_TRACE_SPAN_ARG(name, cat, arg_name, arg_value)       \
  ::hbtree::obs::ScopedSpan HBTREE_OBS_CONCAT(hbtree_obs_span_,     \
                                              __LINE__)(            \
      name, cat, arg_name, static_cast<double>(arg_value))
#define HBTREE_TRACE_INSTANT(name, cat)                           \
  do {                                                            \
    if (::hbtree::obs::TraceSession::active())                    \
      ::hbtree::obs::TraceSession::RecordInstant(name, cat);      \
  } while (0)
/// Explicit complete span whose start predates the recording site (e.g.
/// an op's admission-queue wait, measured at dispatch). `ts_us`/`dur_us`
/// are on the session clock (TraceSession::NowUs). Arguments are NOT
/// evaluated when tracing is compiled out — keep them side-effect free.
#define HBTREE_TRACE_COMPLETE(name, cat, ts_us, dur_us, arg_name, arg)    \
  do {                                                                    \
    if (::hbtree::obs::TraceSession::active())                            \
      ::hbtree::obs::TraceSession::RecordComplete(                        \
          name, cat, static_cast<double>(ts_us),                          \
          static_cast<double>(dur_us), arg_name,                          \
          static_cast<double>(arg));                                      \
  } while (0)
/// Model-resource span on the track block starting at `base` (a slot's
/// kModelTrackStride multiple; 0 for the bare sim.* tracks). Arguments
/// are NOT evaluated when tracing is compiled out.
#define HBTREE_TRACE_MODEL_SPAN(base, track, name, ts_us, dur_us, arg_name, \
                                arg)                                        \
  do {                                                                      \
    if (::hbtree::obs::TraceSession::active())                              \
      ::hbtree::obs::TraceSession::RecordModelSpanAt(                       \
          base, ::hbtree::obs::TraceSession::track, name, ts_us, dur_us,    \
          arg_name, arg);                                                   \
  } while (0)
#define HBTREE_TRACE_THREAD_NAME(name)                        \
  do {                                                        \
    ::hbtree::obs::TraceSession::SetThreadName(name);         \
  } while (0)
/// Statements that exist only to feed tracing (e.g. computing a stage
/// timeline for model spans).
#define HBTREE_TRACE_ONLY(...) __VA_ARGS__

#else  // !HBTREE_OBS_TRACING

#define HBTREE_TRACE_SPAN(name, cat) \
  do {                               \
  } while (0)
#define HBTREE_TRACE_SPAN_ARG(name, cat, arg_name, arg_value) \
  do {                                                        \
  } while (0)
#define HBTREE_TRACE_INSTANT(name, cat) \
  do {                                  \
  } while (0)
#define HBTREE_TRACE_COMPLETE(name, cat, ts_us, dur_us, arg_name, arg) \
  do {                                                                 \
  } while (0)
#define HBTREE_TRACE_MODEL_SPAN(base, track, name, ts_us, dur_us, arg_name, \
                                arg)                                        \
  do {                                                                      \
  } while (0)
#define HBTREE_TRACE_THREAD_NAME(name) \
  do {                                 \
  } while (0)
#define HBTREE_TRACE_ONLY(...)

#endif  // HBTREE_OBS_TRACING

#endif  // HBTREE_OBS_TRACE_H_
