#ifndef HBTREE_OBS_HEAT_H_
#define HBTREE_OBS_HEAT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/trace.h"
#include "obs/trace.h"
#include "sim/cache_sim.h"

/// Heat observability (DESIGN.md Section 13): where load lands in the
/// keyspace, in the tree levels, and in the paired memory pools.
///
/// Compile gating follows the tracing layer: the recording call sites in
/// the serving/pipeline hot paths are wrapped in HBTREE_HEAT_ONLY(...),
/// which expands to nothing unless HBTREE_OBS_HEAT=1. By default the gate
/// tracks HBTREE_OBS_TRACING, so every traced target (benches, the trace
/// tests) gets heat for free and every library default build pays zero
/// cost — not even a branch. The types below are always compiled (no
/// gated members, no ODR hazards); only the *calls* are gated.
#ifndef HBTREE_OBS_HEAT
#define HBTREE_OBS_HEAT HBTREE_OBS_TRACING
#endif

#if HBTREE_OBS_HEAT
#define HBTREE_HEAT_ONLY(...) __VA_ARGS__
#else
#define HBTREE_HEAT_ONLY(...)
#endif

namespace hbtree::obs {

// ---------------------------------------------------------------------------
// Keyspace heatmaps
// ---------------------------------------------------------------------------

/// Fixed-fanout key-range access sketch for one shard.
///
/// The shard's key range [lo, hi] is cut into `fanout` equal-width bins;
/// Record() increments one relaxed per-(bin, tenant) counter, so the
/// dispatch-path cost is one multiply and one atomic add. Counts decay by
/// periodic halving (every `decay_every` records, or explicitly), which
/// bounds the horizon the heatmap remembers without a timer thread.
///
/// Per-bin totals are derived as the sum over tenants, so tenant
/// attribution always reconciles exactly with the bin count — including
/// across decay halvings.
class KeyRangeSketch {
 public:
  struct Options {
    int fanout = 64;
    std::size_t tenants = 1;
    /// Records between automatic halvings. The default is high enough
    /// that bounded bench runs never decay (keeping shard-merge
    /// reconciliation exact); long-lived servers decay on cadence.
    std::uint64_t decay_every = 1ull << 22;
  };

  KeyRangeSketch(std::uint64_t lo, std::uint64_t hi, const Options& options)
      : lo_(lo),
        hi_(hi),
        fanout_(options.fanout),
        tenants_(options.tenants == 0 ? 1 : options.tenants),
        decay_every_(options.decay_every),
        counts_(static_cast<std::size_t>(fanout_) * tenants_) {
    HBTREE_CHECK(fanout_ > 0);
    HBTREE_CHECK(lo <= hi);
  }

  /// Records one access to `key` by `tenant`. Thread-safe (relaxed
  /// atomics); keys outside [lo, hi] clamp to the boundary bins.
  void Record(std::uint64_t key, std::size_t tenant = 0) {
    if (tenant >= tenants_) tenant = 0;
    counts_[static_cast<std::size_t>(BinFor(key)) * tenants_ + tenant]
        .fetch_add(1, std::memory_order_relaxed);
    if (decay_every_ > 0 &&
        since_decay_.fetch_add(1, std::memory_order_relaxed) + 1 ==
            decay_every_) {
      since_decay_.store(0, std::memory_order_relaxed);
      Decay();
    }
  }

  /// Halves every counter (rounding down). Concurrent Record()s may land
  /// before or after the halving of their bin — the sketch is a heat
  /// signal, not an exact ledger, once decay is in play.
  void Decay() {
    for (auto& c : counts_) {
      std::uint64_t v = c.load(std::memory_order_relaxed);
      c.store(v / 2, std::memory_order_relaxed);
    }
  }

  int BinFor(std::uint64_t key) const {
    if (key <= lo_) return 0;
    if (key >= hi_) return fanout_ - 1;
    const unsigned __int128 span =
        static_cast<unsigned __int128>(hi_ - lo_) + 1;
    return static_cast<int>(
        static_cast<unsigned __int128>(key - lo_) * fanout_ / span);
  }

  /// A consistent-enough copy of the counters (per-bin totals derived as
  /// the tenant sum, so the snapshot always reconciles internally).
  struct Snapshot {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    int fanout = 0;
    std::size_t tenants = 1;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> bins;          // fanout
    std::vector<std::uint64_t> tenant_bins;   // fanout * tenants

    /// Inclusive key range covered by bin `b`.
    std::pair<std::uint64_t, std::uint64_t> BinRange(int b) const {
      const unsigned __int128 span =
          static_cast<unsigned __int128>(hi - lo) + 1;
      const std::uint64_t range_lo = static_cast<std::uint64_t>(
          lo + span * static_cast<unsigned>(b) / fanout);
      const std::uint64_t range_hi = static_cast<std::uint64_t>(
          lo + span * (static_cast<unsigned>(b) + 1) / fanout - 1);
      return {range_lo, range_hi};
    }
  };

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    snap.lo = lo_;
    snap.hi = hi_;
    snap.fanout = fanout_;
    snap.tenants = tenants_;
    snap.bins.assign(static_cast<std::size_t>(fanout_), 0);
    snap.tenant_bins.resize(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const std::uint64_t v = counts_[i].load(std::memory_order_relaxed);
      snap.tenant_bins[i] = v;
      snap.bins[i / tenants_] += v;
      snap.total += v;
    }
    return snap;
  }

  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }
  int fanout() const { return fanout_; }
  std::size_t tenants() const { return tenants_; }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
  int fanout_;
  std::size_t tenants_;
  std::uint64_t decay_every_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> since_decay_{0};
};

/// One merged hot-range report entry: a sketch bin promoted to a range.
struct HeatRange {
  std::uint64_t lo = 0;   // inclusive
  std::uint64_t hi = 0;   // inclusive
  int shard = 0;
  std::uint64_t count = 0;
  double share = 0;       // count / merged total
  bool hot = false;       // share >= hot_factor / total bins
  std::vector<std::uint64_t> by_tenant;
};

/// Global keyspace heat: per-shard sketches merged into one top-K report.
struct KeyspaceHeat {
  std::uint64_t total = 0;
  int bins = 0;                  // total bins across all shards
  double hot_threshold_share = 0;
  std::vector<std::uint64_t> shard_totals;
  std::vector<HeatRange> top;    // non-increasing by count, count > 0 only
  bool empty() const { return total == 0 && top.empty(); }
};

struct MergeOptions {
  int top_k = 32;
  /// A range is flagged hot when its share exceeds `hot_factor` times the
  /// uniform expectation (1 / total bins).
  double hot_factor = 4.0;
};

/// Merges per-shard snapshots into the global top-K hot-range report.
KeyspaceHeat MergeSketches(const std::vector<KeyRangeSketch::Snapshot>& shards,
                           const MergeOptions& options = {});

// ---------------------------------------------------------------------------
// Tree-level traffic attribution
// ---------------------------------------------------------------------------

/// Modelled traffic attributed to one (level, node class) cell of one
/// pipeline stage. `hit_bytes[sim::HitLevel]` splits `bytes` by the cache
/// level that served the access, so hit_bytes sums back to bytes exactly.
struct LevelTraffic {
  int level = 0;
  int node_class = 0;  // static_cast<int>(NodeClass); kOtherClass = other
  std::uint64_t touches = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hit_bytes[4] = {0, 0, 0, 0};
};

/// Tracer that attributes every modelled memory access to the tree level
/// and node class being traversed, using a shared CacheHierarchy to model
/// which cache level serves each line.
///
/// Implements the core tracer contract plus the optional OnNodeTouch hook
/// (core/trace.h): the tree calls OnNodeTouch when it moves to a node,
/// and every subsequent OnAccess is attributed to that node's cell until
/// the next touch. Accesses before any touch (or outside a traversal) go
/// to the "other" cell, so hierarchy totals still reconcile.
///
/// Not internally synchronized: callers serialize through the owning
/// PipelineHeat's mutex (the CacheHierarchy's LRU state is mutable on
/// every access, so a shared lock would not help anyway).
class LevelHeatTracer {
 public:
  static constexpr int kMaxLevels = 12;
  static constexpr int kClasses = 3;
  static constexpr int kOtherClass = 3;
  static constexpr int kCells = kMaxLevels * kClasses + 1;

  explicit LevelHeatTracer(sim::CacheHierarchy* caches) : caches_(caches) {
    ResetRepeatMemo();
  }

  void OnQueryStart() { current_ = kCells - 1; }
  void OnQueryEnd() { current_ = kCells - 1; }

  void OnNodeTouch(int level, NodeClass cls, std::uint32_t node) {
    if (level < 0) level = 0;
    if (level >= kMaxLevels) level = kMaxLevels - 1;
    current_ = level * kClasses + static_cast<int>(cls);
    if (collapse_repeats_) {
      // Level-wise dispatch (DESIGN.md §14): consecutive queries of a
      // sorted batch that revisit the same node are one batch-level node
      // touch. Bytes still accrue per access — the cache hierarchy shows
      // the repeats as (cheap) upper-level hits.
      if (last_touch_[current_] == node) return;
      last_touch_[current_] = node;
    }
    cells_[current_].touches += 1;
  }

  /// Opt-in: collapse consecutive touches of the same node within a cell
  /// into one counted touch (per-batch attribution for sorted dispatch).
  void set_collapse_repeats(bool on) {
    collapse_repeats_ = on;
    if (!on) ResetRepeatMemo();
  }
  /// Forgets the last-node memo — call at batch boundaries so touch
  /// counts stay exactly "distinct runs per batch".
  void ResetRepeatMemo() {
    for (auto& n : last_touch_) n = kNoNode;
  }

  void OnAccess(const void* addr, std::size_t bytes) {
    const sim::HitLevel served = caches_->Access(addr);
    LevelTraffic& cell = cells_[current_];
    cell.bytes += bytes;
    cell.hit_bytes[static_cast<int>(served)] += bytes;
  }

  /// Appends every non-empty cell, with level/node_class filled in
  /// (the overflow cell reports node_class = kOtherClass, level 0).
  void Collect(std::vector<LevelTraffic>* out) const;

  /// Sum of `bytes` over all cells — equals 64 * caches->accesses() when
  /// this tracer is the hierarchy's only client.
  std::uint64_t total_bytes() const;

  void Reset() {
    for (auto& cell : cells_) cell = LevelTraffic{};
    current_ = kCells - 1;
    ResetRepeatMemo();
  }

 private:
  static constexpr std::uint64_t kNoNode = ~std::uint64_t{0};

  sim::CacheHierarchy* caches_;
  int current_ = kCells - 1;
  bool collapse_repeats_ = false;
  LevelTraffic cells_[kCells] = {};
  std::uint64_t last_touch_[kCells];  // ctor/ResetRepeatMemo fill kNoNode
};

/// Per-shard heat state for the CPU-side pipeline stages: one shared
/// modelled cache hierarchy plus one tracer per stage. Guard every use
/// (tracing and collection) with `mu` — the hierarchy mutates LRU state
/// on each access. The pipelines take the lock once per stage loop, not
/// per access, so the traced path stays cheap.
struct PipelineHeat {
  explicit PipelineHeat(std::vector<sim::CacheLevel::Config> levels)
      : caches(std::move(levels)),
        pre_descend(&caches),
        cpu_leaf(&caches),
        scan(&caches) {}

  std::mutex mu;
  sim::CacheHierarchy caches;
  LevelHeatTracer pre_descend;
  LevelHeatTracer cpu_leaf;
  LevelHeatTracer scan;

  /// Kernel-side per-batch traffic from the level-wise dispatch
  /// (DESIGN.md §14), accumulated under `mu` once per launch: distinct
  /// inner-node loads and queries resolved per tree level, plus the
  /// modelled device byte split of the launches. node_loads reconciling
  /// with "distinct start nodes per level" (not queries × levels) is the
  /// level-wise accounting invariant validate_metrics.py checks.
  std::vector<std::uint64_t> kernel_node_loads;
  std::vector<std::uint64_t> kernel_node_queries;
  std::uint64_t kernel_dram_bytes = 0;
  std::uint64_t kernel_l2_bytes = 0;
  std::uint64_t kernel_launches = 0;
};

// ---------------------------------------------------------------------------
// Memory-segment temperature
// ---------------------------------------------------------------------------

struct PoolTemperature {
  std::size_t segments = 0;
  std::size_t hot = 0;
  std::size_t warm = 0;
  std::size_t cold = 0;
  double cold_fraction = 0;  // cold / segments (0 when empty)
};

/// Classifies pool chunks (memory segments) as hot/warm/cold from their
/// cumulative touch counters, one observation per reporting epoch:
///  * hot  — at least `hot_min_touches` new touches this epoch;
///  * warm — touched within the last `warm_epochs` epochs (or touched
///    this epoch below the hot threshold);
///  * cold — idle longer than `warm_epochs` epochs.
/// Counter regressions (a pool Clear() or snapshot-instance swap) reset
/// the per-segment history instead of producing negative deltas.
class SegmentTemperature {
 public:
  struct Options {
    std::uint64_t hot_min_touches = 64;
    int warm_epochs = 4;
  };

  SegmentTemperature() = default;
  explicit SegmentTemperature(const Options& options) : options_(options) {}

  PoolTemperature Observe(const std::vector<std::uint64_t>& cumulative);

 private:
  Options options_;
  std::vector<std::uint64_t> prev_;
  std::vector<int> idle_epochs_;
};

// ---------------------------------------------------------------------------
// Report assembly
// ---------------------------------------------------------------------------

/// Traffic of one pipeline stage, summed across shards.
struct StageHeat {
  std::string stage;
  std::vector<LevelTraffic> levels;
};

/// GPU-kernel traffic of the level-wise dispatch (DESIGN.md §14), summed
/// across shards: per tree level, the distinct nodes the launches loaded
/// and the queries they resolved, plus the modelled device byte split.
/// `node_loads[l] < node_queries[l]` is the level-wise win; equality per
/// query would mean the batch degenerated to per-query traversal.
struct KernelHeat {
  std::vector<std::uint64_t> node_loads;    // indexed by tree level
  std::vector<std::uint64_t> node_queries;  // indexed by tree level
  std::uint64_t dram_bytes = 0;
  std::uint64_t l2_bytes = 0;
  std::uint64_t launches = 0;

  bool empty() const { return node_loads.empty() && launches == 0; }
};

/// The `heat` section of an hbtree.bench.v1 report.
struct HeatSection {
  KeyspaceHeat keyspace;
  std::vector<StageHeat> stages;
  KernelHeat kernel;
  std::vector<std::pair<std::string, PoolTemperature>> pools;
  std::vector<std::string> tenant_names;

  bool empty() const {
    return keyspace.empty() && stages.empty() && kernel.empty() &&
           pools.empty();
  }
};

class JsonWriter;

/// Emits the value object for the "heat" key (callers emit the key).
void AppendHeatJson(JsonWriter& writer, const HeatSection& heat);

/// JSON key for a (level, node_class) cell: "L<level>.<class>" or "other".
std::string LevelCellName(int level, int node_class);

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_HEAT_H_
