#include "obs/span_aggregator.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace hbtree::obs {

namespace {

/// Canonical pipeline order for emitted waterfalls.
constexpr std::array<const char*, 8> kStageOrder = {
    "admission_wait", "fill_window", "pre_descend", "h2d",
    "kernel",         "d2h",         "merge",       "commit",
};

int StageRank(const std::string& stage) {
  for (std::size_t i = 0; i < kStageOrder.size(); ++i) {
    if (stage == kStageOrder[i]) return static_cast<int>(i);
  }
  return static_cast<int>(kStageOrder.size());
}

std::vector<std::pair<std::string, StageStats>> Ordered(
    const std::map<std::string, StageStats>& stages, double total_us) {
  std::vector<std::pair<std::string, StageStats>> out(stages.begin(),
                                                      stages.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return StageRank(a.first) < StageRank(b.first);
  });
  for (auto& [name, s] : out) {
    s.share = total_us > 0 ? s.total_us / total_us : 0.0;
  }
  return out;
}

double TotalUs(const std::map<std::string, StageStats>& stages) {
  double total = 0;
  for (const auto& [name, s] : stages) total += s.total_us;
  return total;
}

/// "serve.shard3.read1" → "shard3"; threads outside the per-shard naming
/// scheme (clients, the reporter) contribute to the aggregate only.
std::string ShardGroupFromThreadName(const std::string& thread_name) {
  const char* prefix = "serve.shard";
  if (thread_name.rfind(prefix, 0) != 0) return {};
  const std::size_t start = std::strlen(prefix) - std::strlen("shard");
  const std::size_t dot = thread_name.find('.', std::strlen(prefix));
  if (dot == std::string::npos) return {};
  return thread_name.substr(start, dot - start);
}

}  // namespace

const char* SpanAggregator::StageForSpan(const char* span_name) {
  struct Mapping {
    const char* span;
    const char* stage;
  };
  static constexpr Mapping kMap[] = {
      {"queue.wait", "admission_wait"}, {"bucket.fill", "fill_window"},
      {"update.fill", "fill_window"},   {"bucket.pre_descend", "pre_descend"},
      {"bucket.h2d", "h2d"},            {"bucket.kernel", "kernel"},
      {"bucket.d2h", "d2h"},            {"bucket.cpu_leaf", "merge"},
      {"update.commit", "commit"},
  };
  for (const Mapping& m : kMap) {
    if (std::strcmp(span_name, m.span) == 0) return m.stage;
  }
  return nullptr;
}

void SpanAggregator::Add(const TraceEvent& event, const std::string& group) {
  if (event.ph != 'X') return;
  const char* stage = StageForSpan(event.name);
  if (stage == nullptr) return;
  auto fold = [&](StageMap& into) {
    StageStats& s = into[stage];
    s.count += 1;
    s.total_us += event.dur_us;
    s.max_us = std::max(s.max_us, event.dur_us);
  };
  fold(aggregate_);
  if (!group.empty()) fold(groups_[group]);
}

StageWaterfall SpanAggregator::Waterfall() const {
  StageWaterfall w;
  w.total_us = TotalUs(aggregate_);
  w.stages = Ordered(aggregate_, w.total_us);
  for (const auto& [name, stages] : groups_) {
    StageGroup g;
    g.name = name;
    g.stages = Ordered(stages, TotalUs(stages));
    w.groups.push_back(std::move(g));
  }
  return w;
}

StageWaterfall SpanAggregator::FromSession() {
  std::map<int, std::string> wall_groups;
  for (const auto& [tid, name] : TraceSession::ThreadNames()) {
    wall_groups[tid] = ShardGroupFromThreadName(name);
  }
  std::map<int, std::string> slot_prefixes;
  for (const auto& [base, prefix] : TraceSession::ModelTrackPrefixes()) {
    slot_prefixes[base] = prefix;
  }
  SpanAggregator agg;
  for (const TraceEvent& e : TraceSession::Snapshot()) {
    std::string group;
    if (e.pid == TraceSession::kModelPid) {
      const int base = e.tid - e.tid % TraceSession::kModelTrackStride;
      const auto it = slot_prefixes.find(base);
      if (it != slot_prefixes.end()) {
        group = it->second;
      } else if (base != 0) {
        group = "slot" + std::to_string(base / TraceSession::kModelTrackStride);
      }
    } else {
      const auto it = wall_groups.find(e.tid);
      if (it != wall_groups.end()) group = it->second;
    }
    agg.Add(e, group);
  }
  return agg.Waterfall();
}

}  // namespace hbtree::obs
