#ifndef HBTREE_OBS_HISTOGRAM_H_
#define HBTREE_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace hbtree::obs {

/// Percentile summary extracted from a LatencyHistogram.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double mean_us = 0;
};

/// Lock-free log-scaled latency histogram (HdrHistogram-lite): four
/// sub-buckets per power of two of nanoseconds, so any recorded value is
/// attributed within ~12% of its true magnitude — plenty for p50/p99
/// reporting. Record() is wait-free (one relaxed fetch_add plus a CAS
/// loop for the running maximum) so every serving thread can record into
/// the same histogram without contention on a lock.
///
/// Lived in src/serve/ until the observability layer needed the same
/// structure for generic metric histograms; serve/latency_histogram.h
/// now aliases this type.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;               // 4 sub-buckets/octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kLinearLimit = 1 << (kSubBits + 1);  // 0..7 exact
  static constexpr int kBuckets = kLinearLimit + (64 - kSubBits - 1) * kSub;

  void Record(std::uint64_t ns) {
    counts_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Adds `other`'s contents into this histogram (counts, sum, running
  /// max). Safe against concurrent Record() on either side in the usual
  /// monitoring sense: a racing sample lands wholly in one histogram or
  /// the other, never half.
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = other.counts_[b].load(std::memory_order_relaxed);
      if (n != 0) counts_[b].fetch_add(n, std::memory_order_relaxed);
    }
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t other_max =
        other.max_ns_.load(std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_ns_.compare_exchange_weak(seen, other_max,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Zeroes the histogram. Windowed reporting drains a histogram with
  /// MergeFrom + Reset; a Record() racing the pair may be dropped from
  /// both windows — acceptable for monitoring, not for exact accounting.
  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

  /// Mid-point of the bucket `ns` falls into (its representative value).
  static std::uint64_t BucketMidpointNs(int bucket) {
    if (bucket < kLinearLimit) return bucket;
    const int rel = bucket - kLinearLimit;
    const int exp = kSubBits + 1 + rel / kSub;
    const int sub = rel % kSub;
    const std::uint64_t low =
        (std::uint64_t{1} << exp) +
        (static_cast<std::uint64_t>(sub) << (exp - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBits);
    return low + width / 2;
  }

  static int BucketIndex(std::uint64_t ns) {
    if (ns < kLinearLimit) return static_cast<int>(ns);
    const int exp = 63 - std::countl_zero(ns);
    const int sub = static_cast<int>((ns >> (exp - kSubBits)) & (kSub - 1));
    return kLinearLimit + (exp - kSubBits - 1) * kSub + sub;
  }

  /// Consistent-enough snapshot for reporting: concurrent Record() calls
  /// may or may not be included, as with any monitoring counter read.
  LatencySummary Summarize() const {
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = counts_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    LatencySummary summary;
    summary.count = total;
    if (total == 0) return summary;
    summary.max_us = max_ns_.load(std::memory_order_relaxed) / 1e3;
    summary.mean_us = sum_ns_.load(std::memory_order_relaxed) / 1e3 / total;

    auto percentile = [&](double q) {
      const std::uint64_t rank = static_cast<std::uint64_t>(q * (total - 1));
      std::uint64_t seen = 0;
      for (int b = 0; b < kBuckets; ++b) {
        seen += counts[b];
        if (seen > rank) return BucketMidpointNs(b) / 1e3;
      }
      return BucketMidpointNs(kBuckets - 1) / 1e3;
    };
    summary.p50_us = percentile(0.50);
    summary.p90_us = percentile(0.90);
    summary.p99_us = percentile(0.99);
    // The histogram midpoint can overshoot the true maximum; clamp so the
    // reported percentiles never exceed the observed max.
    summary.p50_us = std::min(summary.p50_us, summary.max_us);
    summary.p90_us = std::min(summary.p90_us, summary.max_us);
    summary.p99_us = std::min(summary.p99_us, summary.max_us);
    return summary;
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_HISTOGRAM_H_
