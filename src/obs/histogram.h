#ifndef HBTREE_OBS_HISTOGRAM_H_
#define HBTREE_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hbtree::obs {

/// One tail-latency sample linked back to its trace span: the answer to
/// "which dispatch was that p99 outlier, and where did its time go".
/// `trace_id` identifies the recording TraceSession (exported as the
/// trace JSON's top-level `traceId`), `span_id` the specific span (the
/// bucket dispatch / update commit that served the sample). Both stay
/// below 2^53 so they survive a round trip through JSON doubles.
struct Exemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  int shard = -1;          // key-range shard that served the sample
  double modelled_us = 0;  // modelled device time charged to its bucket
  std::uint64_t wall_ns = 0;  // the sample's own recorded latency
};

/// Exemplar pinned to the histogram bucket its sample landed in.
struct BucketExemplar {
  int bucket = -1;
  Exemplar exemplar;
};

/// Percentile summary extracted from a LatencyHistogram.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double mean_us = 0;
  /// Captured tail exemplars (empty unless the owner recorded any via
  /// RecordWithExemplar), sorted by bucket ascending.
  std::vector<BucketExemplar> exemplars;
};

/// Lock-free log-scaled latency histogram (HdrHistogram-lite): four
/// sub-buckets per power of two of nanoseconds, so any recorded value is
/// attributed within ~12% of its true magnitude — plenty for p50/p99
/// reporting. Record() is wait-free (one relaxed fetch_add plus a CAS
/// loop for the running maximum) so every serving thread can record into
/// the same histogram without contention on a lock.
///
/// Lived in src/serve/ until the observability layer needed the same
/// structure for generic metric histograms; serve/latency_histogram.h
/// now aliases this type.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;               // 4 sub-buckets/octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kLinearLimit = 1 << (kSubBits + 1);  // 0..7 exact
  static constexpr int kBuckets = kLinearLimit + (64 - kSubBits - 1) * kSub;
  /// Exemplar reservoir bound: at most this many (bucket, exemplar)
  /// entries per histogram, regardless of how many shards merge in.
  static constexpr int kMaxExemplars = 8;

  void Record(std::uint64_t ns) {
    counts_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Record() plus exemplar capture: if the sample's bucket is at or
  /// above the exemplar threshold, it competes for a reservoir slot. The
  /// reservoir keeps at most kMaxExemplars entries, one per bucket, each
  /// holding the max-latency sample seen for that bucket; when full, the
  /// lowest-bucket entry is evicted for a higher-bucket sample, so the
  /// extreme tail always keeps its exemplar. The threshold pre-check is
  /// one relaxed load; only qualifying samples (the tail) take the
  /// reservoir lock.
  void RecordWithExemplar(std::uint64_t ns, const Exemplar& exemplar) {
    Record(ns);
    const int bucket = BucketIndex(ns);
    if (bucket < exemplar_threshold_.load(std::memory_order_relaxed)) return;
    Exemplar e = exemplar;
    e.wall_ns = ns;
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    Offer(bucket, e);
  }

  /// Capture floor: samples whose bucket lies below the threshold are
  /// not considered for the reservoir. 0 (the default) captures into the
  /// reservoir from the first sample on; owners typically raise it to
  /// the bucket of a trailing percentile (see obs::Histogram).
  void SetExemplarThresholdNs(std::uint64_t ns) {
    exemplar_threshold_.store(BucketIndex(ns), std::memory_order_relaxed);
  }

  /// Current reservoir contents, sorted by bucket ascending.
  std::vector<BucketExemplar> Exemplars() const {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    std::vector<BucketExemplar> out;
    out.reserve(static_cast<std::size_t>(exemplar_count_));
    for (int i = 0; i < exemplar_count_; ++i) out.push_back(exemplars_[i]);
    std::sort(out.begin(), out.end(),
              [](const BucketExemplar& a, const BucketExemplar& b) {
                return a.bucket < b.bucket;
              });
    return out;
  }

  /// Adds `other`'s contents into this histogram (counts, sum, running
  /// max). Safe against concurrent Record() on either side in the usual
  /// monitoring sense: a racing sample lands wholly in one histogram or
  /// the other, never half.
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = other.counts_[b].load(std::memory_order_relaxed);
      if (n != 0) counts_[b].fetch_add(n, std::memory_order_relaxed);
    }
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t other_max =
        other.max_ns_.load(std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_ns_.compare_exchange_weak(seen, other_max,
                                          std::memory_order_relaxed)) {
    }
    // Exemplars reconcile under the same policy as live capture: per
    // bucket the max-latency sample wins, the reservoir stays bounded,
    // and higher buckets displace lower ones — so merging N shards'
    // histograms keeps the globally worst tail samples. Snapshot the
    // source first: both sides may be recording concurrently, and taking
    // the two locks in a fixed order (snapshot then insert) avoids any
    // lock-order cycle between histograms merged in both directions.
    const std::vector<BucketExemplar> theirs = other.Exemplars();
    if (!theirs.empty()) {
      std::lock_guard<std::mutex> lock(exemplar_mutex_);
      for (const BucketExemplar& be : theirs) Offer(be.bucket, be.exemplar);
    }
  }

  /// Zeroes the histogram. Windowed reporting drains a histogram with
  /// MergeFrom + Reset; a Record() racing the pair may be dropped from
  /// both windows — acceptable for monitoring, not for exact accounting.
  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    exemplar_count_ = 0;
  }

  /// Mid-point of the bucket `ns` falls into (its representative value).
  static std::uint64_t BucketMidpointNs(int bucket) {
    if (bucket < kLinearLimit) return bucket;
    const int rel = bucket - kLinearLimit;
    const int exp = kSubBits + 1 + rel / kSub;
    const int sub = rel % kSub;
    const std::uint64_t low =
        (std::uint64_t{1} << exp) +
        (static_cast<std::uint64_t>(sub) << (exp - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBits);
    return low + width / 2;
  }

  static int BucketIndex(std::uint64_t ns) {
    if (ns < kLinearLimit) return static_cast<int>(ns);
    const int exp = 63 - std::countl_zero(ns);
    const int sub = static_cast<int>((ns >> (exp - kSubBits)) & (kSub - 1));
    return kLinearLimit + (exp - kSubBits - 1) * kSub + sub;
  }

  /// Consistent-enough snapshot for reporting: concurrent Record() calls
  /// may or may not be included, as with any monitoring counter read.
  LatencySummary Summarize() const {
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = counts_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    LatencySummary summary;
    summary.count = total;
    if (total == 0) return summary;
    summary.max_us = max_ns_.load(std::memory_order_relaxed) / 1e3;
    summary.mean_us = sum_ns_.load(std::memory_order_relaxed) / 1e3 / total;

    auto percentile = [&](double q) {
      const std::uint64_t rank = static_cast<std::uint64_t>(q * (total - 1));
      std::uint64_t seen = 0;
      for (int b = 0; b < kBuckets; ++b) {
        seen += counts[b];
        if (seen > rank) return BucketMidpointNs(b) / 1e3;
      }
      return BucketMidpointNs(kBuckets - 1) / 1e3;
    };
    summary.p50_us = percentile(0.50);
    summary.p90_us = percentile(0.90);
    summary.p99_us = percentile(0.99);
    // The histogram midpoint can overshoot the true maximum; clamp so the
    // reported percentiles never exceed the observed max.
    summary.p50_us = std::min(summary.p50_us, summary.max_us);
    summary.p90_us = std::min(summary.p90_us, summary.max_us);
    summary.p99_us = std::min(summary.p99_us, summary.max_us);
    summary.exemplars = Exemplars();
    return summary;
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

 private:
  /// Inserts under exemplar_mutex_ (caller holds it). One entry per
  /// bucket (max wall_ns wins); when full, the lowest-bucket entry yields
  /// to a strictly higher bucket.
  void Offer(int bucket, const Exemplar& exemplar) {
    int lowest = 0;
    for (int i = 0; i < exemplar_count_; ++i) {
      if (exemplars_[i].bucket == bucket) {
        if (exemplar.wall_ns > exemplars_[i].exemplar.wall_ns) {
          exemplars_[i].exemplar = exemplar;
        }
        return;
      }
      if (exemplars_[i].bucket < exemplars_[lowest].bucket) lowest = i;
    }
    if (exemplar_count_ < kMaxExemplars) {
      exemplars_[exemplar_count_++] = BucketExemplar{bucket, exemplar};
      return;
    }
    if (exemplars_[lowest].bucket < bucket) {
      exemplars_[lowest] = BucketExemplar{bucket, exemplar};
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};

  /// Minimum bucket index worth an exemplar (see RecordWithExemplar).
  std::atomic<int> exemplar_threshold_{0};
  mutable std::mutex exemplar_mutex_;  // guards the reservoir below
  std::array<BucketExemplar, kMaxExemplars> exemplars_{};
  int exemplar_count_ = 0;
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_HISTOGRAM_H_
