#include "obs/trace.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "obs/json_writer.h"

namespace hbtree::obs {

std::atomic<bool> TraceSession::active_{false};

namespace {

/// One thread's event log. Owned jointly by the thread (thread_local
/// shared_ptr, so recording needs no lock) and the global registry (so
/// export still sees the events of threads that already exited).
struct ThreadBuffer {
  int tid = 0;
  // Owned copy (unlike event names): worker threads name themselves with
  // dynamically built labels like "serve.shard0.read1".
  std::string name;
  std::vector<TraceEvent> events;
};

/// 48-bit session identity (survives a JSON-double round trip). Mixes
/// two clocks so back-to-back sessions in one process and sessions in
/// distinct processes both diverge.
std::uint64_t GenerateTraceId() {
  const auto mono = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto wall = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  std::uint64_t id = (mono * 0x9e3779b97f4a7c15ull) ^ wall;
  id &= (std::uint64_t{1} << 48) - 1;
  return id != 0 ? id : 1;
}

struct TraceState {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::mutex mutex;  // guards buffers + model_prefixes (control ops)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<int, std::string> model_prefixes;  // track base → label
  // Wall tids start above the slot-0 model-track block so a Perfetto
  // view sorts those resource tracks first. Sharded slots use bases ≥
  // kModelTrackStride and so share the tid space with wall threads —
  // harmless, the pids differ.
  std::atomic<int> next_tid{16};
  std::atomic<std::uint64_t> next_span_id{1};
  std::atomic<std::uint64_t> trace_id{0};
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    b->tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mutex);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

const char* ModelTrackName(int tid) {
  switch (tid) {
    case TraceSession::kTrackPreDescend:
      return "sim.pre_descend";
    case TraceSession::kTrackH2D:
      return "sim.h2d";
    case TraceSession::kTrackKernel:
      return "sim.kernel";
    case TraceSession::kTrackD2H:
      return "sim.d2h";
    case TraceSession::kTrackCpuLeaf:
      return "sim.cpu_leaf";
    default:
      return "sim.unknown";
  }
}

void AppendEvent(JsonWriter* w, const TraceEvent& e) {
  w->BeginObject();
  w->Key("name");
  w->String(e.name);
  w->Key("cat");
  w->String(e.cat);
  w->Key("ph");
  w->String(std::string(1, e.ph));
  w->Key("pid");
  w->Int(e.pid);
  w->Key("tid");
  w->Int(e.tid);
  w->Key("ts");
  w->Number(e.ts_us);
  if (e.ph == 'X') {
    w->Key("dur");
    w->Number(e.dur_us);
  }
  if (e.ph == 'i') {
    w->Key("s");
    w->String("t");  // thread-scoped instant
  }
  if (e.arg_name != nullptr || e.span_id != 0) {
    w->Key("args");
    w->BeginObject();
    if (e.arg_name != nullptr) {
      w->Key(e.arg_name);
      w->Number(e.arg_value);
    }
    if (e.span_id != 0) {
      w->Key("span_id");
      w->Uint(e.span_id);
    }
    w->EndObject();
  }
  w->EndObject();
}

void AppendMetadata(JsonWriter* w, const char* kind, int pid, int tid,
                    const std::string& name) {
  w->BeginObject();
  w->Key("name");
  w->String(kind);
  w->Key("ph");
  w->String("M");
  w->Key("pid");
  w->Int(pid);
  if (tid >= 0) {
    w->Key("tid");
    w->Int(tid);
  }
  w->Key("args");
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->EndObject();
  w->EndObject();
}

}  // namespace

void TraceSession::Start() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& buffer : state.buffers) buffer->events.clear();
  state.start = std::chrono::steady_clock::now();
  state.trace_id.store(GenerateTraceId(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void TraceSession::Stop() { active_.store(false, std::memory_order_release); }

void TraceSession::Clear() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& buffer : state.buffers) buffer->events.clear();
}

double TraceSession::NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - State().start)
      .count();
}

void TraceSession::SetThreadName(const char* name) {
  LocalBuffer().name = name;
}

std::uint64_t TraceSession::trace_id() {
  return State().trace_id.load(std::memory_order_relaxed);
}

std::uint64_t TraceSession::NextSpanId() {
  return State().next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void TraceSession::RegisterModelTrackPrefix(int base,
                                            const std::string& prefix) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.model_prefixes[base] = prefix;
}

void TraceSession::RecordComplete(const char* name, const char* cat,
                                  double ts_us, double dur_us,
                                  const char* arg_name, double arg_value,
                                  std::uint64_t span_id) {
  if (!active()) return;
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.pid = kWallPid;
  e.tid = buffer.tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.span_id = span_id;
  buffer.events.push_back(e);
}

void TraceSession::RecordInstant(const char* name, const char* cat) {
  if (!active()) return;
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.pid = kWallPid;
  e.tid = buffer.tid;
  e.ts_us = NowUs();
  buffer.events.push_back(e);
}

void TraceSession::RecordModelSpan(ModelTrack track, const char* name,
                                   double ts_us, double dur_us,
                                   const char* arg_name, double arg_value) {
  RecordModelSpanAt(0, track, name, ts_us, dur_us, arg_name, arg_value);
}

void TraceSession::RecordModelSpanAt(int base, ModelTrack track,
                                     const char* name, double ts_us,
                                     double dur_us, const char* arg_name,
                                     double arg_value) {
  if (!active()) return;
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent e;
  e.name = name;
  e.cat = "model";
  e.ph = 'X';
  e.pid = kModelPid;
  e.tid = base + static_cast<int>(track);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  buffer.events.push_back(e);
}

std::vector<TraceEvent> TraceSession::Snapshot() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : state.buffers) {
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

std::vector<std::pair<int, std::string>> TraceSession::ThreadNames() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<std::pair<int, std::string>> names;
  for (const auto& buffer : state.buffers) {
    if (!buffer->name.empty()) names.emplace_back(buffer->tid, buffer->name);
  }
  return names;
}

std::vector<std::pair<int, std::string>> TraceSession::ModelTrackPrefixes() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return {state.model_prefixes.begin(), state.model_prefixes.end()};
}

std::size_t TraceSession::event_count() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t n = 0;
  for (const auto& buffer : state.buffers) n += buffer->events.size();
  return n;
}

std::string TraceSession::ToChromeJson() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceId");
  w.Uint(state.trace_id.load(std::memory_order_relaxed));
  w.Key("traceEvents");
  w.BeginArray();
  AppendMetadata(&w, "process_name", kWallPid, -1, "wall-clock");
  AppendMetadata(&w, "process_name", kModelPid, -1, "modelled platform");
  // Name every model track in use: the slot-0 block always, registered
  // slot blocks, plus any tid events actually landed on.
  std::set<int> model_tids;
  for (int track = kTrackPreDescend; track <= kTrackCpuLeaf; ++track) {
    model_tids.insert(track);
    for (const auto& [base, prefix] : state.model_prefixes) {
      model_tids.insert(base + track);
    }
  }
  for (const auto& buffer : state.buffers) {
    for (const TraceEvent& e : buffer->events) {
      if (e.pid == kModelPid) model_tids.insert(e.tid);
    }
  }
  for (const int tid : model_tids) {
    const int track = tid % kModelTrackStride;
    const int base = tid - track;
    std::string label;
    if (base != 0) {
      const auto it = state.model_prefixes.find(base);
      label = it != state.model_prefixes.end()
                  ? it->second
                  : "slot" + std::to_string(base / kModelTrackStride);
      label += '/';
    }
    label += ModelTrackName(track);
    AppendMetadata(&w, "thread_name", kModelPid, tid, label);
  }
  for (const auto& buffer : state.buffers) {
    char fallback[32];
    std::snprintf(fallback, sizeof(fallback), "thread %d", buffer->tid);
    AppendMetadata(&w, "thread_name", kWallPid, buffer->tid,
                   !buffer->name.empty() ? buffer->name : fallback);
  }
  for (const auto& buffer : state.buffers) {
    for (const TraceEvent& e : buffer->events) AppendEvent(&w, e);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

bool TraceSession::WriteChromeJson(const std::string& path) {
  if (active()) return false;
  const std::string json = ToChromeJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  return written == json.size() && std::fclose(file) == 0;
}

}  // namespace hbtree::obs
