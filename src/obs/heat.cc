#include "obs/heat.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace hbtree::obs {

KeyspaceHeat MergeSketches(const std::vector<KeyRangeSketch::Snapshot>& shards,
                           const MergeOptions& options) {
  KeyspaceHeat heat;
  std::vector<HeatRange> ranges;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const KeyRangeSketch::Snapshot& snap = shards[s];
    heat.bins += snap.fanout;
    heat.shard_totals.push_back(snap.total);
    heat.total += snap.total;
    for (int b = 0; b < snap.fanout; ++b) {
      if (snap.bins[static_cast<std::size_t>(b)] == 0) continue;
      HeatRange range;
      const auto [lo, hi] = snap.BinRange(b);
      range.lo = lo;
      range.hi = hi;
      range.shard = static_cast<int>(s);
      range.count = snap.bins[static_cast<std::size_t>(b)];
      range.by_tenant.assign(
          snap.tenant_bins.begin() +
              static_cast<std::ptrdiff_t>(b) *
                  static_cast<std::ptrdiff_t>(snap.tenants),
          snap.tenant_bins.begin() +
              static_cast<std::ptrdiff_t>(b + 1) *
                  static_cast<std::ptrdiff_t>(snap.tenants));
      ranges.push_back(std::move(range));
    }
  }
  if (heat.bins > 0) {
    heat.hot_threshold_share = options.hot_factor / heat.bins;
  }
  std::stable_sort(ranges.begin(), ranges.end(),
                   [](const HeatRange& a, const HeatRange& b) {
                     return a.count > b.count;
                   });
  const std::size_t keep = std::min<std::size_t>(
      ranges.size(), options.top_k < 0 ? 0 : options.top_k);
  ranges.resize(keep);
  for (HeatRange& range : ranges) {
    range.share = heat.total == 0
                      ? 0.0
                      : static_cast<double>(range.count) /
                            static_cast<double>(heat.total);
    range.hot = heat.hot_threshold_share > 0 &&
                range.share >= heat.hot_threshold_share;
  }
  heat.top = std::move(ranges);
  return heat;
}

void LevelHeatTracer::Collect(std::vector<LevelTraffic>* out) const {
  for (int i = 0; i < kCells; ++i) {
    const LevelTraffic& cell = cells_[i];
    if (cell.touches == 0 && cell.bytes == 0) continue;
    LevelTraffic entry = cell;
    if (i == kCells - 1) {
      entry.level = 0;
      entry.node_class = kOtherClass;
    } else {
      entry.level = i / kClasses;
      entry.node_class = i % kClasses;
    }
    out->push_back(entry);
  }
}

std::uint64_t LevelHeatTracer::total_bytes() const {
  std::uint64_t total = 0;
  for (const LevelTraffic& cell : cells_) total += cell.bytes;
  return total;
}

PoolTemperature SegmentTemperature::Observe(
    const std::vector<std::uint64_t>& cumulative) {
  // A shrink or a counter going backwards means the underlying pool was
  // rebuilt (Clear()) or a different snapshot instance is being observed:
  // restart history rather than report nonsense deltas.
  bool reset = cumulative.size() < prev_.size();
  for (std::size_t i = 0; !reset && i < prev_.size(); ++i) {
    if (cumulative[i] < prev_[i]) reset = true;
  }
  if (reset) {
    prev_.clear();
    idle_epochs_.clear();
  }
  prev_.resize(cumulative.size(), 0);
  idle_epochs_.resize(cumulative.size(), 0);

  PoolTemperature result;
  result.segments = cumulative.size();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    const std::uint64_t delta = cumulative[i] - prev_[i];
    prev_[i] = cumulative[i];
    if (delta > 0) {
      idle_epochs_[i] = 0;
    } else if (idle_epochs_[i] <= options_.warm_epochs) {
      // Saturating: far-past segments stay cold without overflow risk.
      ++idle_epochs_[i];
    }
    if (delta >= options_.hot_min_touches) {
      ++result.hot;
    } else if (idle_epochs_[i] <= options_.warm_epochs) {
      ++result.warm;
    } else {
      ++result.cold;
    }
  }
  if (result.segments > 0) {
    result.cold_fraction = static_cast<double>(result.cold) /
                           static_cast<double>(result.segments);
  }
  return result;
}

std::string LevelCellName(int level, int node_class) {
  static const char* kClassNames[] = {"inner", "last_inner", "big_leaf"};
  if (node_class < 0 || node_class >= LevelHeatTracer::kClasses) {
    return "other";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "L%d.%s", level,
                kClassNames[node_class]);
  return buffer;
}

void AppendHeatJson(JsonWriter& writer, const HeatSection& heat) {
  writer.BeginObject();

  writer.Key("keyspace");
  writer.BeginObject();
  writer.Key("total");
  writer.Uint(heat.keyspace.total);
  writer.Key("bins");
  writer.Int(heat.keyspace.bins);
  writer.Key("hot_threshold_share");
  writer.Number(heat.keyspace.hot_threshold_share);
  writer.Key("shard_totals");
  writer.BeginArray();
  for (std::uint64_t total : heat.keyspace.shard_totals) writer.Uint(total);
  writer.EndArray();
  writer.Key("ranges");
  writer.BeginArray();
  for (const HeatRange& range : heat.keyspace.top) {
    writer.BeginObject();
    writer.Key("lo");
    writer.Uint(range.lo);
    writer.Key("hi");
    writer.Uint(range.hi);
    writer.Key("shard");
    writer.Int(range.shard);
    writer.Key("count");
    writer.Uint(range.count);
    writer.Key("share");
    writer.Number(range.share);
    writer.Key("hot");
    writer.Bool(range.hot);
    writer.Key("tenants");
    writer.BeginObject();
    for (std::size_t t = 0; t < range.by_tenant.size(); ++t) {
      if (range.by_tenant[t] == 0) continue;
      writer.Key(t < heat.tenant_names.size() ? heat.tenant_names[t]
                                              : "tenant" + std::to_string(t));
      writer.Uint(range.by_tenant[t]);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();

  writer.Key("levels");
  writer.BeginObject();
  for (const StageHeat& stage : heat.stages) {
    writer.Key(stage.stage);
    writer.BeginObject();
    for (const LevelTraffic& cell : stage.levels) {
      writer.Key(LevelCellName(cell.level, cell.node_class));
      writer.BeginObject();
      writer.Key("touches");
      writer.Uint(cell.touches);
      writer.Key("bytes");
      writer.Uint(cell.bytes);
      writer.Key("l1_bytes");
      writer.Uint(cell.hit_bytes[0]);
      writer.Key("l2_bytes");
      writer.Uint(cell.hit_bytes[1]);
      writer.Key("l3_bytes");
      writer.Uint(cell.hit_bytes[2]);
      writer.Key("dram_bytes");
      writer.Uint(cell.hit_bytes[3]);
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("kernel");
  writer.BeginObject();
  writer.Key("launches");
  writer.Uint(heat.kernel.launches);
  writer.Key("dram_bytes");
  writer.Uint(heat.kernel.dram_bytes);
  writer.Key("l2_bytes");
  writer.Uint(heat.kernel.l2_bytes);
  writer.Key("node_loads");
  writer.BeginArray();
  for (std::uint64_t v : heat.kernel.node_loads) writer.Uint(v);
  writer.EndArray();
  writer.Key("node_queries");
  writer.BeginArray();
  for (std::uint64_t v : heat.kernel.node_queries) writer.Uint(v);
  writer.EndArray();
  writer.EndObject();

  writer.Key("pools");
  writer.BeginObject();
  for (const auto& [name, pool] : heat.pools) {
    writer.Key(name);
    writer.BeginObject();
    writer.Key("segments");
    writer.Uint(pool.segments);
    writer.Key("hot");
    writer.Uint(pool.hot);
    writer.Key("warm");
    writer.Uint(pool.warm);
    writer.Key("cold");
    writer.Uint(pool.cold);
    writer.Key("cold_fraction");
    writer.Number(pool.cold_fraction);
    writer.EndObject();
  }
  writer.EndObject();

  writer.EndObject();
}

}  // namespace hbtree::obs
