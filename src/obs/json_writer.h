#ifndef HBTREE_OBS_JSON_WRITER_H_
#define HBTREE_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hbtree::obs {

/// Minimal streaming JSON writer shared by the metrics dump, the Chrome
/// trace exporter, and the bench reporter. Keeps the emitted schema in
/// one place: keys are always quoted, numbers are emitted with enough
/// precision to round-trip a metric, and non-finite doubles become null
/// (the metrics validator then fails loudly instead of shipping a NaN
/// that breaks downstream JSON parsers).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(4096); }

  void BeginObject() {
    Separate();
    out_.push_back('{');
    stack_.push_back(false);
  }
  void EndObject() {
    stack_.pop_back();
    out_.push_back('}');
  }
  void BeginArray() {
    Separate();
    out_.push_back('[');
    stack_.push_back(false);
  }
  void EndArray() {
    stack_.pop_back();
    out_.push_back(']');
  }

  /// Emits `"key":`; the next value call supplies the value.
  void Key(const std::string& key) {
    Separate();
    AppendEscaped(key);
    out_.push_back(':');
    pending_value_ = true;
  }

  void String(const std::string& value) {
    Separate();
    AppendEscaped(value);
  }
  void Uint(std::uint64_t value) {
    Separate();
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    out_ += buffer;
  }
  void Int(std::int64_t value) {
    Separate();
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out_ += buffer;
  }
  void Number(double value) {
    Separate();
    if (!std::isfinite(value)) {
      out_ += "null";
      return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out_ += buffer;
  }
  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }

  const std::string& str() const { return out_; }

 private:
  /// Inserts the comma between siblings. A value directly after Key()
  /// never gets one (the key already separated itself).
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_.push_back(',');
      stack_.back() = true;
    }
  }

  void AppendEscaped(const std::string& s) {
    out_.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  std::vector<bool> stack_;  // per nesting level: "has emitted a sibling"
  bool pending_value_ = false;
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_JSON_WRITER_H_
