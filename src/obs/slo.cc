#include "obs/slo.h"

#include <algorithm>

namespace hbtree::obs {

namespace {

const LatencySummary* FindHistogram(const MetricsSnapshot& snapshot,
                                    const std::string& name) {
  for (const auto& [key, summary] : snapshot.histograms) {
    if (key == name) return &summary;
  }
  return nullptr;
}

}  // namespace

double SloTracker::EstimateBadFraction(const LatencySummary& summary,
                                       double threshold_us) {
  if (summary.count == 0) return 0;
  if (threshold_us >= summary.max_us) return 0;
  // Known (latency, quantile) points of the summary. Percentiles are
  // clamped to max on the way out of the histogram, so the sequence is
  // non-decreasing.
  const std::pair<double, double> points[] = {
      {summary.p50_us, 0.50},
      {summary.p90_us, 0.90},
      {summary.p99_us, 0.99},
      {summary.max_us, 1.00},
  };
  if (threshold_us < points[0].first) return 1.0 - 0.50;
  double quantile = 1.0;
  for (int i = 0; i + 1 < 4; ++i) {
    const auto [lo_lat, lo_q] = points[i];
    const auto [hi_lat, hi_q] = points[i + 1];
    if (threshold_us > hi_lat) continue;
    quantile = hi_lat > lo_lat
                   ? lo_q + (hi_q - lo_q) * (threshold_us - lo_lat) /
                                (hi_lat - lo_lat)
                   : hi_q;
    break;
  }
  return std::max(0.0, 1.0 - quantile);
}

void SloTracker::AddTarget(const SloSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Target t;
  t.spec = spec;
  if (t.spec.long_windows < 1) t.spec.long_windows = 1;
  t.status.name = spec.name;
  t.status.budget = spec.budget;
  targets_.push_back(std::move(t));
}

void SloTracker::Observe(const MetricsSnapshot& window) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Target& t : targets_) {
    double bad = 0;
    double total = 0;
    if (t.spec.kind == SloSpec::Kind::kLatencyP99) {
      if (const LatencySummary* s = FindHistogram(window, t.spec.histogram)) {
        total = static_cast<double>(s->count);
        bad = total * EstimateBadFraction(*s, t.spec.threshold_us);
      }
    } else {
      for (const std::string& name : t.spec.bad_counters) {
        bad += static_cast<double>(window.counter_or(name));
      }
      for (const std::string& name : t.spec.total_counters) {
        total += static_cast<double>(window.counter_or(name));
      }
    }
    t.ring.emplace_back(bad, total);
    const std::size_t cap = static_cast<std::size_t>(t.spec.long_windows);
    if (t.ring.size() > cap) t.ring.erase(t.ring.begin());

    SloStatus& st = t.status;
    st.windows += 1;
    st.bad_fraction = total > 0 ? bad / total : 0.0;
    st.burn_short =
        t.spec.budget > 0 ? st.bad_fraction / t.spec.budget : 0.0;
    double ring_bad = 0;
    double ring_total = 0;
    for (const auto& [b, n] : t.ring) {
      ring_bad += b;
      ring_total += n;
    }
    const double long_fraction = ring_total > 0 ? ring_bad / ring_total : 0.0;
    st.burn_long = t.spec.budget > 0 ? long_fraction / t.spec.budget : 0.0;
    st.burning = st.burn_short > 1.0 && st.burn_long > 1.0;

    if (registry_ != nullptr) {
      registry_->gauge("slo." + t.spec.name + ".bad_fraction")
          .Set(st.bad_fraction);
      registry_->gauge("slo." + t.spec.name + ".burn_short")
          .Set(st.burn_short);
      registry_->gauge("slo." + t.spec.name + ".burn_long").Set(st.burn_long);
    }
  }
}

std::vector<SloStatus> SloTracker::Status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> out;
  out.reserve(targets_.size());
  for (const Target& t : targets_) out.push_back(t.status);
  return out;
}

}  // namespace hbtree::obs
