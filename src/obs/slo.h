#ifndef HBTREE_OBS_SLO_H_
#define HBTREE_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hbtree::obs {

/// One service-level objective over registry metrics.
///
/// Two kinds:
///  * kLatencyP99 — "p99 of histogram `histogram` ≤ threshold_us". The
///    bad fraction of a window is the estimated share of its samples
///    above the threshold (interpolated from the window's percentile
///    summary — the registry does not keep raw samples).
///  * kRatio — "sum(bad_counters) / sum(total_counters) ≤ budget", e.g.
///    shed requests over admitted requests.
///
/// `budget` is the tolerated bad fraction; burn rate is bad fraction
/// over budget, so burn 1.0 means exactly spending the error budget and
/// burn 2.0 means burning it twice as fast as tolerated (SRE-style
/// multi-window burn-rate alerting).
struct SloSpec {
  enum class Kind { kLatencyP99, kRatio };

  std::string name;  // metric-safe label, e.g. "read_p99"
  Kind kind = Kind::kLatencyP99;

  // kLatencyP99
  std::string histogram;    // registry histogram the target reads
  double threshold_us = 0;  // latency target

  // kRatio
  std::vector<std::string> bad_counters;
  std::vector<std::string> total_counters;

  double budget = 0.01;   // tolerated bad fraction (1% by default)
  int long_windows = 12;  // windows folded into the long burn rate
};

/// Burn-rate state of one SLO after some number of observed windows.
struct SloStatus {
  std::string name;
  double budget = 0;
  double bad_fraction = 0;  // most recent window
  double burn_short = 0;    // last window's bad fraction / budget
  double burn_long = 0;     // over the last `long_windows` windows
  std::uint64_t windows = 0;
  /// Both windows over budget — the page-worthy condition: the short
  /// window says it's happening now, the long window says it's not a
  /// blip.
  bool burning = false;
};

/// Multi-window burn-rate accounting fed from CollectWindow() deltas.
///
/// The owner calls Observe() with each windowed snapshot (the serving
/// layer's reporter loop does this on its reporting interval and once
/// more at shutdown); the tracker keeps a bounded ring of per-window
/// (bad, total) pairs per target and publishes burn rates back into the
/// registry as gauges `slo.<name>.burn_short` / `.burn_long` /
/// `.bad_fraction`, so they ride every metrics export without extra
/// plumbing. Thread-safe.
class SloTracker {
 public:
  /// `registry` may be null (no gauge publication; tests).
  explicit SloTracker(MetricsRegistry* registry) : registry_(registry) {}

  void AddTarget(const SloSpec& spec);

  /// Folds one windowed snapshot into every target. Snapshots must come
  /// from CollectWindow() (deltas); lifetime snapshots would double-count.
  void Observe(const MetricsSnapshot& window);

  std::vector<SloStatus> Status() const;

  /// Estimated fraction of a summarized window's samples above
  /// `threshold_us`, interpolated between the summary's percentile
  /// points. Exposed for tests.
  static double EstimateBadFraction(const LatencySummary& summary,
                                    double threshold_us);

 private:
  struct Target {
    SloSpec spec;
    // Ring of per-window (bad, total) weighted sample counts, most
    // recent last, bounded by spec.long_windows.
    std::vector<std::pair<double, double>> ring;
    SloStatus status;
  };

  MetricsRegistry* registry_;
  mutable std::mutex mutex_;
  std::vector<Target> targets_;
};

}  // namespace hbtree::obs

#endif  // HBTREE_OBS_SLO_H_
