#ifndef HBTREE_MEM_PAIRED_POOL_H_
#define HBTREE_MEM_PAIRED_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/macros.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// Paired-fragment pool, implementing the two allocation tricks of
/// Section 4.1:
///
///  * *Inner node fragmentation* — each regular inner node is split into a
///    hot fragment (indexes, keys, child references) and a cold fragment
///    (node size, parent, sibling references). Both fragments are allocated
///    from two separate chunked arrays "in such a way that both fragments
///    share the same index".
///  * *Big-leaf pairing* — each last-level inner node is paired with
///    exactly one 256-entry big leaf; allocating them from two pools under
///    one shared index lets the lookup jump straight from the inner-node
///    search result to the right leaf cache line.
///
/// Slots are stable (chunked storage never moves) and reusable via a free
/// list. Both element types must be trivially copyable PODs, which all
/// node layouts are.
template <typename Primary, typename Secondary>
class PairedPool {
  static_assert(std::is_trivially_copyable_v<Primary>);
  static_assert(std::is_trivially_copyable_v<Secondary>);

 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalidIndex = 0xffffffffu;

  /// `chunk_capacity` — slots per chunk; the page sizes tag the two
  /// fragment arrays for the TLB simulator (`registry` may be null to
  /// skip tagging). Separate tags matter: in the regular HB+-tree the hot
  /// fragments are I-segment (always huge pages) while big leaves are
  /// L-segment (configuration-dependent), Section 4.1/5.2.
  PairedPool(std::size_t chunk_capacity, PageSize primary_page,
             PageSize secondary_page, PageRegistry* registry)
      : chunk_capacity_(chunk_capacity),
        primary_page_(primary_page),
        secondary_page_(secondary_page),
        registry_(registry) {
    HBTREE_CHECK(chunk_capacity > 0);
  }

  PairedPool(std::size_t chunk_capacity, PageSize page_size,
             PageRegistry* registry)
      : PairedPool(chunk_capacity, page_size, page_size, registry) {}

  /// Releases every slot and chunk (used by bulk rebuild).
  void Clear() {
    primary_chunks_.clear();
    secondary_chunks_.clear();
    chunk_touches_.clear();
    free_list_.clear();
    next_slot_ = 0;
    live_ = 0;
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_flags_.clear();
    dirty_slots_.clear();
  }

  /// Allocates one paired slot. Contents are unspecified; callers
  /// initialize both fragments.
  Index Allocate() {
    if (!free_list_.empty()) {
      Index idx = free_list_.back();
      free_list_.pop_back();
      ++live_;
      return idx;
    }
    if (next_slot_ == primary_chunks_.size() * chunk_capacity_) AddChunk();
    ++live_;
    return static_cast<Index>(next_slot_++);
  }

  void Free(Index idx) {
    HBTREE_DCHECK(idx < next_slot_);
    free_list_.push_back(idx);
    HBTREE_DCHECK(live_ > 0);
    --live_;
  }

  Primary& primary(Index idx) {
    HBTREE_DCHECK(idx < next_slot_);
    return primary_chunks_[idx / chunk_capacity_].template as<Primary>()
        [idx % chunk_capacity_];
  }
  const Primary& primary(Index idx) const {
    return const_cast<PairedPool*>(this)->primary(idx);
  }

  Secondary& secondary(Index idx) {
    HBTREE_DCHECK(idx < next_slot_);
    return secondary_chunks_[idx / chunk_capacity_].template as<Secondary>()
        [idx % chunk_capacity_];
  }
  const Secondary& secondary(Index idx) const {
    return const_cast<PairedPool*>(this)->secondary(idx);
  }

  /// Number of live (allocated, not freed) slots.
  std::size_t live() const { return live_; }
  /// Total slots ever handed out (high-water mark).
  std::size_t high_water() const { return next_slot_; }
  std::size_t capacity() const {
    return primary_chunks_.size() * chunk_capacity_;
  }

  /// Bytes of primary-fragment storage, for memory-footprint reporting.
  std::size_t primary_bytes() const {
    return primary_chunks_.size() * chunk_capacity_ * sizeof(Primary);
  }
  std::size_t secondary_bytes() const {
    return secondary_chunks_.size() * chunk_capacity_ * sizeof(Secondary);
  }

  /// Chunk-wise access to the primary fragments, used to mirror the
  /// I-segment into device memory without per-slot copies.
  std::size_t chunk_count() const { return primary_chunks_.size(); }
  std::size_t chunk_capacity() const { return chunk_capacity_; }
  const Primary* primary_chunk(std::size_t i) const {
    return primary_chunks_[i].template as<Primary>();
  }

  /// Records one traversal touching `idx`'s chunk, feeding the
  /// segment-temperature classifier (DESIGN.md Section 13). Concurrent
  /// with reads; a relaxed counter is enough — temperature is sampled at
  /// reporter granularity, not per-access.
  void NoteTouch(Index idx) const {
    HBTREE_DCHECK(idx / chunk_capacity_ < chunk_touches_.size());
    chunk_touches_[idx / chunk_capacity_].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// Cumulative touches recorded against chunk `i` (a memory segment).
  std::uint64_t chunk_touches(std::size_t i) const {
    return chunk_touches_[i].load(std::memory_order_relaxed);
  }

  // -- Dirty tracking (delta synchronization, Section 5.6) ------------------
  //
  // Update paths mark the primary fragments they rewrote; a delta sync
  // streams only those slots to the device mirror instead of re-uploading
  // the whole segment. Marks deduplicate, so the list is bounded by the
  // slot count. MarkDirty is safe to call concurrently (the parallel
  // batch updater holds per-node locks, not a pool-wide one);
  // dirty_slots()/ClearDirty() expect the quiesced single-threaded sync
  // phase.

  void MarkDirty(Index idx) {
    HBTREE_DCHECK(idx < next_slot_);
    std::lock_guard<std::mutex> lock(dirty_mu_);
    if (idx >= dirty_flags_.size()) dirty_flags_.resize(capacity(), 0);
    if (!dirty_flags_[idx]) {
      dirty_flags_[idx] = 1;
      dirty_slots_.push_back(idx);
    }
  }

  std::size_t dirty_count() const {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    return dirty_slots_.size();
  }

  /// Slots marked since the last ClearDirty, in mark order (callers sort).
  std::vector<Index> dirty_slots() const {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    return dirty_slots_;
  }

  /// Drops all marks — call only after the device mirror has absorbed
  /// every dirty slot (a failed sync must keep its marks so the retry
  /// still knows what diverged).
  void ClearDirty() {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    for (Index idx : dirty_slots_) dirty_flags_[idx] = 0;
    dirty_slots_.clear();
  }

 private:
  void AddChunk() {
    primary_chunks_.emplace_back(chunk_capacity_ * sizeof(Primary),
                                 primary_page_, registry_);
    secondary_chunks_.emplace_back(chunk_capacity_ * sizeof(Secondary),
                                   secondary_page_, registry_);
    chunk_touches_.emplace_back(0);
  }

  std::size_t chunk_capacity_;
  PageSize primary_page_;
  PageSize secondary_page_;
  PageRegistry* registry_;
  std::vector<PagedBuffer> primary_chunks_;
  std::vector<PagedBuffer> secondary_chunks_;
  // One touch counter per chunk; deque keeps the atomics at stable
  // addresses while AddChunk grows the pool.
  mutable std::deque<std::atomic<std::uint64_t>> chunk_touches_;
  std::vector<Index> free_list_;
  std::size_t next_slot_ = 0;
  std::size_t live_ = 0;
  // Dirty-slot set for delta sync: dedup flags plus insertion-order list.
  mutable std::mutex dirty_mu_;
  std::vector<std::uint8_t> dirty_flags_;
  std::vector<Index> dirty_slots_;
};

}  // namespace hbtree

#endif  // HBTREE_MEM_PAIRED_POOL_H_
