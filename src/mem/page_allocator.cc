#include "mem/page_allocator.h"

#include <algorithm>
#include <cstdlib>

#include "core/macros.h"
#include "core/types.h"

namespace hbtree {

const char* PageSizeName(PageSize s) {
  switch (s) {
    case PageSize::k4K:
      return "4K";
    case PageSize::k2M:
      return "2M";
    case PageSize::k1G:
      return "1G";
  }
  return "unknown";
}

void PageRegistry::Register(const void* base, std::size_t size,
                            PageSize page_size) {
  Region region{reinterpret_cast<std::uintptr_t>(base),
                reinterpret_cast<std::uintptr_t>(base) + size, page_size,
                next_page_base_};
  const std::uint64_t bytes = PageBytes(page_size);
  next_page_base_ += (size + bytes - 1) / bytes + (size == 0 ? 1 : 0);
  auto it = std::lower_bound(
      regions_.begin(), regions_.end(), region,
      [](const Region& a, const Region& b) { return a.base < b.base; });
  // Overlapping registrations indicate allocator misuse.
  if (it != regions_.end()) HBTREE_CHECK(region.end <= it->base);
  if (it != regions_.begin()) HBTREE_CHECK(std::prev(it)->end <= region.base);
  regions_.insert(it, region);
}

void PageRegistry::Unregister(const void* base) {
  auto addr = reinterpret_cast<std::uintptr_t>(base);
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [addr](const Region& r) { return r.base == addr; });
  if (it != regions_.end()) regions_.erase(it);
}

PageSize PageRegistry::Lookup(const void* addr) const {
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](std::uintptr_t x, const Region& r) { return x < r.base; });
  if (it == regions_.begin()) return PageSize::k4K;
  --it;
  if (a < it->end) return it->page_size;
  return PageSize::k4K;
}

PageRegistry::Translation PageRegistry::Translate(const void* addr) const {
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](std::uintptr_t x, const Region& r) { return x < r.base; });
  if (it != regions_.begin()) {
    const Region& r = *std::prev(it);
    if (a < r.end) {
      return {r.page_size,
              r.page_base + static_cast<std::uint64_t>(a - r.base) /
                                PageBytes(r.page_size)};
    }
  }
  return {PageSize::k4K,
          static_cast<std::uint64_t>(a) / PageBytes(PageSize::k4K)};
}

std::uint64_t PageRegistry::PageNumber(const void* addr) const {
  return Translate(addr).page;
}

PagedBuffer::PagedBuffer(std::size_t size, PageSize page_size,
                         PageRegistry* registry) {
  Reset(size, page_size, registry);
}

PagedBuffer::~PagedBuffer() { Release(); }

PagedBuffer::PagedBuffer(PagedBuffer&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      page_size_(other.page_size_),
      registry_(other.registry_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.registry_ = nullptr;
}

PagedBuffer& PagedBuffer::operator=(PagedBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    page_size_ = other.page_size_;
    registry_ = other.registry_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.registry_ = nullptr;
  }
  return *this;
}

void PagedBuffer::Reset(std::size_t size, PageSize page_size,
                        PageRegistry* registry) {
  Release();
  size_ = size;
  page_size_ = page_size;
  registry_ = registry;
  if (size == 0) return;
  // Align to the page size (capped at 2 MB of real alignment to avoid
  // wasting host memory on simulated 1 GB pages: the *tag*, not the host
  // alignment, drives TLB behaviour; cache-line alignment is what the node
  // layouts actually require).
  std::size_t alignment =
      std::min<std::size_t>(PageBytes(page_size), 2ull * 1024 * 1024);
  alignment = std::max<std::size_t>(alignment, kCacheLineSize);
  std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, rounded));
  HBTREE_CHECK_MSG(data_ != nullptr, "allocation of %zu bytes failed", size);
  if (registry_ != nullptr) registry_->Register(data_, rounded, page_size_);
}

void PagedBuffer::Release() {
  if (data_ != nullptr) {
    if (registry_ != nullptr) registry_->Unregister(data_);
    std::free(data_);
    data_ = nullptr;
  }
  size_ = 0;
}

}  // namespace hbtree
