#ifndef HBTREE_MEM_PAGE_ALLOCATOR_H_
#define HBTREE_MEM_PAGE_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hbtree {

/// Page sizes supported by the memory-page configuration experiment
/// (Section 6.2, Figure 7). On the paper's hardware these are real x86
/// page sizes; here they are *tags* consumed by the TLB simulator — the
/// paper uses huge pages purely for their TLB behaviour, which the
/// simulator reproduces (see DESIGN.md, substitutions).
enum class PageSize : std::uint64_t {
  k4K = 4ull * 1024,
  k2M = 2ull * 1024 * 1024,
  k1G = 1024ull * 1024 * 1024,
};

const char* PageSizeName(PageSize s);

inline std::uint64_t PageBytes(PageSize s) {
  return static_cast<std::uint64_t>(s);
}

/// Tracks which page size backs each allocated region, the moral
/// equivalent of the paper's custom allocator that "allows determining
/// whether a node resides on a huge page or not" (Section 4.1).
///
/// Thread-compatible: registration happens at build time, lookups during
/// (single-threaded) trace simulation.
class PageRegistry {
 public:
  struct Region {
    std::uintptr_t base;
    std::uintptr_t end;  // one past the last byte
    PageSize page_size;
    std::uint64_t page_base;  // first simulated page number of the region
  };

  /// `addr` resolved to the backing page size plus the simulated page
  /// number. Two addresses with equal page numbers *and* page sizes share
  /// a TLB entry.
  struct Translation {
    PageSize page_size;
    std::uint64_t page;
  };

  void Register(const void* base, std::size_t size, PageSize page_size);
  void Unregister(const void* base);

  /// Page size backing `addr`. Addresses outside any registered region are
  /// treated as regular 4K-paged memory (matching default OS behaviour).
  PageSize Lookup(const void* addr) const;

  Translation Translate(const void* addr) const;

  /// Shorthand for Translate(addr).page.
  std::uint64_t PageNumber(const void* addr) const;

  const std::vector<Region>& regions() const { return regions_; }

 private:
  // Registered regions model memory the OS backed with (aligned) pages of
  // the requested size, but the bytes actually come from the heap, which
  // aligns to nothing larger than a cache line. Numbering pages by raw
  // virtual address would therefore let a region straddle a simulated
  // page boundary — a 64 MB buffer "occupying" two 1 GB pages — purely
  // depending on where malloc happened to place it, which varies run to
  // run under ASLR. Instead each region is assigned a synthetic page
  // range at registration, as if the allocator had returned page-aligned
  // memory, starting far above any raw-address 4K page number so the two
  // namespaces cannot collide.
  static constexpr std::uint64_t kSyntheticPageBase = 1ull << 50;

  std::vector<Region> regions_;  // sorted by base
  std::uint64_t next_page_base_ = kSyntheticPageBase;
};

/// A contiguous, cache-line-aligned allocation tagged with a page size.
/// The I-segment and L-segment of every tree in this repository live in
/// PagedBuffers so the TLB simulator can cost their accesses correctly.
class PagedBuffer {
 public:
  PagedBuffer() = default;
  PagedBuffer(std::size_t size, PageSize page_size, PageRegistry* registry);
  ~PagedBuffer();

  PagedBuffer(PagedBuffer&& other) noexcept;
  PagedBuffer& operator=(PagedBuffer&& other) noexcept;
  PagedBuffer(const PagedBuffer&) = delete;
  PagedBuffer& operator=(const PagedBuffer&) = delete;

  /// Re-allocates to `size` bytes (content is NOT preserved).
  void Reset(std::size_t size, PageSize page_size, PageRegistry* registry);

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  PageSize page_size() const { return page_size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Release();

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  PageSize page_size_ = PageSize::k4K;
  PageRegistry* registry_ = nullptr;
};

}  // namespace hbtree

#endif  // HBTREE_MEM_PAGE_ALLOCATOR_H_
