#ifndef HBTREE_WORKLOAD_KEY_CHOOSER_H_
#define HBTREE_WORKLOAD_KEY_CHOOSER_H_

#include <cstdint>
#include <string>

#include "core/random.h"
#include "workload/fixed_point.h"

namespace hbtree::workload {

/// Zipf-distributed ranks over [0, items), rank 0 hottest — the standard
/// YCSB generator (Gray et al.'s "Quickly generating billion-record
/// synthetic databases" rejection-free draw), computed entirely in Q32.32
/// fixed point so identical seeds produce identical rank streams on every
/// platform (see fixed_point.h).
///
/// theta must lie in (0, 1); YCSB's default is 0.99. Construction costs
/// one O(items) zeta sum.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t items, double theta = 0.99);

  /// Next rank in [0, items). Consumes exactly one Rng draw.
  std::uint64_t Next(Rng& rng) const;

  std::uint64_t items() const { return items_; }

  /// zeta(n, theta) = sum_{i=1..n} i^-theta in Q32.32 (exposed for the
  /// golden determinism tests).
  static Q32 Zeta(std::uint64_t n, Q32 theta);

 private:
  std::uint64_t items_;
  Q32 zetan_;       // zeta(items, theta)
  Q32 alpha_;       // 1 / (1 - theta)
  Q32 eta_;         // YCSB eta, in [0, 1)
  Q32 cut1_;        // uz below this -> rank 0 (== one)
  Q32 cut2_;        // uz below this -> rank 1 (== one + 2^-theta)
};

/// How a workload picks the record an operation targets.
enum class KeyChooserKind {
  kUniform,
  /// Zipf ranks map directly onto the sorted key order: the hot set is a
  /// contiguous low-key range, which concentrates load on one key-range
  /// shard (the skew regime the elastic-sharding roadmap item targets).
  kZipfian,
  /// Zipf ranks scattered across the key space by a 64-bit mixer —
  /// YCSB's default, hot keys spread over all shards.
  kScrambledZipfian,
  /// Skew toward the most recently inserted records (YCSB workload D):
  /// rank r from the Zipf generator selects the (r+1)-th newest record.
  kLatest,
  /// hot_op_fraction of operations target the hot_key_fraction coldest-
  /// index prefix of the key space, the rest are uniform over the tail.
  kHotspot,
};

const char* KeyChooserKindName(KeyChooserKind kind);

/// Draws record indices for one client's operation stream. The index
/// domain is [0, items + inserted): indices below `items` are bootstrap
/// records, indices at or above it are the client's own inserts, newest
/// last (only kLatest ever returns those).
class KeyChooser {
 public:
  struct Params {
    KeyChooserKind kind = KeyChooserKind::kScrambledZipfian;
    double zipf_theta = 0.99;
    double hot_key_fraction = 0.2;
    double hot_op_fraction = 0.8;
  };

  KeyChooser(const Params& params, std::uint64_t items);

  /// Next index in [0, items + inserted). `inserted` is how many records
  /// this client has appended after the bootstrap set so far.
  std::uint64_t Next(Rng& rng, std::uint64_t inserted = 0) const;

  std::uint64_t items() const { return items_; }

 private:
  Params params_;
  std::uint64_t items_;
  std::uint64_t hot_items_ = 0;   // kHotspot: size of the hot prefix
  std::uint64_t hot_op_bp_ = 0;   // kHotspot: basis points of hot ops
  // Lazily absent for kUniform/kHotspot (no zeta sum needed).
  ZipfGenerator zipf_;
};

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_KEY_CHOOSER_H_
