#include "workload/spec.h"

#include "core/macros.h"

namespace hbtree::workload {

WorkloadSpec WorkloadSpec::YcsbMix(char mix) {
  WorkloadSpec spec;
  spec.name = std::string("ycsb_") + mix;
  spec.chooser.kind = KeyChooserKind::kScrambledZipfian;
  switch (mix) {
    case 'a':
      spec.read_bp = 5000;
      spec.update_bp = 5000;
      break;
    case 'b':
      spec.read_bp = 9500;
      spec.update_bp = 500;
      break;
    case 'c':
      spec.read_bp = 10000;
      break;
    case 'd':
      spec.read_bp = 9500;
      spec.insert_bp = 500;
      spec.chooser.kind = KeyChooserKind::kLatest;
      break;
    case 'e':
      spec.read_bp = 0;
      spec.scan_bp = 9500;
      spec.insert_bp = 500;
      break;
    case 'f':
      spec.read_bp = 5000;
      spec.rmw_bp = 5000;
      break;
    default:
      HBTREE_CHECK_MSG(false, "unknown YCSB mix '%c'", mix);
  }
  return spec;
}

WorkloadSpec WorkloadSpec::InsertRatio(int insert_bp) {
  HBTREE_CHECK_MSG(insert_bp >= 0 && insert_bp <= 10000,
                   "insert_bp must lie in [0, 10000]");
  WorkloadSpec spec;
  spec.name = "insert_" + std::to_string(insert_bp / 100) + "pct";
  spec.read_bp = 10000 - insert_bp;
  spec.insert_bp = insert_bp;
  spec.chooser.kind = KeyChooserKind::kUniform;
  return spec;
}

namespace {

std::vector<Scenario> BuildMatrix() {
  std::vector<Scenario> matrix;
  for (char mix : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    matrix.push_back({WorkloadSpec::YcsbMix(mix), DatasetKind::kSequential});
  }

  // 10% of the keys take 90% of the ops, uniform within each set.
  WorkloadSpec hotspot = WorkloadSpec::YcsbMix('b');
  hotspot.name = "hotspot";
  hotspot.chooser.kind = KeyChooserKind::kHotspot;
  hotspot.chooser.hot_key_fraction = 0.1;
  hotspot.chooser.hot_op_fraction = 0.9;
  matrix.push_back({hotspot, DatasetKind::kSequential});

  // Unscrambled zipf: the hot ranks are a contiguous low-key range, so
  // one key-range shard takes nearly all the load (the hot-shard regime
  // the elastic-sharding roadmap item targets).
  WorkloadSpec zipfian = WorkloadSpec::YcsbMix('b');
  zipfian.name = "zipfian";
  zipfian.chooser.kind = KeyChooserKind::kZipfian;
  matrix.push_back({zipfian, DatasetKind::kSequential});

  // Flat key popularity: the negative control for the heat pipeline —
  // no range may clear the hot-range threshold (see scripts/check_heat.py).
  WorkloadSpec uniform = WorkloadSpec::YcsbMix('b');
  uniform.name = "uniform";
  uniform.chooser.kind = KeyChooserKind::kUniform;
  matrix.push_back({uniform, DatasetKind::kSequential});

  WorkloadSpec scan_heavy;
  scan_heavy.name = "scan_heavy";
  scan_heavy.read_bp = 1500;
  scan_heavy.scan_bp = 8000;
  scan_heavy.insert_bp = 500;
  scan_heavy.max_scan_len = 256;
  scan_heavy.chooser.kind = KeyChooserKind::kScrambledZipfian;
  matrix.push_back({scan_heavy, DatasetKind::kSequential});

  WorkloadSpec rmw_heavy;
  rmw_heavy.name = "rmw_heavy";
  rmw_heavy.read_bp = 1000;
  rmw_heavy.rmw_bp = 9000;
  rmw_heavy.chooser.kind = KeyChooserKind::kScrambledZipfian;
  matrix.push_back({rmw_heavy, DatasetKind::kSequential});

  matrix.push_back(
      {WorkloadSpec::InsertRatio(5000), DatasetKind::kUniform});
  matrix.back().spec.name = "insert_heavy";

  // Real-key shape: YCSB B over OSM-style clustered 64-bit keys.
  WorkloadSpec osm = WorkloadSpec::YcsbMix('b');
  osm.name = "osm";
  matrix.push_back({osm, DatasetKind::kOsm});

  return matrix;
}

}  // namespace

const std::vector<Scenario>& ScenarioMatrix() {
  static const std::vector<Scenario>* matrix =
      new std::vector<Scenario>(BuildMatrix());
  return *matrix;
}

bool FindScenario(const std::string& name, Scenario* out) {
  for (const Scenario& scenario : ScenarioMatrix()) {
    if (scenario.spec.name == name) {
      *out = scenario;
      return true;
    }
  }
  return false;
}

std::string ScenarioNames() {
  std::string names;
  for (const Scenario& scenario : ScenarioMatrix()) {
    if (!names.empty()) names += ", ";
    names += scenario.spec.name;
  }
  return names;
}

}  // namespace hbtree::workload
