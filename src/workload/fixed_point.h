#ifndef HBTREE_WORKLOAD_FIXED_POINT_H_
#define HBTREE_WORKLOAD_FIXED_POINT_H_

#include <cstdint>

namespace hbtree::workload {

/// Unsigned Q32.32 fixed-point arithmetic for the skewed key generators.
///
/// The YCSB-style Zipf draw needs zeta sums, x^theta, and log/exp — and a
/// workload stream must be bit-identical across platforms so a seed in a
/// bench report reproduces the exact same operation sequence everywhere.
/// libm's pow/log are NOT that (results differ across libcs and
/// -ffast-math settings), so everything here is integer math: 64-bit
/// Q32.32 values, 128-bit intermediates, a bit-by-bit binary logarithm,
/// and a table-driven exp2. Precision is ~2^-30 relative, far below what
/// a key distribution can observe; determinism is exact.

using Q32 = std::uint64_t;  // unsigned Q32.32: value = raw / 2^32

inline constexpr Q32 kQ32One = Q32{1} << 32;

inline constexpr Q32 MulQ32(Q32 a, Q32 b) {
  return static_cast<Q32>(
      (static_cast<unsigned __int128>(a) * b) >> 32);
}

inline constexpr Q32 DivQ32(Q32 a, Q32 b) {
  return static_cast<Q32>((static_cast<unsigned __int128>(a) << 32) / b);
}

/// Converts a small non-negative double (a spec parameter like theta =
/// 0.99) to Q32.32 once, at generator construction. The double literal
/// itself is a fixed bit pattern, so this conversion is deterministic.
inline constexpr Q32 ToQ32(double x) {
  return static_cast<Q32>(x * 4294967296.0 + 0.5);
}

inline constexpr double FromQ32(Q32 x) { return x / 4294967296.0; }

/// floor(log2(x)) for x > 0 (raw Q32.32, so the integer-part bias of 32
/// is already removed: Log2Floor(kQ32One) == 0).
inline constexpr int Log2FloorQ32(Q32 x) {
  int k = -33;
  while (x != 0) {
    x >>= 1;
    ++k;
  }
  return k;
}

/// Binary logarithm, bit by bit: normalize x into [1, 2), then square 32
/// times, shifting out one fraction bit per squaring. Requires x >= 1
/// (i.e. x >= kQ32One); callers take log2(1/x) for arguments below one.
inline constexpr Q32 Log2Q32(Q32 x) {
  const int k = Log2FloorQ32(x);
  // Normalize the mantissa into [one, 2*one).
  Q32 m = k >= 0 ? x >> k : x << -k;
  Q32 frac = 0;
  for (int bit = 31; bit >= 0; --bit) {
    m = MulQ32(m, m);
    if (m >= 2 * kQ32One) {
      m >>= 1;
      frac |= Q32{1} << bit;
    }
  }
  return (static_cast<Q32>(k) << 32) | frac;
}

/// 2^(2^-j) for j = 1..32, in Q32.32 (precomputed to half-even rounding).
inline constexpr Q32 kExp2FracTable[32] = {
    0x000000016a09e668ull, 0x00000001306fe0a3ull, 0x00000001172b83c8ull,
    0x000000010b5586d0ull, 0x00000001059b0d31ull, 0x0000000102c9a3e7ull,
    0x000000010163daa0ull, 0x0000000100b1afa6ull, 0x000000010058c86eull,
    0x00000001002c605eull, 0x0000000100162f39ull, 0x00000001000b175full,
    0x0000000100058ba0ull, 0x000000010002c5ccull, 0x00000001000162e5ull,
    0x000000010000b172ull, 0x00000001000058b9ull, 0x0000000100002c5dull,
    0x000000010000162eull, 0x0000000100000b17ull, 0x000000010000058cull,
    0x00000001000002c6ull, 0x0000000100000163ull, 0x00000001000000b1ull,
    0x0000000100000059ull, 0x000000010000002cull, 0x0000000100000016ull,
    0x000000010000000bull, 0x0000000100000006ull, 0x0000000100000003ull,
    0x0000000100000001ull, 0x0000000100000001ull,
};

/// 2^x for x in [0, 31): integer part shifts, fractional part multiplies
/// the table constants for each set fraction bit.
inline constexpr Q32 Exp2Q32(Q32 x) {
  const int k = static_cast<int>(x >> 32);
  Q32 result = kQ32One;
  for (int j = 1; j <= 32; ++j) {
    if ((x >> (32 - j)) & 1) {
      result = MulQ32(result, kExp2FracTable[j - 1]);
    }
  }
  return result << k;
}

/// i^-theta for an integer rank i >= 1 and theta in (0, 2): the zeta-sum
/// term. Exact 1 for i == 1; otherwise 2^(-theta * log2(i)).
inline constexpr Q32 InvPowQ32(std::uint64_t i, Q32 theta) {
  if (i <= 1) return kQ32One;
  const Q32 e = MulQ32(theta, Log2Q32(static_cast<Q32>(i) << 32));
  if (e >= Q32{31} << 32) return 0;
  return DivQ32(kQ32One, Exp2Q32(e));
}

/// x^p for x in (0, 1], p >= 0 (the Zipf draw's (eta*u - eta + 1)^alpha).
inline constexpr Q32 PowFracQ32(Q32 x, Q32 p) {
  if (x == 0) return 0;
  if (x >= kQ32One) return kQ32One;
  // x < 1, so log2(x) = -log2(1/x).
  const Q32 neg_log = Log2Q32(DivQ32(kQ32One, x));
  const unsigned __int128 e128 =
      (static_cast<unsigned __int128>(p) * neg_log) >> 32;
  if (e128 >= (static_cast<unsigned __int128>(31) << 32)) return 0;
  return DivQ32(kQ32One, Exp2Q32(static_cast<Q32>(e128)));
}

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_FIXED_POINT_H_
