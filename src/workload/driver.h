#ifndef HBTREE_WORKLOAD_DRIVER_H_
#define HBTREE_WORKLOAD_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "workload/dataset.h"
#include "workload/op_stream.h"
#include "workload/spec.h"

namespace hbtree::workload {

struct ReplayOptions {
  int clients = 4;
  std::size_t ops_per_client = 16 * 1024;
  /// Outstanding async requests per client; the oldest half-window is
  /// harvested when full (same cadence as bench/serve_throughput).
  std::size_t in_flight = 1024;
  std::uint64_t seed = 1;
  /// Per-request deadline budget passed to every Submit*; zero keeps the
  /// server's default_deadline. Overload runs give low-priority tenants
  /// tight budgets here so their requests shed instead of queueing.
  std::chrono::microseconds deadline{0};
};

struct ReplayTotals {
  std::uint64_t reads = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t scans = 0;
  std::uint64_t scan_items = 0;  // records returned across all scans
  std::uint64_t rmws = 0;
  std::uint64_t rejected = 0;    // non-ok futures (shed / rejected)
  double wall_seconds = 0;
};

/// Replays a workload through the serving front-end with one thread per
/// client. Op streams are generated up front (deterministic from
/// options.seed) so the timed region measures serving, not generation.
///
/// Semantics per op kind:
///  - read  → SubmitLookup, async window
///  - update → SubmitUpdate(kInsert of the existing key): a duplicate
///    insert is a no-op on the tree, but it pays the full admission /
///    batch / dual-snapshot commit path, which is what the bench
///    measures — and it keeps dataset membership (and thus hit rate)
///    constant over the run. Value-changing semantics are covered by the
///    differential tests, which toggle delete/insert with fences.
///  - insert → SubmitUpdate(kInsert of a fresh key), async window
///  - scan  → SubmitRange(key, scan_len), async window
///  - rmw   → SubmitLookup(key).get() then SubmitUpdate: the read is
///    waited synchronously to model the read-then-write dependency.
inline ReplayTotals ReplayWorkload(serve::Server<Key64>& server,
                                   const WorkloadSpec& spec,
                                   const BootstrapDataset& dataset,
                                   const ReplayOptions& options) {
  std::vector<std::vector<Op>> plans;
  plans.reserve(options.clients);
  for (int c = 0; c < options.clients; ++c) {
    OpStream stream(spec, &dataset, c, options.clients, options.seed);
    plans.push_back(stream.Take(options.ops_per_client));
  }

  std::atomic<std::uint64_t> reads{0}, read_hits{0}, updates{0}, inserts{0},
      scans{0}, scan_items{0}, rmws{0}, rejected{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      struct PendingRead {
        std::future<serve::ReadResult<Key64>> future;
        bool is_scan;
      };
      std::deque<PendingRead> read_window;
      std::deque<std::future<serve::UpdateResult>> update_window;
      const std::size_t harvest =
          std::max<std::size_t>(1, options.in_flight / 2);
      std::uint64_t local_reads = 0, local_hits = 0, local_updates = 0,
                    local_inserts = 0, local_scans = 0, local_scan_items = 0,
                    local_rmws = 0, local_rejected = 0;

      auto harvest_read = [&](PendingRead& pending) {
        serve::ReadResult<Key64> result = pending.future.get();
        if (!result.status.ok()) {
          ++local_rejected;
        } else if (pending.is_scan) {
          local_scan_items += result.range.size();
        } else {
          local_hits += result.lookup.found;
        }
      };
      auto push_read = [&](std::future<serve::ReadResult<Key64>> future,
                           bool is_scan) {
        if (read_window.size() >= options.in_flight) {
          for (std::size_t h = 0; h < harvest; ++h) {
            harvest_read(read_window.front());
            read_window.pop_front();
          }
        }
        read_window.push_back({std::move(future), is_scan});
      };
      auto push_update = [&](std::future<serve::UpdateResult> future) {
        if (update_window.size() >= options.in_flight) {
          for (std::size_t h = 0; h < harvest; ++h) {
            local_rejected += !update_window.front().get().status.ok();
            update_window.pop_front();
          }
        }
        update_window.push_back(std::move(future));
      };

      // Every op carries the stream's tenant identity and the replay's
      // deadline budget into admission (see WorkloadSpec::tenant).
      const serve::TenantId tenant = spec.tenant;
      const std::chrono::microseconds deadline = options.deadline;
      for (const Op& op : plans[c]) {
        switch (op.kind) {
          case OpKind::kRead:
            ++local_reads;
            push_read(server.SubmitLookup(op.key, deadline, tenant),
                      /*is_scan=*/false);
            break;
          case OpKind::kUpdate:
          case OpKind::kInsert: {
            op.kind == OpKind::kUpdate ? ++local_updates : ++local_inserts;
            UpdateQuery<Key64> update;
            update.kind = UpdateQuery<Key64>::Kind::kInsert;
            update.pair = {op.key, op.value};
            push_update(server.SubmitUpdate(update, deadline, tenant));
            break;
          }
          case OpKind::kScan:
            ++local_scans;
            push_read(server.SubmitRange(op.key, op.scan_len, deadline,
                                         tenant),
                      /*is_scan=*/true);
            break;
          case OpKind::kReadModifyWrite: {
            ++local_rmws;
            serve::ReadResult<Key64> read =
                server.SubmitLookup(op.key, deadline, tenant).get();
            if (!read.status.ok()) {
              ++local_rejected;
            } else {
              local_hits += read.lookup.found;
            }
            UpdateQuery<Key64> update;
            update.kind = UpdateQuery<Key64>::Kind::kInsert;
            update.pair = {op.key, op.value};
            push_update(server.SubmitUpdate(update, deadline, tenant));
            break;
          }
        }
      }
      for (auto& pending : read_window) harvest_read(pending);
      for (auto& f : update_window) {
        local_rejected += !f.get().status.ok();
      }

      reads.fetch_add(local_reads);
      read_hits.fetch_add(local_hits);
      updates.fetch_add(local_updates);
      inserts.fetch_add(local_inserts);
      scans.fetch_add(local_scans);
      scan_items.fetch_add(local_scan_items);
      rmws.fetch_add(local_rmws);
      rejected.fetch_add(local_rejected);
    });
  }
  for (auto& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();

  ReplayTotals totals;
  totals.reads = reads.load();
  totals.read_hits = read_hits.load();
  totals.updates = updates.load();
  totals.inserts = inserts.load();
  totals.scans = scans.load();
  totals.scan_items = scan_items.load();
  totals.rmws = rmws.load();
  totals.rejected = rejected.load();
  totals.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return totals;
}

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_DRIVER_H_
