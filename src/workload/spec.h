#ifndef HBTREE_WORKLOAD_SPEC_H_
#define HBTREE_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "workload/dataset.h"
#include "workload/key_chooser.h"

namespace hbtree::workload {

/// One workload definition: an operation mix in basis points (the five
/// shares sum to 10000) plus the key-skew and scan/RMW knobs. The six
/// standard YCSB mixes:
///
///   mix | read | update | insert | scan | rmw | skew
///   ----+------+--------+--------+------+-----+------------------
///    A  | 5000 |  5000  |        |      |     | scrambled zipf
///    B  | 9500 |   500  |        |      |     | scrambled zipf
///    C  |10000 |        |        |      |     | scrambled zipf
///    D  | 9500 |        |  500   |      |     | latest
///    E  |      |        |  500   | 9500 |     | scrambled zipf
///    F  | 5000 |        |        |      |5000 | scrambled zipf
struct WorkloadSpec {
  std::string name;
  int read_bp = 10000;
  int update_bp = 0;
  int insert_bp = 0;
  int scan_bp = 0;
  int rmw_bp = 0;
  KeyChooser::Params chooser;
  /// Scan lengths are uniform in [1, max_scan_len] (YCSB E's default).
  int max_scan_len = 100;

  /// Tenant this stream submits as (index into ServerOptions::tenants;
  /// see serve/tenant.h). Every op the stream generates carries it
  /// through admission, dispatch and the per-tenant serve.tenant<T>.*
  /// stats. 0 — the always-present default tenant — keeps single-tenant
  /// workloads tenant-oblivious.
  int tenant = 0;

  bool HasMutations() const {
    return update_bp + insert_bp + rmw_bp > 0;
  }

  /// Standard mix for 'a'..'f'.
  static WorkloadSpec YcsbMix(char mix);

  /// Insert-ratio sweep point: insert_bp inserts, the rest reads,
  /// uniform keys (the fig21-style mixed-workload regime).
  static WorkloadSpec InsertRatio(int insert_bp);
};

/// A named scenario = a workload spec plus the dataset it runs against.
struct Scenario {
  WorkloadSpec spec;
  DatasetKind dataset = DatasetKind::kSequential;
};

/// The checked-in scenario matrix `check.sh workloads` runs: the six
/// YCSB mixes plus hotspot, zipfian (unscrambled, hot-shard), uniform
/// (flat popularity — the heat pipeline's negative control), scan-heavy,
/// rmw-heavy, insert-heavy, and the OSM real-key variant.
const std::vector<Scenario>& ScenarioMatrix();

/// Looks up a matrix scenario by name; false if unknown.
bool FindScenario(const std::string& name, Scenario* out);

/// Comma-separated names of every matrix scenario (for --help / errors).
std::string ScenarioNames();

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_SPEC_H_
