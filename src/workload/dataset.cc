#include "workload/dataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/macros.h"
#include "core/random.h"

namespace hbtree::workload {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kSequential:
      return "sequential";
    case DatasetKind::kUniform:
      return "uniform";
    case DatasetKind::kOsm:
      return "osm";
  }
  return "unknown";
}

bool ParseDatasetKind(const std::string& name, DatasetKind* out) {
  if (name == "sequential") {
    *out = DatasetKind::kSequential;
  } else if (name == "uniform") {
    *out = DatasetKind::kUniform;
  } else if (name == "osm") {
    *out = DatasetKind::kOsm;
  } else {
    return false;
  }
  return true;
}

Key64 BootstrapValue(Key64 key, std::uint64_t value_seed) {
  std::uint64_t state = key ^ value_seed;
  return SplitMix64(state);
}

namespace {

// Sorts, dedups, values, and wraps a raw key set. Keys equal to the tree's
// empty-slot sentinel are dropped.
BootstrapDataset FromKeys(DatasetKind kind, std::vector<Key64> keys,
                          std::uint64_t value_seed) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (!keys.empty() && keys.back() == KeyTraits<Key64>::kMax) {
    keys.pop_back();
  }
  BootstrapDataset out;
  out.kind = kind;
  out.pairs.reserve(keys.size());
  for (Key64 key : keys) {
    out.pairs.push_back({key, BootstrapValue(key, value_seed)});
  }
  return out;
}

}  // namespace

BootstrapDataset MakeSequentialDataset(std::size_t n, std::uint64_t value_seed,
                                       Key64 stride) {
  HBTREE_CHECK_MSG(stride >= 1, "sequential stride must be >= 1");
  std::vector<Key64> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<Key64>(i + 1) * stride);
  }
  BootstrapDataset out = FromKeys(DatasetKind::kSequential, std::move(keys),
                                  value_seed);
  out.append = true;
  out.append_base = static_cast<Key64>(n + 1) * stride;
  out.append_stride = stride;
  return out;
}

BootstrapDataset MakeUniformDataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x6461746155ull);  // "dataU"
  std::vector<Key64> keys;
  keys.reserve(n + n / 8);
  while (keys.size() < n) {
    const std::size_t need = n - keys.size();
    for (std::size_t i = 0; i < need; ++i) keys.push_back(rng.Next());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  return FromKeys(DatasetKind::kUniform, std::move(keys), seed);
}

std::vector<Key64> SyntheticOsmKeys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x6f736d6bull);  // "osmk"
  // ~256 members per cluster on average; cluster populations are skewed
  // (rank r gets weight ~ 1/(r+1)) like city sizes.
  const std::size_t clusters = std::max<std::size_t>(1, n / 256);
  std::vector<Key64> centers(clusters);
  for (auto& c : centers) {
    c = (Key64{1} << 32) + rng.NextBounded((Key64{1} << 63) - (Key64{1} << 32));
  }
  std::vector<Key64> keys;
  keys.reserve(n + n / 8);
  while (keys.size() < n) {
    // Skewed cluster pick: min of two uniforms biases toward low ranks.
    const std::size_t a = rng.NextBounded(clusters);
    const std::size_t b = rng.NextBounded(clusters);
    const Key64 center = centers[std::min(a, b)];
    // Members sit within ±2^20 of the center at mostly-small offsets.
    const Key64 spread = Key64{1} << (8 + rng.NextBounded(13));
    const Key64 offset = rng.NextBounded(2 * spread);
    keys.push_back(center - spread + offset);
    if (keys.size() == keys.capacity()) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) keys.push_back(rng.Next());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  keys.resize(std::min(keys.size(), n));
  return keys;
}

Status LoadKeyFile(const std::string& path, std::vector<Key64>* keys) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open key file: " + path);
  }
  char line[256];
  std::size_t lineno = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lineno;
    char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
    if (end == p || (*end != '\0' && *end != '\n' && *end != '\r')) {
      std::fclose(f);
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected one decimal uint64 per line");
    }
    keys->push_back(static_cast<Key64>(v));
  }
  std::fclose(f);
  return Status::Ok();
}

BootstrapDataset MakeOsmDataset(std::size_t n, std::uint64_t seed,
                                const std::string& path) {
  std::vector<Key64> keys;
  if (!path.empty()) {
    std::vector<Key64> loaded;
    if (LoadKeyFile(path, &loaded).ok()) {
      keys = std::move(loaded);
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      if (keys.size() > n) {
        // Deterministic subsample: keep every (size/n)-th key so the
        // clustered shape survives.
        std::vector<Key64> sampled;
        sampled.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          sampled.push_back(keys[i * keys.size() / n]);
        }
        keys = std::move(sampled);
      }
    }
  }
  if (keys.size() < n) {
    std::vector<Key64> extra = SyntheticOsmKeys(n - keys.size(), seed);
    keys.insert(keys.end(), extra.begin(), extra.end());
  }
  return FromKeys(DatasetKind::kOsm, std::move(keys), seed);
}

BootstrapDataset MakeDataset(DatasetKind kind, std::size_t n,
                             std::uint64_t seed, const std::string& osm_path) {
  switch (kind) {
    case DatasetKind::kSequential:
      return MakeSequentialDataset(n, seed);
    case DatasetKind::kUniform:
      return MakeUniformDataset(n, seed);
    case DatasetKind::kOsm:
      return MakeOsmDataset(n, seed, osm_path);
  }
  return MakeSequentialDataset(n, seed);
}

}  // namespace hbtree::workload
