#include "workload/op_stream.h"

#include <algorithm>

#include "core/macros.h"

namespace hbtree::workload {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRead:
      return "read";
    case OpKind::kUpdate:
      return "update";
    case OpKind::kInsert:
      return "insert";
    case OpKind::kScan:
      return "scan";
    case OpKind::kReadModifyWrite:
      return "rmw";
  }
  return "unknown";
}

namespace {

std::uint64_t ClientSeed(std::uint64_t seed, int client) {
  // Two mixer steps keep adjacent client seeds uncorrelated.
  std::uint64_t state = seed ^ (0x636c69656e74ull + client);  // "client"
  SplitMix64(state);
  return SplitMix64(state);
}

struct KeyLess {
  bool operator()(const KeyValue<Key64>& a, Key64 b) const {
    return a.key < b;
  }
  bool operator()(Key64 a, const KeyValue<Key64>& b) const {
    return a < b.key;
  }
};

}  // namespace

OpStream::OpStream(const WorkloadSpec& spec, const BootstrapDataset* dataset,
                   int client, int clients, std::uint64_t seed)
    : spec_(spec),
      dataset_(dataset),
      client_(client),
      clients_(clients),
      rng_(ClientSeed(seed, client)),
      chooser_(spec.chooser, dataset->pairs.size()),
      items_(dataset->pairs.size()) {
  HBTREE_CHECK_MSG(clients >= 1 && client >= 0 && client < clients,
                   "bad client slot %d/%d", client, clients);
  HBTREE_CHECK_MSG(items_ >= static_cast<std::uint64_t>(clients),
                   "dataset smaller than the client fleet");
  HBTREE_CHECK_MSG(spec.read_bp >= 0 && spec.update_bp >= 0 &&
                       spec.insert_bp >= 0 && spec.scan_bp >= 0 &&
                       spec.rmw_bp >= 0 &&
                       spec.read_bp + spec.update_bp + spec.insert_bp +
                               spec.scan_bp + spec.rmw_bp ==
                           10000,
                   "workload '%s': mix shares must sum to 10000 bp",
                   spec.name.c_str());
  HBTREE_CHECK_MSG(spec.scan_bp == 0 || spec.max_scan_len >= 1,
                   "max_scan_len must be >= 1 when the mix scans");
  read_cut_ = static_cast<std::uint64_t>(spec.read_bp);
  update_cut_ = read_cut_ + spec.update_bp;
  insert_cut_ = update_cut_ + spec.insert_bp;
  scan_cut_ = insert_cut_ + spec.scan_bp;
}

Key64 OpStream::KeyAt(std::uint64_t idx) const {
  if (idx < items_) return dataset_->pairs[idx].key;
  return inserted_[idx - items_];
}

std::uint64_t OpStream::OwnIndex(std::uint64_t idx) const {
  // Indices at or above items_ are this client's own inserts already.
  if (idx >= items_) return idx;
  const std::uint64_t clients = static_cast<std::uint64_t>(clients_);
  std::uint64_t own = idx - idx % clients + static_cast<std::uint64_t>(client_);
  if (own >= items_) own -= clients;
  return own;
}

Key64 OpStream::FreshKey() {
  if (dataset_->append) {
    const std::uint64_t slot =
        append_counter_++ * static_cast<std::uint64_t>(clients_) +
        static_cast<std::uint64_t>(client_);
    return dataset_->append_base + slot * dataset_->append_stride;
  }
  // Scatter: draw from [0, 2^63) so the residue remap can't wrap, remap
  // to this client's residue class, reject bootstrap collisions and our
  // own earlier mints.
  const std::uint64_t clients = static_cast<std::uint64_t>(clients_);
  for (;;) {
    const std::uint64_t draw = rng_.Next() >> 1;
    Key64 candidate =
        draw - draw % clients + static_cast<std::uint64_t>(client_);
    if (candidate == 0 || candidate == KeyTraits<Key64>::kMax) continue;
    if (std::binary_search(dataset_->pairs.begin(), dataset_->pairs.end(),
                           candidate, KeyLess{})) {
      continue;
    }
    if (!scatter_used_.insert(candidate).second) continue;
    return candidate;
  }
}

Op OpStream::Next() {
  Op op;
  const std::uint64_t pick = rng_.NextBounded(10000);
  if (pick < read_cut_) {
    op.kind = OpKind::kRead;
    op.key = KeyAt(chooser_.Next(rng_, inserted_.size()));
  } else if (pick < update_cut_) {
    op.kind = OpKind::kUpdate;
    op.key = KeyAt(OwnIndex(chooser_.Next(rng_, inserted_.size())));
    op.value = rng_.Next();
  } else if (pick < insert_cut_) {
    op.kind = OpKind::kInsert;
    op.key = FreshKey();
    op.value = rng_.Next();
    inserted_.push_back(op.key);
  } else if (pick < scan_cut_) {
    op.kind = OpKind::kScan;
    op.key = KeyAt(chooser_.Next(rng_, inserted_.size()));
    op.scan_len =
        1 + static_cast<int>(rng_.NextBounded(
                static_cast<std::uint64_t>(spec_.max_scan_len)));
  } else {
    op.kind = OpKind::kReadModifyWrite;
    op.key = KeyAt(OwnIndex(chooser_.Next(rng_, inserted_.size())));
    op.value = rng_.Next();
  }
  return op;
}

std::vector<Op> OpStream::Take(std::size_t n) {
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ops.push_back(Next());
  return ops;
}

}  // namespace hbtree::workload
