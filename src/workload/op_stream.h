#ifndef HBTREE_WORKLOAD_OP_STREAM_H_
#define HBTREE_WORKLOAD_OP_STREAM_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/random.h"
#include "core/types.h"
#include "workload/dataset.h"
#include "workload/spec.h"

namespace hbtree::workload {

enum class OpKind : std::uint8_t {
  kRead,
  kUpdate,           // blind write of a fresh value to an existing key
  kInsert,           // write of a fresh key
  kScan,             // range scan of scan_len records from key
  kReadModifyWrite,  // dependent read-then-write of an existing key
};

const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kRead;
  Key64 key = 0;
  Key64 value = 0;  // kUpdate / kInsert / kReadModifyWrite payload
  int scan_len = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

/// One client's deterministic operation stream for a workload: same
/// (spec, dataset, client, clients, seed) → bit-identical ops on every
/// platform.
///
/// Concurrent-client exactness: mutating ops (update / insert / rmw) are
/// remapped onto the client's own residue class of the record index space
/// (index ≡ client mod clients), and fresh insert keys are minted in
/// per-client disjoint sequences — so clients never write the same key
/// and each client's local oracle stays exact while reads/scans roam the
/// whole key space.
class OpStream {
 public:
  /// `dataset` must outlive the stream. 0 <= client < clients, and the
  /// dataset must hold at least `clients` records.
  OpStream(const WorkloadSpec& spec, const BootstrapDataset* dataset,
           int client, int clients, std::uint64_t seed);

  Op Next();
  std::vector<Op> Take(std::size_t n);

  /// Fresh keys this stream has minted so far, oldest first.
  const std::vector<Key64>& inserted() const { return inserted_; }

 private:
  Key64 KeyAt(std::uint64_t idx) const;
  std::uint64_t OwnIndex(std::uint64_t idx) const;
  Key64 FreshKey();

  const WorkloadSpec spec_;
  const BootstrapDataset* dataset_;
  int client_;
  int clients_;
  Rng rng_;
  KeyChooser chooser_;
  std::uint64_t items_;
  // Mix thresholds in basis points, cumulative.
  std::uint64_t read_cut_, update_cut_, insert_cut_, scan_cut_;
  std::vector<Key64> inserted_;
  std::uint64_t append_counter_ = 0;
  std::unordered_set<Key64> scatter_used_;  // scatter-mode dedup
};

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_OP_STREAM_H_
