#include "workload/key_chooser.h"

#include "core/macros.h"

namespace hbtree::workload {

Q32 ZipfGenerator::Zeta(std::uint64_t n, Q32 theta) {
  Q32 sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += InvPowQ32(i, theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t items, double theta)
    : items_(items) {
  HBTREE_CHECK_MSG(items >= 1, "ZipfGenerator needs at least one item");
  HBTREE_CHECK_MSG(theta > 0.0 && theta < 1.0,
                   "zipf theta must lie in (0, 1)");
  const Q32 theta_q = ToQ32(theta);
  zetan_ = Zeta(items, theta_q);
  alpha_ = DivQ32(kQ32One, kQ32One - theta_q);
  // eta = (1 - (2/n)^(1-theta)) / (1 - zeta(2)/zeta(n)).
  const Q32 zeta2 = Zeta(2, theta_q);
  if (items <= 2) {
    eta_ = 0;
  } else {
    const Q32 two_over_n = DivQ32(Q32{2} << 32, static_cast<Q32>(items) << 32);
    const Q32 num = kQ32One - PowFracQ32(two_over_n, kQ32One - theta_q);
    const Q32 den = kQ32One - DivQ32(zeta2, zetan_);
    eta_ = den == 0 ? 0 : DivQ32(num, den);
  }
  cut1_ = kQ32One;
  cut2_ = kQ32One + InvPowQ32(2, theta_q);
}

std::uint64_t ZipfGenerator::Next(Rng& rng) const {
  // u uniform in [0, 1) as a Q32 fraction: the top 32 bits of one draw.
  const Q32 u = rng.Next() >> 32;
  const Q32 uz = MulQ32(u, zetan_);
  if (uz < cut1_ || items_ == 1) return 0;
  if (uz < cut2_) return 1;
  // rank = floor(n * (eta*u - eta + 1)^alpha); base stays in (0, 1].
  const Q32 base = kQ32One - eta_ + MulQ32(eta_, u);
  const Q32 frac = PowFracQ32(base, alpha_);
  std::uint64_t rank = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(items_) * frac) >> 32);
  if (rank >= items_) rank = items_ - 1;
  return rank;
}

const char* KeyChooserKindName(KeyChooserKind kind) {
  switch (kind) {
    case KeyChooserKind::kUniform:
      return "uniform";
    case KeyChooserKind::kZipfian:
      return "zipfian";
    case KeyChooserKind::kScrambledZipfian:
      return "scrambled_zipfian";
    case KeyChooserKind::kLatest:
      return "latest";
    case KeyChooserKind::kHotspot:
      return "hotspot";
  }
  return "unknown";
}

namespace {

bool NeedsZipf(KeyChooserKind kind) {
  return kind == KeyChooserKind::kZipfian ||
         kind == KeyChooserKind::kScrambledZipfian ||
         kind == KeyChooserKind::kLatest;
}

// Maps a 64-bit hash onto [0, n) without modulo bias (Lemire's method,
// same as Rng::NextBounded but over an existing hash value).
std::uint64_t ScaleHash(std::uint64_t hash, std::uint64_t n) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace

KeyChooser::KeyChooser(const Params& params, std::uint64_t items)
    : params_(params),
      items_(items),
      zipf_(NeedsZipf(params.kind) ? items : 1, params.zipf_theta) {
  HBTREE_CHECK_MSG(items >= 1, "KeyChooser needs at least one item");
  if (params_.kind == KeyChooserKind::kHotspot) {
    HBTREE_CHECK_MSG(params_.hot_key_fraction > 0.0 &&
                         params_.hot_key_fraction <= 1.0,
                     "hot_key_fraction must lie in (0, 1]");
    HBTREE_CHECK_MSG(params_.hot_op_fraction >= 0.0 &&
                         params_.hot_op_fraction <= 1.0,
                     "hot_op_fraction must lie in [0, 1]");
    hot_items_ = static_cast<std::uint64_t>(
        params_.hot_key_fraction * static_cast<double>(items) + 0.5);
    if (hot_items_ < 1) hot_items_ = 1;
    if (hot_items_ > items) hot_items_ = items;
    hot_op_bp_ = static_cast<std::uint64_t>(
        params_.hot_op_fraction * 10000.0 + 0.5);
  }
}

std::uint64_t KeyChooser::Next(Rng& rng, std::uint64_t inserted) const {
  switch (params_.kind) {
    case KeyChooserKind::kUniform:
      return rng.NextBounded(items_ + inserted);
    case KeyChooserKind::kZipfian:
      return zipf_.Next(rng);
    case KeyChooserKind::kScrambledZipfian: {
      // Scatter the rank order over the index space; the hash keeps the
      // rank→index map stable as inserts grow the domain (a hot rank
      // stays the same hot record for the whole run).
      std::uint64_t rank = zipf_.Next(rng);
      return ScaleHash(SplitMix64(rank), items_);
    }
    case KeyChooserKind::kLatest: {
      // rank 0 = newest record. Ranks larger than the newest-insert
      // window fall back into the bootstrap set's high end.
      const std::uint64_t total = items_ + inserted;
      const std::uint64_t rank = zipf_.Next(rng);
      return total - 1 - (rank < total ? rank : total - 1);
    }
    case KeyChooserKind::kHotspot: {
      if (rng.NextBounded(10000) < hot_op_bp_) {
        return rng.NextBounded(hot_items_);
      }
      if (hot_items_ == items_) return rng.NextBounded(items_);
      return hot_items_ + rng.NextBounded(items_ - hot_items_);
    }
  }
  return 0;
}

}  // namespace hbtree::workload
