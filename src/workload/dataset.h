#ifndef HBTREE_WORKLOAD_DATASET_H_
#define HBTREE_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace hbtree::workload {

enum class DatasetKind {
  /// keys = (i + 1) * stride: maximal headroom, fresh inserts append past
  /// the bootstrap set (YCSB's ordered-insert regime, needed for D/E).
  kSequential,
  /// Uniform random 64-bit keys: no append headroom, fresh inserts
  /// scatter into the gaps.
  kUniform,
  /// OSM-style clustered real keys (loaded from data/osm_mini_keys.txt
  /// when present, synthesized with the same shape otherwise).
  kOsm,
};

const char* DatasetKindName(DatasetKind kind);

/// Parses "sequential" / "uniform" / "osm"; false on anything else.
bool ParseDatasetKind(const std::string& name, DatasetKind* out);

/// The bootstrap record set a workload runs against, sorted by key and
/// duplicate-free, plus the policy for minting fresh insert keys.
struct BootstrapDataset {
  DatasetKind kind = DatasetKind::kSequential;
  std::vector<KeyValue<Key64>> pairs;

  /// When true, fresh key i (0-based, across all clients) is
  /// append_base + i * append_stride — strictly above every bootstrap
  /// key, so kLatest skew really does hit the newest records. When
  /// false, fresh keys are drawn uniformly and rejected against the
  /// bootstrap set (scatter policy).
  bool append = false;
  Key64 append_base = 0;
  Key64 append_stride = 0;
};

/// value = SplitMix64-style mix of (key ^ value_seed); lets any reader
/// recompute the expected bootstrap value from the key alone.
Key64 BootstrapValue(Key64 key, std::uint64_t value_seed);

BootstrapDataset MakeSequentialDataset(std::size_t n, std::uint64_t value_seed,
                                       Key64 stride = 8);
BootstrapDataset MakeUniformDataset(std::size_t n, std::uint64_t seed);

/// OSM cell ids cluster around populated places: keys bunch into dense
/// clusters with wide empty gaps. The synthetic generator reproduces that
/// shape — cluster centers uniform over [2^32, 2^63), members packed
/// around each center at small strides.
std::vector<Key64> SyntheticOsmKeys(std::size_t n, std::uint64_t seed);

/// Reads one decimal uint64 key per line; '#' comments and blank lines
/// are skipped. Keys may be unsorted / duplicated — callers dedup.
Status LoadKeyFile(const std::string& path, std::vector<Key64>* keys);

/// Builds the OSM bootstrap set: loads `path` when non-empty and
/// readable, otherwise synthesizes. Subsamples or tops up (with synthetic
/// keys) to exactly n records, then sorts, dedups, and values them.
BootstrapDataset MakeOsmDataset(std::size_t n, std::uint64_t seed,
                                const std::string& path);

BootstrapDataset MakeDataset(DatasetKind kind, std::size_t n,
                             std::uint64_t seed,
                             const std::string& osm_path = std::string());

}  // namespace hbtree::workload

#endif  // HBTREE_WORKLOAD_DATASET_H_
