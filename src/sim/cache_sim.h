#ifndef HBTREE_SIM_CACHE_SIM_H_
#define HBTREE_SIM_CACHE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hbtree::sim {

/// One set-associative, LRU-replacement cache level.
///
/// The simulator is trace-driven: tree traversal feeds it the cache-line
/// address of every logical access, and the hierarchy reports which level
/// served it. This is what makes the cache-sensitivity experiments
/// (tree size vs. LLC capacity, skewed query streams — Figures 8, 12, 16)
/// reproducible without the paper's hardware.
class CacheLevel {
 public:
  struct Config {
    std::string name;
    std::uint64_t size_bytes;
    int associativity;
    std::uint64_t line_size = 64;
  };

  explicit CacheLevel(const Config& config);

  /// Accesses `line_addr` (already divided by line size). Returns true on
  /// hit; on miss the line is installed, evicting the LRU way. Inline —
  /// the trace-driven simulators call this for every modelled memory
  /// access, so it is one of the hottest functions in the whole host
  /// process; the MRU short-circuit covers the common repeated-line case
  /// without any way shifting.
  bool Access(std::uint64_t line_addr) {
    const std::uint64_t set = line_addr & (num_sets_ - 1);
    const std::uint64_t tag = line_addr + 1;  // +1 so 0 means "empty way"
    std::uint64_t* ways = &tags_[set * ways_];
    if (ways[0] == tag) {  // already MRU: nothing to reorder
      ++hits_;
      return true;
    }
    for (int i = 1; i < ways_; ++i) {
      if (ways[i] == tag) {
        // Move to front (MRU position).
        for (int j = i; j > 0; --j) ways[j] = ways[j - 1];
        ways[0] = tag;
        ++hits_;
        return true;
      }
    }
    // Miss: install as MRU, evicting the LRU way.
    for (int j = ways_ - 1; j > 0; --j) ways[j] = ways[j - 1];
    ways[0] = tag;
    ++misses_;
    return false;
  }

  void Flush();

  const Config& config() const { return config_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  Config config_;
  std::uint64_t num_sets_;
  int ways_;
  // tags_[set * ways_ + i] holds the i-th most recently used tag of `set`;
  // a zero entry is empty (tags are stored +1 to make zero invalid).
  std::vector<std::uint64_t> tags_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Which level of the hierarchy served an access.
enum class HitLevel { kL1 = 0, kL2 = 1, kL3 = 2, kMemory = 3 };

const char* HitLevelName(HitLevel level);

/// An inclusive multi-level cache hierarchy (L1 → L2 → LLC → memory).
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheLevel::Config> levels);

  /// Simulates one access to `addr`; returns the serving level. Accesses
  /// spanning a line boundary count as one access to the first line (tree
  /// code issues per-line accesses, so this does not occur in practice).
  HitLevel Access(const void* addr) {
    return AccessLine(reinterpret_cast<std::uintptr_t>(addr) / line_size_);
  }
  HitLevel AccessLine(std::uint64_t line_addr) {
    ++accesses_;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].Access(line_addr)) return static_cast<HitLevel>(i);
      // Miss: fall through and install in the next level too (the loop
      // continues, so every level on the miss path installs the line —
      // modelling an inclusive hierarchy).
    }
    ++memory_accesses_;
    return HitLevel::kMemory;
  }

  void Flush();
  void ResetStats();

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const CacheLevel& level(int i) const { return levels_[i]; }
  std::uint64_t accesses() const { return accesses_; }
  /// Accesses that missed every level and went to DRAM.
  std::uint64_t memory_accesses() const { return memory_accesses_; }

 private:
  std::vector<CacheLevel> levels_;
  std::uint64_t line_size_;
  std::uint64_t accesses_ = 0;
  std::uint64_t memory_accesses_ = 0;
};

}  // namespace hbtree::sim

#endif  // HBTREE_SIM_CACHE_SIM_H_
