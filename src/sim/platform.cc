#include "sim/platform.h"

#include "core/macros.h"

namespace hbtree::sim {

PlatformSpec PlatformSpec::M1() {
  PlatformSpec p;
  p.name = "M1";

  CpuSpec& cpu = p.cpu;
  cpu.name = "Intel Xeon E5-2665";
  cpu.cores = 8;
  cpu.threads = 16;
  cpu.frequency_ghz = 2.4;
  cpu.cache_levels = {
      {"L1d", 32ull * 1024, 8},
      {"L2", 256ull * 1024, 8},
      {"L3", 20ull * 1024 * 1024, 20},
  };
  cpu.tlb = TlbSim::Config{};
  cpu.l2_latency_ns = 5.0;
  cpu.l3_latency_ns = 15.0;
  cpu.dram_latency_ns = 95.0;
  cpu.walk_access_ns = 12.0;
  cpu.dram_bandwidth_gbps = 51.2;
  cpu.mlp_per_thread = 5;  // 10 line-fill buffers per core, 2 SMT threads
  cpu.smt_compute_yield = 1.25;
  cpu.compute_ns_sequential = 14.0;
  cpu.compute_ns_linear_simd = 7.7;
  cpu.compute_ns_hierarchical_simd = 7.0;
  cpu.hybrid_overhead_ns = 35.0;

  GpuSpec& gpu = p.gpu;
  gpu.name = "Nvidia GeForce GTX 780";
  gpu.sm_count = 12;
  gpu.cores = 2304;
  gpu.core_clock_ghz = 0.9;
  gpu.memory_bytes = 3ull * 1024 * 1024 * 1024;
  gpu.l2_bytes = 1536ull * 1024;
  gpu.l2_associativity = 24;  // 1024 sets of 64 B lines
  gpu.memory_bandwidth_gbps = 288.0;
  gpu.memory_latency_ns = 400.0;
  gpu.random_access_efficiency = 0.45;
  gpu.warp_size = 32;
  gpu.max_resident_warps = 12 * 64;
  gpu.kernel_launch_us = 5.0;
  gpu.warp_ipc_per_sm = 4.0;

  PcieSpec& pcie = p.pcie;
  pcie.bandwidth_h2d_gbps = 12.0;  // PCIe 3.0 x16, effective
  pcie.bandwidth_d2h_gbps = 12.0;
  pcie.transfer_init_us = 8.0;
  pcie.streamed_init_us = 1.3;

  return p;
}

PlatformSpec PlatformSpec::M2() {
  PlatformSpec p;
  p.name = "M2";

  CpuSpec& cpu = p.cpu;
  cpu.name = "Intel Core i7-4800MQ";
  cpu.cores = 4;
  cpu.threads = 8;
  cpu.frequency_ghz = 2.7;
  cpu.cache_levels = {
      {"L1d", 32ull * 1024, 8},
      {"L2", 256ull * 1024, 8},
      {"L3", 6ull * 1024 * 1024, 12},
  };
  cpu.tlb = TlbSim::Config{};
  cpu.l2_latency_ns = 4.5;
  cpu.l3_latency_ns = 13.0;
  cpu.dram_latency_ns = 90.0;
  cpu.walk_access_ns = 11.0;
  cpu.dram_bandwidth_gbps = 25.6;
  cpu.mlp_per_thread = 5;
  cpu.smt_compute_yield = 1.25;
  // Haswell AVX2 is wider/faster per line than the Sandy Bridge server
  // part; the paper runs the AVX2 node-search comparison on M2.
  cpu.compute_ns_sequential = 12.0;
  cpu.compute_ns_linear_simd = 6.2;
  cpu.compute_ns_hierarchical_simd = 5.6;
  cpu.hybrid_overhead_ns = 40.0;

  GpuSpec& gpu = p.gpu;
  gpu.name = "Nvidia GeForce GTX 770M";
  gpu.sm_count = 5;
  gpu.cores = 960;
  gpu.core_clock_ghz = 0.8;
  gpu.memory_bytes = 3ull * 1024 * 1024 * 1024;
  gpu.l2_bytes = 384ull * 1024;  // GK106's small L2
  gpu.l2_associativity = 24;     // 256 sets of 64 B lines
  gpu.memory_bandwidth_gbps = 96.0;
  gpu.memory_latency_ns = 450.0;
  gpu.random_access_efficiency = 0.22;
  gpu.warp_size = 32;
  // The mobile part sustains far fewer resident warps (register pressure
  // and smaller SMX count), leaving tree search latency-bound — the
  // condition under which Section 5.5's load balancing pays off.
  gpu.max_resident_warps = 64;
  gpu.kernel_launch_us = 6.0;
  // The mobile part issues far fewer warp instructions per cycle on this
  // scalar, shared-memory-heavy kernel; per-level compute is what the
  // load-balancing scheme can actually take off the GPU.
  gpu.warp_ipc_per_sm = 0.6;

  PcieSpec& pcie = p.pcie;
  // The laptop exposes a PCIe 2.0 x8 link to the MXM GPU: the paper
  // finds M2's "communication overhead between both processors is far
  // higher than the acceleration provided by the GPU" (Section 6.5).
  pcie.bandwidth_h2d_gbps = 3.0;
  pcie.bandwidth_d2h_gbps = 3.0;
  pcie.transfer_init_us = 12.0;
  pcie.streamed_init_us = 2.0;

  return p;
}

PlatformSpec PlatformSpec::Parse(const std::string& name) {
  if (name == "m1" || name == "M1") return M1();
  if (name == "m2" || name == "M2") return M2();
  HBTREE_CHECK_MSG(false, "unknown platform '%s' (expected m1 or m2)",
                   name.c_str());
  return M1();
}

}  // namespace hbtree::sim
