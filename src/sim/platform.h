#ifndef HBTREE_SIM_PLATFORM_H_
#define HBTREE_SIM_PLATFORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache_sim.h"
#include "sim/tlb_sim.h"

namespace hbtree::sim {

/// CPU half of a platform model. Latency/bandwidth figures follow public
/// datasheets and measured literature values for the two evaluation
/// machines (Section 6.1); they parameterize the trace-driven cost model.
struct CpuSpec {
  std::string name;
  int cores;
  int threads;  // hardware threads (SMT)
  double frequency_ghz;

  std::vector<CacheLevel::Config> cache_levels;
  TlbSim::Config tlb;

  // Access latencies, in nanoseconds, charged when an access is served by
  // the given level (L1 latency is folded into the compute cost).
  double l2_latency_ns;
  double l3_latency_ns;
  double dram_latency_ns;
  /// Cost of one page-walk memory access after a TLB miss. Walks mostly
  /// hit the paging-structure caches and LLC, so this sits between L2 and
  /// L3 latency.
  double walk_access_ns;

  double dram_bandwidth_gbps;  // GB/s
  /// Memory-level parallelism available to one hardware thread (line-fill
  /// buffers per core divided across SMT threads). Caps how much latency
  /// software pipelining can hide (Section 4.2, Figure 20).
  int mlp_per_thread;
  /// Extra compute throughput the second SMT thread of a core extracts
  /// from otherwise-idle issue slots (1.0 = none).
  double smt_compute_yield;

  /// Compute cost per traversed cache line for each node-search algorithm
  /// (ns at nominal frequency): SIMD search needs fewer ops per line.
  double compute_ns_sequential;
  double compute_ns_linear_simd;
  double compute_ns_hierarchical_simd;

  /// Per-query CPU overhead of the heterogeneous pipeline (bucket
  /// management, reading intermediate results from the transfer buffer,
  /// writing outputs) added on top of the leaf-search cost — calibrated
  /// against the paper's CPU-bound HB+-tree plateau (Figure 16).
  double hybrid_overhead_ns;
};

/// GPU half of a platform model (Section 5 / Appendix C).
struct GpuSpec {
  std::string name;
  int sm_count;
  int cores;  // total CUDA cores
  double core_clock_ghz;
  std::uint64_t memory_bytes;          // device memory capacity (the cap
                                       // that motivates the hybrid design)
  std::uint64_t l2_bytes;              // device L2 cache
  int l2_associativity;
  double memory_bandwidth_gbps;        // peak device bandwidth
  double memory_latency_ns;            // device DRAM access latency
  double random_access_efficiency;     // achieved fraction of peak for
                                       // 64-byte gathers
  int warp_size;                       // 32
  int max_resident_warps;              // across the whole device
  double kernel_launch_us;             // K_init in the Section 5.4 model
  /// Instruction throughput in warp-instructions per SM per cycle.
  double warp_ipc_per_sm;
};

/// PCIe link between host and device (T_init + bytes/BW, Section 5.4).
struct PcieSpec {
  double bandwidth_h2d_gbps;
  double bandwidth_d2h_gbps;
  double transfer_init_us;  // T_init for individually submitted transfers
  /// Effective initialization cost when many small transfers are queued
  /// back-to-back on one stream (the synchronizing thread of Section 5.6
  /// keeps the copy queue full, amortizing most of the launch latency).
  double streamed_init_us;
};

/// A full heterogeneous platform.
struct PlatformSpec {
  std::string name;
  CpuSpec cpu;
  GpuSpec gpu;
  PcieSpec pcie;

  /// M1: Intel Xeon E5-2665 + Nvidia GeForce GTX 780 (desktop, PCIe x16).
  static PlatformSpec M1();
  /// M2: Intel Core i7-4800MQ + Nvidia GeForce GTX 770M (laptop).
  static PlatformSpec M2();
  /// Parses "m1" / "m2".
  static PlatformSpec Parse(const std::string& name);
};

}  // namespace hbtree::sim

#endif  // HBTREE_SIM_PLATFORM_H_
