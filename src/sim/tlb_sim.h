#ifndef HBTREE_SIM_TLB_SIM_H_
#define HBTREE_SIM_TLB_SIM_H_

#include <cstdint>

#include "mem/page_allocator.h"
#include "sim/cache_sim.h"

namespace hbtree::sim {

/// TLB simulator reproducing the memory-page-configuration experiment
/// (Section 6.2, Figure 7).
///
/// Modern x86 keeps separate TLB arrays per page size; crucially, the paper
/// leans on the fact that "there are only four entries in the last level
/// TLB for 1GB pages", so the I-segment must stay under 4 GB to never miss.
/// The per-page-size structure below reproduces exactly that constraint.
///
/// Page-walk cost also differs by page size: translating a 4 KB page takes
/// five memory accesses while 1 GB pages need only three (Section 6.2,
/// citing the Intel SDM) — that asymmetry is why the all-huge-page
/// configuration wins in Figure 7(b) despite more raw misses.
class TlbSim {
 public:
  struct Config {
    // Modelled after Ivy/Sandy Bridge class cores: a unified second-level
    // TLB for 4K pages, a small fully-associative array for 2M pages, and
    // four 1G entries.
    int entries_4k = 512;
    int assoc_4k = 4;
    int entries_2m = 32;
    int assoc_2m = 4;
    int entries_1g = 4;
    int assoc_1g = 4;  // fully associative (4 entries, 4 ways)
  };

  explicit TlbSim(const Config& config, const PageRegistry* registry);

  /// Translates `addr`. Returns 0 on TLB hit; on a miss, installs the
  /// entry and returns the number of page-walk memory accesses incurred.
  int Access(const void* addr);

  /// Page-walk memory accesses needed after a miss for this page size.
  static int WalkAccesses(PageSize size);

  void Flush();
  void ResetStats();

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_4k_ + misses_2m_ + misses_1g_; }
  std::uint64_t misses_4k() const { return misses_4k_; }
  std::uint64_t misses_2m() const { return misses_2m_; }
  std::uint64_t misses_1g() const { return misses_1g_; }
  /// Total page-walk memory accesses incurred so far.
  std::uint64_t walk_accesses() const { return walk_accesses_; }

 private:
  const PageRegistry* registry_;
  CacheLevel tlb_4k_;
  CacheLevel tlb_2m_;
  CacheLevel tlb_1g_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_4k_ = 0;
  std::uint64_t misses_2m_ = 0;
  std::uint64_t misses_1g_ = 0;
  std::uint64_t walk_accesses_ = 0;
};

}  // namespace hbtree::sim

#endif  // HBTREE_SIM_TLB_SIM_H_
