#include "sim/cpu_cost_model.h"

#include <algorithm>

#include "core/macros.h"
#include "core/types.h"

namespace hbtree::sim {

CpuTracer::CpuTracer(const CpuSpec& spec, const PageRegistry* registry)
    : spec_(spec), caches_(spec.cache_levels), tlb_(spec.tlb, registry) {}

void CpuTracer::OnAccess(const void* addr, std::size_t bytes) {
  // Tree code issues one access per touched cache line; wider accesses are
  // split here for robustness.
  auto first = reinterpret_cast<std::uintptr_t>(addr) / kCacheLineSize;
  auto last =
      (reinterpret_cast<std::uintptr_t>(addr) + (bytes ? bytes - 1 : 0)) /
      kCacheLineSize;
  for (std::uintptr_t line = first; line <= last; ++line) {
    ++profile_.accesses;
    HitLevel level = caches_.AccessLine(line);
    ++profile_.hits[static_cast<int>(level)];
    switch (level) {
      case HitLevel::kL1:
        break;  // folded into the compute cost
      case HitLevel::kL2:
        profile_.stall_ns += spec_.l2_latency_ns;
        break;
      case HitLevel::kL3:
        profile_.stall_ns += spec_.l3_latency_ns;
        break;
      case HitLevel::kMemory:
        profile_.stall_ns += spec_.dram_latency_ns;
        profile_.dram_bytes += kCacheLineSize;
        break;
    }
    const int walk =
        tlb_.Access(reinterpret_cast<const void*>(line * kCacheLineSize));
    if (walk > 0) {
      ++profile_.tlb_misses;
      profile_.walk_accesses += walk;
      profile_.stall_ns += walk * spec_.walk_access_ns;
    }
  }
}

void CpuTracer::ResetStats() {
  profile_ = Profile{};
  caches_.ResetStats();
  tlb_.ResetStats();
}

void CpuTracer::Reset() {
  ResetStats();
  caches_.Flush();
  tlb_.Flush();
}

CpuEstimate EstimateCpuThroughput(const CpuSpec& spec,
                                  const CpuTracer::Profile& profile,
                                  const CpuExecutionParams& params) {
  HBTREE_CHECK(params.threads > 0);
  HBTREE_CHECK(params.pipeline_depth > 0);
  HBTREE_CHECK(profile.queries > 0);

  const double compute_q =
      profile.AccessesPerQuery() * params.compute_ns_per_access;
  const double stall_q = profile.StallNsPerQuery();
  const double bytes_q =
      profile.DramBytesPerQuery() + params.stream_bytes_per_query;

  // Software pipelining overlaps the stalls of up to `pipeline_depth`
  // outstanding queries per thread, with diminishing returns as the
  // core's memory-level parallelism saturates: P/(1 + (P-1)/MLP) rises
  // smoothly from 1 (no pipelining) toward MLP — reproducing the
  // continuing-but-flattening gains of Figure 20.
  const double p = params.pipeline_depth;
  const double overlap = p / (1.0 + (p - 1.0) / spec.mlp_per_thread);

  CpuEstimate est;
  est.thread_time_ns = compute_q + stall_q / overlap;
  est.latency_bound_mqps = params.threads * 1e3 / est.thread_time_ns;
  // SMT threads share core execution resources: compute capacity scales
  // with physical cores, plus the second thread's yield from idle slots.
  est.compute_bound_mqps = spec.cores * spec.smt_compute_yield * 1e3 /
                           std::max(compute_q, 1e-9);
  est.bandwidth_bound_mqps =
      spec.dram_bandwidth_gbps * 1e3 / std::max(bytes_q, 1e-9);
  est.mqps = std::min({est.latency_bound_mqps, est.compute_bound_mqps,
                       est.bandwidth_bound_mqps});
  // All pipeline_depth in-flight queries of a thread complete once per
  // thread_time on average; the oldest has waited depth * thread_time.
  const double effective_time_ns =
      params.threads * 1e3 / std::max(est.mqps, 1e-9) ;
  est.latency_us = params.pipeline_depth * effective_time_ns / 1e3;
  return est;
}

double ComputeNsPerAccess(const CpuSpec& spec, NodeSearchAlgo algo) {
  switch (algo) {
    case NodeSearchAlgo::kSequential:
      return spec.compute_ns_sequential;
    case NodeSearchAlgo::kLinearSimd:
      return spec.compute_ns_linear_simd;
    case NodeSearchAlgo::kHierarchicalSimd:
      return spec.compute_ns_hierarchical_simd;
  }
  return spec.compute_ns_sequential;
}

}  // namespace hbtree::sim
