#ifndef HBTREE_SIM_RESOURCE_H_
#define HBTREE_SIM_RESOURCE_H_

#include <algorithm>

namespace hbtree::sim {

/// A serially-reusable resource on a simulated timeline (the CPU, the GPU,
/// or one direction of the PCIe link). The bucket-pipeline simulations of
/// Section 5.4 are job-shop schedules over three such resources; this tiny
/// class is all the "discrete event engine" they need.
class ResourceTimeline {
 public:
  /// Schedules a task of `duration` that may not start before `earliest`.
  /// Returns the start time; the resource becomes free at start+duration.
  double Acquire(double earliest, double duration) {
    double start = std::max(earliest, free_at_);
    free_at_ = start + duration;
    busy_ += duration;
    return start;
  }

  double free_at() const { return free_at_; }
  /// Total busy time, for utilization reporting.
  double busy_time() const { return busy_; }

  void Reset() {
    free_at_ = 0;
    busy_ = 0;
  }

 private:
  double free_at_ = 0;
  double busy_ = 0;
};

}  // namespace hbtree::sim

#endif  // HBTREE_SIM_RESOURCE_H_
