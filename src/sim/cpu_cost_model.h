#ifndef HBTREE_SIM_CPU_COST_MODEL_H_
#define HBTREE_SIM_CPU_COST_MODEL_H_

#include <cstdint>

#include "core/simd.h"
#include "mem/page_allocator.h"
#include "sim/cache_sim.h"
#include "sim/platform.h"
#include "sim/tlb_sim.h"

namespace hbtree::sim {

/// Trace-driven CPU memory profile. Tree traversals feed every logical
/// cache-line access through this tracer (see core/trace.h); the cache and
/// TLB simulators classify it, and the profile accumulates the per-query
/// stall and traffic statistics the throughput estimator consumes.
class CpuTracer {
 public:
  struct Profile {
    std::uint64_t queries = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hits[4] = {0, 0, 0, 0};  // indexed by HitLevel
    std::uint64_t tlb_misses = 0;
    std::uint64_t walk_accesses = 0;
    double stall_ns = 0;    // cumulative beyond-L1 latency + walk cost
    double dram_bytes = 0;  // cumulative bytes transferred from DRAM

    double AccessesPerQuery() const {
      return queries ? static_cast<double>(accesses) / queries : 0;
    }
    double StallNsPerQuery() const {
      return queries ? stall_ns / queries : 0;
    }
    double DramBytesPerQuery() const {
      return queries ? dram_bytes / queries : 0;
    }
    double TlbMissesPerQuery() const {
      return queries ? static_cast<double>(tlb_misses) / queries : 0;
    }
  };

  CpuTracer(const CpuSpec& spec, const PageRegistry* registry);

  // Tracer concept (core/trace.h).
  void OnAccess(const void* addr, std::size_t bytes);
  void OnQueryStart() {}
  void OnQueryEnd() { ++profile_.queries; }

  const Profile& profile() const { return profile_; }

  /// Clears accumulated statistics but keeps cache/TLB state warm — call
  /// after a warm-up pass so steady-state behaviour is measured.
  void ResetStats();
  /// Cold restart: flushes caches and TLBs as well.
  void Reset();

  const CacheHierarchy& caches() const { return caches_; }
  const TlbSim& tlb() const { return tlb_; }

 private:
  CpuSpec spec_;
  CacheHierarchy caches_;
  TlbSim tlb_;
  Profile profile_;
};

/// Execution parameters for the analytic throughput model.
struct CpuExecutionParams {
  int threads = 1;
  /// Software-pipeline depth per thread (Section 4.2, Appendix B.2).
  int pipeline_depth = 16;
  /// Compute cost per traversed cache line; pick from CpuSpec according to
  /// the node-search algorithm in use.
  double compute_ns_per_access = 3.5;
  /// Per-query bytes streamed for the query key and result value
  /// (sequential, prefetched — they cost bandwidth, not latency).
  double stream_bytes_per_query = 16.0;
};

/// Model output. `mqps` is the minimum of the three bounds, mirroring how
/// the paper reasons about compute- vs. memory-bound operating points
/// (Sections 1 and 5.1).
struct CpuEstimate {
  double mqps = 0;
  double latency_us = 0;
  double latency_bound_mqps = 0;
  double compute_bound_mqps = 0;
  double bandwidth_bound_mqps = 0;
  /// Time one thread spends per query with pipelining applied (ns).
  double thread_time_ns = 0;
};

/// Converts a measured memory profile into throughput/latency under the
/// given thread count and software-pipeline depth.
CpuEstimate EstimateCpuThroughput(const CpuSpec& spec,
                                  const CpuTracer::Profile& profile,
                                  const CpuExecutionParams& params);

/// Convenience: the CpuSpec compute cost for a node-search algorithm.
double ComputeNsPerAccess(const CpuSpec& spec, NodeSearchAlgo algo);

}  // namespace hbtree::sim

#endif  // HBTREE_SIM_CPU_COST_MODEL_H_
