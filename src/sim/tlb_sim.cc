#include "sim/tlb_sim.h"

#include "core/macros.h"

namespace hbtree::sim {

namespace {

CacheLevel::Config TlbArrayConfig(const char* name, int entries, int assoc) {
  // Reuse the set-associative LRU machinery: an N-entry TLB is a "cache"
  // with one-byte lines where the line address is the page number.
  return CacheLevel::Config{name, static_cast<std::uint64_t>(entries),
                            assoc, /*line_size=*/1};
}

}  // namespace

TlbSim::TlbSim(const Config& config, const PageRegistry* registry)
    : registry_(registry),
      tlb_4k_(TlbArrayConfig("tlb4k", config.entries_4k, config.assoc_4k)),
      tlb_2m_(TlbArrayConfig("tlb2m", config.entries_2m, config.assoc_2m)),
      tlb_1g_(TlbArrayConfig("tlb1g", config.entries_1g, config.assoc_1g)) {
  HBTREE_CHECK(registry != nullptr);
}

int TlbSim::Access(const void* addr) {
  ++accesses_;
  const PageRegistry::Translation t = registry_->Translate(addr);
  const PageSize size = t.page_size;
  const std::uint64_t page = t.page;
  bool hit;
  switch (size) {
    case PageSize::k4K:
      hit = tlb_4k_.Access(page);
      if (!hit) ++misses_4k_;
      break;
    case PageSize::k2M:
      hit = tlb_2m_.Access(page);
      if (!hit) ++misses_2m_;
      break;
    case PageSize::k1G:
      hit = tlb_1g_.Access(page);
      if (!hit) ++misses_1g_;
      break;
    default:
      hit = true;
  }
  if (hit) return 0;
  const int walk = WalkAccesses(size);
  walk_accesses_ += walk;
  return walk;
}

int TlbSim::WalkAccesses(PageSize size) {
  // x86-64 four-level paging: PML4 → PDPT → PD → PT → data. Larger pages
  // terminate the walk earlier (Section 6.2: five accesses for 4K pages,
  // three for 1G pages).
  switch (size) {
    case PageSize::k4K:
      return 5;
    case PageSize::k2M:
      return 4;
    case PageSize::k1G:
      return 3;
  }
  return 5;
}

void TlbSim::Flush() {
  tlb_4k_.Flush();
  tlb_2m_.Flush();
  tlb_1g_.Flush();
}

void TlbSim::ResetStats() {
  accesses_ = 0;
  misses_4k_ = misses_2m_ = misses_1g_ = 0;
  walk_accesses_ = 0;
  tlb_4k_.ResetStats();
  tlb_2m_.ResetStats();
  tlb_1g_.ResetStats();
}

}  // namespace hbtree::sim
