#include "sim/cache_sim.h"

#include <bit>

#include "core/macros.h"

namespace hbtree::sim {

CacheLevel::CacheLevel(const Config& config) : config_(config) {
  HBTREE_CHECK(config.associativity > 0);
  HBTREE_CHECK(config.line_size > 0);
  num_sets_ = config.size_bytes / (config.line_size * config.associativity);
  HBTREE_CHECK_MSG(num_sets_ > 0, "cache '%s' too small", config.name.c_str());
  // Power-of-two set counts allow masking instead of modulo.
  HBTREE_CHECK_MSG(std::popcount(num_sets_) == 1,
                   "cache '%s': set count %llu not a power of two",
                   config.name.c_str(),
                   static_cast<unsigned long long>(num_sets_));
  ways_ = config.associativity;
  tags_.assign(num_sets_ * ways_, 0);
}

void CacheLevel::Flush() { tags_.assign(tags_.size(), 0); }

const char* HitLevelName(HitLevel level) {
  switch (level) {
    case HitLevel::kL1:
      return "L1";
    case HitLevel::kL2:
      return "L2";
    case HitLevel::kL3:
      return "L3";
    case HitLevel::kMemory:
      return "memory";
  }
  return "unknown";
}

CacheHierarchy::CacheHierarchy(std::vector<CacheLevel::Config> levels) {
  HBTREE_CHECK(!levels.empty());
  line_size_ = levels[0].line_size;
  for (const auto& config : levels) {
    HBTREE_CHECK(config.line_size == line_size_);
    levels_.emplace_back(config);
  }
}

void CacheHierarchy::Flush() {
  for (auto& level : levels_) level.Flush();
}

void CacheHierarchy::ResetStats() {
  accesses_ = 0;
  memory_accesses_ = 0;
  for (auto& level : levels_) level.ResetStats();
}

}  // namespace hbtree::sim
