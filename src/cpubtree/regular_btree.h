#ifndef HBTREE_CPUBTREE_REGULAR_BTREE_H_
#define HBTREE_CPUBTREE_REGULAR_BTREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/macros.h"
#include "core/simd.h"
#include "core/trace.h"
#include "core/types.h"
#include "cpubtree/node_layout.h"
#include "mem/page_allocator.h"
#include "mem/paired_pool.h"

namespace hbtree {

/// Identifies a node whose hot fragment changed, for I-segment
/// synchronization to GPU memory (Section 5.6).
struct ModifiedNode {
  bool last_level;  // true: leaf_pool (last inner level); false: inner_pool
  NodeRef ref;

  friend bool operator==(const ModifiedNode&, const ModifiedNode&) = default;
};

/// Regular (pointer-based) CPU-optimized B+-tree, Section 4.1 /
/// Figure 2 (c)-(d).
///
/// Inner nodes are 17-cache-line fat nodes (64-bit keys; 33 lines for
/// 32-bit): an index line narrows the search to one key line, whose hit
/// position selects an entry of the aligned reference line — three line
/// touches per level. Node metadata that search never reads (size,
/// parent, siblings) lives in a separate cold-fragment array sharing the
/// node's pool index (inner-node fragmentation).
///
/// The last inner level is special: each of its nodes is paired, under a
/// shared pool index, with one "big leaf" of F_I cache lines (256
/// key-value pairs for 64-bit keys). The inner search result (key line s,
/// slot j) addresses leaf line s*kIdx+j directly — no pointer is stored
/// or followed.
///
/// Separator scheme: keys[c] is a fixed upper bound for child/line c
/// (initialized to the child's max key), empty slots hold the maximum
/// representable value, and the rightmost node of every level pins its
/// last live separator to the maximum ("infinity"), so search never runs
/// off the end of a node and inserts of new maxima need no separator
/// updates.
template <typename K>
class RegularBTree {
 public:
  using Shape = RegularShape<K>;
  using Hot = RegularInnerHot<K>;
  using Cold = RegularInnerCold;
  using Leaf = RegularBigLeaf<K>;

  static constexpr int kIdx = Shape::kIdx;
  static constexpr int kFanout = Shape::kFanout;
  static constexpr int kPairsPerLine = Shape::kPairsPerLine;
  static constexpr int kLeafCap = Shape::kLeafCapacity;
  static constexpr K kMax = KeyTraits<K>::kMax;

  struct Config {
    PageSize inner_page = PageSize::k1G;
    PageSize leaf_page = PageSize::k1G;
    NodeSearchAlgo search_algo = NodeSearchAlgo::kHierarchicalSimd;
    /// Bulk-load fill factors. 1.0 reproduces the paper's "tree is full"
    /// analysis; update-heavy workloads build with slack.
    double leaf_fill = 1.0;
    double inner_fill = 1.0;
    std::size_t pool_chunk_nodes = 2048;
    /// Gapped-leaf insert policy (BS-tree style): when the destination
    /// cache line is full, shift boundary pairs toward the nearest line
    /// with a gap instead of redistributing the whole big leaf. Above
    /// this occupancy the gaps are nearly exhausted and a full
    /// redistribution (which re-spreads the slack evenly) wins.
    double gap_spill_occupancy = 0.85;
    /// How many lines to each side the spill searches for a gap before
    /// giving up and redistributing the whole leaf.
    int gap_spill_window = 8;
  };

  RegularBTree(const Config& config, PageRegistry* registry)
      : config_(config),
        inner_pool_(config.pool_chunk_nodes, config.inner_page,
                    config.inner_page, registry),
        leaf_pool_(config.pool_chunk_nodes, config.inner_page,
                   config.leaf_page, registry) {}

  /// Bulk-builds from key-sorted unique pairs (no key may be the maximum
  /// representable value).
  void Build(const std::vector<KeyValue<K>>& sorted_pairs);

  // -- Lookup -------------------------------------------------------------

  template <typename Tracer = NullTracer>
  LookupResult<K> Search(K key, Tracer* tracer = nullptr) const;

  /// Inner traversal only: returns the last-inner pool index and the leaf
  /// line selected for `key` — the GPU's share of the work in the regular
  /// HB+-tree (Section 5.3).
  struct LeafPosition {
    NodeRef last_inner;
    int line;
  };
  template <typename Tracer = NullTracer>
  LeafPosition FindLeafPosition(K key, Tracer* tracer = nullptr) const;

  /// Final CPU step: searches one cache line of the big leaf paired with
  /// `pos.last_inner`.
  template <typename Tracer = NullTracer>
  LookupResult<K> SearchLeafLine(LeafPosition pos, K key,
                                 Tracer* tracer = nullptr) const;

  /// Range scan: up to `max_matches` pairs with key >= `first_key`.
  template <typename Tracer = NullTracer>
  int RangeScan(K first_key, int max_matches, KeyValue<K>* out,
                Tracer* tracer = nullptr) const;

  /// Leaf-sequential part of a range scan starting at `pos` (the CPU's
  /// share of an HB+-tree range query; the GPU supplies the position).
  template <typename Tracer = NullTracer>
  int ScanLeaves(LeafPosition pos, K first_key, int max_matches,
                 KeyValue<K>* out, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    NodeRef node = pos.last_inner;
    int line = pos.line;
    int copied = 0;
    while (copied < max_matches && node != kNullRef) {
      TraceNodeTouch(t, leaf_pool_, 0, NodeClass::kBigLeaf, node);
      const Leaf& leaf = leaf_pool_.secondary(node);
      for (; line < Shape::kLinesPerLeaf && copied < max_matches; ++line) {
        const KeyValue<K>* lp = leaf.pairs + line * kPairsPerLine;
        t->OnAccess(lp, kCacheLineSize);
        for (int i = 0; i < kPairsPerLine && copied < max_matches; ++i) {
          if (lp[i].key == kMax) break;  // end of this line's live pairs
          if (lp[i].key >= first_key) out[copied++] = lp[i];
        }
      }
      node = leaf.info.next;
      line = 0;
    }
    return copied;
  }

  // -- Updates ------------------------------------------------------------

  /// Inserts a pair; returns false if the key already exists (no change).
  /// Appends any inner nodes whose hot fragment changed to `modified`
  /// (may be null), for GPU I-segment synchronization.
  bool Insert(const KeyValue<K>& pair,
              std::vector<ModifiedNode>* modified = nullptr);

  /// Erases a key; returns false if absent.
  bool Erase(K key, std::vector<ModifiedNode>* modified = nullptr);

  /// Locates the last-level inner node responsible for `key` (the lock
  /// target of the parallel batch updater, Section 5.6).
  NodeRef FindLastInner(K key) const;

  /// Partial descent for the load-balancing scheme (Section 5.5): follows
  /// `depth` levels from the root (depth < height) and returns the inner
  /// node reached at level height - depth.
  template <typename Tracer = NullTracer>
  NodeRef DescendLevels(K key, int depth, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    HBTREE_DCHECK(depth < root_level_);
    NodeRef node = root_;
    for (int level = root_level_; level > root_level_ - depth; --level) {
      TraceNodeTouch(t, inner_pool_, level, NodeClass::kInner, node);
      const Hot& hot = inner_pool_.primary(node);
      int c = SearchNode(hot, key, t);
      t->OnAccess(hot.refs + (c / kIdx) * kIdx, kCacheLineSize);
      node = static_cast<NodeRef>(hot.refs[c]);
    }
    return node;
  }

  /// True if applying the update to the leaf under `last_inner` would
  /// require a split or merge (must then go through Insert/Erase on a
  /// single thread).
  bool WouldBeStructural(NodeRef last_inner, bool is_insert, K key) const;

  /// Applies a non-structural update directly to the leaf paired with
  /// `last_inner`. Caller must hold that node's lock and have verified
  /// !WouldBeStructural. Returns false if a duplicate insert / missing
  /// delete made it a no-op.
  bool ApplyNonStructural(NodeRef last_inner, bool is_insert,
                          const KeyValue<K>& pair,
                          std::vector<ModifiedNode>* modified = nullptr);

  // -- Geometry / introspection -------------------------------------------

  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  /// Number of inner levels (1 = the root is a last-level node).
  int height() const { return root_level_; }

  std::size_t i_segment_bytes() const {
    return inner_pool_.primary_bytes() + leaf_pool_.primary_bytes();
  }
  std::size_t l_segment_bytes() const { return leaf_pool_.secondary_bytes(); }

  const Config& config() const { return config_; }
  NodeRef root() const { return root_; }
  NodeRef head_leaf() const { return head_leaf_; }

  using InnerPool = PairedPool<Hot, Cold>;
  using LeafPool = PairedPool<Hot, Leaf>;
  const InnerPool& inner_pool() const { return inner_pool_; }
  const LeafPool& leaf_pool() const { return leaf_pool_; }
  /// Mutable pool access for the delta-sync driver (dirty-list handoff).
  InnerPool& inner_pool() { return inner_pool_; }
  LeafPool& leaf_pool() { return leaf_pool_; }
  const Hot& inner_hot(NodeRef ref) const { return inner_pool_.primary(ref); }
  const Hot& last_hot(NodeRef ref) const { return leaf_pool_.primary(ref); }
  const Leaf& big_leaf(NodeRef ref) const { return leaf_pool_.secondary(ref); }

  /// Structural self-check (test support); aborts on violation.
  void Validate() const;

 private:
  struct PathEntry {
    NodeRef ref;  // inner_pool node (level >= 2)
    int slot;     // child slot taken
  };

  // Intra-node search: index line then key line; returns child slot c.
  template <typename Tracer>
  int SearchNode(const Hot& hot, K key, Tracer* t) const {
    t->OnAccess(hot.indexes, kCacheLineSize);
    int s = SearchCacheLine(hot.indexes, key, config_.search_algo);
    HBTREE_DCHECK(s < kIdx);
    t->OnAccess(hot.keys + s * kIdx, kCacheLineSize);
    int j = SearchCacheLine(hot.keys + s * kIdx, key, config_.search_algo);
    HBTREE_DCHECK(j < kIdx);
    return s * kIdx + j;
  }

  // Descends to the last-level node, recording the path (slots taken in
  // inner_pool nodes, root first).
  NodeRef DescendWithPath(K key, std::vector<PathEntry>* path) const;

  static int LiveInLine(const KeyValue<K>* line);
  static int LastLiveLine(const Leaf& leaf);  // -1 if leaf empty

  /// Recomputes indexes[s] = keys[s*kIdx + kIdx - 1] for all s.
  static void RebuildIndexes(Hot& hot);

  /// Redistributes `pairs` (sorted) evenly over the leaf's lines and
  /// rewrites the paired node's separators: each line's separator is its
  /// content maximum, except the last live line whose separator is set to
  /// `last_sep`. Callers must pass a `last_sep` no smaller than the
  /// node's upper bound in its parent (kMax on the rightmost spine), so
  /// intra-node search can never run past the live lines even after
  /// deletions have shrunk the content maximum.
  void FillLeaf(NodeRef ref, const KeyValue<K>* pairs, int count, K last_sep);


  /// Inserts child (sep, ref) at `slot` of inner node `node`, shifting
  /// existing entries right. Caller guarantees space.
  void InsertChildAt(NodeRef node, int slot, K sep, NodeRef child);
  /// Removes the child at `slot`.
  void RemoveChildAt(NodeRef node, int slot);

  /// Splits the leaf-pool node `ref` (full big leaf), inserting `extra`
  /// in the process; then propagates a new child into the parents on
  /// `path`. Appends modified nodes.
  void SplitLeafAndInsert(NodeRef ref, const KeyValue<K>& extra,
                          std::vector<PathEntry>& path,
                          std::vector<ModifiedNode>* modified);

  /// Inserts (sep, child) into the parent of path entry `depth` (the
  /// node at path[depth]), splitting upward as needed. `after_slot` is
  /// the slot whose separator becomes `left_sep`.
  void InsertIntoParent(std::vector<PathEntry>& path, int depth, K left_sep,
                        NodeRef new_child,
                        std::vector<ModifiedNode>* modified);

  /// After an erase that underflowed the leaf at `ref`, merges it with a
  /// sibling when possible. `path` is the descent path.
  void MaybeMergeLeaf(NodeRef ref, std::vector<PathEntry>& path,
                      std::vector<ModifiedNode>* modified);

  /// After removing a child from inner node path[depth], merges that node
  /// with a sibling when it underflowed.
  void MaybeMergeInner(std::vector<PathEntry>& path, int depth,
                       std::vector<ModifiedNode>* modified);

  /// Sets parent pointers of `node`'s children in [first, last) to `node`.
  void AdoptChildren(NodeRef node, int first, int last);

  /// Every hot-fragment change funnels through here: the owning pool's
  /// dirty mark is what makes the delta I-segment sync sound, so it is
  /// unconditional — `modified` (the caller's per-batch list) is optional.
  void RecordModified(std::vector<ModifiedNode>* modified, bool last_level,
                      NodeRef ref) {
    if (last_level) {
      leaf_pool_.MarkDirty(ref);
    } else {
      inner_pool_.MarkDirty(ref);
    }
    if (modified != nullptr) modified->push_back({last_level, ref});
  }

  /// BS-tree style local insert: makes room for `pair` (destined for the
  /// full line `line` at intra-line position implied by key order) by
  /// re-flowing pairs between `line` and the nearest line with a gap.
  /// Returns false when no gap lies within the configured window.
  bool SpillIntoGap(NodeRef last_inner, int line, const KeyValue<K>& pair);

  template <typename Tracer>
  static Tracer* ResolveTracer(Tracer* tracer, NullTracer* fallback) {
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      return tracer != nullptr ? tracer : fallback;
    } else {
      HBTREE_DCHECK(tracer != nullptr);
      return tracer;
    }
  }

  void ValidateSubtree(NodeRef node, int level, K upper_bound,
                       std::size_t* pair_total) const;

  Config config_;
  InnerPool inner_pool_;
  LeafPool leaf_pool_;

  NodeRef root_ = kNullRef;
  int root_level_ = 0;
  NodeRef head_leaf_ = kNullRef;
  /// Pair count. Atomic (relaxed) so the parallel batch updater's
  /// non-structural path can run concurrently under per-node locks.
  std::atomic<std::size_t> size_{0};
};

// ---------------------------------------------------------------------------
// Lookup.
// ---------------------------------------------------------------------------

template <typename K>
template <typename Tracer>
typename RegularBTree<K>::LeafPosition RegularBTree<K>::FindLeafPosition(
    K key, Tracer* tracer) const {
  NullTracer null_tracer;
  auto* t = ResolveTracer(tracer, &null_tracer);
  NodeRef node = root_;
  int level = root_level_;
  while (level > 1) {
    TraceNodeTouch(t, inner_pool_, level, NodeClass::kInner, node);
    const Hot& hot = inner_pool_.primary(node);
    int c = SearchNode(hot, key, t);
    t->OnAccess(hot.refs + (c / kIdx) * kIdx, kCacheLineSize);
    node = static_cast<NodeRef>(hot.refs[c]);
    --level;
  }
  TraceNodeTouch(t, leaf_pool_, 1, NodeClass::kLastInner, node);
  const Hot& hot = leaf_pool_.primary(node);
  int c = SearchNode(hot, key, t);
  return LeafPosition{node, c};
}

template <typename K>
template <typename Tracer>
LookupResult<K> RegularBTree<K>::SearchLeafLine(LeafPosition pos, K key,
                                                Tracer* tracer) const {
  NullTracer null_tracer;
  auto* t = ResolveTracer(tracer, &null_tracer);
  TraceNodeTouch(t, leaf_pool_, 0, NodeClass::kBigLeaf, pos.last_inner);
  const Leaf& leaf = leaf_pool_.secondary(pos.last_inner);
  const KeyValue<K>* line = leaf.pairs + pos.line * kPairsPerLine;
  t->OnAccess(line, kCacheLineSize);
  for (int i = 0; i < kPairsPerLine; ++i) {
    if (line[i].key == key && key != kMax) {
      return LookupResult<K>{true, line[i].value};
    }
  }
  return LookupResult<K>{false, 0};
}

template <typename K>
template <typename Tracer>
LookupResult<K> RegularBTree<K>::Search(K key, Tracer* tracer) const {
  NullTracer null_tracer;
  auto* t = ResolveTracer(tracer, &null_tracer);
  t->OnQueryStart();
  LeafPosition pos = FindLeafPosition(key, t);
  LookupResult<K> result = SearchLeafLine(pos, key, t);
  t->OnQueryEnd();
  return result;
}

template <typename K>
template <typename Tracer>
int RegularBTree<K>::RangeScan(K first_key, int max_matches, KeyValue<K>* out,
                               Tracer* tracer) const {
  NullTracer null_tracer;
  auto* t = ResolveTracer(tracer, &null_tracer);
  t->OnQueryStart();
  LeafPosition pos = FindLeafPosition(first_key, t);
  int copied = ScanLeaves(pos, first_key, max_matches, out, t);
  t->OnQueryEnd();
  return copied;
}

// ---------------------------------------------------------------------------
// Bulk build.
// ---------------------------------------------------------------------------

template <typename K>
void RegularBTree<K>::Build(const std::vector<KeyValue<K>>& sorted_pairs) {
  HBTREE_CHECK(!sorted_pairs.empty());
  inner_pool_.Clear();
  leaf_pool_.Clear();
  size_.store(sorted_pairs.size(), std::memory_order_relaxed);

  const int pairs_per_leaf = std::clamp(
      static_cast<int>(kLeafCap * config_.leaf_fill), 1, kLeafCap);
  const int children_per_inner = std::clamp(
      static_cast<int>(kFanout * config_.inner_fill), 2, kFanout);

  // -- Leaf level (paired last-level inner nodes) ---------------------------
  struct Entry {
    K sep;        // subtree separator for the parent
    NodeRef ref;  // node reference (leaf_pool at level 1, else inner_pool)
  };
  std::vector<Entry> level_entries;
  NodeRef prev_leaf = kNullRef;
  for (std::size_t begin = 0; begin < size_; begin += pairs_per_leaf) {
    const int count = static_cast<int>(
        std::min<std::size_t>(pairs_per_leaf, size_ - begin));
    NodeRef ref = static_cast<NodeRef>(leaf_pool_.Allocate());
    const bool rightmost = begin + count >= size_;
    const K bound = rightmost ? kMax : sorted_pairs[begin + count - 1].key;
    Leaf& leaf = leaf_pool_.secondary(ref);
    leaf.info.upper_bound = bound;
    FillLeaf(ref, sorted_pairs.data() + begin, count, bound);
    leaf.info.prev = prev_leaf;
    leaf.info.next = kNullRef;
    leaf.info.parent = kNullRef;
    if (prev_leaf != kNullRef) {
      leaf_pool_.secondary(prev_leaf).info.next = ref;
    } else {
      head_leaf_ = ref;
    }
    prev_leaf = ref;
    level_entries.push_back(
        Entry{rightmost ? kMax : sorted_pairs[begin + count - 1].key, ref});
  }

  // -- Inner levels ---------------------------------------------------------
  int level = 1;
  while (level_entries.size() > 1 || level == 1) {
    ++level;
    std::vector<Entry> next_entries;
    NodeRef prev_node = kNullRef;
    for (std::size_t begin = 0; begin < level_entries.size();
         begin += children_per_inner) {
      const int count = static_cast<int>(std::min<std::size_t>(
          children_per_inner, level_entries.size() - begin));
      NodeRef ref = static_cast<NodeRef>(inner_pool_.Allocate());
      Hot& hot = inner_pool_.primary(ref);
      for (int c = 0; c < kFanout; ++c) {
        hot.keys[c] = c < count ? level_entries[begin + c].sep : kMax;
        hot.refs[c] =
            c < count ? static_cast<K>(level_entries[begin + c].ref) : 0;
      }
      RebuildIndexes(hot);
      Cold& cold = inner_pool_.secondary(ref);
      cold.child_count = static_cast<std::uint16_t>(count);
      cold.level = static_cast<std::uint8_t>(level);
      cold.parent = kNullRef;
      cold.left_sibling = prev_node;
      cold.right_sibling = kNullRef;
      if (prev_node != kNullRef) {
        inner_pool_.secondary(prev_node).right_sibling = ref;
      }
      prev_node = ref;
      AdoptChildren(ref, 0, count);
      next_entries.push_back(Entry{hot.keys[count - 1], ref});
    }
    level_entries = std::move(next_entries);
    if (level_entries.size() == 1) break;
  }

  // The level loop always runs at least once, so the freshly built root is
  // an inner node (it may later collapse to a last-level root via merges).
  root_ = level_entries[0].ref;
  root_level_ = level;
}

// ---------------------------------------------------------------------------
// Leaf helpers.
// ---------------------------------------------------------------------------

template <typename K>
int RegularBTree<K>::LiveInLine(const KeyValue<K>* line) {
  int live = 0;
  while (live < kPairsPerLine && line[live].key != kMax) ++live;
  return live;
}

template <typename K>
int RegularBTree<K>::LastLiveLine(const Leaf& leaf) {
  for (int line = Shape::kLinesPerLeaf - 1; line >= 0; --line) {
    if (leaf.pairs[line * kPairsPerLine].key != kMax) return line;
  }
  return -1;
}

template <typename K>
void RegularBTree<K>::RebuildIndexes(Hot& hot) {
  for (int s = 0; s < kIdx; ++s) {
    hot.indexes[s] = hot.keys[s * kIdx + kIdx - 1];
  }
}

template <typename K>
void RegularBTree<K>::FillLeaf(NodeRef ref, const KeyValue<K>* pairs,
                               int count, K last_sep) {
  HBTREE_CHECK(count >= 0 && count <= kLeafCap);
  HBTREE_DCHECK(count == 0 || last_sep >= pairs[count - 1].key);
  Hot& hot = leaf_pool_.primary(ref);
  Leaf& leaf = leaf_pool_.secondary(ref);
  // Spread pairs evenly over the lines, front-heavy, no middle gaps.
  const int lines = Shape::kLinesPerLeaf;
  const int base = count / lines;
  const int extra = count % lines;
  int taken = 0;
  int last_live = -1;
  for (int line = 0; line < lines; ++line) {
    const int here = base + (line < extra ? 1 : 0);
    KeyValue<K>* lp = leaf.pairs + line * kPairsPerLine;
    for (int i = 0; i < kPairsPerLine; ++i) {
      lp[i] = i < here ? pairs[taken + i] : KeyValue<K>{kMax, kMax};
    }
    hot.keys[line] = here > 0 ? pairs[taken + here - 1].key : kMax;
    if (here > 0) last_live = line;
    taken += here;
  }
  if (last_live >= 0) hot.keys[last_live] = last_sep;
  RebuildIndexes(hot);
  leaf.info.pair_count = static_cast<std::uint32_t>(count);
}

// ---------------------------------------------------------------------------
// Updates.
// ---------------------------------------------------------------------------

template <typename K>
NodeRef RegularBTree<K>::DescendWithPath(K key,
                                         std::vector<PathEntry>* path) const {
  NodeRef node = root_;
  int level = root_level_;
  while (level > 1) {
    const Hot& hot = inner_pool_.primary(node);
    NullTracer t;
    int c = SearchNode(hot, key, &t);
    if (path != nullptr) path->push_back(PathEntry{node, c});
    node = static_cast<NodeRef>(hot.refs[c]);
    --level;
  }
  return node;
}

template <typename K>
NodeRef RegularBTree<K>::FindLastInner(K key) const {
  return DescendWithPath(key, nullptr);
}

template <typename K>
bool RegularBTree<K>::WouldBeStructural(NodeRef last_inner, bool is_insert,
                                        K key) const {
  const Leaf& leaf = leaf_pool_.secondary(last_inner);
  if (is_insert) {
    // Splits when the big leaf is full. A full destination line alone is
    // non-structural: redistribution within the big leaf handles it.
    return leaf.info.pair_count >= static_cast<std::uint32_t>(kLeafCap);
  }
  (void)key;
  // Deletes trigger a merge attempt below a quarter occupancy, unless
  // this leaf is the root's only leaf (nothing to merge with).
  if (root_level_ == 1) return false;
  return leaf.info.pair_count <=
         static_cast<std::uint32_t>(kLeafCap / 4);
}

template <typename K>
bool RegularBTree<K>::ApplyNonStructural(NodeRef last_inner, bool is_insert,
                                         const KeyValue<K>& pair,
                                         std::vector<ModifiedNode>* modified) {
  Hot& hot = leaf_pool_.primary(last_inner);
  Leaf& leaf = leaf_pool_.secondary(last_inner);
  NullTracer t;
  const int line = SearchNode(hot, pair.key, &t);
  KeyValue<K>* lp = leaf.pairs + line * kPairsPerLine;
  int live = LiveInLine(lp);
  // Locate the key's position within the line.
  int pos = 0;
  while (pos < live && lp[pos].key < pair.key) ++pos;
  const bool present = pos < live && lp[pos].key == pair.key;

  if (is_insert) {
    if (present) return false;  // duplicate
    if (live < kPairsPerLine) {
      std::memmove(lp + pos + 1, lp + pos, (live - pos) * sizeof(KeyValue<K>));
      lp[pos] = pair;
      ++leaf.info.pair_count;
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Line full. While the leaf still has slack, shift pairs toward the
    // nearest gapped line (a local patch of O(window) lines); once
    // occupancy crosses the threshold, or no gap is near, fall back to
    // redistributing the whole big leaf, which re-spreads the slack.
    HBTREE_CHECK(leaf.info.pair_count <
                 static_cast<std::uint32_t>(kLeafCap));
    const bool crowded =
        static_cast<double>(leaf.info.pair_count) >=
        config_.gap_spill_occupancy * kLeafCap;
    if (crowded || !SpillIntoGap(last_inner, line, pair)) {
      std::vector<KeyValue<K>> all;
      all.reserve(leaf.info.pair_count + 1);
      for (int l = 0; l < Shape::kLinesPerLeaf; ++l) {
        const KeyValue<K>* src = leaf.pairs + l * kPairsPerLine;
        for (int i = 0; i < kPairsPerLine && src[i].key != kMax; ++i) {
          all.push_back(src[i]);
        }
      }
      auto it = std::lower_bound(
          all.begin(), all.end(), pair.key,
          [](const KeyValue<K>& kv, K k) { return kv.key < k; });
      all.insert(it, pair);
      // The node's external bound covers everything it can ever receive
      // and becomes the new last-live separator.
      FillLeaf(last_inner, all.data(), static_cast<int>(all.size()),
               leaf.info.upper_bound);
    }
    // Either path leaves pair_count including the new pair (FillLeaf
    // counts it; SpillIntoGap increments) and rewrites separators, so the
    // hot fragment must re-sync.
    RecordModified(modified, /*last_level=*/true, last_inner);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Delete.
  if (!present) return false;
  std::memmove(lp + pos, lp + pos + 1, (live - pos - 1) * sizeof(KeyValue<K>));
  lp[live - 1] = KeyValue<K>{kMax, kMax};
  --leaf.info.pair_count;
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

template <typename K>
bool RegularBTree<K>::SpillIntoGap(NodeRef last_inner, int line,
                                   const KeyValue<K>& pair) {
  Hot& hot = leaf_pool_.primary(last_inner);
  Leaf& leaf = leaf_pool_.secondary(last_inner);
  // Nearest line with a free slot, preferring the closer side. Lines
  // strictly between `line` and the chosen gap are therefore full.
  const int window = std::max(1, config_.gap_spill_window);
  int gap = -1;
  for (int d = 1; d <= window && gap < 0; ++d) {
    const int right = line + d;
    const int left = line - d;
    if (right < Shape::kLinesPerLeaf &&
        LiveInLine(leaf.pairs + right * kPairsPerLine) < kPairsPerLine) {
      gap = right;
    } else if (left >= 0 && LiveInLine(leaf.pairs + left * kPairsPerLine) <
                                kPairsPerLine) {
      gap = left;
    }
  }
  if (gap < 0) return false;

  const int lo = std::min(line, gap);
  const int hi = std::max(line, gap);
  const int nlines = hi - lo + 1;

  // Separator discipline: the leaf's last live line carries the node's
  // external bound as its separator (the pin; kMax on the rightmost
  // spine). If the re-flowed range covers that line, the range's new last
  // line (hi) inherits the pin; otherwise keys[hi] is a mid-leaf bound
  // the content still respects and must stay put. Both cases reduce to
  // "restore keys[hi]" with the right value.
  const int old_last = LastLiveLine(leaf);
  HBTREE_DCHECK(old_last >= line);  // search never selects past the pin
  const K end_sep = old_last <= hi ? hot.keys[old_last] : hot.keys[hi];

  // Gather the range's pairs plus the new one (sorted by construction).
  KeyValue<K> buf[kLeafCap + 1];
  int count = 0;
  bool placed = false;
  for (int l = lo; l <= hi; ++l) {
    const KeyValue<K>* lp = leaf.pairs + l * kPairsPerLine;
    for (int i = 0; i < kPairsPerLine && lp[i].key != kMax; ++i) {
      if (!placed && pair.key < lp[i].key) {
        buf[count++] = pair;
        placed = true;
      }
      buf[count++] = lp[i];
    }
  }
  if (!placed) buf[count++] = pair;

  // Spread evenly (front-heavy) back over [lo, hi]: the interior lines
  // were full and only one gap line joined, so every line receives at
  // least two pairs — no empty line appears mid-leaf.
  const int base = count / nlines;
  const int extra = count % nlines;
  int taken = 0;
  for (int l = lo; l <= hi; ++l) {
    const int here = base + (l - lo < extra ? 1 : 0);
    KeyValue<K>* lp = leaf.pairs + l * kPairsPerLine;
    for (int i = 0; i < kPairsPerLine; ++i) {
      lp[i] = i < here ? buf[taken + i] : KeyValue<K>{kMax, kMax};
    }
    hot.keys[l] = buf[taken + here - 1].key;
    taken += here;
  }
  hot.keys[hi] = end_sep;
  RebuildIndexes(hot);
  ++leaf.info.pair_count;
  return true;
}

template <typename K>
bool RegularBTree<K>::Insert(const KeyValue<K>& pair,
                             std::vector<ModifiedNode>* modified) {
  HBTREE_CHECK(pair.key != kMax);
  std::vector<PathEntry> path;
  NodeRef ln = DescendWithPath(pair.key, &path);
  if (!WouldBeStructural(ln, /*is_insert=*/true, pair.key)) {
    return ApplyNonStructural(ln, /*is_insert=*/true, pair, modified);
  }
  // The big leaf is full — but the key may still be a duplicate.
  {
    Hot& hot = leaf_pool_.primary(ln);
    NullTracer t;
    const int line = SearchNode(hot, pair.key, &t);
    const KeyValue<K>* lp =
        leaf_pool_.secondary(ln).pairs + line * kPairsPerLine;
    for (int i = 0; i < kPairsPerLine; ++i) {
      if (lp[i].key == pair.key) return false;
    }
  }
  SplitLeafAndInsert(ln, pair, path, modified);
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

template <typename K>
void RegularBTree<K>::SplitLeafAndInsert(NodeRef ref, const KeyValue<K>& extra,
                                         std::vector<PathEntry>& path,
                                         std::vector<ModifiedNode>* modified) {
  Leaf& leaf = leaf_pool_.secondary(ref);
  // Gather all pairs plus the new one.
  std::vector<KeyValue<K>> all;
  all.reserve(leaf.info.pair_count + 1);
  for (int l = 0; l < Shape::kLinesPerLeaf; ++l) {
    const KeyValue<K>* src = leaf.pairs + l * kPairsPerLine;
    for (int i = 0; i < kPairsPerLine && src[i].key != kMax; ++i) {
      all.push_back(src[i]);
    }
  }
  auto it = std::lower_bound(
      all.begin(), all.end(), extra.key,
      [](const KeyValue<K>& kv, K k) { return kv.key < k; });
  all.insert(it, extra);

  const K old_bound = leaf.info.upper_bound;

  const int left_count = static_cast<int>(all.size()) / 2;
  const int right_count = static_cast<int>(all.size()) - left_count;

  NodeRef right = static_cast<NodeRef>(leaf_pool_.Allocate());
  // Left's bound shrinks to its new content max; right inherits the old
  // node's bound (kMax on the rightmost spine).
  const K left_sep = all[left_count - 1].key;
  FillLeaf(ref, all.data(), left_count, left_sep);
  FillLeaf(right, all.data() + left_count, right_count, old_bound);
  leaf_pool_.secondary(ref).info.upper_bound = left_sep;
  leaf_pool_.secondary(right).info.upper_bound = old_bound;
  RecordModified(modified, true, ref);
  RecordModified(modified, true, right);

  // Chain the new leaf.
  Leaf& new_leaf = leaf_pool_.secondary(right);
  Leaf& old_leaf = leaf_pool_.secondary(ref);
  new_leaf.info.next = old_leaf.info.next;
  new_leaf.info.prev = ref;
  new_leaf.info.parent = old_leaf.info.parent;
  if (old_leaf.info.next != kNullRef) {
    leaf_pool_.secondary(old_leaf.info.next).info.prev = right;
  }
  old_leaf.info.next = right;

  if (path.empty()) {
    // The split node was the root (root_level_ == 1): grow a new root.
    NodeRef new_root = static_cast<NodeRef>(inner_pool_.Allocate());
    Hot& rhot = inner_pool_.primary(new_root);
    for (int c = 0; c < kFanout; ++c) {
      rhot.keys[c] = kMax;
      rhot.refs[c] = 0;
    }
    rhot.keys[0] = left_sep;
    rhot.refs[0] = static_cast<K>(ref);
    rhot.keys[1] = kMax;  // rightmost spine
    rhot.refs[1] = static_cast<K>(right);
    RebuildIndexes(rhot);
    Cold& cold = inner_pool_.secondary(new_root);
    cold.child_count = 2;
    cold.level = 2;
    cold.parent = kNullRef;
    cold.left_sibling = kNullRef;
    cold.right_sibling = kNullRef;
    old_leaf.info.parent = new_root;
    new_leaf.info.parent = new_root;
    root_ = new_root;
    root_level_ = 2;
    RecordModified(modified, false, new_root);
    return;
  }
  InsertIntoParent(path, static_cast<int>(path.size()) - 1, left_sep, right,
                   modified);
}

template <typename K>
void RegularBTree<K>::InsertChildAt(NodeRef node, int slot, K sep,
                                    NodeRef child) {
  Hot& hot = inner_pool_.primary(node);
  Cold& cold = inner_pool_.secondary(node);
  HBTREE_DCHECK(cold.child_count < kFanout);
  const int count = cold.child_count;
  std::memmove(hot.keys + slot + 1, hot.keys + slot,
               (count - slot) * sizeof(K));
  std::memmove(hot.refs + slot + 1, hot.refs + slot,
               (count - slot) * sizeof(K));
  hot.keys[slot] = sep;
  hot.refs[slot] = static_cast<K>(child);
  ++cold.child_count;
  RebuildIndexes(hot);
}

template <typename K>
void RegularBTree<K>::RemoveChildAt(NodeRef node, int slot) {
  Hot& hot = inner_pool_.primary(node);
  Cold& cold = inner_pool_.secondary(node);
  const int count = cold.child_count;
  std::memmove(hot.keys + slot, hot.keys + slot + 1,
               (count - slot - 1) * sizeof(K));
  std::memmove(hot.refs + slot, hot.refs + slot + 1,
               (count - slot - 1) * sizeof(K));
  hot.keys[count - 1] = kMax;
  hot.refs[count - 1] = 0;
  --cold.child_count;
  RebuildIndexes(hot);
}

template <typename K>
void RegularBTree<K>::AdoptChildren(NodeRef node, int first, int last) {
  const Hot& hot = inner_pool_.primary(node);
  const Cold& cold = inner_pool_.secondary(node);
  for (int c = first; c < last; ++c) {
    NodeRef child = static_cast<NodeRef>(hot.refs[c]);
    if (cold.level == 2) {
      leaf_pool_.secondary(child).info.parent = node;
    } else {
      inner_pool_.secondary(child).parent = node;
    }
  }
}

template <typename K>
void RegularBTree<K>::InsertIntoParent(std::vector<PathEntry>& path,
                                       int depth, K left_sep,
                                       NodeRef new_child,
                                       std::vector<ModifiedNode>* modified) {
  PathEntry entry = path[depth];
  NodeRef node = entry.ref;
  Hot& hot = inner_pool_.primary(node);
  Cold& cold = inner_pool_.secondary(node);

  // The split child keeps its slot but its separator shrinks to left_sep;
  // the new right child inherits the old separator and goes one slot after.
  if (cold.child_count < kFanout) {
    K old_sep = hot.keys[entry.slot];
    hot.keys[entry.slot] = left_sep;
    InsertChildAt(node, entry.slot + 1, old_sep, new_child);
    AdoptChildren(node, entry.slot + 1, entry.slot + 2);
    RecordModified(modified, false, node);
    return;
  }

  // Full: split this inner node around the midpoint, then retry.
  const int half = kFanout / 2;
  NodeRef right = static_cast<NodeRef>(inner_pool_.Allocate());
  Hot& rhot = inner_pool_.primary(right);
  Cold& rcold = inner_pool_.secondary(right);
  Hot& lhot = inner_pool_.primary(node);  // re-reference after Allocate
  Cold& lcold = inner_pool_.secondary(node);

  for (int c = 0; c < kFanout; ++c) {
    rhot.keys[c] = c < kFanout - half ? lhot.keys[half + c] : kMax;
    rhot.refs[c] = c < kFanout - half ? lhot.refs[half + c] : 0;
  }
  for (int c = half; c < kFanout; ++c) {
    lhot.keys[c] = kMax;
    lhot.refs[c] = 0;
  }
  lcold.child_count = static_cast<std::uint16_t>(half);
  rcold.child_count = static_cast<std::uint16_t>(kFanout - half);
  rcold.level = lcold.level;
  rcold.parent = lcold.parent;
  rcold.left_sibling = node;
  rcold.right_sibling = lcold.right_sibling;
  if (lcold.right_sibling != kNullRef) {
    inner_pool_.secondary(lcold.right_sibling).left_sibling = right;
  }
  lcold.right_sibling = right;
  RebuildIndexes(lhot);
  RebuildIndexes(rhot);
  AdoptChildren(right, 0, rcold.child_count);
  RecordModified(modified, false, node);
  RecordModified(modified, false, right);

  const K node_left_sep = lhot.keys[half - 1];

  // Re-route the pending insertion into the correct half.
  if (entry.slot >= half) {
    path[depth] = PathEntry{right, entry.slot - half};
  }
  // Insert the split of this level into the grandparent first, so the
  // parent structure is consistent before we add the pending child.
  if (depth == 0) {
    // `node` was the root: grow a new root.
    NodeRef new_root = static_cast<NodeRef>(inner_pool_.Allocate());
    Hot& nrhot = inner_pool_.primary(new_root);
    for (int c = 0; c < kFanout; ++c) {
      nrhot.keys[c] = kMax;
      nrhot.refs[c] = 0;
    }
    nrhot.keys[0] = node_left_sep;
    nrhot.refs[0] = static_cast<K>(node);
    nrhot.keys[1] = kMax;  // rightmost spine
    nrhot.refs[1] = static_cast<K>(right);
    RebuildIndexes(nrhot);
    Cold& nrcold = inner_pool_.secondary(new_root);
    nrcold.child_count = 2;
    nrcold.level = static_cast<std::uint8_t>(lcold.level + 1);
    nrcold.parent = kNullRef;
    nrcold.left_sibling = kNullRef;
    nrcold.right_sibling = kNullRef;
    inner_pool_.secondary(node).parent = new_root;
    inner_pool_.secondary(right).parent = new_root;
    root_ = new_root;
    root_level_ = nrcold.level;
    RecordModified(modified, false, new_root);
  } else {
    InsertIntoParent(path, depth - 1, node_left_sep, right, modified);
    // The grandparent insertion may have re-routed path[depth-1], but
    // path[depth] already points at the correct (possibly new) node.
  }
  // Finally place the pending child.
  InsertIntoParent(path, depth, left_sep, new_child, modified);
}

template <typename K>
bool RegularBTree<K>::Erase(K key, std::vector<ModifiedNode>* modified) {
  std::vector<PathEntry> path;
  NodeRef ln = DescendWithPath(key, &path);
  const bool structural = WouldBeStructural(ln, /*is_insert=*/false, key);
  if (!ApplyNonStructural(ln, /*is_insert=*/false, KeyValue<K>{key, 0},
                          modified)) {
    return false;
  }
  if (structural) MaybeMergeLeaf(ln, path, modified);
  return true;
}

template <typename K>
void RegularBTree<K>::MaybeMergeLeaf(NodeRef ref,
                                     std::vector<PathEntry>& path,
                                     std::vector<ModifiedNode>* modified) {
  if (path.empty()) return;  // root leaf: nothing to merge with
  Leaf& leaf = leaf_pool_.secondary(ref);
  if (leaf.info.pair_count > static_cast<std::uint32_t>(kLeafCap / 4)) {
    return;
  }
  PathEntry parent_entry = path.back();
  NodeRef parent = parent_entry.ref;
  Cold& pcold = inner_pool_.secondary(parent);
  // Pick an adjacent sibling under the same parent (prefer right).
  int slot = parent_entry.slot;
  int left_slot, right_slot;
  if (slot + 1 < pcold.child_count) {
    left_slot = slot;
    right_slot = slot + 1;
  } else if (slot > 0) {
    left_slot = slot - 1;
    right_slot = slot;
  } else {
    return;  // only child — leave it
  }
  Hot& phot = inner_pool_.primary(parent);
  NodeRef left = static_cast<NodeRef>(phot.refs[left_slot]);
  NodeRef right = static_cast<NodeRef>(phot.refs[right_slot]);
  Leaf& lleaf = leaf_pool_.secondary(left);
  Leaf& rleaf = leaf_pool_.secondary(right);
  if (lleaf.info.pair_count + rleaf.info.pair_count >
      static_cast<std::uint32_t>(kLeafCap * 3 / 4)) {
    return;  // merged node would be too full; merge-only policy skips
  }

  // Move everything into `left`.
  std::vector<KeyValue<K>> all;
  all.reserve(lleaf.info.pair_count + rleaf.info.pair_count);
  for (NodeRef src : {left, right}) {
    const Leaf& s = leaf_pool_.secondary(src);
    for (int l = 0; l < Shape::kLinesPerLeaf; ++l) {
      const KeyValue<K>* lp = s.pairs + l * kPairsPerLine;
      for (int i = 0; i < kPairsPerLine && lp[i].key != kMax; ++i) {
        all.push_back(lp[i]);
      }
    }
  }
  const K merged_bound = rleaf.info.upper_bound;
  FillLeaf(left, all.data(), static_cast<int>(all.size()), merged_bound);
  lleaf.info.upper_bound = merged_bound;
  RecordModified(modified, true, left);

  // Left inherits right's separator; right's slot disappears.
  phot.keys[left_slot] = phot.keys[right_slot];
  RemoveChildAt(parent, right_slot);
  RecordModified(modified, false, parent);

  // Unchain and free the right leaf.
  if (rleaf.info.next != kNullRef) {
    leaf_pool_.secondary(rleaf.info.next).info.prev = left;
  }
  lleaf.info.next = rleaf.info.next;
  if (head_leaf_ == right) head_leaf_ = left;
  leaf_pool_.Free(right);

  MaybeMergeInner(path, static_cast<int>(path.size()) - 1, modified);
}

template <typename K>
void RegularBTree<K>::MaybeMergeInner(std::vector<PathEntry>& path, int depth,
                                      std::vector<ModifiedNode>* modified) {
  NodeRef node = path[depth].ref;
  Cold& cold = inner_pool_.secondary(node);

  if (depth == 0) {
    // Root: collapse when a single child remains.
    if (cold.child_count == 1 && root_level_ > 1) {
      NodeRef child = static_cast<NodeRef>(inner_pool_.primary(node).refs[0]);
      if (cold.level == 2) {
        leaf_pool_.secondary(child).info.parent = kNullRef;
      } else {
        inner_pool_.secondary(child).parent = kNullRef;
      }
      inner_pool_.Free(node);
      root_ = child;
      --root_level_;
    }
    return;
  }
  if (cold.child_count > kFanout / 4) return;

  PathEntry parent_entry = path[depth - 1];
  NodeRef parent = parent_entry.ref;
  Hot& phot = inner_pool_.primary(parent);
  Cold& pcold = inner_pool_.secondary(parent);
  int slot = parent_entry.slot;
  int left_slot, right_slot;
  if (slot + 1 < pcold.child_count) {
    left_slot = slot;
    right_slot = slot + 1;
  } else if (slot > 0) {
    left_slot = slot - 1;
    right_slot = slot;
  } else {
    return;
  }
  NodeRef left = static_cast<NodeRef>(phot.refs[left_slot]);
  NodeRef right = static_cast<NodeRef>(phot.refs[right_slot]);
  Hot& lhot = inner_pool_.primary(left);
  Hot& rhot = inner_pool_.primary(right);
  Cold& lcold = inner_pool_.secondary(left);
  Cold& rcold = inner_pool_.secondary(right);
  if (lcold.child_count + rcold.child_count > kFanout * 3 / 4) return;

  // Append right's children to left.
  const int base = lcold.child_count;
  for (int c = 0; c < rcold.child_count; ++c) {
    lhot.keys[base + c] = rhot.keys[c];
    lhot.refs[base + c] = rhot.refs[c];
  }
  lcold.child_count =
      static_cast<std::uint16_t>(base + rcold.child_count);
  RebuildIndexes(lhot);
  AdoptChildren(left, base, lcold.child_count);
  RecordModified(modified, false, left);

  phot.keys[left_slot] = phot.keys[right_slot];
  RemoveChildAt(parent, right_slot);
  RecordModified(modified, false, parent);

  // Unchain and free right.
  if (rcold.right_sibling != kNullRef) {
    inner_pool_.secondary(rcold.right_sibling).left_sibling = left;
  }
  lcold.right_sibling = rcold.right_sibling;
  inner_pool_.Free(right);

  MaybeMergeInner(path, depth - 1, modified);
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

template <typename K>
void RegularBTree<K>::Validate() const {
  HBTREE_CHECK(root_ != kNullRef);
  std::size_t pair_total = 0;
  ValidateSubtree(root_, root_level_, kMax, &pair_total);
  HBTREE_CHECK_MSG(pair_total == size(), "size mismatch: %zu vs %zu",
                   pair_total, size());
  // Leaf chain must cover all pairs in sorted order.
  std::size_t chained = 0;
  K prev = 0;
  bool first = true;
  for (NodeRef leaf_ref = head_leaf_; leaf_ref != kNullRef;) {
    const Leaf& leaf = leaf_pool_.secondary(leaf_ref);
    std::uint32_t live = 0;
    for (int l = 0; l < Shape::kLinesPerLeaf; ++l) {
      const KeyValue<K>* lp = leaf.pairs + l * kPairsPerLine;
      for (int i = 0; i < kPairsPerLine && lp[i].key != kMax; ++i) {
        HBTREE_CHECK(first || lp[i].key > prev);
        prev = lp[i].key;
        first = false;
        ++live;
      }
    }
    HBTREE_CHECK(live == leaf.info.pair_count);
    chained += live;
    leaf_ref = leaf.info.next;
  }
  HBTREE_CHECK(chained == size_);
}

template <typename K>
void RegularBTree<K>::ValidateSubtree(NodeRef node, int level, K upper_bound,
                                      std::size_t* pair_total) const {
  if (level == 1) {
    const Hot& hot = leaf_pool_.primary(node);
    const Leaf& leaf = leaf_pool_.secondary(node);
    HBTREE_CHECK(leaf.info.upper_bound == upper_bound);
    for (int s = 0; s < kIdx; ++s) {
      HBTREE_CHECK(hot.indexes[s] == hot.keys[s * kIdx + kIdx - 1]);
    }
    for (int l = 0; l < Shape::kLinesPerLeaf; ++l) {
      if (l > 0) HBTREE_CHECK(hot.keys[l - 1] <= hot.keys[l]);
      const KeyValue<K>* lp = leaf.pairs + l * kPairsPerLine;
      for (int i = 0; i < kPairsPerLine && lp[i].key != kMax; ++i) {
        HBTREE_CHECK(lp[i].key <= hot.keys[l]);
        HBTREE_CHECK(l == 0 || lp[i].key > hot.keys[l - 1]);
        HBTREE_CHECK(lp[i].key <= upper_bound);
        ++*pair_total;
      }
    }
    return;
  }
  const Hot& hot = inner_pool_.primary(node);
  const Cold& cold = inner_pool_.secondary(node);
  HBTREE_CHECK(cold.level == level);
  HBTREE_CHECK(cold.child_count >= 1 &&
               cold.child_count <= kFanout);
  for (int s = 0; s < kIdx; ++s) {
    HBTREE_CHECK(hot.indexes[s] == hot.keys[s * kIdx + kIdx - 1]);
  }
  for (int c = 0; c < cold.child_count; ++c) {
    if (c > 0) HBTREE_CHECK(hot.keys[c - 1] <= hot.keys[c]);
    HBTREE_CHECK(hot.keys[c] <= upper_bound);
    NodeRef child = static_cast<NodeRef>(hot.refs[c]);
    if (level == 2) {
      HBTREE_CHECK(leaf_pool_.secondary(child).info.parent == node);
    } else {
      HBTREE_CHECK(inner_pool_.secondary(child).parent == node);
    }
    ValidateSubtree(child, level - 1, hot.keys[c], pair_total);
  }
  for (int c = cold.child_count; c < kFanout; ++c) {
    HBTREE_CHECK(hot.keys[c] == kMax);
  }
}

}  // namespace hbtree

#endif  // HBTREE_CPUBTREE_REGULAR_BTREE_H_
