#ifndef HBTREE_CPUBTREE_NODE_LAYOUT_H_
#define HBTREE_CPUBTREE_NODE_LAYOUT_H_

#include <cstdint>

#include "core/types.h"

namespace hbtree {

/// Node layouts of the CPU-optimized B+-tree (Section 4.1, Figure 2) and
/// of the HB+-tree, which reuses them (Section 5.2).
///
/// All layouts are expressed in whole cache lines. Key separators follow
/// the "max-key" scheme: the key stored for a child is the maximum key of
/// that child's subtree, and every empty slot holds the maximum
/// representable value, so intra-node search never needs the node size.

// ---------------------------------------------------------------------------
// Implicit tree (Figure 2 (a)/(b)).
// ---------------------------------------------------------------------------

/// One implicit inner node: a single cache line of keys. With 64-bit keys
/// the CPU-optimized tree uses all 8 keys as separators for 9 children
/// (fanout 9); the HB+-tree variant drops to fanout 8 with the last key
/// pinned to the maximum so the GPU kernel's 8-thread team maps one thread
/// per key (Section 5.2).
template <typename K>
struct alignas(kCacheLineSize) ImplicitInnerNode {
  K keys[KeyTraits<K>::kPerCacheLine];
};

/// One implicit leaf line: interleaved key-value pairs (Figure 2 (a)).
template <typename K>
struct alignas(kCacheLineSize) ImplicitLeafLine {
  KeyValue<K> pairs[KeyTraits<K>::kPairsPerCacheLine];
};

static_assert(sizeof(ImplicitInnerNode<Key64>) == kCacheLineSize);
static_assert(sizeof(ImplicitInnerNode<Key32>) == kCacheLineSize);
static_assert(sizeof(ImplicitLeafLine<Key64>) == kCacheLineSize);
static_assert(sizeof(ImplicitLeafLine<Key32>) == kCacheLineSize);

// ---------------------------------------------------------------------------
// Regular tree (Figure 2 (c)/(d)).
// ---------------------------------------------------------------------------

/// Compile-time shape of the regular tree's fat inner node.
template <typename K>
struct RegularShape {
  /// Indexes per index line == number of key lines == number of ref lines.
  static constexpr int kIdx = KeyTraits<K>::kPerCacheLine;  // 8 / 16
  /// Inner fanout F_I: 64 (64-bit) or 256 (32-bit), Section 4.1.
  static constexpr int kFanout = kIdx * kIdx;
  /// Pairs per leaf cache line: 4 / 8.
  static constexpr int kPairsPerLine = KeyTraits<K>::kPairsPerCacheLine;
  /// Lines per big leaf: one addressable line per last-level inner key.
  static constexpr int kLinesPerLeaf = kFanout;
  /// Big-leaf capacity: 256 pairs (64-bit), 2048 (32-bit).
  static constexpr int kLeafCapacity = kLinesPerLeaf * kPairsPerLine;
};

/// Hot fragment of a regular inner node (Figure 2 (c)): one index line
/// whose entry s is the maximum key of key line s, followed by the key
/// lines and the child-reference lines. Search touches exactly three of
/// its cache lines: the index line, one key line, one ref line.
///
/// 17 cache lines for 64-bit keys, 33 for 32-bit keys.
template <typename K>
struct alignas(kCacheLineSize) RegularInnerHot {
  using Shape = RegularShape<K>;

  K indexes[Shape::kIdx];
  K keys[Shape::kFanout];
  /// Child references: pool indices of the next level's nodes, stored in
  /// key-sized slots as in the paper's layout. Unused for the last inner
  /// level, whose "children" are the lines of the paired big leaf.
  K refs[Shape::kFanout];
};

static_assert(sizeof(RegularInnerHot<Key64>) == 17 * kCacheLineSize);
static_assert(sizeof(RegularInnerHot<Key32>) == 33 * kCacheLineSize);

/// Index used to reference pooled nodes.
using NodeRef = std::uint32_t;
inline constexpr NodeRef kNullRef = 0xffffffffu;

/// Cold fragment of a regular inner node (Section 4.1's node
/// fragmentation): bookkeeping that search never touches, allocated from a
/// separate array under the same pool index.
struct alignas(kCacheLineSize) RegularInnerCold {
  std::uint16_t child_count;
  std::uint8_t level;  // 1 = last inner level, counting up toward the root
  std::uint8_t unused_;
  NodeRef parent;
  NodeRef left_sibling;
  NodeRef right_sibling;
};

static_assert(sizeof(RegularInnerCold) == kCacheLineSize);

/// A big leaf (Figure 2 (d)): kLinesPerLeaf data lines of sorted pairs
/// plus one info line. Paired one-to-one with a last-level inner node
/// under a shared pool index; line c of the leaf is addressed directly
/// from the inner node's search result (key line s, slot j -> line
/// s*kIdx+j) with no pointer dereference.
template <typename K>
struct alignas(kCacheLineSize) RegularBigLeaf {
  using Shape = RegularShape<K>;

  KeyValue<K> pairs[Shape::kLeafCapacity];

  struct alignas(kCacheLineSize) Info {
    std::uint32_t pair_count;  // live pairs in this big leaf
    NodeRef parent;            // inner node one level above the last level
    NodeRef next;              // big-leaf chain for range scans
    NodeRef prev;
    /// This node's separator in its parent (kMax on the rightmost spine).
    /// Changed only by structural operations; every key routed here is
    /// <= upper_bound, so refills pin the last live line's separator to it.
    K upper_bound;
  } info;
};

static_assert(sizeof(RegularBigLeaf<Key64>) == 65 * kCacheLineSize);
static_assert(sizeof(RegularBigLeaf<Key32>) == 257 * kCacheLineSize);

}  // namespace hbtree

#endif  // HBTREE_CPUBTREE_NODE_LAYOUT_H_
