#ifndef HBTREE_CPUBTREE_PIPELINED_SEARCH_H_
#define HBTREE_CPUBTREE_PIPELINED_SEARCH_H_

#include <cstddef>
#include <cstdint>

#include "core/macros.h"
#include "core/simd.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree {

/// Software-pipelined batch lookup (Section 4.2, Appendix B.2,
/// Algorithm 2).
///
/// Each worker processes `depth` queries concurrently: after issuing the
/// node search for query i it prefetches query i's next node and moves on
/// to query i+1, so the memory stalls of up to `depth` traversals overlap.
/// The paper finds depth 16 optimal on its hardware (Figure 20).
///
/// These routines are the *functional* fast path (no tracing); the
/// analytic throughput model treats the pipeline depth as the latency
/// overlap factor (sim::CpuExecutionParams::pipeline_depth).

#if defined(__GNUC__) || defined(__clang__)
#define HBTREE_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define HBTREE_PREFETCH(addr) ((void)(addr))
#endif

/// Batched lookup on the implicit tree. `results[i]` receives the lookup
/// for `queries[i]`.
template <typename K>
void PipelinedSearch(const ImplicitBTree<K>& tree, const K* queries,
                     std::size_t count, int depth, LookupResult<K>* results) {
  HBTREE_CHECK(depth >= 1);
  const auto* nodes = tree.i_segment_nodes();
  const auto* leaves = tree.l_segment_lines();
  const int height = tree.height();
  const int fanout = tree.fanout();
  const NodeSearchAlgo algo = tree.config().search_algo;

  // A small fixed ceiling keeps the state in registers/L1; the paper also
  // observes no gain beyond 16-32 (Figure 20).
  constexpr int kMaxDepth = 64;
  HBTREE_CHECK(depth <= kMaxDepth);
  std::uint64_t node[kMaxDepth];

  for (std::size_t base = 0; base < count; base += depth) {
    const int group =
        static_cast<int>(count - base < static_cast<std::size_t>(depth)
                             ? count - base
                             : depth);
    for (int i = 0; i < group; ++i) {
      node[i] = 0;
      HBTREE_PREFETCH(&nodes[tree.level_offset(height)]);
    }
    for (int level = height; level >= 1; --level) {
      const std::uint64_t offset = tree.level_offset(level);
      const std::uint64_t next_offset =
          level > 1 ? tree.level_offset(level - 1) : 0;
      const std::uint64_t bound = tree.level_alloc(level - 1);
      for (int i = 0; i < group; ++i) {
        const auto& nd = nodes[offset + node[i]];
        const int j = SearchCacheLine(nd.keys, queries[base + i], algo);
        node[i] = node[i] * fanout + static_cast<std::uint64_t>(j);
        if (HBTREE_UNLIKELY(node[i] >= bound)) node[i] = bound - 1;
        if (level > 1) {
          HBTREE_PREFETCH(&nodes[next_offset + node[i]]);
        } else {
          HBTREE_PREFETCH(&leaves[node[i]]);
        }
      }
    }
    for (int i = 0; i < group; ++i) {
      results[base + i] =
          tree.SearchLeafLine(node[i], queries[base + i]);
    }
  }
}

/// Batched lookup on the regular tree. The three dependent accesses per
/// level (index line, key line, ref line) are each pipelined across the
/// group.
template <typename K>
void PipelinedSearch(const RegularBTree<K>& tree, const K* queries,
                     std::size_t count, int depth, LookupResult<K>* results) {
  HBTREE_CHECK(depth >= 1);
  constexpr int kMaxDepth = 64;
  HBTREE_CHECK(depth >= 1 && depth <= kMaxDepth);
  constexpr int kIdx = RegularBTree<K>::kIdx;
  const NodeSearchAlgo algo = tree.config().search_algo;

  NodeRef node[kMaxDepth];
  int slot[kMaxDepth];

  for (std::size_t base = 0; base < count; base += depth) {
    const int group =
        static_cast<int>(count - base < static_cast<std::size_t>(depth)
                             ? count - base
                             : depth);
    for (int i = 0; i < group; ++i) node[i] = tree.root();
    for (int level = tree.height(); level >= 1; --level) {
      const bool last = level == 1;
      // Step 1: index lines.
      for (int i = 0; i < group; ++i) {
        const auto& hot = last ? tree.last_hot(node[i])
                               : tree.inner_hot(node[i]);
        slot[i] = SearchCacheLine(hot.indexes, queries[base + i], algo);
        HBTREE_PREFETCH(hot.keys + slot[i] * kIdx);
      }
      // Step 2: key lines (then ref lines / leaf lines).
      for (int i = 0; i < group; ++i) {
        const auto& hot = last ? tree.last_hot(node[i])
                               : tree.inner_hot(node[i]);
        const int j = SearchCacheLine(hot.keys + slot[i] * kIdx,
                                      queries[base + i], algo);
        slot[i] = slot[i] * kIdx + j;
        if (!last) {
          HBTREE_PREFETCH(hot.refs + slot[i]);
        }
      }
      // Step 3: follow references (or address the leaf line directly).
      for (int i = 0; i < group; ++i) {
        if (!last) {
          const auto& hot = tree.inner_hot(node[i]);
          node[i] = static_cast<NodeRef>(hot.refs[slot[i]]);
        } else {
          HBTREE_PREFETCH(tree.big_leaf(node[i]).pairs +
                          slot[i] * RegularBTree<K>::kPairsPerLine);
        }
      }
    }
    for (int i = 0; i < group; ++i) {
      results[base + i] = tree.SearchLeafLine(
          typename RegularBTree<K>::LeafPosition{node[i], slot[i]},
          queries[base + i]);
    }
  }
}

#undef HBTREE_PREFETCH

}  // namespace hbtree

#endif  // HBTREE_CPUBTREE_PIPELINED_SEARCH_H_
