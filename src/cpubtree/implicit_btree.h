#ifndef HBTREE_CPUBTREE_IMPLICIT_BTREE_H_
#define HBTREE_CPUBTREE_IMPLICIT_BTREE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/simd.h"
#include "core/trace.h"
#include "core/types.h"
#include "cpubtree/node_layout.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// Implicit (pointer-free) B+-tree, Section 4.1 / Figure 2 (a)-(b).
///
/// Nodes are laid out breadth-first in two flat segments: the I-segment
/// (inner nodes, root first) and the L-segment (leaf lines). The j-th
/// child of the i-th node of a level sits at position `i * F + j` of the
/// next level, so no pointers are stored and an inner node is nothing but
/// one cache line of separator keys.
///
/// Two layouts are supported (`Config::hybrid_layout`):
///  * CPU-optimized: fanout = keys-per-line + 1 (9 for 64-bit keys) — the
///    highest fanout one cache line supports.
///  * HB+-tree: fanout = keys-per-line (8 for 64-bit keys) with the last
///    key pinned to the maximum representable value, so the GPU search
///    kernel can dedicate exactly one thread per key (Section 5.2).
///
/// Updates require a full rebuild (Section 5.6): call Build() again with
/// the updated sorted dataset.
template <typename K>
class ImplicitBTree {
 public:
  using Node = ImplicitInnerNode<K>;
  using LeafLine = ImplicitLeafLine<K>;
  static constexpr int kKeysPerNode = KeyTraits<K>::kPerCacheLine;
  static constexpr int kPairsPerLine = KeyTraits<K>::kPairsPerCacheLine;
  static constexpr K kMax = KeyTraits<K>::kMax;

  struct Config {
    /// false: CPU-optimized fanout (keys+1); true: HB+-tree fanout (keys).
    bool hybrid_layout = false;
    PageSize inner_page = PageSize::k1G;
    PageSize leaf_page = PageSize::k1G;
    NodeSearchAlgo search_algo = NodeSearchAlgo::kHierarchicalSimd;
  };

  ImplicitBTree(const Config& config, PageRegistry* registry)
      : config_(config),
        registry_(registry),
        fanout_(kKeysPerNode + (config.hybrid_layout ? 0 : 1)) {}

  /// (Re)builds the tree from key-sorted unique pairs. No key may equal
  /// the maximum representable value (reserved as the empty sentinel).
  void Build(const std::vector<KeyValue<K>>& sorted_pairs);

  /// Rebuilds only the I-segment from the current L-segment (used to time
  /// the rebuild phases of Figure 15 separately).
  void BuildISegment();

  /// Replaces the tree's contents with previously serialized segments
  /// (io/tree_io.h). Fails if the byte counts do not match the geometry
  /// implied by `pair_count` and this tree's layout configuration.
  Status Restore(std::uint64_t pair_count, const void* l_segment,
                 std::size_t l_bytes, const void* i_segment,
                 std::size_t i_bytes);

  // -- Lookup -------------------------------------------------------------

  /// Point lookup. `tracer` receives one OnAccess per touched cache line.
  template <typename Tracer = NullTracer>
  LookupResult<K> Search(K key, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    t->OnQueryStart();
    std::uint64_t line = FindLeafLine(key, t);
    LookupResult<K> result = SearchLeafLine(line, key, t);
    t->OnQueryEnd();
    return result;
  }

  /// Inner-node traversal only: returns the leaf line index holding the
  /// lower bound of `key`. This is the part the GPU executes in the
  /// HB+-tree; the CPU baseline uses it too so both share one code path.
  template <typename Tracer = NullTracer>
  std::uint64_t FindLeafLine(K key, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    std::uint64_t node = 0;
    for (int level = height_; level >= 1; --level) {
      const Node& nd =
          i_segment_.template as<Node>()[level_offset_[level] + node];
      t->OnAccess(&nd, sizeof(Node));
      int j = SearchCacheLine(nd.keys, key, config_.search_algo);
      node = node * fanout_ + static_cast<std::uint64_t>(j);
      // Queries above the global maximum walk into padding; clamp to the
      // materialized part of the next level (the landing node/line holds
      // only kMax sentinels, so the query still misses correctly).
      const std::uint64_t bound =
          level > 1 ? level_alloc_[level - 1] : leaf_alloc_lines_;
      if (HBTREE_UNLIKELY(node >= bound)) node = bound - 1;
    }
    return node;
  }

  /// Partial inner traversal for the load-balancing scheme (Section 5.5):
  /// descends `depth` levels starting from the root and returns the node
  /// index at level `height - depth` (0 = root position of that level).
  template <typename Tracer = NullTracer>
  std::uint64_t DescendLevels(K key, int depth,
                              Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    std::uint64_t node = 0;
    for (int level = height_; level > height_ - depth; --level) {
      const Node& nd =
          i_segment_.template as<Node>()[level_offset_[level] + node];
      t->OnAccess(&nd, sizeof(Node));
      int j = SearchCacheLine(nd.keys, key, config_.search_algo);
      node = node * fanout_ + static_cast<std::uint64_t>(j);
      const std::uint64_t bound =
          level > 1 ? level_alloc_[level - 1] : leaf_alloc_lines_;
      if (HBTREE_UNLIKELY(node >= bound)) node = bound - 1;
    }
    return node;
  }

  /// Leaf-line search: the final step of every lookup, always on the CPU
  /// in the HB+-tree (Section 5.4, step 4).
  template <typename Tracer = NullTracer>
  LookupResult<K> SearchLeafLine(std::uint64_t line, K key,
                                 Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    const LeafLine& leaf = l_segment_.template as<LeafLine>()[line];
    t->OnAccess(&leaf, sizeof(LeafLine));
    for (int i = 0; i < kPairsPerLine; ++i) {
      if (leaf.pairs[i].key == key && key != kMax) {
        return LookupResult<K>{true, leaf.pairs[i].value};
      }
    }
    return LookupResult<K>{false, 0};
  }

  /// Range scan: copies up to `max_matches` pairs with key >= `first_key`
  /// into `out`, returning the number copied. Leaf lines are scanned
  /// sequentially — the implicit layout's strength (Section 4.1).
  template <typename Tracer = NullTracer>
  int RangeScan(K first_key, int max_matches, KeyValue<K>* out,
                Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    t->OnQueryStart();
    std::uint64_t line = FindLeafLine(first_key, t);
    int copied = ScanLeaves(line, first_key, max_matches, out, t);
    t->OnQueryEnd();
    return copied;
  }

  /// Leaf-sequential part of a range scan, starting at `line` (the CPU's
  /// share of an HB+-tree range query; the GPU supplies the line).
  template <typename Tracer = NullTracer>
  int ScanLeaves(std::uint64_t line, K first_key, int max_matches,
                 KeyValue<K>* out, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    auto* t = ResolveTracer(tracer, &null_tracer);
    int copied = 0;
    const auto* leaves = l_segment_.template as<LeafLine>();
    while (copied < max_matches && line < leaf_alloc_lines_) {
      const LeafLine& leaf = leaves[line];
      t->OnAccess(&leaf, sizeof(LeafLine));
      for (int i = 0; i < kPairsPerLine && copied < max_matches; ++i) {
        if (leaf.pairs[i].key == kMax) return copied;  // padding: data end
        if (leaf.pairs[i].key >= first_key) out[copied++] = leaf.pairs[i];
      }
      ++line;
    }
    return copied;
  }

  // -- Geometry / introspection -------------------------------------------

  /// Number of inner levels (0 for trees that fit in one leaf line).
  int height() const { return height_; }
  int fanout() const { return fanout_; }
  std::size_t size() const { return size_; }
  std::uint64_t leaf_lines() const { return leaf_lines_; }

  std::size_t i_segment_bytes() const { return i_segment_.size(); }
  std::size_t l_segment_bytes() const { return l_segment_.size(); }

  const Node* i_segment_nodes() const { return i_segment_.template as<Node>(); }
  std::uint64_t i_segment_node_count() const { return inner_alloc_nodes_; }
  /// Node offset of inner level `level` (level height() = root ... 1 =
  /// last inner level) within the I-segment.
  std::uint64_t level_offset(int level) const { return level_offset_[level]; }
  /// Allocated node count of level `level` (level 0 = leaf lines). Child
  /// indices are clamped to this bound during descent: a query above the
  /// tree's maximum key walks into padding whose implicit children are
  /// not materialized.
  std::uint64_t level_alloc(int level) const {
    return level == 0 ? leaf_alloc_lines_ : level_alloc_[level];
  }
  const LeafLine* l_segment_lines() const {
    return l_segment_.template as<LeafLine>();
  }

  const Config& config() const { return config_; }

  /// Structural self-check (test support): verifies separator invariants
  /// and leaf ordering; aborts on violation.
  void Validate() const;

 private:
  template <typename Tracer>
  static Tracer* ResolveTracer(Tracer* tracer, NullTracer* fallback) {
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      return tracer != nullptr ? tracer : fallback;
    } else {
      HBTREE_DCHECK(tracer != nullptr);
      return tracer;
    }
  }

  /// Derives leaf/level geometry from size_ (shared by Build and Restore).
  void ComputeLayout();

  Config config_;
  PageRegistry* registry_;
  int fanout_;

  std::size_t size_ = 0;
  int height_ = 0;
  std::uint64_t leaf_lines_ = 0;        // lines holding real data
  std::uint64_t leaf_alloc_lines_ = 0;  // allocated lines (incl. padding)
  std::uint64_t inner_alloc_nodes_ = 0;
  /// level_offset_[l] = first node index of level l; offsets are stored
  /// root-first so higher levels come first in the segment.
  std::vector<std::uint64_t> level_offset_;
  /// Allocated node count per level.
  std::vector<std::uint64_t> level_alloc_;

  PagedBuffer i_segment_;
  PagedBuffer l_segment_;
};

// ---------------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------------

template <typename K>
void ImplicitBTree<K>::ComputeLayout() {
  leaf_lines_ = (size_ + kPairsPerLine - 1) / kPairsPerLine;

  // An empty tree keeps one all-sentinel leaf line and no inner nodes:
  // every lookup lands on the padding line and misses, range scans stop
  // at the sentinel, and serialization round-trips through the same
  // geometry.
  if (size_ == 0) {
    height_ = 0;
    leaf_alloc_lines_ = 1;
    level_alloc_.assign(1, 0);
    level_offset_.assign(1, 0);
    inner_alloc_nodes_ = 0;
    return;
  }

  // Determine the level sizes bottom-up: m[0] = leaf lines, m[i] nodes at
  // inner level i, up to a single root.
  std::vector<std::uint64_t> m = {leaf_lines_};
  while (m.back() > 1 || m.size() == 1) {
    std::uint64_t next = (m.back() + fanout_ - 1) / fanout_;
    m.push_back(next);
    if (next == 1) break;
  }
  height_ = static_cast<int>(m.size()) - 1;

  // Allocation per level: the parent level addresses children as
  // node*F+j, so each level is padded to parent_count * F entries.
  level_alloc_.assign(height_ + 1, 0);
  level_alloc_[height_] = 1;
  for (int level = height_; level >= 1; --level) {
    level_alloc_[level - 1] = m[level] * fanout_;
  }
  leaf_alloc_lines_ = height_ > 0 ? level_alloc_[0] : 1;

  // Root-first offsets in the I-segment.
  level_offset_.assign(height_ + 1, 0);
  std::uint64_t offset = 0;
  for (int level = height_; level >= 1; --level) {
    level_offset_[level] = offset;
    offset += level_alloc_[level];
  }
  inner_alloc_nodes_ = offset;
}

template <typename K>
Status ImplicitBTree<K>::Restore(std::uint64_t pair_count,
                                 const void* l_segment,
                                 std::size_t l_bytes, const void* i_segment,
                                 std::size_t i_bytes) {
  size_ = pair_count;
  ComputeLayout();
  if (l_bytes != leaf_alloc_lines_ * sizeof(LeafLine) ||
      i_bytes != inner_alloc_nodes_ * sizeof(Node)) {
    return Status::Error("segment sizes do not match the tree geometry");
  }
  l_segment_.Reset(l_bytes, config_.leaf_page, registry_);
  if (l_bytes != 0) std::memcpy(l_segment_.data(), l_segment, l_bytes);
  i_segment_.Reset(i_bytes, config_.inner_page, registry_);
  if (i_bytes != 0) std::memcpy(i_segment_.data(), i_segment, i_bytes);
  return Status::Ok();
}

template <typename K>
void ImplicitBTree<K>::Build(const std::vector<KeyValue<K>>& sorted_pairs) {
  size_ = sorted_pairs.size();
  ComputeLayout();

  // -- L-segment ----------------------------------------------------------
  l_segment_.Reset(leaf_alloc_lines_ * sizeof(LeafLine), config_.leaf_page,
                   registry_);
  auto* leaves = l_segment_.template as<LeafLine>();
  for (std::uint64_t line = 0; line < leaf_alloc_lines_; ++line) {
    for (int i = 0; i < kPairsPerLine; ++i) {
      std::size_t idx = line * kPairsPerLine + i;
      leaves[line].pairs[i] = idx < size_ ? sorted_pairs[idx]
                                          : KeyValue<K>{kMax, kMax};
      HBTREE_DCHECK(idx >= size_ || sorted_pairs[idx].key != kMax);
    }
  }

  BuildISegment();
}

template <typename K>
void ImplicitBTree<K>::BuildISegment() {
  i_segment_.Reset(inner_alloc_nodes_ * sizeof(Node), config_.inner_page,
                   registry_);
  if (height_ == 0) return;
  auto* nodes = i_segment_.template as<Node>();
  const auto* leaves = l_segment_.template as<LeafLine>();

  // subtree_max[j] = maximum key under child j of the level being built.
  std::vector<K> subtree_max(leaf_alloc_lines_);
  for (std::uint64_t line = 0; line < leaf_alloc_lines_; ++line) {
    subtree_max[line] = leaves[line].pairs[kPairsPerLine - 1].key;
  }

  for (int level = 1; level <= height_; ++level) {
    const std::uint64_t count = level_alloc_[level];
    std::vector<K> next_max(count);
    for (std::uint64_t n = 0; n < count; ++n) {
      Node& nd = nodes[level_offset_[level] + n];
      for (int j = 0; j < kKeysPerNode; ++j) {
        std::uint64_t child = n * fanout_ + j;
        nd.keys[j] = child < subtree_max.size() ? subtree_max[child] : kMax;
      }
      if (config_.hybrid_layout) {
        // HB layout: the last key is pinned to the maximum so the GPU
        // team's last thread always sees a sentinel (Section 5.2).
        nd.keys[kKeysPerNode - 1] = kMax;
      }
      // The node's own subtree max is its last child's max. Padding
      // children report kMax, which is exactly the routing the parent
      // needs: queries beyond the real maximum fall into a padded subtree
      // and miss at the leaf.
      std::uint64_t last_child = n * fanout_ + fanout_ - 1;
      next_max[n] =
          last_child < subtree_max.size() ? subtree_max[last_child] : kMax;
    }
    subtree_max = std::move(next_max);
  }
}

template <typename K>
void ImplicitBTree<K>::Validate() const {
  const auto* leaves = l_segment_.template as<LeafLine>();
  // Leaf pairs must be globally sorted with padding only at the tail.
  K prev = 0;
  bool in_padding = false;
  bool first = true;
  for (std::uint64_t line = 0; line < leaf_alloc_lines_; ++line) {
    for (int i = 0; i < kPairsPerLine; ++i) {
      K key = leaves[line].pairs[i].key;
      if (key == kMax) {
        in_padding = true;
        continue;
      }
      HBTREE_CHECK_MSG(!in_padding, "data after padding at line %llu",
                       static_cast<unsigned long long>(line));
      if (!first) HBTREE_CHECK(key > prev);
      prev = key;
      first = false;
    }
  }
  // Every key must be reachable through the separators.
  const auto* nodes = i_segment_.template as<Node>();
  for (int level = 1; level <= height_; ++level) {
    for (std::uint64_t n = 0; n < level_alloc_[level]; ++n) {
      const Node& nd = nodes[level_offset_[level] + n];
      for (int j = 1; j < kKeysPerNode; ++j) {
        HBTREE_CHECK(nd.keys[j - 1] <= nd.keys[j]);
      }
    }
  }
}

}  // namespace hbtree

#endif  // HBTREE_CPUBTREE_IMPLICIT_BTREE_H_
