#ifndef HBTREE_CPUBTREE_TREE_STATS_H_
#define HBTREE_CPUBTREE_TREE_STATS_H_

#include <cstdint>
#include <vector>

#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"

namespace hbtree {

/// Structural introspection — occupancy and memory accounting for
/// capacity planning (what share of device memory will the I-segment
/// take? how full are the big leaves after a batch?). Used by tests to
/// assert structural invariants and by operators via the examples.

struct ImplicitTreeStats {
  int height = 0;
  int fanout = 0;
  std::uint64_t pairs = 0;
  std::uint64_t leaf_lines_used = 0;
  std::uint64_t leaf_lines_allocated = 0;
  std::uint64_t inner_nodes_allocated = 0;
  std::uint64_t i_segment_bytes = 0;
  std::uint64_t l_segment_bytes = 0;
  /// Fraction of allocated leaf-line slots holding live pairs.
  double leaf_occupancy = 0;
  /// Allocation padding beyond the minimal breadth-first layout.
  double padding_overhead = 0;
  double bytes_per_pair = 0;
};

template <typename K>
ImplicitTreeStats CollectStats(const ImplicitBTree<K>& tree) {
  ImplicitTreeStats stats;
  stats.height = tree.height();
  stats.fanout = tree.fanout();
  stats.pairs = tree.size();
  stats.leaf_lines_used = tree.leaf_lines();
  stats.leaf_lines_allocated = tree.level_alloc(0);
  stats.inner_nodes_allocated = tree.i_segment_node_count();
  stats.i_segment_bytes = tree.i_segment_bytes();
  stats.l_segment_bytes = tree.l_segment_bytes();
  const double slots = static_cast<double>(stats.leaf_lines_allocated) *
                       KeyTraits<K>::kPairsPerCacheLine;
  stats.leaf_occupancy = slots > 0 ? stats.pairs / slots : 0;
  stats.padding_overhead =
      stats.leaf_lines_used > 0
          ? static_cast<double>(stats.leaf_lines_allocated) /
                    stats.leaf_lines_used -
                1.0
          : 0;
  stats.bytes_per_pair =
      stats.pairs > 0 ? static_cast<double>(stats.i_segment_bytes +
                                            stats.l_segment_bytes) /
                            stats.pairs
                      : 0;
  return stats;
}

struct RegularTreeStats {
  int height = 0;
  std::uint64_t pairs = 0;
  std::uint64_t inner_nodes = 0;       // levels >= 2
  std::uint64_t last_inner_nodes = 0;  // == big leaves
  std::vector<std::uint64_t> nodes_per_level;  // index = level (1 = last)
  /// Mean child slots in use across inner nodes (levels >= 2).
  double inner_occupancy = 0;
  /// Mean pair slots in use across big leaves.
  double leaf_occupancy = 0;
  std::uint64_t i_segment_bytes = 0;
  std::uint64_t l_segment_bytes = 0;
  std::uint64_t cold_bytes = 0;
  double bytes_per_pair = 0;
};

template <typename K>
RegularTreeStats CollectStats(const RegularBTree<K>& tree) {
  RegularTreeStats stats;
  stats.height = tree.height();
  stats.pairs = tree.size();
  stats.nodes_per_level.assign(tree.height() + 1, 0);

  // Walk the tree level by level via the leaf chain and parent structure:
  // a simple recursive walk is clearer and this is cold introspection
  // code.
  std::uint64_t child_slots_used = 0;
  std::uint64_t pair_slots_used = 0;
  struct Walker {
    const RegularBTree<K>& tree;
    RegularTreeStats& stats;
    std::uint64_t& child_slots_used;
    std::uint64_t& pair_slots_used;

    void Visit(NodeRef node, int level) {
      ++stats.nodes_per_level[level];
      if (level == 1) {
        ++stats.last_inner_nodes;
        pair_slots_used += tree.big_leaf(node).info.pair_count;
        return;
      }
      ++stats.inner_nodes;
      const auto& hot = tree.inner_hot(node);
      // The live child count lives in the cold fragment (keys cannot
      // distinguish a kMax separator on the rightmost spine from padding).
      const std::uint16_t count =
          tree.inner_pool().secondary(node).child_count;
      for (int c = 0; c < count; ++c) {
        Visit(static_cast<NodeRef>(hot.refs[c]), level - 1);
      }
      child_slots_used += count;
    }
  } walker{tree, stats, child_slots_used, pair_slots_used};
  walker.Visit(tree.root(), tree.height());

  stats.inner_occupancy =
      stats.inner_nodes > 0
          ? static_cast<double>(child_slots_used) /
                (stats.inner_nodes * RegularBTree<K>::kFanout)
          : 0;
  stats.leaf_occupancy =
      stats.last_inner_nodes > 0
          ? static_cast<double>(pair_slots_used) /
                (stats.last_inner_nodes * RegularBTree<K>::kLeafCap)
          : 0;
  stats.i_segment_bytes = tree.i_segment_bytes();
  stats.l_segment_bytes = tree.l_segment_bytes();
  stats.cold_bytes = tree.inner_pool().secondary_bytes();
  stats.bytes_per_pair =
      stats.pairs > 0 ? static_cast<double>(stats.i_segment_bytes +
                                            stats.l_segment_bytes) /
                            stats.pairs
                      : 0;
  return stats;
}

}  // namespace hbtree

#endif  // HBTREE_CPUBTREE_TREE_STATS_H_
