#include "io/tree_io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace hbtree {

namespace {

constexpr char kMagic[4] = {'H', 'B', 'T', 'I'};
constexpr std::uint32_t kFormatVersion = 1;

struct FileHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t key_width;      // bytes per key
  std::uint32_t hybrid_layout;  // 0 / 1
  std::uint64_t pair_count;
  std::uint64_t l_bytes;
  std::uint64_t i_bytes;
};
static_assert(sizeof(FileHeader) == 40);

std::uint32_t* Crc32cTable() {
  static std::uint32_t table[256];
  static bool initialized = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const std::uint32_t* table = Crc32cTable();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  }
  return ~crc;
}

template <typename K>
Status SaveTreeFile(const ImplicitBTree<K>& tree, const std::string& path) {
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.key_width = sizeof(K);
  header.hybrid_layout = tree.config().hybrid_layout ? 1 : 0;
  header.pair_count = tree.size();
  header.l_bytes = tree.l_segment_bytes();
  header.i_bytes = tree.i_segment_bytes();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open '" + path + "' for writing");

  std::uint32_t crc = Crc32c(&header, sizeof(header));
  crc = Crc32c(tree.l_segment_lines(), header.l_bytes, crc);
  crc = Crc32c(tree.i_segment_nodes(), header.i_bytes, crc);

  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (header.l_bytes != 0) {
    out.write(reinterpret_cast<const char*>(tree.l_segment_lines()),
              static_cast<std::streamsize>(header.l_bytes));
  }
  if (header.i_bytes != 0) {
    out.write(reinterpret_cast<const char*>(tree.i_segment_nodes()),
              static_cast<std::streamsize>(header.i_bytes));
  }
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!out) return Status::Error("short write to '" + path + "'");
  return Status::Ok();
}

template <typename K>
Status LoadTreeFile(ImplicitBTree<K>* tree, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open '" + path + "'");

  FileHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return Status::Error("truncated header in '" + path + "'");
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("'" + path + "' is not an HB+-tree image");
  }
  if (header.version != kFormatVersion) {
    return Status::Error("unsupported format version " +
                         std::to_string(header.version));
  }
  if (header.key_width != sizeof(K)) {
    return Status::Error("key width mismatch: file has " +
                         std::to_string(header.key_width * 8) +
                         "-bit keys");
  }
  if ((header.hybrid_layout != 0) != tree->config().hybrid_layout) {
    return Status::Error("layout mismatch: file and tree disagree on the "
                         "hybrid fanout");
  }

  // Validate the declared segment sizes against the actual file size
  // before allocating: a corrupted length field must produce a clean
  // error, not a multi-gigabyte allocation attempt.
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(static_cast<std::streamoff>(sizeof(FileHeader)), std::ios::beg);
  const std::uint64_t expected =
      sizeof(FileHeader) + header.l_bytes + header.i_bytes + sizeof(std::uint32_t);
  if (header.l_bytes > file_size || header.i_bytes > file_size ||
      expected != file_size) {
    return Status::Error("segment sizes in '" + path +
                         "' do not match the file size (corrupted file)");
  }

  std::vector<char> l_segment(header.l_bytes);
  std::vector<char> i_segment(header.i_bytes);
  if (!l_segment.empty()) {
    in.read(l_segment.data(), static_cast<std::streamsize>(header.l_bytes));
  }
  if (!i_segment.empty()) {
    in.read(i_segment.data(), static_cast<std::streamsize>(header.i_bytes));
  }
  std::uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (!in) return Status::Error("truncated body in '" + path + "'");

  std::uint32_t crc = Crc32c(&header, sizeof(header));
  crc = Crc32c(l_segment.data(), l_segment.size(), crc);
  crc = Crc32c(i_segment.data(), i_segment.size(), crc);
  if (crc != stored_crc) {
    return Status::Error("checksum mismatch in '" + path +
                         "' (corrupted file)");
  }

  return tree->Restore(header.pair_count, l_segment.data(),
                       l_segment.size(), i_segment.data(),
                       i_segment.size());
}

template Status SaveTreeFile<Key64>(const ImplicitBTree<Key64>&,
                                    const std::string&);
template Status SaveTreeFile<Key32>(const ImplicitBTree<Key32>&,
                                    const std::string&);
template Status LoadTreeFile<Key64>(ImplicitBTree<Key64>*,
                                    const std::string&);
template Status LoadTreeFile<Key32>(ImplicitBTree<Key32>*,
                                    const std::string&);

}  // namespace hbtree
