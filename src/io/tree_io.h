#ifndef HBTREE_IO_TREE_IO_H_
#define HBTREE_IO_TREE_IO_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "cpubtree/implicit_btree.h"

namespace hbtree {

/// Index persistence.
///
/// The implicit tree is a pair of flat segments plus a handful of
/// geometry scalars, so it serializes to a single file that loads without
/// any rebuilding — exactly what a warehouse wants between restarts (the
/// regular tree, being update-oriented, is instead rebuilt from data).
///
/// File layout (little-endian):
///   header:  magic "HBTI", format version, key width, hybrid-layout
///            flag, pair count, heights and per-level geometry
///   body:    L-segment bytes, I-segment bytes
///   footer:  CRC32C of everything above
///
/// Loading validates the magic, version, key width, layout flag, and the
/// checksum before touching the tree.

/// CRC32 (Castagnoli polynomial, bit-reflected, software implementation).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

/// Saves `tree` to `path`, overwriting any existing file.
template <typename K>
Status SaveTreeFile(const ImplicitBTree<K>& tree, const std::string& path);

/// Loads a tree previously written by SaveTreeFile into `tree`, replacing
/// its contents. The tree's configured hybrid-layout flag must match the
/// file's.
template <typename K>
Status LoadTreeFile(ImplicitBTree<K>* tree, const std::string& path);

}  // namespace hbtree

#endif  // HBTREE_IO_TREE_IO_H_
