#ifndef HBTREE_SERVE_SERVE_STATS_H_
#define HBTREE_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "serve/latency_histogram.h"
#include "serve/tenant.h"

namespace hbtree::serve {

/// Per-tenant slice of the serving stats (one entry per configured
/// TenantSpec, same order). Counts are completed/shed operations
/// attributed to the tenant; the latency summary is the tenant's own
/// wall read-latency distribution.
struct TenantServeStats {
  std::string name;
  int weight = 1;
  Priority priority = Priority::kNormal;
  std::uint64_t lookups = 0;
  std::uint64_t ranges = 0;
  std::uint64_t updates = 0;
  std::uint64_t shed_reads = 0;
  std::uint64_t shed_updates = 0;
  LatencySummary read_latency;

  std::uint64_t served() const { return lookups + ranges + updates; }
  std::uint64_t shed() const { return shed_reads + shed_updates; }
  /// Shed operations over everything the tenant submitted that resolved
  /// (served + shed); 0 when the tenant was idle.
  double shed_ratio() const {
    const std::uint64_t total = served() + shed();
    return total > 0 ? static_cast<double>(shed()) / total : 0;
  }
};

/// Aggregate serving-layer statistics, exposed by Server::Stats().
///
/// Latencies are wall-clock (admission to completion, so they include
/// queueing and batching delay); the sim_* fields aggregate the simulated
/// platform timing the pipeline and batch updater report, letting a bench
/// compare real serving overhead against the modelled hardware time.
struct ServeStats {
  // Serving topology: key-range shards and read workers per shard.
  int num_shards = 1;
  int num_read_workers = 1;

  // Completed operation counts.
  std::uint64_t lookups = 0;
  std::uint64_t ranges = 0;
  std::uint64_t updates = 0;

  // Batching behaviour.
  std::uint64_t read_buckets = 0;    // dispatched pipeline buckets
  std::uint64_t update_batches = 0;  // committed update batches
  double avg_bucket_fill = 0;        // lookups per dispatched bucket

  // Wall-clock latency percentiles.
  LatencySummary read_latency;
  LatencySummary update_latency;
  // Admission-queue wait (push to dispatch) across all shards; per-shard
  // distributions live in the registry as serve.shard<N>.queue_wait.
  LatencySummary queue_wait;

  // Throughput over the server's lifetime so far.
  double wall_seconds = 0;
  double reads_per_second = 0;
  double updates_per_second = 0;

  // Simulated-platform aggregates (µs on the modelled hardware clock).
  double sim_pipeline_us = 0;
  double sim_update_us = 0;
  // I-segment mirror synchronization: modelled time and how each sync
  // travelled — delta (dirty hot fragments streamed in place) vs full
  // re-upload. sim_sync_us is included in sim_update_us.
  double sim_sync_us = 0;
  std::uint64_t delta_syncs = 0;
  std::uint64_t full_syncs = 0;
  std::uint64_t delta_sync_nodes = 0;  // hot fragments streamed by deltas

  // Modelled serving capacity. Shards are independent modelled devices,
  // so their busy times overlap; within a shard, read buckets and update
  // syncs share one device and are charged serially (conservative). The
  // makespan is therefore max over shards of (pipeline + update busy
  // time), and modelled throughput is total served operations divided by
  // that makespan — the number the paper's platform would sustain, free
  // of this host's core count (see DESIGN.md §9).
  double modelled_makespan_us = 0;
  double modelled_ops_per_second = 0;

  // Update outcome counters (from BatchUpdateStats).
  std::uint64_t applied = 0;
  std::uint64_t structural = 0;

  // Snapshot epoch at the time of the stats snapshot: each committed
  // update batch advances it by one swap.
  std::uint64_t epoch = 0;

  // -- Fault tolerance ----------------------------------------------------

  // Deadline-based load shedding: requests resolved with
  // kDeadlineExceeded instead of being served.
  std::uint64_t shed_reads = 0;
  std::uint64_t shed_updates = 0;

  // Priority-aware degradation: low-priority reads dropped (kUnavailable)
  // because the pinned slot's breaker was open when their bucket was
  // assembled. A subset of shed_reads.
  std::uint64_t degraded_sheds = 0;

  /// Shed operations as a fraction of everything that resolved (served +
  /// shed); the aggregate load-shedding rate.
  double shed_ratio() const {
    const std::uint64_t total =
        lookups + ranges + updates + shed_reads + shed_updates;
    return total > 0
               ? static_cast<double>(shed_reads + shed_updates) / total
               : 0;
  }

  // Adaptive bucket sizing: controller decisions summed over shards; the
  // current per-shard effective M lives in the registry as
  // serve.shard<N>.bucket_m.
  std::uint64_t bucket_shrinks = 0;
  std::uint64_t bucket_grows = 0;

  // Device-fault handling in the read/update paths.
  std::uint64_t transfer_retries = 0;  // transient transfer faults retried
  std::uint64_t kernel_retries = 0;    // transient kernel faults retried
  std::uint64_t sync_retries = 0;      // update-path sync faults retried
  std::uint64_t device_faults = 0;     // bucket dispatches that failed on GPU
  std::uint64_t sync_failures = 0;     // update batches with a failed sync

  // Circuit breaker: per-slot GPU paths flip to CPU-only after repeated
  // failures and recover via periodic probes.
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t probe_attempts = 0;

  // Degraded-mode serving: buckets answered by the CPU-only pipelined
  // search instead of the heterogeneous pipeline.
  std::uint64_t cpu_fallback_buckets = 0;
  std::uint64_t cpu_fallback_lookups = 0;

  // Total faults the armed injectors produced (all sites, both slots).
  std::uint64_t faults_injected = 0;

  // Burn-rate state of every tracked SLO (ServerOptions::slos), as of
  // the last observed metrics window. Empty until a window has been
  // observed (reporter tick or Shutdown's final flush).
  std::vector<obs::SloStatus> slos;

  // Per-tenant breakdown (ServerOptions::tenants order; a single default
  // entry when no topology was configured).
  std::vector<TenantServeStats> tenants;

  /// Human-readable multi-line report (used by bench/ and examples/).
  std::string ToString() const;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SERVE_STATS_H_
