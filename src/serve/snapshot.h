#ifndef HBTREE_SERVE_SNAPSHOT_H_
#define HBTREE_SERVE_SNAPSHOT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "core/macros.h"
#include "obs/trace.h"

namespace hbtree::serve {

/// Epoch-swapped snapshot pair (the "left-right" scheme).
///
/// The paper's asynchronous update method (Section 5.6) lets lookups keep
/// running against the current I-segment while a batch of updates is
/// applied and a fresh mirror is prepared; the swap to the new state is a
/// single pointer-sized publication. This class generalizes that idea to
/// the whole serving layer: two complete tree instances alternate between
/// the *active* role (read by search buckets) and the *standby* role
/// (mutated by the batch updater). Readers pin the active instance by
/// epoch; a writer applies its batch to the standby, swaps the roles by
/// bumping the epoch, waits for the readers still pinned to the old
/// instance to drain, and re-applies the same batch so both instances
/// converge. Readers never block and never observe a half-applied batch.
///
/// Memory ordering: a writer's mutations of instance S happen-before the
/// release epoch bump, which the reader's acquire load of the epoch
/// synchronizes with; a reader's accesses happen-before its release
/// decrement of the pin count, which the writer's acquire drain loop
/// synchronizes with. The pin/revalidate handshake additionally needs
/// sequential consistency on both sides: the reader's pin increment and
/// the writer's epoch bump are stores that each side's subsequent load
/// (the reader's epoch re-check, the writer's drain read of the pin
/// count) must not pass — without a single total order the
/// store-buffering outcome lets the writer see zero readers while the
/// reader still sees the old epoch, and both miss each other. All four
/// accesses are therefore seq_cst (preferred over seq_cst fences, which
/// ThreadSanitizer cannot model), so at least one side observes the
/// other and a reader holding a ReadGuard is never on a slot the writer
/// mutates.
template <typename Slot>
class SnapshotPair {
 public:
  SnapshotPair(Slot* a, Slot* b) : slots_{a, b} {
    HBTREE_CHECK(a != nullptr && b != nullptr);
  }

  SnapshotPair(const SnapshotPair&) = delete;
  SnapshotPair& operator=(const SnapshotPair&) = delete;

  /// Pins the active slot for the guard's lifetime. Cheap enough to take
  /// per read bucket; never blocks (the retry loop runs at most once per
  /// concurrent swap).
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : owner_(other.owner_), index_(other.index_), epoch_(other.epoch_) {
      other.owner_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;

    ~ReadGuard() {
      if (owner_ != nullptr) {
        owner_->readers_[index_].fetch_sub(1, std::memory_order_acq_rel);
      }
    }

    Slot& slot() const { return *owner_->slots_[index_]; }
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class SnapshotPair;
    ReadGuard(SnapshotPair* owner, int index, std::uint64_t epoch)
        : owner_(owner), index_(index), epoch_(epoch) {}

    SnapshotPair* owner_;
    int index_;
    std::uint64_t epoch_;
  };

  ReadGuard Acquire() {
    for (;;) {
      const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
      const int index = static_cast<int>(epoch & 1);
      // seq_cst: the pin increment must order before the revalidation
      // load in the global total order shared with Publish()'s epoch
      // store and drain loads; this forbids the store-buffering outcome
      // where the writer reads a zero pin count while this thread still
      // reads the old epoch.
      readers_[index].fetch_add(1, std::memory_order_seq_cst);
      // Revalidate: if a swap happened between the epoch load and the pin,
      // the writer may already have seen a zero count and begun mutating
      // this slot — back out and pin the new active instead.
      if (epoch_.load(std::memory_order_seq_cst) == epoch) {
        return ReadGuard(this, index, epoch);
      }
      readers_[index].fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Applies `mutate` to both instances with an epoch swap in between.
  /// Single-writer: callers must serialize Publish() externally (the
  /// serving layer runs exactly one update thread per shard, and each
  /// shard owns its own pair). Any number of readers may hold guards
  /// concurrently — a shard's read workers all pin the same active slot.
  template <typename Fn>
  void Publish(Fn&& mutate) {
    Publish(std::forward<Fn>(mutate), [] {});
  }

  /// Publish() with a commit hook: `after_swap` runs right after the
  /// epoch flip — the batch's linearization point. Every reader that
  /// acquires from then on lands on the updated instance, so the batch
  /// is visible to all future lookups and can never be rolled back;
  /// readers still pinned to the old instance acquired before the flip
  /// and are entitled to the pre-batch snapshot. Callers resolve the
  /// batch's completions there instead of after Publish returns: neither
  /// the drain (which only gates mutation of the retired copy) nor the
  /// catch-up re-apply should hold completed operations hostage.
  template <typename Fn, typename AfterSwap>
  void Publish(Fn&& mutate, AfterSwap&& after_swap) {
    HBTREE_TRACE_SPAN_ARG("snapshot.publish", "serve", "epoch",
                          epoch_.load(std::memory_order_relaxed));
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    const int standby = static_cast<int>((epoch + 1) & 1);
    mutate(*slots_[standby]);
    // Swap roles: new readers land on the freshly updated instance.
    // seq_cst (which includes release): the epoch store must order
    // before the drain loop's pin-count loads in the global total order
    // shared with Acquire(), so any reader the drain misses is
    // guaranteed to see the new epoch in its revalidation and back off
    // this slot.
    epoch_.store(epoch + 1, std::memory_order_seq_cst);
    after_swap();
    {
      HBTREE_TRACE_SPAN("snapshot.drain", "serve");
      WaitForDrain(static_cast<int>(epoch & 1));
    }
    // Catch up the old active (now standby) so the next Publish starts
    // from a converged pair.
    mutate(*slots_[static_cast<int>(epoch & 1)]);
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// The instance the next Publish() would mutate first. Only safe to
  /// touch from the (single) writer while no Publish is in flight.
  Slot& standby() {
    return *slots_[(epoch_.load(std::memory_order_relaxed) + 1) & 1];
  }

 private:
  void WaitForDrain(int index) {
    int spins = 0;
    while (readers_[index].load(std::memory_order_seq_cst) != 0) {
      if (++spins < 128) {
        std::this_thread::yield();
      } else {
        // A pinned reader is mid-bucket; back off instead of burning a
        // core for the bucket's whole service time.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  Slot* slots_[2];
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> readers_[2] = {0, 0};
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SNAPSHOT_H_
