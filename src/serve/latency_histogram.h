#ifndef HBTREE_SERVE_LATENCY_HISTOGRAM_H_
#define HBTREE_SERVE_LATENCY_HISTOGRAM_H_

#include "obs/histogram.h"

namespace hbtree::serve {

/// The serving layer's latency histogram now lives in the observability
/// library (obs/histogram.h) so the metrics registry can reuse it for any
/// ns-valued distribution; these aliases keep the original serve-side
/// names working.
using LatencySummary = obs::LatencySummary;
using LatencyHistogram = obs::LatencyHistogram;

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_LATENCY_HISTOGRAM_H_
