#include "serve/serve_stats.h"

#include <cstdio>

namespace hbtree::serve {

std::string ServeStats::ToString() const {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve: %llu lookups, %llu ranges, %llu updates in %.2fs\n"
      "  throughput: %.0f reads/s, %.0f updates/s\n"
      "  batching:   %llu read buckets (avg fill %.1f), %llu update "
      "batches, epoch %llu\n"
      "  read  latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  update latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  simulated platform: pipeline %.0f us, updates %.0f us "
      "(%llu applied, %llu structural)",
      static_cast<unsigned long long>(lookups),
      static_cast<unsigned long long>(ranges),
      static_cast<unsigned long long>(updates), wall_seconds,
      reads_per_second, updates_per_second,
      static_cast<unsigned long long>(read_buckets), avg_bucket_fill,
      static_cast<unsigned long long>(update_batches),
      static_cast<unsigned long long>(epoch), read_latency.p50_us,
      read_latency.p90_us, read_latency.p99_us, read_latency.max_us,
      update_latency.p50_us, update_latency.p90_us, update_latency.p99_us,
      update_latency.max_us, sim_pipeline_us, sim_update_us,
      static_cast<unsigned long long>(applied),
      static_cast<unsigned long long>(structural));
  return buffer;
}

}  // namespace hbtree::serve
