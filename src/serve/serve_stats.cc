#include "serve/serve_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hbtree::serve {

LatencySummary LatencyHistogram::Summarize() const {
  std::vector<std::uint64_t> counts(kBuckets);
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  LatencySummary summary;
  summary.count = total;
  if (total == 0) return summary;
  summary.max_us = max_ns_.load(std::memory_order_relaxed) / 1e3;
  summary.mean_us =
      sum_ns_.load(std::memory_order_relaxed) / 1e3 / total;

  auto percentile = [&](double q) {
    const std::uint64_t rank = static_cast<std::uint64_t>(q * (total - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return BucketMidpointNs(b) / 1e3;
    }
    return BucketMidpointNs(kBuckets - 1) / 1e3;
  };
  summary.p50_us = percentile(0.50);
  summary.p90_us = percentile(0.90);
  summary.p99_us = percentile(0.99);
  // The histogram midpoint can overshoot the true maximum; clamp so the
  // reported percentiles never exceed the observed max.
  summary.p50_us = std::min(summary.p50_us, summary.max_us);
  summary.p90_us = std::min(summary.p90_us, summary.max_us);
  summary.p99_us = std::min(summary.p99_us, summary.max_us);
  return summary;
}

std::string ServeStats::ToString() const {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve: %llu lookups, %llu ranges, %llu updates in %.2fs\n"
      "  throughput: %.0f reads/s, %.0f updates/s\n"
      "  batching:   %llu read buckets (avg fill %.1f), %llu update "
      "batches, epoch %llu\n"
      "  read  latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  update latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  simulated platform: pipeline %.0f us, updates %.0f us "
      "(%llu applied, %llu structural)",
      static_cast<unsigned long long>(lookups),
      static_cast<unsigned long long>(ranges),
      static_cast<unsigned long long>(updates), wall_seconds,
      reads_per_second, updates_per_second,
      static_cast<unsigned long long>(read_buckets), avg_bucket_fill,
      static_cast<unsigned long long>(update_batches),
      static_cast<unsigned long long>(epoch), read_latency.p50_us,
      read_latency.p90_us, read_latency.p99_us, read_latency.max_us,
      update_latency.p50_us, update_latency.p90_us, update_latency.p99_us,
      update_latency.max_us, sim_pipeline_us, sim_update_us,
      static_cast<unsigned long long>(applied),
      static_cast<unsigned long long>(structural));
  return buffer;
}

}  // namespace hbtree::serve
