#include "serve/serve_stats.h"

#include <cstdio>

namespace hbtree::serve {

std::string ServeStats::ToString() const {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve: %llu lookups, %llu ranges, %llu updates in %.2fs "
      "(%d shard%s x %d read worker%s)\n"
      "  throughput: %.0f reads/s, %.0f updates/s\n"
      "  batching:   %llu read buckets (avg fill %.1f), %llu update "
      "batches, epoch %llu\n"
      "  read  latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  update latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  queue  wait   us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "  simulated platform: pipeline %.0f us, updates %.0f us "
      "(%llu applied, %llu structural)\n"
      "  mirror sync: %.0f us; %llu delta / %llu full syncs, %llu "
      "fragments streamed\n"
      "  modelled capacity: %.0f ops/s (busiest-shard makespan %.0f us)\n"
      "  faults: %llu injected, %llu device faults, %llu sync failures, "
      "retries %llu/%llu/%llu (transfer/kernel/sync)\n"
      "  breaker: %llu opens, %llu closes, %llu probes; cpu fallback "
      "%llu buckets / %llu lookups\n"
      "  shed: %llu reads, %llu updates (%.2f%% of resolved ops; %llu "
      "degraded low-priority)\n"
      "  adaptive bucket: %llu shrinks, %llu grows",
      static_cast<unsigned long long>(lookups),
      static_cast<unsigned long long>(ranges),
      static_cast<unsigned long long>(updates), wall_seconds, num_shards,
      num_shards == 1 ? "" : "s", num_read_workers,
      num_read_workers == 1 ? "" : "s", reads_per_second, updates_per_second,
      static_cast<unsigned long long>(read_buckets), avg_bucket_fill,
      static_cast<unsigned long long>(update_batches),
      static_cast<unsigned long long>(epoch), read_latency.p50_us,
      read_latency.p90_us, read_latency.p99_us, read_latency.max_us,
      update_latency.p50_us, update_latency.p90_us, update_latency.p99_us,
      update_latency.max_us, queue_wait.p50_us, queue_wait.p90_us,
      queue_wait.p99_us, queue_wait.max_us, sim_pipeline_us, sim_update_us,
      static_cast<unsigned long long>(applied),
      static_cast<unsigned long long>(structural), sim_sync_us,
      static_cast<unsigned long long>(delta_syncs),
      static_cast<unsigned long long>(full_syncs),
      static_cast<unsigned long long>(delta_sync_nodes),
      modelled_ops_per_second, modelled_makespan_us,
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(device_faults),
      static_cast<unsigned long long>(sync_failures),
      static_cast<unsigned long long>(transfer_retries),
      static_cast<unsigned long long>(kernel_retries),
      static_cast<unsigned long long>(sync_retries),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(breaker_closes),
      static_cast<unsigned long long>(probe_attempts),
      static_cast<unsigned long long>(cpu_fallback_buckets),
      static_cast<unsigned long long>(cpu_fallback_lookups),
      static_cast<unsigned long long>(shed_reads),
      static_cast<unsigned long long>(shed_updates), shed_ratio() * 100.0,
      static_cast<unsigned long long>(degraded_sheds),
      static_cast<unsigned long long>(bucket_shrinks),
      static_cast<unsigned long long>(bucket_grows));
  std::string out = buffer;
  // One line per tenant only when a real topology is configured — the
  // implicit single default tenant would just repeat the totals.
  if (tenants.size() > 1) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const TenantServeStats& tenant = tenants[t];
      std::snprintf(
          buffer, sizeof(buffer),
          "\n  tenant %zu %-10s (%s, w%d): %llu served, %llu shed "
          "(%.2f%%), read p99 %.1f us",
          t, tenant.name.c_str(), PriorityName(tenant.priority),
          tenant.weight, static_cast<unsigned long long>(tenant.served()),
          static_cast<unsigned long long>(tenant.shed()),
          tenant.shed_ratio() * 100.0, tenant.read_latency.p99_us);
      out += buffer;
    }
  }
  for (const obs::SloStatus& slo : slos) {
    std::snprintf(buffer, sizeof(buffer),
                  "\n  slo %-12s bad %.3f%% of budget %.1f%%, burn "
                  "short %.2f / long %.2f over %llu window%s%s",
                  slo.name.c_str(), slo.bad_fraction * 100.0,
                  slo.budget * 100.0, slo.burn_short, slo.burn_long,
                  static_cast<unsigned long long>(slo.windows),
                  slo.windows == 1 ? "" : "s",
                  slo.burning ? "  ** BURNING **" : "");
    out += buffer;
  }
  return out;
}

}  // namespace hbtree::serve
