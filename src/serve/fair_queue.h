#ifndef HBTREE_SERVE_FAIR_QUEUE_H_
#define HBTREE_SERVE_FAIR_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/admission_queue.h"
#include "serve/tenant.h"

namespace hbtree::serve {

/// Per-lane scheduling contract of a FairAdmissionQueue (one lane per
/// tenant; see TenantSpec::weight / TenantSpec::shed_on_full for the
/// semantics).
struct LaneConfig {
  int weight = 1;
  bool shed_on_full = false;
};

/// Weighted-fair multi-tenant admission queue: one bounded FIFO lane per
/// tenant, batch consumption by deficit round-robin over the lane
/// weights.
///
/// Isolation properties (the whole point versus a single FIFO):
///  * A tenant that floods its lane fills only its own bounded lane —
///    other tenants' admission latency is untouched (capacity is per
///    lane, not shared).
///  * When several lanes are backlogged, each bucket window carries ops
///    in proportion to the configured weights (DRR: every lane earns
///    `weight x quantum` credit per round and spends one credit per op;
///    unused credit of a drained lane is forfeited, so an idle tenant
///    cannot bank share). A hostile tenant is bounded to its weight
///    share of every bucket no matter how much it offers.
///  * The scheduler is work-conserving: when only one lane has work, it
///    gets the whole bucket.
///
/// Shedding: a lane configured shed_on_full resolves PushUntil with
/// kTimeout immediately when its lane is full instead of blocking until
/// the deadline — open-loop (paced) sources keep their offered rate and
/// absorb the loss themselves; blocking lanes keep the pre-QoS
/// backpressure contract. An already-expired deadline sheds immediately
/// in either mode (same rule as AdmissionQueue::PushUntil).
///
/// Thread-safety: all operations are guarded by one mutex; any number of
/// producers and batch consumers may run concurrently. Like
/// AdmissionQueue::PopBatch, the consumer wakes blocked producers every
/// time it drains items so small lane capacities cannot livelock a
/// batch fill.
template <typename T>
class FairAdmissionQueue {
 public:
  /// `lane_capacity` bounds every lane independently (clamped to >= 1);
  /// at least one lane is always configured.
  FairAdmissionQueue(std::size_t lane_capacity,
                     std::vector<LaneConfig> lanes)
      : capacity_(lane_capacity == 0 ? 1 : lane_capacity),
        // Constructed in place (not pushed): a Lane holds a deque of
        // potentially move-only items, which vector growth would copy.
        lanes_(lanes.empty() ? 1 : lanes.size()) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      lanes_[i].config = lanes[i];
      lanes_[i].config.weight = std::max(1, lanes[i].weight);
    }
    for (const Lane& lane : lanes_) total_weight_ += lane.config.weight;
  }

  FairAdmissionQueue(const FairAdmissionQueue&) = delete;
  FairAdmissionQueue& operator=(const FairAdmissionQueue&) = delete;

  std::size_t num_lanes() const { return lanes_.size(); }

  /// Blocking admission into `lane` (no deadline): waits for lane space,
  /// false when closed.
  bool Push(std::size_t lane, T&& item) {
    Lane& l = lanes_[lane];
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || l.items.size() < capacity_; });
    if (closed_) return false;
    l.items.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded admission. kTimeout means shed at the door: the
  /// deadline already passed, the lane stayed full until the deadline,
  /// or the lane is full and configured shed_on_full.
  PushResult PushUntil(std::size_t lane, T&& item,
                       std::chrono::steady_clock::time_point deadline) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return PushResult::kTimeout;
    }
    Lane& l = lanes_[lane];
    std::unique_lock<std::mutex> lock(mutex_);
    if (l.config.shed_on_full && !closed_ && l.items.size() >= capacity_) {
      return PushResult::kTimeout;
    }
    if (!not_full_.wait_until(lock, deadline, [&] {
          return closed_ || l.items.size() < capacity_;
        })) {
      return PushResult::kTimeout;
    }
    if (closed_) return PushResult::kClosed;
    l.items.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Pops up to `max` items into `out` (appended) by deficit
  /// round-robin over the lanes. Same windowing contract as
  /// AdmissionQueue::PopBatch: waits up to `idle_wait` for the first
  /// item, then keeps collecting until `max` items or `fill_wait` has
  /// elapsed. Returns the number popped.
  std::size_t PopBatch(std::vector<T>* out, std::size_t max,
                       std::chrono::microseconds idle_wait,
                       std::chrono::microseconds fill_wait) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, idle_wait,
                             [this] { return closed_ || !Empty(); })) {
      return 0;
    }
    if (Empty()) return 0;  // closed and drained
    std::size_t popped = 0;
    const auto deadline = std::chrono::steady_clock::now() + fill_wait;
    for (;;) {
      const std::size_t drained = DrainRound(out, max - popped);
      popped += drained;
      if (popped >= max || closed_) break;
      if (drained > 0) not_full_.notify_all();
      if (!not_empty_.wait_until(lock, deadline,
                                 [this] { return closed_ || !Empty(); })) {
        break;  // fill window expired: ship the partial bucket
      }
    }
    lock.unlock();
    not_full_.notify_all();
    return popped;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total queued items across lanes.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const Lane& lane : lanes_) total += lane.items.size();
    return total;
  }

  std::size_t lane_size(std::size_t lane) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[lane].items.size();
  }

 private:
  struct Lane {
    LaneConfig config;
    std::deque<T> items;
    // DRR credit in ops. Persists across PopBatch calls while the lane
    // stays backlogged; forfeited (reset to 0) whenever the lane drains
    // so an idle tenant cannot bank share.
    std::size_t deficit = 0;
  };

  bool Empty() const {
    for (const Lane& lane : lanes_) {
      if (!lane.items.empty()) return false;
    }
    return true;
  }

  /// One DRR round under the lock: every lane earns weight x quantum
  /// credit, then spends it oldest-first, bounded by `budget` total.
  /// The rotation start survives across rounds/calls so no lane is
  /// systematically first.
  std::size_t DrainRound(std::vector<T>* out, std::size_t budget) {
    if (budget == 0) return 0;
    // Quantum sized so one fully-backlogged round roughly fills the
    // budget in weight proportion (at least 1 op per weight unit).
    const std::size_t quantum =
        std::max<std::size_t>(1, budget / static_cast<std::size_t>(
                                              total_weight_));
    std::size_t taken = 0;
    const std::size_t n = lanes_.size();
    for (std::size_t i = 0; i < n && taken < budget; ++i) {
      Lane& lane = lanes_[(next_lane_ + i) % n];
      if (lane.items.empty()) {
        lane.deficit = 0;
        continue;
      }
      lane.deficit +=
          quantum * static_cast<std::size_t>(lane.config.weight);
      std::size_t take =
          std::min({lane.deficit, lane.items.size(), budget - taken});
      lane.deficit -= take;
      taken += take;
      while (take-- > 0) {
        out->push_back(std::move(lane.items.front()));
        lane.items.pop_front();
      }
      if (lane.items.empty()) lane.deficit = 0;
    }
    next_lane_ = (next_lane_ + 1) % n;
    return taken;
  }

  const std::size_t capacity_;  // per lane
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Lane> lanes_;
  int total_weight_ = 0;
  std::size_t next_lane_ = 0;
  bool closed_ = false;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_FAIR_QUEUE_H_
