#ifndef HBTREE_SERVE_TENANT_H_
#define HBTREE_SERVE_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hbtree::serve {

/// Index into ServerOptions::tenants; every request carries one. Tenant 0
/// always exists (the default tenant when no topology is configured), so
/// single-tenant callers never have to mention tenants at all.
using TenantId = int;

/// Degradation order. When a deadline squeeze, a full lane, or an open
/// circuit breaker forces the serving layer to drop work, lower classes
/// are shed first: kLow work is dropped proactively in degraded mode,
/// kNormal work is shed only by its own deadlines, and kHigh work is
/// never shed by policy (only an explicitly expired deadline can shed
/// it).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

inline const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "?";
}

/// One tenant's admission contract.
struct TenantSpec {
  std::string name = "default";

  /// Deficit-round-robin share: when several lanes are backlogged, each
  /// bucket window carries ops in proportion to the weights. A lane with
  /// no backlog donates its share (the scheduler is work-conserving), so
  /// weights bound interference, not utilization.
  int weight = 1;

  /// Shed order under overload/degradation (see Priority).
  Priority priority = Priority::kNormal;

  /// Admission policy when this tenant's lane is full: false blocks the
  /// submitter until space or deadline (backpressure, the pre-QoS
  /// behaviour); true sheds immediately (kTimeout) so an open-loop
  /// source keeps its offered rate and absorbs the loss itself. Hostile
  /// or best-effort tenants should shed; interactive tenants that can
  /// slow down should block.
  bool shed_on_full = false;

  /// Per-tenant SLO targets published on the SloTracker by
  /// TenantServeSlos(): wall read p99 budget and tolerated shed
  /// fraction.
  double read_p99_slo_us = 200'000;
  double slo_budget = 0.01;
};

/// The implicit topology when ServerOptions::tenants is empty: one
/// default tenant, weight 1, normal priority, blocking admission —
/// exactly the pre-QoS single-FIFO behaviour.
inline std::vector<TenantSpec> DefaultTenants() { return {TenantSpec{}}; }

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_TENANT_H_
