#ifndef HBTREE_SERVE_ADMISSION_QUEUE_H_
#define HBTREE_SERVE_ADMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hbtree::serve {

/// Bounded multi-producer admission queue with batch-oriented consumption.
///
/// Producers (client threads) block in Push() while the queue is full —
/// this is the serving layer's backpressure: admission slows to the rate
/// the pipeline drains buckets instead of queueing unboundedly. Consumers
/// (batcher threads; a shard may run several read workers against one
/// queue) pop up to a bucket's worth of operations at once, waiting
/// briefly for a partial bucket to fill so light load still ships with
/// bounded added latency. All operations are mutex-guarded, so any number
/// of producers and consumers may run concurrently.
/// Outcome of a deadline-bounded admission attempt.
enum class PushResult {
  kOk,       // admitted
  kClosed,   // queue closed (server shutting down)
  kTimeout,  // still full at the deadline: the request is shed at the door
};

template <typename T>
class AdmissionQueue {
 public:
  /// A zero capacity would make every Push() wait forever (the predicate
  /// `size < 0` can never hold), so it clamps to 1: the smallest queue
  /// that still moves items.
  explicit AdmissionQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was
  /// closed; `item` is left untouched so the caller can reject it (e.g.
  /// resolve its promise with an error) instead of losing it.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    const bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    lock.unlock();
    // Wake a consumer only on the empty -> non-empty transition. A
    // consumer that already saw the queue non-empty drains everything it
    // finds when its fill window ticks over, so per-item wakes buy no
    // extra throughput — they just turn every admitted op into a futex
    // wake + context switch, which on a saturated core is the dominant
    // cost of admission.
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded admission: waits for space only until `deadline`.
  /// A request that cannot even enter the queue before its deadline has
  /// no chance of completing in time, so shedding it here (kTimeout) is
  /// cheaper than shedding it after it aged in the queue. On kClosed and
  /// kTimeout `item` is left untouched.
  PushResult PushUntil(T&& item, std::chrono::steady_clock::time_point deadline) {
    // An already-expired deadline sheds at the door, full queue or not:
    // admitting it would only waste a bucket slot on a request that must
    // resolve kDeadlineExceeded anyway, and the condition-variable wait
    // path must not run at all (wait_until with a past deadline still
    // checks the predicate, which would ADMIT the expired request
    // whenever the queue happens to have space).
    if (std::chrono::steady_clock::now() >= deadline) {
      return PushResult::kTimeout;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_full_.wait_until(lock, deadline, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return PushResult::kTimeout;
    }
    if (closed_) return PushResult::kClosed;
    const bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    lock.unlock();
    if (was_empty) not_empty_.notify_one();  // see Push(): transition-only wake
    return PushResult::kOk;
  }

  /// Pops up to `max` items into `out` (appended). Waits up to
  /// `idle_wait` for the first item; once one arrives, keeps collecting
  /// until `max` items are gathered or `fill_wait` has elapsed since the
  /// first item — the bucket-fill window. Returns the number popped
  /// (0 on timeout or when closed and drained).
  std::size_t PopBatch(std::vector<T>* out, std::size_t max,
                       std::chrono::microseconds idle_wait,
                       std::chrono::microseconds fill_wait) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, idle_wait,
                             [this] { return closed_ || !items_.empty(); })) {
      return 0;
    }
    if (items_.empty()) return 0;  // closed and drained
    std::size_t popped = 0;
    const auto deadline = std::chrono::steady_clock::now() + fill_wait;
    for (;;) {
      const bool drained = !items_.empty();
      while (popped < max && !items_.empty()) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        ++popped;
      }
      if (popped >= max || closed_) break;
      // Wake producers before waiting for more: with capacity smaller
      // than the batch (worst case capacity 1), producers are blocked on
      // not_full_ while the consumer would otherwise sit on not_empty_
      // until the whole fill window expired — a livelock that turns
      // every batch into a full fill_wait stall. Draining and notifying
      // inside the loop lets the batch fill incrementally.
      if (drained) not_full_.notify_all();
      if (!not_empty_.wait_until(lock, deadline,
                                 [this] { return closed_ || !items_.empty(); })) {
        break;  // fill window expired: ship the partial bucket
      }
    }
    const bool leftover = !items_.empty();
    lock.unlock();
    not_full_.notify_all();
    // Transition-only producer wakes mean a sibling consumer sleeping in
    // its idle wait was never notified about backlog this consumer could
    // not carry (popped == max with items left). Hand the wake off so the
    // backlog does not sit until that sibling's idle poll expires.
    if (leftover) not_empty_.notify_one();
    return popped;
  }

  /// Closes the queue: pending Push() calls fail, items already admitted
  /// remain poppable so the consumer can drain before exiting.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_ADMISSION_QUEUE_H_
