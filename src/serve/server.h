#ifndef HBTREE_SERVE_SERVER_H_
#define HBTREE_SERVE_SERVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "core/workload.h"
#include "cpubtree/pipelined_search.h"
#include "fault/fault_injector.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_regular.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission_queue.h"
#include "serve/latency_histogram.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "sim/platform.h"

namespace hbtree::serve {

/// Serving-layer tuning knobs.
struct ServerOptions {
  /// Simulated platform each tree instance runs against (every snapshot
  /// slot gets its own device + transfer engine, so the reader's kernel
  /// launches never share mutable simulator state with the writer's
  /// I-segment syncs).
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");

  /// Pipeline configuration for read buckets. `bucket_size` is the
  /// admission bucket M (the paper settles on 16K, Section 6.3); the CPU
  /// rate fields should come from calibration (see
  /// bench_support/serve_runner.h).
  PipelineConfig pipeline;

  /// GPU sub-buckets per admission bucket. 1 ships each admission bucket
  /// as a single pipeline bucket (no intra-dispatch overlap); >1 splits
  /// it so the double-buffered schedule overlaps consecutive sub-buckets'
  /// H2D/kernel/D2H stages within one dispatch — the paper's Fig. 10
  /// pipelining applied to serving, and what makes the overlap visible
  /// on the modelled trace tracks (--trace_out).
  int pipeline_depth = 1;

  /// Batch-update configuration and method (Section 5.6). The default
  /// asynchronous-parallel method matches the epoch-swap design: the
  /// whole batch lands in main memory, then one bulk I-segment sync.
  BatchUpdateConfig update;
  UpdateMethod update_method = UpdateMethod::kAsyncParallel;

  /// Tree build configuration. Leaf slack keeps most online inserts
  /// non-structural, as the paper's update analysis assumes.
  double leaf_fill = 0.9;

  /// Admission-queue capacity per lane (reads / updates); producers block
  /// when a lane is full (backpressure).
  std::size_t queue_capacity = 64 * 1024;

  /// Updates per committed batch (flush threshold).
  int update_batch_size = 16 * 1024;

  /// How long a batcher waits for a partial bucket/batch to fill before
  /// shipping it — the added latency bound under light load.
  std::chrono::microseconds max_batch_delay{200};

  // -- Fault tolerance ----------------------------------------------------

  /// Fault-injection policy armed on each snapshot slot's device after a
  /// clean bootstrap (slot B gets a decorrelated seed). Disabled by
  /// default; arm it in fault-tolerance tests and benches.
  fault::FaultConfig fault;

  /// Circuit breaker: after this many consecutive GPU bucket failures the
  /// slot's device path opens (buckets serve CPU-only) ...
  int breaker_failure_threshold = 3;
  /// ... and every Nth bucket while open probes the device path (resync
  /// if stale, then one pipelined bucket); a successful probe closes the
  /// breaker.
  int breaker_probe_interval = 4;

  /// Software-pipelining depth for the CPU-only degraded path (16 is the
  /// paper's optimum, Figure 7).
  int cpu_fallback_depth = 16;

  /// Default per-request deadline budget; zero means no deadline. A
  /// request whose deadline passes before it is dispatched resolves with
  /// kDeadlineExceeded instead of occupying the pipeline (load shedding).
  std::chrono::microseconds default_deadline{0};
};

/// Result of one read operation (point lookup or range query). `status`
/// is kOk for served requests; shed or rejected requests carry
/// kDeadlineExceeded / kUnavailable / kInvalidArgument and leave the
/// payload fields empty.
template <typename K>
struct ReadResult {
  Status status = Status::Ok();
  LookupResult<K> lookup;           // valid for point lookups
  std::vector<KeyValue<K>> range;   // valid for range queries
};

/// Result of one update. `sequence` is the commit sequence number of the
/// batch that applied it (valid when status is kOk).
struct UpdateResult {
  Status status = Status::Ok();
  std::uint64_t sequence = 0;
};

/// Multi-threaded serving front-end over the regular HB+-tree.
///
/// Client threads submit point lookups, range queries, and updates; the
/// serving layer batches admitted reads into pipeline-sized buckets and
/// dispatches them through the heterogeneous search pipeline, while
/// updates accumulate into groups executed by the batch updater (Section
/// 5.6). Reads run against an epoch-swapped snapshot (SnapshotPair), so
/// lookups proceed concurrently with a batch-update pass.
///
/// Fault tolerance: device failures surface as typed Statuses from the
/// Try* pipeline entry points and are absorbed here — a per-slot circuit
/// breaker flips the bucket path to the CPU-only pipelined search after
/// repeated failures (the host tree is always complete, so degraded mode
/// loses throughput, not correctness) and periodic probes restore the GPU
/// path once the device recovers. Requests never abort the process and
/// every future resolves.
///
/// Threads: any number of producers; one read batcher; one update
/// committer. All Submit* methods are thread-safe and return futures.
template <typename K>
class Server {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds a server or reports why it cannot be built (invalid options,
  /// I-segment mirror exceeding device memory) via `*status_out` —
  /// construction failures are expected operating conditions on a
  /// capacity-limited device, not programming errors, so they do not
  /// abort. Returns nullptr on failure.
  static std::unique_ptr<Server> Create(
      const ServerOptions& options,
      const std::vector<KeyValue<K>>& sorted_pairs,
      Status* status_out = nullptr) {
    std::unique_ptr<Server> server(new Server(options));
    const Status status = server->Init(sorted_pairs);
    if (status_out != nullptr) *status_out = status;
    if (!status.ok()) server.reset();
    return server;
  }

  ~Server() { Shutdown(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Client API ---------------------------------------------------------

  /// Admits a point lookup; blocks if the read lane is full (until the
  /// deadline, if one applies). `deadline` overrides
  /// options.default_deadline for this request; zero keeps the default.
  std::future<ReadResult<K>> SubmitLookup(
      K key, std::chrono::microseconds deadline = {}) {
    ReadOp op;
    op.key = key;
    op.max_matches = 0;
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits a range query for up to `max_matches` pairs with key >= key.
  /// A non-positive `max_matches` resolves the future immediately with
  /// kInvalidArgument (a malformed request must not crash the server).
  std::future<ReadResult<K>> SubmitRange(
      K key, int max_matches, std::chrono::microseconds deadline = {}) {
    ReadOp op;
    op.key = key;
    op.max_matches = max_matches;
    if (max_matches <= 0) {
      std::future<ReadResult<K>> result = op.done.get_future();
      ReadResult<K> rejected;
      rejected.status =
          Status::InvalidArgument("range max_matches must be positive");
      op.done.set_value(std::move(rejected));
      return result;
    }
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits an update. On success the future carries the sequence number
  /// of the batch that committed it (after both snapshot instances
  /// converged); shed or rejected updates carry a non-ok status and were
  /// NOT applied.
  std::future<UpdateResult> SubmitUpdate(
      UpdateQuery<K> update, std::chrono::microseconds deadline = {}) {
    UpdateOp op;
    op.query = update;
    op.admitted = Clock::now();
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    std::future<UpdateResult> result = op.done.get_future();
    if (op.deadline != Clock::time_point::max()) {
      switch (update_queue_.PushUntil(std::move(op), op.deadline)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout:
          shed_updates_.Increment();
          op.done.set_value(UpdateResult{
              Status::DeadlineExceeded("update shed at admission"), 0});
          break;
        case PushResult::kClosed:
          op.done.set_value(UpdateResult{
              Status::Unavailable("update submitted to a stopped server"),
              0});
          break;
      }
    } else if (!update_queue_.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      op.done.set_value(UpdateResult{
          Status::Unavailable("update submitted to a stopped server"), 0});
    }
    return result;
  }

  // Blocking conveniences.
  LookupResult<K> Lookup(K key) { return SubmitLookup(key).get().lookup; }
  std::vector<KeyValue<K>> Range(K key, int max_matches) {
    return SubmitRange(key, max_matches).get().range;
  }
  UpdateResult Update(UpdateQuery<K> update) {
    return SubmitUpdate(update).get();
  }

  // -- Introspection ------------------------------------------------------

  /// Number of update batches fully committed (both instances converged).
  std::uint64_t committed_batches() const {
    return committed_batches_.load(std::memory_order_acquire);
  }
  /// Number of update batches whose first (visible) application has been
  /// published; lookups admitted after this point see the batch.
  std::uint64_t epoch() const { return snapshots_.epoch(); }

  ServeStats Stats() const {
    ServeStats stats;
    stats.lookups = lookups_done_.value();
    stats.ranges = ranges_done_.value();
    stats.updates = updates_done_.value();
    stats.read_buckets = read_buckets_.value();
    stats.update_batches = committed_batches();
    stats.avg_bucket_fill =
        stats.read_buckets > 0
            ? static_cast<double>(stats.lookups) / stats.read_buckets
            : 0;
    stats.read_latency = read_latency_.LifetimeSummary();
    stats.update_latency = update_latency_.LifetimeSummary();
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - started_at_).count();
    if (stats.wall_seconds > 0) {
      stats.reads_per_second =
          (stats.lookups + stats.ranges) / stats.wall_seconds;
      stats.updates_per_second = stats.updates / stats.wall_seconds;
    }
    {
      std::lock_guard<std::mutex> lock(sim_mutex_);
      stats.sim_pipeline_us = sim_pipeline_us_;
      stats.sim_update_us = sim_update_us_;
      stats.applied = applied_;
      stats.structural = structural_;
    }
    stats.epoch = snapshots_.epoch();

    stats.shed_reads = shed_reads_.value();
    stats.shed_updates = shed_updates_.value();
    stats.transfer_retries = transfer_retries_.value();
    stats.kernel_retries = kernel_retries_.value();
    stats.sync_retries = sync_retries_.value();
    stats.device_faults = device_faults_.value();
    stats.sync_failures = sync_failures_.value();
    stats.breaker_opens = breaker_opens_.value();
    stats.breaker_closes = breaker_closes_.value();
    stats.probe_attempts = probe_attempts_.value();
    stats.cpu_fallback_buckets = cpu_fallback_buckets_.value();
    stats.cpu_fallback_lookups = cpu_fallback_lookups_.value();
    stats.faults_injected =
        slot_a_.injector.total_injected() + slot_b_.injector.total_injected();
    return stats;
  }

  /// The server's metrics registry: every ServeStats counter above plus
  /// the device-level `gpusim.*` metrics of both snapshot slots. Hand it
  /// to obs::MetricsRegistry::ToJson/ToText for export, or CollectWindow()
  /// for interval rates.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Stops admission, drains both lanes, and joins the workers. Safe to
  /// call more than once.
  void Shutdown() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    read_queue_.Close();
    update_queue_.Close();
    if (read_worker_.joinable()) read_worker_.join();
    if (update_worker_.joinable()) update_worker_.join();
  }

 private:
  /// One snapshot instance: a full tree with its own registry, device,
  /// transfer engine, and fault injector, so the two instances share no
  /// mutable state. The breaker fields are touched only by the read
  /// worker (the snapshot handshake keeps the writer off a pinned slot).
  struct TreeSlot {
    PageRegistry registry;
    gpu::Device device;
    gpu::TransferEngine transfer;
    HBRegularTree<K> tree;
    fault::FaultInjector injector;

    // Circuit-breaker state (read worker only).
    int consecutive_failures = 0;
    bool breaker_open = false;
    int buckets_since_probe = 0;

    TreeSlot(const ServerOptions& options, std::uint64_t slot_index)
        : device(options.platform.gpu),
          transfer(&device, options.platform.pcie),
          tree(MakeTreeConfig(options), &registry, &device, &transfer),
          injector(SlotFaultConfig(options.fault, slot_index)) {}

    static typename HBRegularTree<K>::Config MakeTreeConfig(
        const ServerOptions& options) {
      typename HBRegularTree<K>::Config config;
      config.tree.leaf_fill = options.leaf_fill;
      return config;
    }

    /// Decorrelates the two slots' fault streams without asking callers
    /// for two seeds.
    static fault::FaultConfig SlotFaultConfig(fault::FaultConfig config,
                                              std::uint64_t slot_index) {
      config.seed += slot_index * 7919;
      return config;
    }
  };

  struct ReadOp {
    K key;
    int max_matches = 0;  // 0 = point lookup
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<ReadResult<K>> done;
  };

  struct UpdateOp {
    UpdateQuery<K> query;
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<UpdateResult> done;
  };

  explicit Server(const ServerOptions& options)
      : options_(options),
        read_queue_(options.queue_capacity),
        update_queue_(options.queue_capacity),
        slot_a_(options, 0),
        slot_b_(options, 1),
        snapshots_(&slot_a_, &slot_b_) {}

  Status Init(const std::vector<KeyValue<K>>& sorted_pairs) {
    if (options_.pipeline.bucket_size <= 0) {
      return Status::InvalidArgument("pipeline.bucket_size must be positive");
    }
    if (options_.pipeline_depth < 1) {
      return Status::InvalidArgument("pipeline_depth must be >= 1");
    }
    if (options_.update_batch_size <= 0) {
      return Status::InvalidArgument("update_batch_size must be positive");
    }
    if (options_.breaker_failure_threshold <= 0 ||
        options_.breaker_probe_interval <= 0) {
      return Status::InvalidArgument("breaker thresholds must be positive");
    }
    // Bootstrap is fault-free: the injectors arm only after both mirrors
    // built, so an injected fault can never masquerade as "tree does not
    // fit" at startup.
    if (!slot_a_.tree.Build(sorted_pairs) ||
        !slot_b_.tree.Build(sorted_pairs)) {
      return Status::DeviceOom("I-segment does not fit into device memory");
    }
    if (options_.fault.enabled()) {
      slot_a_.device.set_fault_injector(&slot_a_.injector);
      slot_b_.device.set_fault_injector(&slot_b_.injector);
    }
    // Both slots publish into the server's registry: gpusim.* counters
    // aggregate across the two devices.
    slot_a_.device.set_metrics_registry(&metrics_);
    slot_b_.device.set_metrics_registry(&metrics_);
    started_at_ = Clock::now();
    read_worker_ = std::thread([this] { ReadLoop(); });
    update_worker_ = std::thread([this] { UpdateLoop(); });
    return Status::Ok();
  }

  std::future<ReadResult<K>> AdmitRead(ReadOp op,
                                       std::chrono::microseconds deadline) {
    op.admitted = Clock::now();
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    std::future<ReadResult<K>> result = op.done.get_future();
    if (op.deadline != Clock::time_point::max()) {
      switch (read_queue_.PushUntil(std::move(op), op.deadline)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout: {
          shed_reads_.Increment();
          ReadResult<K> shed;
          shed.status = Status::DeadlineExceeded("read shed at admission");
          op.done.set_value(std::move(shed));
          break;
        }
        case PushResult::kClosed: {
          ReadResult<K> rejected;
          rejected.status =
              Status::Unavailable("read submitted to a stopped server");
          op.done.set_value(std::move(rejected));
          break;
        }
      }
    } else if (!read_queue_.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      ReadResult<K> rejected;
      rejected.status =
          Status::Unavailable("read submitted to a stopped server");
      op.done.set_value(std::move(rejected));
    }
    return result;
  }

  void RecordLatency(obs::Histogram* histogram, Clock::time_point start) {
    histogram->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }

  // -- Circuit breaker (read worker only) ---------------------------------

  void OpenBreaker(TreeSlot& slot) {
    if (slot.breaker_open) return;
    slot.breaker_open = true;
    slot.buckets_since_probe = 0;
    breaker_opens_.Increment();
    HBTREE_TRACE_INSTANT("breaker.open", "serve");
  }

  void CloseBreaker(TreeSlot& slot) {
    slot.breaker_open = false;
    slot.consecutive_failures = 0;
    breaker_closes_.Increment();
    HBTREE_TRACE_INSTANT("breaker.close", "serve");
  }

  /// One GPU bucket through the fault-tolerant pipeline; false on a
  /// terminal device failure (results are then unreliable and the caller
  /// must re-serve the bucket on the CPU).
  bool TryGpuBucket(TreeSlot& slot, const std::vector<K>& keys,
                    std::vector<LookupResult<K>>* results) {
    PipelineStats ps;
    PipelineConfig config = options_.pipeline;
    if (options_.pipeline_depth > 1) {
      // Split the batch actually dispatched, not the configured bucket
      // size: partial admission buckets (shipped by max_batch_delay)
      // would otherwise fit in one sub-bucket and lose the overlap.
      const int target = static_cast<int>(
          (keys.size() + options_.pipeline_depth - 1) /
          static_cast<std::size_t>(options_.pipeline_depth));
      config.bucket_size = std::max(
          1, std::min(options_.pipeline.bucket_size, target));
    }
    const Status status =
        TryRunSearchPipeline(slot.tree, keys.data(), keys.size(),
                             config, results, &ps);
    transfer_retries_.Add(ps.transfer_retries);
    kernel_retries_.Add(ps.kernel_retries);
    if (!status.ok()) return false;
    std::lock_guard<std::mutex> lock(sim_mutex_);
    sim_pipeline_us_ += ps.total_us;
    return true;
  }

  /// Recovery probe: resync the mirror if stale, then run this bucket
  /// through the GPU path. The probe is not wasted work — on success its
  /// results serve the bucket.
  bool ProbeSlot(TreeSlot& slot, const std::vector<K>& keys,
                 std::vector<LookupResult<K>>* results) {
    probe_attempts_.Increment();
    HBTREE_TRACE_INSTANT("breaker.probe", "serve");
    if (!slot.tree.mirror_valid() &&
        !slot.tree.TrySyncISegment().ok()) {
      return false;
    }
    return TryGpuBucket(slot, keys, results);
  }

  /// Serves one bucket of point lookups, always filling `results`: the
  /// GPU pipeline when the slot's breaker is closed and its mirror is
  /// fresh, the CPU-only pipelined search otherwise. Correctness rule: a
  /// stale mirror (failed sync) must never serve GPU lookups — it would
  /// silently return pre-update results.
  void DispatchBucket(TreeSlot& slot, const std::vector<K>& keys,
                      std::vector<LookupResult<K>>* results) {
    HBTREE_TRACE_SPAN_ARG("bucket.dispatch", "serve", "keys",
                          static_cast<double>(keys.size()));
    if (!slot.breaker_open && !slot.tree.mirror_valid()) OpenBreaker(slot);

    if (!slot.breaker_open) {
      if (TryGpuBucket(slot, keys, results)) {
        slot.consecutive_failures = 0;
        return;
      }
      device_faults_.Increment();
      if (++slot.consecutive_failures >=
          options_.breaker_failure_threshold) {
        OpenBreaker(slot);
      }
    } else if (++slot.buckets_since_probe >=
               options_.breaker_probe_interval) {
      slot.buckets_since_probe = 0;
      if (ProbeSlot(slot, keys, results)) {
        CloseBreaker(slot);
        return;
      }
    }

    // Degraded mode: the host tree is complete, so the software-pipelined
    // CPU search answers the bucket exactly — reduced throughput, same
    // results.
    PipelinedSearch(slot.tree.host_tree(), keys.data(), keys.size(),
                    options_.cpu_fallback_depth, results->data());
    cpu_fallback_buckets_.Increment();
    cpu_fallback_lookups_.Add(keys.size());
  }

  void ReadLoop() {
    HBTREE_TRACE_THREAD_NAME("serve.read_worker");
    const std::size_t bucket_size =
        static_cast<std::size_t>(options_.pipeline.bucket_size);
    std::vector<ReadOp> batch;
    std::vector<K> keys;
    std::vector<std::size_t> key_op;  // bucket position of keys[i]
    std::vector<LookupResult<K>> results;
    for (;;) {
      batch.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("bucket.fill", "serve");
        n = read_queue_.PopBatch(&batch, bucket_size,
                                 std::chrono::microseconds(10'000),
                                 options_.max_batch_delay);
      }
      if (n == 0) {
        if (read_queue_.closed() && read_queue_.size() == 0) return;
        continue;
      }

      // Load shedding: an op whose deadline passed while it queued gets a
      // typed timeout now instead of a stale-but-late answer.
      const Clock::time_point now = Clock::now();
      std::size_t live = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (now > batch[i].deadline) {
          shed_reads_.Increment();
          ReadResult<K> shed;
          shed.status =
              Status::DeadlineExceeded("read deadline passed in queue");
          batch[i].done.set_value(std::move(shed));
          continue;
        }
        if (live != i) batch[live] = std::move(batch[i]);
        ++live;
      }
      batch.resize(live);
      if (batch.empty()) continue;

      auto guard = snapshots_.Acquire();
      TreeSlot& slot = guard.slot();

      keys.clear();
      key_op.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches == 0) {
          keys.push_back(batch[i].key);
          key_op.push_back(i);
        }
      }

      std::vector<ReadResult<K>> out(batch.size());
      if (!keys.empty()) {
        results.assign(keys.size(), LookupResult<K>{});
        DispatchBucket(slot, keys, &results);
        for (std::size_t i = 0; i < keys.size(); ++i) {
          out[key_op[i]].lookup = results[i];
        }
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches > 0) {
          // Range queries resolve against the same pinned snapshot; the
          // leaf-sequential scan is the CPU's share regardless (Section
          // 5.4), so it runs host-side here.
          out[i].range.resize(batch[i].max_matches);
          const int matched = slot.tree.host_tree().RangeScan(
              batch[i].key, batch[i].max_matches, out[i].range.data());
          out[i].range.resize(matched);
        }
      }

      read_buckets_.Increment();
      {
        HBTREE_TRACE_SPAN_ARG("bucket.complete", "serve", "ops",
                              static_cast<double>(batch.size()));
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const bool is_range = batch[i].max_matches > 0;
          batch[i].done.set_value(std::move(out[i]));
          RecordLatency(&read_latency_, batch[i].admitted);
          if (is_range) {
            ranges_done_.Increment();
          } else {
            lookups_done_.Increment();
          }
        }
      }
    }
  }

  void UpdateLoop() {
    HBTREE_TRACE_THREAD_NAME("serve.update_worker");
    std::vector<UpdateOp> ops;
    std::vector<UpdateQuery<K>> batch;
    std::vector<std::size_t> live;
    for (;;) {
      ops.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("update.fill", "serve");
        n = update_queue_.PopBatch(
            &ops, static_cast<std::size_t>(options_.update_batch_size),
            std::chrono::microseconds(10'000), options_.max_batch_delay);
      }
      if (n == 0) {
        if (update_queue_.closed() && update_queue_.size() == 0) return;
        continue;
      }

      // Shed expired updates before committing anything: a shed update is
      // promised to NOT have been applied.
      const Clock::time_point now = Clock::now();
      batch.clear();
      live.clear();
      batch.reserve(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (now > ops[i].deadline) {
          shed_updates_.Increment();
          ops[i].done.set_value(UpdateResult{
              Status::DeadlineExceeded("update deadline passed in queue"),
              0});
          continue;
        }
        live.push_back(i);
        batch.push_back(ops[i].query);
      }
      if (batch.empty()) continue;

      // Left-right commit: apply to the standby instance, swap the
      // epoch so new read buckets see the batch, drain readers still on
      // the old instance, then converge it with the same batch. Host
      // application always completes; a failed device sync only leaves
      // that slot's mirror stale (the read worker's breaker reroutes it
      // to the CPU until a probe resyncs), so the updates commit and
      // their futures succeed either way.
      BatchUpdateStats first_pass{};
      bool recorded = false;
      Status sync_status = Status::Ok();
      std::uint64_t sync_retries = 0;
      {
        HBTREE_TRACE_SPAN_ARG("update.commit", "serve", "updates",
                              static_cast<double>(batch.size()));
        snapshots_.Publish([&](TreeSlot& slot) {
          BatchUpdateStats pass;
          const Status status =
              TryRunBatchUpdate(slot.tree, batch, options_.update_method,
                                options_.update, &pass);
          sync_retries += pass.sync_retries;
          if (!status.ok() && sync_status.ok()) sync_status = status;
          if (!recorded) {
            first_pass = pass;
            recorded = true;
          }
        });
      }
      sync_retries_.Add(sync_retries);
      if (!sync_status.ok()) {
        sync_failures_.Increment();
      }

      const std::uint64_t seq =
          committed_batches_.fetch_add(1, std::memory_order_acq_rel) + 1;
      committed_batches_metric_.Increment();
      epoch_gauge_.Set(static_cast<double>(snapshots_.epoch()));
      {
        std::lock_guard<std::mutex> lock(sim_mutex_);
        sim_update_us_ += first_pass.total_us;
        applied_ += first_pass.applied;
        structural_ += first_pass.structural;
      }
      for (std::size_t idx : live) {
        UpdateOp& op = ops[idx];
        op.done.set_value(UpdateResult{Status::Ok(), seq});
        RecordLatency(&update_latency_, op.admitted);
        updates_done_.Increment();
      }
    }
  }

  ServerOptions options_;

  /// Owns every serving counter/histogram plus the slots' gpusim.*
  /// metrics. Declared before the tree slots: slot destructors release
  /// device memory, which updates the used-bytes gauge, so the registry
  /// must outlive them.
  obs::MetricsRegistry metrics_;

  AdmissionQueue<ReadOp> read_queue_;
  AdmissionQueue<UpdateOp> update_queue_;
  TreeSlot slot_a_;
  TreeSlot slot_b_;
  SnapshotPair<TreeSlot> snapshots_;

  std::thread read_worker_;
  std::thread update_worker_;
  std::atomic<bool> stopped_{false};
  // Initialized at declaration (not only in Init()) so Stats() on a
  // partially constructed server can never divide by a garbage duration.
  Clock::time_point started_at_ = Clock::now();

  // Metric handles into metrics_ (declared above, before the slots).
  // Update hot paths cost exactly what the raw std::atomic members they
  // replaced did (one relaxed RMW).
  obs::Counter& lookups_done_ = metrics_.counter("serve.lookups");
  obs::Counter& ranges_done_ = metrics_.counter("serve.ranges");
  obs::Counter& updates_done_ = metrics_.counter("serve.updates");
  obs::Counter& read_buckets_ = metrics_.counter("serve.read_buckets");
  // Stays a raw atomic: the commit-sequence handoff needs acq_rel RMW
  // semantics the registry's relaxed counters deliberately do not offer.
  std::atomic<std::uint64_t> committed_batches_{0};
  obs::Counter& committed_batches_metric_ =
      metrics_.counter("serve.committed_batches");
  obs::Gauge& epoch_gauge_ = metrics_.gauge("serve.epoch");
  obs::Histogram& read_latency_ = metrics_.histogram("serve.read_latency");
  obs::Histogram& update_latency_ =
      metrics_.histogram("serve.update_latency");

  obs::Counter& shed_reads_ = metrics_.counter("serve.shed_reads");
  obs::Counter& shed_updates_ = metrics_.counter("serve.shed_updates");
  obs::Counter& transfer_retries_ =
      metrics_.counter("serve.transfer_retries");
  obs::Counter& kernel_retries_ = metrics_.counter("serve.kernel_retries");
  obs::Counter& sync_retries_ = metrics_.counter("serve.sync_retries");
  obs::Counter& device_faults_ = metrics_.counter("serve.device_faults");
  obs::Counter& sync_failures_ = metrics_.counter("serve.sync_failures");
  obs::Counter& breaker_opens_ = metrics_.counter("serve.breaker_opens");
  obs::Counter& breaker_closes_ = metrics_.counter("serve.breaker_closes");
  obs::Counter& probe_attempts_ = metrics_.counter("serve.probe_attempts");
  obs::Counter& cpu_fallback_buckets_ =
      metrics_.counter("serve.cpu_fallback_buckets");
  obs::Counter& cpu_fallback_lookups_ =
      metrics_.counter("serve.cpu_fallback_lookups");

  mutable std::mutex sim_mutex_;
  double sim_pipeline_us_ = 0;
  double sim_update_us_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t structural_ = 0;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SERVER_H_
