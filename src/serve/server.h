#ifndef HBTREE_SERVE_SERVER_H_
#define HBTREE_SERVE_SERVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "core/workload.h"
#include "cpubtree/pipelined_search.h"
#include "fault/fault_injector.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_regular.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/admission_queue.h"
#include "serve/fair_queue.h"
#include "serve/latency_histogram.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "serve/tenant.h"
#include "sim/platform.h"

namespace hbtree::serve {

/// Default serving SLOs (see ServerOptions::slos): wall-clock read p99
/// under 200 ms with a 1% error budget, and at most 1% of admitted
/// operations shed. Deliberately loose — they are burn-rate baselines
/// for dashboards, not this host's performance envelope; benches and
/// deployments tighten them per workload.
inline std::vector<obs::SloSpec> DefaultServeSlos() {
  obs::SloSpec read_p99;
  read_p99.name = "read_p99";
  read_p99.kind = obs::SloSpec::Kind::kLatencyP99;
  read_p99.histogram = "serve.read_latency";
  read_p99.threshold_us = 200'000;
  read_p99.budget = 0.01;

  obs::SloSpec shed_ratio;
  shed_ratio.name = "shed_ratio";
  shed_ratio.kind = obs::SloSpec::Kind::kRatio;
  shed_ratio.bad_counters = {"serve.shed_reads", "serve.shed_updates"};
  shed_ratio.total_counters = {"serve.lookups",    "serve.ranges",
                               "serve.updates",    "serve.shed_reads",
                               "serve.shed_updates"};
  shed_ratio.budget = 0.01;

  return {read_p99, shed_ratio};
}

/// Per-tenant SLO targets over the `serve.tenant<T>.*` metric series:
/// for every tenant, a wall read-p99 objective against its own latency
/// histogram and a shed-ratio objective over its own shed/served
/// counters. Append these to ServerOptions::slos (alongside or instead
/// of DefaultServeSlos) so the SloTracker burns per-tenant budgets —
/// under overload the hostile tenant's shed SLO burns while the
/// high-priority tenant's stays green, and that asymmetry is the whole
/// QoS story in one dashboard row.
inline std::vector<obs::SloSpec> TenantServeSlos(
    const std::vector<TenantSpec>& tenants) {
  std::vector<obs::SloSpec> slos;
  slos.reserve(tenants.size() * 2);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantSpec& spec = tenants[t];
    const int id = static_cast<int>(t);
    const std::string prefix = "t" + std::to_string(t) + "_";

    obs::SloSpec p99;
    p99.name = prefix + "read_p99";
    p99.kind = obs::SloSpec::Kind::kLatencyP99;
    p99.histogram = obs::MetricsRegistry::TenantName("serve", id,
                                                     "read_latency");
    p99.threshold_us = spec.read_p99_slo_us;
    p99.budget = spec.slo_budget;
    slos.push_back(p99);

    obs::SloSpec shed;
    shed.name = prefix + "shed";
    shed.kind = obs::SloSpec::Kind::kRatio;
    shed.bad_counters = {
        obs::MetricsRegistry::TenantName("serve", id, "shed_reads"),
        obs::MetricsRegistry::TenantName("serve", id, "shed_updates")};
    shed.total_counters = {
        obs::MetricsRegistry::TenantName("serve", id, "lookups"),
        obs::MetricsRegistry::TenantName("serve", id, "ranges"),
        obs::MetricsRegistry::TenantName("serve", id, "updates"),
        obs::MetricsRegistry::TenantName("serve", id, "shed_reads"),
        obs::MetricsRegistry::TenantName("serve", id, "shed_updates")};
    shed.budget = spec.slo_budget;
    slos.push_back(shed);
  }
  return slos;
}

/// Serving-layer tuning knobs.
struct ServerOptions {
  /// Simulated platform each tree instance runs against (every snapshot
  /// slot gets its own device + transfer engine, so the reader's kernel
  /// launches never share mutable simulator state with the writer's
  /// I-segment syncs).
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");

  /// Pipeline configuration for read buckets. `bucket_size` is the
  /// admission bucket M (the paper settles on 16K, Section 6.3); the CPU
  /// rate fields should come from calibration (see
  /// bench_support/serve_runner.h).
  PipelineConfig pipeline;

  /// GPU sub-buckets per admission bucket. 1 ships each admission bucket
  /// as a single pipeline bucket (no intra-dispatch overlap); >1 splits
  /// it so the double-buffered schedule overlaps consecutive sub-buckets'
  /// H2D/kernel/D2H stages within one dispatch — the paper's Fig. 10
  /// pipelining applied to serving, and what makes the overlap visible
  /// on the modelled trace tracks (--trace_out).
  int pipeline_depth = 1;

  /// Smallest sub-bucket worth a separate kernel launch. Partial
  /// admission buckets (common under sharding, where each queue sees
  /// 1/num_shards of the arrival stream) are dispatched with a reduced
  /// effective depth so the per-launch setup cost is amortized over at
  /// least this many keys — splitting a trickle bucket pipeline_depth
  /// ways would multiply the fixed cost instead of hiding it.
  int min_sub_bucket = 1024;

  /// Key-range shards. Each shard is an independent snapshot pair with
  /// its own admission queues, update worker, read workers and circuit
  /// breakers; the bootstrap key space is split into `num_shards`
  /// contiguous ranges of equal cardinality. Shards commit batches and
  /// dispatch buckets in parallel, and each shard's tree is ~1/N the
  /// size (one fewer inner level to search at sufficient N).
  int num_shards = 1;

  /// Read workers (bucket dispatchers) per shard, all drawing from the
  /// shard's read queue and dispatching against the same pinned snapshot.
  /// The shared simulated device is thread-safe (see gpusim/device.h);
  /// each in-flight bucket needs its own query/result buffers in device
  /// memory, which Create() validates up front.
  int num_read_workers = 1;

  /// Batch-update configuration and method (Section 5.6). The default
  /// asynchronous-parallel method matches the epoch-swap design: the
  /// whole batch lands in main memory, then one bulk I-segment sync.
  BatchUpdateConfig update;
  UpdateMethod update_method = UpdateMethod::kAsyncParallel;

  /// Tree build configuration. Leaf slack keeps most online inserts
  /// non-structural, as the paper's update analysis assumes — and it
  /// must sit BELOW the tree's gap_spill_occupancy (0.85): at 0.7 fill
  /// every leaf cache line keeps at least one gap (2-3 of 4 pairs
  /// live), so a batched insert is usually an in-line patch of one warm
  /// line instead of a whole-leaf redistribution. 0.9 fill looked
  /// denser but started every leaf above the spill threshold, turning
  /// most line-full inserts into 256-pair rewrites.
  double leaf_fill = 0.7;

  /// Admission-queue capacity per lane (reads / updates, per shard);
  /// producers block when a lane is full (backpressure).
  std::size_t queue_capacity = 64 * 1024;

  /// Updates per committed batch (flush threshold). Gapped leaves make
  /// small commits cheap — most ops patch a cache line in place and the
  /// mirror re-syncs only dirtied deltas — so the batch no longer needs
  /// to be huge to amortise publish cost, and a smaller flush threshold
  /// shortens the commit span an admitted update can sit behind.
  int update_batch_size = 4 * 1024;

  /// Scheduling niceness applied to read dispatch workers (Linux only;
  /// 0 disables). Read workers chew through deep asynchronous client
  /// windows — thousands of lookups in flight absorb a few extra
  /// milliseconds of dispatch delay without any op noticing — while
  /// every millisecond the update committer is preempted accrues on the
  /// wall latency of every update queued behind the commit. On hosts
  /// with fewer cores than serving threads, giving the bulk read
  /// dispatchers a small positive nice keeps the commit path scheduled;
  /// raising one's own niceness needs no privilege.
  int read_worker_nice = 2;

  /// How long a batcher waits for a partial bucket/batch to fill before
  /// shipping it — the added latency bound under light load. Read workers
  /// scale this window by num_shards: a shard sees ~1/N of the aggregate
  /// arrival rate, so holding the window fixed would shrink bucket fill
  /// by N and let the per-bucket kernel/transfer setup cost dominate.
  /// Scaling keeps the expected fill (and the fixed-cost share per op)
  /// constant while the wait stays at the single-shard dispatch interval.
  std::chrono::microseconds max_batch_delay{200};

  // -- Observability -------------------------------------------------------

  /// When positive, a background reporter thread collects
  /// MetricsRegistry::CollectWindow() every interval while the server is
  /// running and hands the windowed snapshot to `metrics_report_sink`
  /// (or dumps it as text to stderr when no sink is set).
  std::chrono::milliseconds metrics_report_interval{0};
  std::function<void(const obs::MetricsSnapshot&)> metrics_report_sink;

  /// Service-level objectives fed from the reporter's windowed snapshots
  /// (and a final window at Shutdown()). Burn rates surface in
  /// ServeStats::slos and as `slo.<name>.*` registry gauges. Clear to
  /// disable tracking.
  std::vector<obs::SloSpec> slos = DefaultServeSlos();

  /// Keyspace-heat sketch shape (see obs::KeyRangeSketch): bins per
  /// shard, and records between automatic count halvings. The default
  /// decay cadence is high enough that bounded bench runs never decay
  /// (keeping shard-merge reconciliation exact).
  int heat_fanout = 64;
  std::uint64_t heat_decay_every = 1ull << 22;
  /// Merged hot-range report shape (see obs::MergeSketches): entries in
  /// the top-K, and the hot flag's multiple over the uniform per-bin
  /// expectation.
  int heat_top_k = 32;
  double heat_hot_factor = 4.0;
  /// Segment-temperature classification thresholds (see
  /// obs::SegmentTemperature), applied per reporter epoch.
  obs::SegmentTemperature::Options heat_temperature;

  // -- Fault tolerance ----------------------------------------------------

  /// Fault-injection policy armed on each snapshot slot's device after a
  /// clean bootstrap (every slot gets a decorrelated seed). Disabled by
  /// default; arm it in fault-tolerance tests and benches.
  fault::FaultConfig fault;

  /// Circuit breaker: after this many consecutive GPU bucket failures the
  /// slot's device path opens (buckets serve CPU-only) ...
  int breaker_failure_threshold = 3;
  /// ... and every Nth bucket while open probes the device path (resync
  /// if stale, then one pipelined bucket); a successful probe closes the
  /// breaker.
  int breaker_probe_interval = 4;

  /// Software-pipelining depth for the CPU-only degraded path (16 is the
  /// paper's optimum, Figure 7).
  int cpu_fallback_depth = 16;

  /// Default per-request deadline budget; zero means no deadline. A
  /// request whose deadline passes before it is dispatched resolves with
  /// kDeadlineExceeded instead of occupying the pipeline (load shedding).
  std::chrono::microseconds default_deadline{0};

  // -- Multi-tenant QoS ----------------------------------------------------

  /// Tenant topology: every request carries a TenantId indexing this
  /// vector, each tenant gets its own bounded admission lane per shard
  /// (queue_capacity each), and bucket windows drain the lanes by
  /// deficit round-robin over the weights (see FairAdmissionQueue).
  /// Empty means DefaultTenants(): one default tenant, weight 1, normal
  /// priority, blocking admission — exactly the pre-QoS single-FIFO
  /// behaviour.
  std::vector<TenantSpec> tenants;

  /// Adaptive bucket sizing: a per-shard controller lowers the effective
  /// admission bucket M when fill windows repeatedly expire less than
  /// half full with the queue drained (true light load — a short window
  /// with backlog left behind just means a co-worker took the other
  /// half), or when a quarter of a batch is near its deadline (smaller
  /// buckets ship sooner, trading per-op fixed cost for latency), and
  /// restores it under sustained full windows. Decisions surface as
  /// serve.shard<N>.bucket_m / m_shrinks / m_grows and as
  /// bucket.m_shrink / bucket.m_grow trace instants. The effective M
  /// only ever shrinks below pipeline.bucket_size, so the bucket
  /// buffers validated at startup always suffice.
  bool adaptive_bucket = true;
  /// Consecutive half-empty (or deadline-tight) windows before a shrink.
  int adapt_shrink_after = 4;
  /// Consecutive full windows before growing back toward the configured M.
  int adapt_grow_after = 2;
  /// Smallest effective M the controller may reach; 0 derives
  /// max(min_sub_bucket, bucket_size/16), clamped to bucket_size.
  int adapt_min_bucket = 0;

  /// When positive, each read worker sleeps after dispatching a bucket
  /// until the bucket's wall time is at least `modelled_us x
  /// model_pacing` — serving throughput then tracks the simulated
  /// platform's capacity instead of this host's, which makes "N x
  /// capacity" overload experiments deterministic (the modelled time is
  /// deterministic; host speed is not). 0 disables pacing. The sleep
  /// happens before the bucket's futures resolve, so client-observed
  /// latency includes the modelled service time.
  double model_pacing = 0;
};

/// Result of one read operation (point lookup or range query). `status`
/// is kOk for served requests; shed or rejected requests carry
/// kDeadlineExceeded / kUnavailable / kInvalidArgument and leave the
/// payload fields empty.
template <typename K>
struct ReadResult {
  Status status = Status::Ok();
  LookupResult<K> lookup;           // valid for point lookups
  std::vector<KeyValue<K>> range;   // valid for range queries
};

/// Result of one update. `sequence` is the commit sequence number of the
/// batch that applied it within its key-range shard (valid when status is
/// kOk); sequences are monotonic per shard, not totally ordered across
/// shards.
struct UpdateResult {
  Status status = Status::Ok();
  std::uint64_t sequence = 0;
};

/// Multi-threaded serving front-end over the regular HB+-tree.
///
/// Client threads submit point lookups, range queries, and updates; each
/// request routes to the key-range shard owning its key. A shard is an
/// independent epoch-swapped snapshot pair (two full tree instances) with
/// its own admission queues, one update worker, and
/// `num_read_workers` read workers batching admitted reads into
/// pipeline-sized buckets and dispatching them through the heterogeneous
/// search pipeline. Shards share nothing but the metrics registry, so
/// they commit batches and dispatch buckets in parallel; within a shard,
/// concurrent read workers share the pinned snapshot's simulated device
/// (thread-safe, see gpusim/device.h).
///
/// Range queries resolve per-shard-snapshot consistent: the scan starts
/// in the shard owning the start key and continues into higher shards,
/// pinning each shard's snapshot as it enters — each shard's segment is
/// consistent, but a scan spanning shards may observe different commit
/// points in different shards (same contract as per-shard sequences).
///
/// Fault tolerance: device failures surface as typed Statuses from the
/// Try* pipeline entry points and are absorbed here — a per-slot circuit
/// breaker flips the bucket path to the CPU-only pipelined search after
/// repeated failures (the host tree is always complete, so degraded mode
/// loses throughput, not correctness) and periodic probes restore the GPU
/// path once the device recovers. Breaker state is per snapshot slot and
/// shared by the shard's read workers (atomics; probes take the slot's
/// exclusive lock so a resync never races an in-flight bucket). Requests
/// never abort the process and every future resolves.
///
/// Threads: any number of producers; per shard, `num_read_workers` read
/// workers and one update committer; plus an optional metrics reporter.
/// All Submit* methods are thread-safe and return futures.
template <typename K>
class Server {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds a server or reports why it cannot be built (invalid options,
  /// I-segment mirror or per-worker bucket buffers exceeding device
  /// memory) via `*status_out` — construction failures are expected
  /// operating conditions on a capacity-limited device, not programming
  /// errors, so they do not abort. Returns nullptr on failure.
  static std::unique_ptr<Server> Create(
      const ServerOptions& options,
      const std::vector<KeyValue<K>>& sorted_pairs,
      Status* status_out = nullptr) {
    std::unique_ptr<Server> server(new Server(options));
    const Status status = server->Init(sorted_pairs);
    if (status_out != nullptr) *status_out = status;
    if (!status.ok()) server.reset();
    return server;
  }

  ~Server() { Shutdown(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Client API ---------------------------------------------------------

  /// Admits a point lookup on behalf of `tenant` (an index into
  /// ServerOptions::tenants; 0 is always valid). Blocks if the tenant's
  /// lane on the owning shard is full (until the deadline, if one
  /// applies) unless the tenant is configured shed_on_full. `deadline`
  /// overrides options.default_deadline for this request; zero keeps the
  /// default.
  std::future<ReadResult<K>> SubmitLookup(
      K key, std::chrono::microseconds deadline = {}, TenantId tenant = 0) {
    ReadOp op;
    op.key = key;
    op.max_matches = 0;
    op.tenant = tenant;
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits a range query for up to `max_matches` pairs with key >= key.
  /// A non-positive `max_matches` resolves the future immediately with
  /// kInvalidArgument (a malformed request must not crash the server).
  std::future<ReadResult<K>> SubmitRange(
      K key, int max_matches, std::chrono::microseconds deadline = {},
      TenantId tenant = 0) {
    ReadOp op;
    op.key = key;
    op.max_matches = max_matches;
    op.tenant = tenant;
    if (max_matches <= 0) {
      std::future<ReadResult<K>> result = op.done.get_future();
      ReadResult<K> rejected;
      rejected.status =
          Status::InvalidArgument("range max_matches must be positive");
      op.done.set_value(std::move(rejected));
      return result;
    }
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits an update. On success the future carries the sequence number
  /// of the shard batch that committed it (after both snapshot instances
  /// converged); shed or rejected updates carry a non-ok status and were
  /// NOT applied.
  std::future<UpdateResult> SubmitUpdate(
      UpdateQuery<K> update, std::chrono::microseconds deadline = {},
      TenantId tenant = 0) {
    UpdateOp op;
    op.query = update;
    op.tenant = tenant;
    op.admitted = Clock::now();
    std::future<UpdateResult> result = op.done.get_future();
    if (!ValidTenant(tenant)) {
      op.done.set_value(UpdateResult{
          Status::InvalidArgument("unknown tenant id"), 0});
      return result;
    }
    const TenantSpec& spec = tenants_[static_cast<std::size_t>(tenant)];
    op.priority = spec.priority;
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    Shard& shard = *shards_[ShardFor(update.pair.key)];
    FairAdmissionQueue<UpdateOp>& queue = shard.update_queue;
    const std::size_t lane = static_cast<std::size_t>(tenant);
    const bool bounded = op.deadline != Clock::time_point::max();
    if (bounded || spec.shed_on_full) {
      // A shed_on_full tenant without a deadline still takes the bounded
      // path: PushUntil sheds immediately on a full lane and otherwise
      // admits without waiting, so the far-out limit is never waited on.
      const Clock::time_point limit =
          bounded ? op.deadline : op.admitted + std::chrono::hours(1);
      switch (queue.PushUntil(lane, std::move(op), limit)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout:
          CountShedUpdate(shard, tenant);
          op.done.set_value(UpdateResult{
              Status::DeadlineExceeded("update shed at admission"), 0});
          break;
        case PushResult::kClosed:
          op.done.set_value(UpdateResult{
              Status::Unavailable("update submitted to a stopped server"),
              0});
          break;
      }
    } else if (!queue.Push(lane, std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      op.done.set_value(UpdateResult{
          Status::Unavailable("update submitted to a stopped server"), 0});
    }
    return result;
  }

  // Blocking conveniences.
  LookupResult<K> Lookup(K key) { return SubmitLookup(key).get().lookup; }
  std::vector<KeyValue<K>> Range(K key, int max_matches) {
    return SubmitRange(key, max_matches).get().range;
  }
  UpdateResult Update(UpdateQuery<K> update) {
    return SubmitUpdate(update).get();
  }

  // -- Introspection ------------------------------------------------------

  /// Number of update batches fully committed (both instances converged),
  /// summed over shards.
  std::uint64_t committed_batches() const {
    return committed_batches_.load(std::memory_order_acquire);
  }
  /// Sum of the shards' snapshot epochs: the number of update batches
  /// whose first (visible) application has been published. A lookup
  /// admitted after a batch's future resolved sees that batch (it routes
  /// to the shard that committed it).
  std::uint64_t epoch() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard->snapshots.epoch();
    return sum;
  }

  ServeStats Stats() const {
    ServeStats stats;
    stats.num_shards = options_.num_shards;
    stats.num_read_workers = options_.num_read_workers;
    stats.lookups = lookups_done_.value();
    stats.ranges = ranges_done_.value();
    stats.updates = updates_done_.value();
    stats.read_buckets = read_buckets_.value();
    stats.update_batches = committed_batches();
    stats.avg_bucket_fill =
        stats.read_buckets > 0
            ? static_cast<double>(stats.lookups) / stats.read_buckets
            : 0;
    stats.read_latency = read_latency_.LifetimeSummary();
    stats.update_latency = update_latency_.LifetimeSummary();
    stats.queue_wait = queue_wait_.LifetimeSummary();
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - started_at_).count();
    if (stats.wall_seconds > 0) {
      stats.reads_per_second =
          (stats.lookups + stats.ranges) / stats.wall_seconds;
      stats.updates_per_second = stats.updates / stats.wall_seconds;
    }
    {
      std::lock_guard<std::mutex> lock(sim_mutex_);
      stats.sim_pipeline_us = sim_pipeline_us_;
      stats.sim_update_us = sim_update_us_;
      stats.sim_sync_us = sim_sync_us_;
      stats.delta_syncs = delta_syncs_;
      stats.full_syncs = full_syncs_;
      stats.delta_sync_nodes = delta_sync_nodes_;
      stats.applied = applied_;
      stats.structural = structural_;
      // Modelled makespan: shards are independent devices, so their busy
      // times overlap; within a shard, reads and update syncs share one
      // device and are charged serially (conservative).
      for (const auto& shard : shards_) {
        stats.modelled_makespan_us =
            std::max(stats.modelled_makespan_us,
                     shard->sim_pipeline_us + shard->sim_update_us);
      }
    }
    if (stats.modelled_makespan_us > 0) {
      stats.modelled_ops_per_second =
          (stats.lookups + stats.ranges + stats.updates) * 1e6 /
          stats.modelled_makespan_us;
    }
    stats.epoch = epoch();

    stats.shed_reads = shed_reads_.value();
    stats.shed_updates = shed_updates_.value();
    stats.degraded_sheds = degraded_sheds_.value();
    stats.bucket_shrinks = m_shrinks_.value();
    stats.bucket_grows = m_grows_.value();
    stats.tenants.reserve(tenant_metrics_.size());
    for (std::size_t t = 0; t < tenant_metrics_.size(); ++t) {
      const TenantHandles& handles = tenant_metrics_[t];
      TenantServeStats tenant;
      tenant.name = tenants_[t].name;
      tenant.weight = tenants_[t].weight;
      tenant.priority = tenants_[t].priority;
      tenant.lookups = handles.lookups->value();
      tenant.ranges = handles.ranges->value();
      tenant.updates = handles.updates->value();
      tenant.shed_reads = handles.shed_reads->value();
      tenant.shed_updates = handles.shed_updates->value();
      tenant.read_latency = handles.read_latency->LifetimeSummary();
      stats.tenants.push_back(std::move(tenant));
    }
    stats.transfer_retries = transfer_retries_.value();
    stats.kernel_retries = kernel_retries_.value();
    stats.sync_retries = sync_retries_.value();
    stats.device_faults = device_faults_.value();
    stats.sync_failures = sync_failures_.value();
    stats.breaker_opens = breaker_opens_.value();
    stats.breaker_closes = breaker_closes_.value();
    stats.probe_attempts = probe_attempts_.value();
    stats.cpu_fallback_buckets = cpu_fallback_buckets_.value();
    stats.cpu_fallback_lookups = cpu_fallback_lookups_.value();
    for (const auto& shard : shards_) {
      stats.faults_injected += shard->slot_a.injector.total_injected() +
                               shard->slot_b.injector.total_injected();
    }
    stats.slos = slo_tracker_.Status();
    return stats;
  }

  /// The server's metrics registry: every ServeStats counter above, the
  /// per-shard `serve.shard<N>.*` series, plus the device-level
  /// `gpusim.*` metrics of every snapshot slot. Hand it to
  /// obs::MetricsRegistry::ToJson/ToText for export, or CollectWindow()
  /// for interval rates.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The resolved tenant topology (ServerOptions::tenants, or the
  /// implicit single default tenant).
  const std::vector<TenantSpec>& tenants() const { return tenants_; }

  /// Assembled heat section: the shards' keyspace sketches merged into a
  /// global top-K hot-range report (with per-tenant attribution), the
  /// per-stage tree-level traffic summed across shards, and the pools'
  /// latest temperature observation. Empty when heat observability is
  /// compiled out (HBTREE_OBS_HEAT=0). Thread-safe; callable while
  /// serving, though benches collect after Shutdown() for a stable view.
  obs::HeatSection Heat() const {
    obs::HeatSection heat;
#if HBTREE_OBS_HEAT
    std::vector<obs::KeyRangeSketch::Snapshot> snaps;
    snaps.reserve(shards_.size());
    for (const auto& shard : shards_) {
      if (shard->heat_sketch != nullptr) {
        snaps.push_back(shard->heat_sketch->TakeSnapshot());
      }
    }
    obs::MergeOptions merge;
    merge.top_k = options_.heat_top_k;
    merge.hot_factor = options_.heat_hot_factor;
    heat.keyspace = obs::MergeSketches(snaps, merge);
    heat.tenant_names.reserve(tenants_.size());
    for (const TenantSpec& spec : tenants_) {
      heat.tenant_names.push_back(spec.name);
    }

    // Stage traffic: same (level, class) cells summed across every
    // shard's tracers, one stage at a time.
    static constexpr const char* kStageNames[3] = {"pre_descend",
                                                   "cpu_leaf", "scan"};
    obs::LevelTraffic sums[3][obs::LevelHeatTracer::kCells] = {};
    for (const auto& shard : shards_) {
      if (shard->heat_pipeline == nullptr) continue;
      std::lock_guard<std::mutex> lock(shard->heat_pipeline->mu);
      const obs::LevelHeatTracer* tracers[3] = {
          &shard->heat_pipeline->pre_descend, &shard->heat_pipeline->cpu_leaf,
          &shard->heat_pipeline->scan};
      for (int s = 0; s < 3; ++s) {
        std::vector<obs::LevelTraffic> cells;
        tracers[s]->Collect(&cells);
        for (const obs::LevelTraffic& cell : cells) {
          const int idx =
              cell.node_class == obs::LevelHeatTracer::kOtherClass
                  ? obs::LevelHeatTracer::kCells - 1
                  : cell.level * obs::LevelHeatTracer::kClasses +
                        cell.node_class;
          obs::LevelTraffic& sum = sums[s][idx];
          sum.level = cell.level;
          sum.node_class = cell.node_class;
          sum.touches += cell.touches;
          sum.bytes += cell.bytes;
          for (int h = 0; h < 4; ++h) sum.hit_bytes[h] += cell.hit_bytes[h];
        }
      }
    }
    for (int s = 0; s < 3; ++s) {
      obs::StageHeat stage;
      stage.stage = kStageNames[s];
      for (const obs::LevelTraffic& cell : sums[s]) {
        if (cell.touches > 0 || cell.bytes > 0) stage.levels.push_back(cell);
      }
      if (!stage.levels.empty()) heat.stages.push_back(std::move(stage));
    }

    // Kernel-side level-wise traffic, summed across shards.
    for (const auto& shard : shards_) {
      if (shard->heat_pipeline == nullptr) continue;
      std::lock_guard<std::mutex> lock(shard->heat_pipeline->mu);
      const obs::PipelineHeat& hp = *shard->heat_pipeline;
      if (hp.kernel_node_loads.size() > heat.kernel.node_loads.size()) {
        heat.kernel.node_loads.resize(hp.kernel_node_loads.size(), 0);
        heat.kernel.node_queries.resize(hp.kernel_node_loads.size(), 0);
      }
      for (std::size_t l = 0; l < hp.kernel_node_loads.size(); ++l) {
        heat.kernel.node_loads[l] += hp.kernel_node_loads[l];
        heat.kernel.node_queries[l] += hp.kernel_node_queries[l];
      }
      heat.kernel.dram_bytes += hp.kernel_dram_bytes;
      heat.kernel.l2_bytes += hp.kernel_l2_bytes;
      heat.kernel.launches += hp.kernel_launches;
    }

    obs::PoolTemperature inner;
    obs::PoolTemperature leaf;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->heat_mutex);
      AccumulatePool(&inner, shard->pool_inner);
      AccumulatePool(&leaf, shard->pool_leaf);
    }
    if (inner.segments > 0) heat.pools.emplace_back("inner", inner);
    if (leaf.segments > 0) heat.pools.emplace_back("leaf", leaf);
#endif
    return heat;
  }

  /// Stops admission, drains every shard's lanes, and joins the workers.
  /// Safe to call more than once.
  void Shutdown() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    for (auto& shard : shards_) {
      shard->read_queue.Close();
      shard->update_queue.Close();
    }
    for (auto& shard : shards_) {
      for (std::thread& worker : shard->read_workers) {
        if (worker.joinable()) worker.join();
      }
      if (shard->update_worker.joinable()) shard->update_worker.join();
    }
    {
      std::lock_guard<std::mutex> lock(reporter_mutex_);
      reporter_stop_ = true;
    }
    reporter_cv_.notify_all();
    if (reporter_thread_.joinable()) reporter_thread_.join();
    // Final temperature epoch: with the workers joined the pools are
    // quiescent, so the last observation (and the mem.pool.* gauges it
    // publishes) reflects the run's end state even when no reporter ever
    // ticked.
    HBTREE_HEAT_ONLY(ObservePoolTemperatures();)
    // Flush the tail window: a run shorter than the reporting interval
    // would otherwise never report (or feed the SLO tracker) at all. The
    // flush also runs with no reporter configured when SLOs are tracked,
    // so Stats().slos reflects the run — silently to the tracker only,
    // never to stderr (that channel belongs to an explicitly configured
    // reporter).
    if (options_.metrics_report_interval.count() > 0 ||
        !options_.slos.empty()) {
      const obs::MetricsSnapshot window = metrics_.CollectWindow();
      slo_tracker_.Observe(window);
      if (options_.metrics_report_sink) {
        options_.metrics_report_sink(window);
      } else if (options_.metrics_report_interval.count() > 0) {
        std::fprintf(stderr, "[serve.metrics final window %.2fs]\n%s\n",
                     window.window_seconds,
                     obs::MetricsRegistry::ToText(window).c_str());
      }
    }
  }

 private:
  /// One snapshot instance: a full tree with its own registry, device,
  /// transfer engine, and fault injector, so no two instances share
  /// mutable tree state (read workers of one shard share the pinned
  /// instance's thread-safe device).
  struct TreeSlot {
    PageRegistry registry;
    gpu::Device device;
    gpu::TransferEngine transfer;
    HBRegularTree<K> tree;
    fault::FaultInjector injector;

    // Circuit-breaker state, shared by the shard's read workers
    // (atomics: concurrent dispatchers may fail and probe in parallel).
    std::atomic<int> consecutive_failures{0};
    std::atomic<bool> breaker_open{false};
    std::atomic<int> buckets_since_probe{0};

    /// Probes resync the device mirror (realloc + bulk copy), which must
    /// not race another worker's in-flight GPU bucket on this slot:
    /// dispatches hold shared, probe resyncs hold exclusive.
    std::shared_mutex gpu_mutex;

    /// Model-track block this slot's pipeline spans render on (+1 keeps
    /// block 0 for un-sharded direct pipeline runs); labelled
    /// "shard<N>/slot<side>" in the trace export.
    const int track_base;

    TreeSlot(const ServerOptions& options, std::uint64_t slot_index)
        : device(options.platform.gpu),
          transfer(&device, options.platform.pcie),
          tree(MakeTreeConfig(options), &registry, &device, &transfer),
          injector(SlotFaultConfig(options.fault, slot_index)),
          track_base(static_cast<int>(slot_index + 1) *
                     obs::TraceSession::kModelTrackStride) {}

    static typename HBRegularTree<K>::Config MakeTreeConfig(
        const ServerOptions& options) {
      typename HBRegularTree<K>::Config config;
      config.tree.leaf_fill = options.leaf_fill;
      return config;
    }

    /// Decorrelates the slots' fault streams without asking callers for
    /// a seed per slot (slot_index is unique across shards: 2*shard+side).
    static fault::FaultConfig SlotFaultConfig(fault::FaultConfig config,
                                              std::uint64_t slot_index) {
      config.seed += slot_index * 7919;
      return config;
    }
  };

  struct ReadOp {
    K key;
    int max_matches = 0;  // 0 = point lookup
    TenantId tenant = 0;
    Priority priority = Priority::kNormal;  // resolved from the tenant spec
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<ReadResult<K>> done;
  };

  struct UpdateOp {
    UpdateQuery<K> query;
    TenantId tenant = 0;
    Priority priority = Priority::kNormal;
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<UpdateResult> done;
  };

  /// What a bucket dispatch reports back for latency attribution: the
  /// trace identity of its `bucket.dispatch` span (0 when tracing is off
  /// or inactive) and the modelled device time the bucket was charged —
  /// the fields tail exemplars carry (see obs::Exemplar).
  struct DispatchInfo {
    std::uint64_t span_id = 0;
    double modelled_us = 0;
    bool cpu_fallback = false;
  };

  /// Hot-path handles into the tenant's serve.tenant<T>.* metric series,
  /// bound once in Init (indexed by TenantId).
  struct TenantHandles {
    obs::Counter* lookups = nullptr;
    obs::Counter* ranges = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* shed_reads = nullptr;
    obs::Counter* shed_updates = nullptr;
    obs::Histogram* read_latency = nullptr;
  };

  /// One key-range shard: an independent snapshot pair with its own
  /// admission lanes and workers. Shards never touch each other's trees
  /// or devices; the only cross-shard read is a range scan continuing
  /// into the next shard's pinned snapshot.
  struct Shard {
    const int index;
    FairAdmissionQueue<ReadOp> read_queue;
    FairAdmissionQueue<UpdateOp> update_queue;
    TreeSlot slot_a;
    TreeSlot slot_b;
    SnapshotPair<TreeSlot> snapshots;
    /// Per-shard commit sequence (returned to this shard's update
    /// futures).
    std::atomic<std::uint64_t> committed_batches{0};

    // Per-shard metric handles (serve.shard<N>.*), bound in Init.
    obs::Counter* read_buckets = nullptr;
    obs::Counter* update_batches = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* shed_reads = nullptr;
    obs::Counter* shed_updates = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Counter* m_shrinks = nullptr;
    obs::Counter* m_grows = nullptr;
    obs::Gauge* bucket_m = nullptr;

    // Adaptive bucket controller (see ServerOptions::adaptive_bucket):
    // shared by the shard's read workers, guarded by adapt_mutex.
    // effective_bucket is the current admission bucket M; the streaks
    // count consecutive windows voting to shrink/grow.
    std::mutex adapt_mutex;
    int effective_bucket = 0;  // set in Init
    int shrink_streak = 0;
    int grow_streak = 0;

    // Modelled busy time of this shard's device (guarded by the server's
    // sim_mutex_): read-pipeline and update-path µs on the simulated
    // platform clock. Shards overlap — the serving makespan is the max
    // across shards (see ServeStats::modelled_makespan_us).
    double sim_pipeline_us = 0;
    double sim_update_us = 0;

    // Heat observability (obs/heat.h). The sketch records every
    // dispatched op's key at the admission-bucket boundary; the pipeline
    // heat state carries the per-stage level tracers and their shared
    // modelled cache hierarchy. Both stay null unless HBTREE_OBS_HEAT is
    // compiled in (Init constructs them), so the default build pays
    // nothing — not even the branch that would test the pointers.
    std::unique_ptr<obs::KeyRangeSketch> heat_sketch;
    std::unique_ptr<obs::PipelineHeat> heat_pipeline;

    // Segment-temperature state, one observation per reporter epoch over
    // the pinned snapshot's pools; heat_mutex guards the classifiers and
    // the last observation (pool_inner / pool_leaf).
    std::mutex heat_mutex;
    obs::SegmentTemperature temp_inner;
    obs::SegmentTemperature temp_leaf;
    obs::PoolTemperature pool_inner;
    obs::PoolTemperature pool_leaf;

    std::vector<std::thread> read_workers;
    std::thread update_worker;

    Shard(const ServerOptions& options, int shard_index)
        : index(shard_index),
          read_queue(options.queue_capacity, Lanes(options)),
          update_queue(options.queue_capacity, Lanes(options)),
          slot_a(options, static_cast<std::uint64_t>(shard_index) * 2),
          slot_b(options, static_cast<std::uint64_t>(shard_index) * 2 + 1),
          snapshots(&slot_a, &slot_b) {}

    /// One admission lane per tenant, sharing the tenant's weight and
    /// full-lane policy between the read and update queues.
    static std::vector<LaneConfig> Lanes(const ServerOptions& options) {
      const std::vector<TenantSpec> tenants =
          options.tenants.empty() ? DefaultTenants() : options.tenants;
      std::vector<LaneConfig> lanes;
      lanes.reserve(tenants.size());
      for (const TenantSpec& spec : tenants) {
        lanes.push_back(LaneConfig{spec.weight, spec.shed_on_full});
      }
      return lanes;
    }
  };

  explicit Server(const ServerOptions& options) : options_(options) {}

  /// Shard owning `key`: the number of range bounds <= key.
  /// `shard_bounds_[i]` is the smallest bootstrap key of shard i+1.
  std::size_t ShardFor(K key) const {
    return static_cast<std::size_t>(
        std::upper_bound(shard_bounds_.begin(), shard_bounds_.end(), key) -
        shard_bounds_.begin());
  }

  Status Init(const std::vector<KeyValue<K>>& sorted_pairs) {
    if (options_.pipeline.bucket_size <= 0) {
      return Status::InvalidArgument("pipeline.bucket_size must be positive");
    }
    if (options_.pipeline_depth < 1) {
      return Status::InvalidArgument("pipeline_depth must be >= 1");
    }
    if (options_.update_batch_size <= 0) {
      return Status::InvalidArgument("update_batch_size must be positive");
    }
    if (options_.breaker_failure_threshold <= 0 ||
        options_.breaker_probe_interval <= 0) {
      return Status::InvalidArgument("breaker thresholds must be positive");
    }
    if (options_.num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options_.num_read_workers < 1) {
      return Status::InvalidArgument("num_read_workers must be >= 1");
    }
    tenants_ = options_.tenants.empty() ? DefaultTenants()
                                        : options_.tenants;
    for (const TenantSpec& spec : tenants_) {
      if (spec.weight < 1) {
        return Status::InvalidArgument("tenant weight must be >= 1");
      }
      if (spec.name.empty()) {
        return Status::InvalidArgument("tenant name must be non-empty");
      }
    }
    if (options_.adaptive_bucket) {
      if (options_.adapt_shrink_after < 1 || options_.adapt_grow_after < 1) {
        return Status::InvalidArgument(
            "adaptive bucket streak thresholds must be >= 1");
      }
      adapt_floor_ = options_.adapt_min_bucket > 0
                         ? options_.adapt_min_bucket
                         : std::max(options_.min_sub_bucket,
                                    options_.pipeline.bucket_size / 16);
      adapt_floor_ =
          std::clamp(adapt_floor_, 1, options_.pipeline.bucket_size);
    }
    const int num_shards = options_.num_shards;
    const std::size_t n = sorted_pairs.size();
    if (num_shards > 1) {
      if (n < static_cast<std::size_t>(num_shards)) {
        return Status::InvalidArgument(
            "num_shards exceeds the bootstrap key count — every shard "
            "needs at least one key to define its range");
      }
      for (int i = 1; i < num_shards; ++i) {
        const K bound = sorted_pairs[n * static_cast<std::size_t>(i) /
                                     static_cast<std::size_t>(num_shards)]
                            .key;
        if (!shard_bounds_.empty() && !(shard_bounds_.back() < bound)) {
          return Status::InvalidArgument(
              "num_shards exceeds the distinct bootstrap keys — shard "
              "range bounds must be strictly increasing");
        }
        shard_bounds_.push_back(bound);
      }
    }

    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(options_, i));
    }

    // Bootstrap is fault-free: the injectors arm only after every mirror
    // built, so an injected fault can never masquerade as "tree does not
    // fit" at startup.
    for (int i = 0; i < num_shards; ++i) {
      const std::size_t lo = n * static_cast<std::size_t>(i) /
                             static_cast<std::size_t>(num_shards);
      const std::size_t hi = n * static_cast<std::size_t>(i + 1) /
                             static_cast<std::size_t>(num_shards);
      const std::vector<KeyValue<K>> slice(sorted_pairs.begin() + lo,
                                           sorted_pairs.begin() + hi);
      Shard& shard = *shards_[i];
      if (!shard.slot_a.tree.Build(slice) ||
          !shard.slot_b.tree.Build(slice)) {
        return Status::DeviceOom("I-segment does not fit into device memory");
      }
      HBTREE_RETURN_IF_ERROR(ValidateBucketBacking(shard));
    }

    for (auto& shard : shards_) {
      if (options_.fault.enabled()) {
        shard->slot_a.device.set_fault_injector(&shard->slot_a.injector);
        shard->slot_b.device.set_fault_injector(&shard->slot_b.injector);
      }
      // Every slot publishes into the server's registry: gpusim.*
      // counters aggregate across all devices.
      shard->slot_a.device.set_metrics_registry(&metrics_);
      shard->slot_b.device.set_metrics_registry(&metrics_);
      const int i = shard->index;
      shard->read_buckets = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "read_buckets"));
      shard->update_batches = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "update_batches"));
      shard->breaker_opens = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "breaker_opens"));
      shard->shed_reads = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "shed_reads"));
      shard->shed_updates = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "shed_updates"));
      shard->queue_wait = &metrics_.histogram(
          obs::MetricsRegistry::ShardedName("serve", i, "queue_wait"));
      shard->m_shrinks = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "m_shrinks"));
      shard->m_grows = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "m_grows"));
      shard->bucket_m = &metrics_.gauge(
          obs::MetricsRegistry::ShardedName("serve", i, "bucket_m"));
      shard->effective_bucket = options_.pipeline.bucket_size;
      shard->bucket_m->Set(
          static_cast<double>(options_.pipeline.bucket_size));
      // Label each slot's model-track block so a multi-shard trace keeps
      // one set of resource tracks per slot instead of interleaving
      // every shard's pipeline on the shared sim.* tracks.
      HBTREE_TRACE_ONLY(obs::TraceSession::RegisterModelTrackPrefix(
                            shard->slot_a.track_base,
                            "shard" + std::to_string(i) + "/slot0");
                        obs::TraceSession::RegisterModelTrackPrefix(
                            shard->slot_b.track_base,
                            "shard" + std::to_string(i) + "/slot1");)
    }

#if HBTREE_OBS_HEAT
    // Heat state, per shard: a keyspace sketch over the shard's bootstrap
    // key range (the same split ShardFor routes by) and the pipeline-stage
    // tracers over the modelled CPU cache hierarchy. Tenant-resolved
    // temperature options come from the server's knobs.
    {
      const std::uint64_t key_lo =
          n > 0 ? static_cast<std::uint64_t>(sorted_pairs.front().key) : 0;
      const std::uint64_t key_hi =
          n > 0 ? static_cast<std::uint64_t>(sorted_pairs.back().key) : 0;
      obs::KeyRangeSketch::Options sketch_options;
      sketch_options.fanout = options_.heat_fanout;
      sketch_options.tenants = tenants_.size();
      sketch_options.decay_every = options_.heat_decay_every;
      for (int i = 0; i < num_shards; ++i) {
        const std::uint64_t lo =
            i == 0 ? key_lo
                   : static_cast<std::uint64_t>(shard_bounds_[i - 1]);
        const std::uint64_t hi =
            i + 1 < num_shards
                ? static_cast<std::uint64_t>(shard_bounds_[i]) - 1
                : key_hi;
        shards_[static_cast<std::size_t>(i)]->heat_sketch =
            std::make_unique<obs::KeyRangeSketch>(lo, std::max(lo, hi),
                                                  sketch_options);
        shards_[static_cast<std::size_t>(i)]->heat_pipeline =
            std::make_unique<obs::PipelineHeat>(
                options_.platform.cpu.cache_levels);
        shards_[static_cast<std::size_t>(i)]->temp_inner =
            obs::SegmentTemperature(options_.heat_temperature);
        shards_[static_cast<std::size_t>(i)]->temp_leaf =
            obs::SegmentTemperature(options_.heat_temperature);
      }
    }
#endif

    // Per-tenant metric series (serve.tenant<T>.*), bound before the
    // workers start so the hot paths never touch the registry maps.
    tenant_metrics_.resize(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      const int id = static_cast<int>(t);
      TenantHandles& handles = tenant_metrics_[t];
      handles.lookups = &metrics_.counter(
          obs::MetricsRegistry::TenantName("serve", id, "lookups"));
      handles.ranges = &metrics_.counter(
          obs::MetricsRegistry::TenantName("serve", id, "ranges"));
      handles.updates = &metrics_.counter(
          obs::MetricsRegistry::TenantName("serve", id, "updates"));
      handles.shed_reads = &metrics_.counter(
          obs::MetricsRegistry::TenantName("serve", id, "shed_reads"));
      handles.shed_updates = &metrics_.counter(
          obs::MetricsRegistry::TenantName("serve", id, "shed_updates"));
      handles.read_latency = &metrics_.histogram(
          obs::MetricsRegistry::TenantName("serve", id, "read_latency"));
    }

    for (const obs::SloSpec& spec : options_.slos) {
      slo_tracker_.AddTarget(spec);
    }

    started_at_ = Clock::now();
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      for (int w = 0; w < options_.num_read_workers; ++w) {
        s->read_workers.emplace_back([this, s, w] { ReadLoop(*s, w); });
      }
      s->update_worker = std::thread([this, s] { UpdateLoop(*s); });
    }
    if (options_.metrics_report_interval.count() > 0) {
      reporter_thread_ = std::thread([this] { ReporterLoop(); });
    }
    return Status::Ok();
  }

  /// Every concurrent dispatch needs its own query/result buffers in the
  /// slot's device arena, on top of the I-segment mirror Build() already
  /// placed there. Failing now with an actionable message beats
  /// degenerate serving where every bucket OOMs onto the CPU path.
  Status ValidateBucketBacking(Shard& shard) const {
    const std::size_t m =
        static_cast<std::size_t>(options_.pipeline.bucket_size);
    const bool balanced = options_.pipeline.cpu_descend_levels > 0 ||
                          options_.pipeline.cpu_split_ratio < 1.0;
    const std::size_t per_worker =
        m * (sizeof(K) + sizeof(std::uint64_t) +
             (balanced ? sizeof(std::uint32_t) : 0));
    const std::size_t need =
        per_worker * static_cast<std::size_t>(options_.num_read_workers);
    for (TreeSlot* slot : {&shard.slot_a, &shard.slot_b}) {
      const std::size_t used = slot->device.used_bytes();
      const std::size_t capacity = slot->device.capacity_bytes();
      if (used + need > capacity) {
        char msg[256];
        std::snprintf(
            msg, sizeof(msg),
            "shard %d: %d read worker(s) need %zu bytes of bucket buffers "
            "but only %zu of %zu device bytes remain after the I-segment "
            "mirror — reduce num_read_workers or pipeline.bucket_size, or "
            "raise num_shards",
            shard.index, options_.num_read_workers, need, capacity - used,
            capacity);
        return Status::DeviceOom(msg);
      }
    }
    return Status::Ok();
  }

  bool ValidTenant(TenantId tenant) const {
    return tenant >= 0 &&
           static_cast<std::size_t>(tenant) < tenants_.size();
  }

  // Shed attribution, one call per shed op: the global counter feeds the
  // aggregate SLO, the shard counter the imbalance view, the tenant
  // counter the per-tenant QoS view.
  void CountShedRead(Shard& shard, TenantId tenant) {
    shed_reads_.Increment();
    shard.shed_reads->Increment();
    tenant_metrics_[static_cast<std::size_t>(tenant)].shed_reads
        ->Increment();
  }
  void CountShedUpdate(Shard& shard, TenantId tenant) {
    shed_updates_.Increment();
    shard.shed_updates->Increment();
    tenant_metrics_[static_cast<std::size_t>(tenant)].shed_updates
        ->Increment();
  }

  std::future<ReadResult<K>> AdmitRead(ReadOp op,
                                       std::chrono::microseconds deadline) {
    op.admitted = Clock::now();
    std::future<ReadResult<K>> result = op.done.get_future();
    if (!ValidTenant(op.tenant)) {
      ReadResult<K> rejected;
      rejected.status = Status::InvalidArgument("unknown tenant id");
      op.done.set_value(std::move(rejected));
      return result;
    }
    const TenantSpec& spec = tenants_[static_cast<std::size_t>(op.tenant)];
    op.priority = spec.priority;
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    Shard& shard = *shards_[ShardFor(op.key)];
    FairAdmissionQueue<ReadOp>& queue = shard.read_queue;
    const std::size_t lane = static_cast<std::size_t>(op.tenant);
    const TenantId tenant = op.tenant;
    const bool bounded = op.deadline != Clock::time_point::max();
    if (bounded || spec.shed_on_full) {
      // shed_on_full without a deadline also routes here: PushUntil sheds
      // a full lane immediately and admits a non-full one without
      // waiting, so the far-out limit is never actually waited on.
      const Clock::time_point limit =
          bounded ? op.deadline : op.admitted + std::chrono::hours(1);
      switch (queue.PushUntil(lane, std::move(op), limit)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout: {
          CountShedRead(shard, tenant);
          ReadResult<K> shed;
          shed.status = Status::DeadlineExceeded("read shed at admission");
          op.done.set_value(std::move(shed));
          break;
        }
        case PushResult::kClosed: {
          ReadResult<K> rejected;
          rejected.status =
              Status::Unavailable("read submitted to a stopped server");
          op.done.set_value(std::move(rejected));
          break;
        }
      }
    } else if (!queue.Push(lane, std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      ReadResult<K> rejected;
      rejected.status =
          Status::Unavailable("read submitted to a stopped server");
      op.done.set_value(std::move(rejected));
    }
    return result;
  }

  void RecordLatency(obs::Histogram* histogram, Clock::time_point start) {
    histogram->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }

  /// RecordLatency plus tail-exemplar capture: when tracing is compiled
  /// in and the serving span has an identity, the sample carries a link
  /// back to that span (p99+ buckets keep it; see
  /// obs::Histogram::RecordWithExemplar). Compiled-out builds reduce to
  /// plain RecordLatency — the hot path pays nothing for exemplars.
  void RecordLatencyWithExemplar(obs::Histogram* histogram,
                                 Clock::time_point start, int shard_index,
                                 std::uint64_t span_id, double modelled_us) {
    RecordLatencyWithExemplar(histogram, start, Clock::now(), shard_index,
                              span_id, modelled_us);
  }

  /// Overload with a caller-supplied completion timestamp: the bucket /
  /// batch completion loops resolve every op in one pass, so one
  /// Clock::now() per loop is exact while saving two clock reads per op
  /// on the hottest path in the server.
  void RecordLatencyWithExemplar(obs::Histogram* histogram,
                                 Clock::time_point start, Clock::time_point now,
                                 int shard_index, std::uint64_t span_id,
                                 double modelled_us) {
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
            .count());
#if HBTREE_OBS_TRACING
    if (span_id != 0) {
      obs::Exemplar exemplar;
      exemplar.trace_id = obs::TraceSession::trace_id();
      exemplar.span_id = span_id;
      exemplar.shard = shard_index;
      exemplar.modelled_us = modelled_us;
      histogram->RecordWithExemplar(ns, exemplar);
      return;
    }
#else
    (void)shard_index;
    (void)span_id;
    (void)modelled_us;
#endif
    histogram->Record(ns);
  }

  // -- Circuit breaker (shared by a shard's read workers) ------------------

  void OpenBreaker(Shard& shard, TreeSlot& slot) {
    // exchange: concurrent workers hitting the threshold together open
    // the breaker (and count the open) exactly once.
    if (slot.breaker_open.exchange(true, std::memory_order_relaxed)) return;
    slot.buckets_since_probe.store(0, std::memory_order_relaxed);
    breaker_opens_.Increment();
    shard.breaker_opens->Increment();
    HBTREE_TRACE_INSTANT("breaker.open", "serve");
  }

  void CloseBreaker(TreeSlot& slot) {
    if (!slot.breaker_open.exchange(false, std::memory_order_relaxed)) return;
    slot.consecutive_failures.store(0, std::memory_order_relaxed);
    breaker_closes_.Increment();
    HBTREE_TRACE_INSTANT("breaker.close", "serve");
  }

  /// One GPU bucket through the fault-tolerant pipeline; false on a
  /// terminal device failure (results are then unreliable and the caller
  /// must re-serve the bucket on the CPU).
  bool TryGpuBucket(Shard& shard, TreeSlot& slot, const std::vector<K>& keys,
                    std::vector<LookupResult<K>>* results,
                    DispatchInfo* info) {
    PipelineStats ps;
    PipelineConfig config = options_.pipeline;
    HBTREE_TRACE_ONLY(config.trace_track_base = slot.track_base;)
    // Tree-level traffic attribution: the pipeline's CPU stages trace
    // their node touches and modelled accesses into the shard's heat
    // tracers (one mutex acquisition per stage loop, see PipelineHeat).
    HBTREE_HEAT_ONLY(config.heat = shard.heat_pipeline.get();)
    // Effective depth shrinks for partial buckets so each sub-bucket keeps
    // at least min_sub_bucket keys (per-launch setup does not amortize
    // below that); full buckets still split pipeline_depth ways.
    const int depth = std::clamp(
        static_cast<int>(keys.size() /
                         std::max(1, options_.min_sub_bucket)),
        1, std::max(1, options_.pipeline_depth));
    if (depth > 1) {
      // Split the batch actually dispatched, not the configured bucket
      // size: partial admission buckets (shipped by max_batch_delay)
      // would otherwise fit in one sub-bucket and lose the overlap.
      const int target = static_cast<int>(
          (keys.size() + static_cast<std::size_t>(depth) - 1) /
          static_cast<std::size_t>(depth));
      config.bucket_size = std::max(
          1, std::min(options_.pipeline.bucket_size, target));
    } else {
      config.bucket_size = std::max(
          1, std::min(options_.pipeline.bucket_size,
                      static_cast<int>(keys.size())));
    }
    const Status status =
        TryRunSearchPipeline(slot.tree, keys.data(), keys.size(),
                             config, results, &ps);
    transfer_retries_.Add(ps.transfer_retries);
    kernel_retries_.Add(ps.kernel_retries);
    if (!status.ok()) return false;
    if (info != nullptr) info->modelled_us = ps.total_us;
    std::lock_guard<std::mutex> lock(sim_mutex_);
    sim_pipeline_us_ += ps.total_us;
    shard.sim_pipeline_us += ps.total_us;
    return true;
  }

  /// Recovery probe: resync the mirror if stale, then run this bucket
  /// through the GPU path. The probe is not wasted work — on success its
  /// results serve the bucket. Caller holds the slot's exclusive lock.
  bool ProbeSlot(Shard& shard, TreeSlot& slot, const std::vector<K>& keys,
                 std::vector<LookupResult<K>>* results, DispatchInfo* info) {
    probe_attempts_.Increment();
    HBTREE_TRACE_INSTANT("breaker.probe", "serve");
    if (!slot.tree.mirror_valid() &&
        !slot.tree.TrySyncISegment().ok()) {
      return false;
    }
    return TryGpuBucket(shard, slot, keys, results, info);
  }

  /// Serves one bucket of point lookups, always filling `results`: the
  /// GPU pipeline when the slot's breaker is closed and its mirror is
  /// fresh, the CPU-only pipelined search otherwise. Correctness rule: a
  /// stale mirror (failed sync) must never serve GPU lookups — it would
  /// silently return pre-update results.
  void DispatchBucket(Shard& shard, TreeSlot& slot,
                      const std::vector<K>& keys,
                      std::vector<LookupResult<K>>* results,
                      DispatchInfo* info = nullptr) {
    // An identified span (not the plain macro): the ops this bucket
    // serves attach tail exemplars pointing at its span_id.
    HBTREE_TRACE_ONLY(
        obs::ScopedSpan dispatch_span("bucket.dispatch", "serve", "keys",
                                      static_cast<double>(keys.size()));
        if (info != nullptr) info->span_id = dispatch_span.EnsureSpanId();)
    if (!slot.breaker_open.load(std::memory_order_relaxed) &&
        !slot.tree.mirror_valid()) {
      OpenBreaker(shard, slot);
    }

    if (!slot.breaker_open.load(std::memory_order_relaxed)) {
      bool ok;
      {
        std::shared_lock<std::shared_mutex> lock(slot.gpu_mutex);
        ok = TryGpuBucket(shard, slot, keys, results, info);
      }
      if (ok) {
        slot.consecutive_failures.store(0, std::memory_order_relaxed);
        return;
      }
      device_faults_.Increment();
      if (slot.consecutive_failures.fetch_add(1, std::memory_order_relaxed) +
              1 >=
          options_.breaker_failure_threshold) {
        OpenBreaker(shard, slot);
      }
    } else if ((slot.buckets_since_probe.fetch_add(
                    1, std::memory_order_relaxed) +
                1) %
                   options_.breaker_probe_interval ==
               0) {
      // Every Nth open bucket probes. The counter is monotonic (no reset
      // on probe) so concurrent workers keep the modulo cadence without a
      // CAS loop; OpenBreaker zeroes it on the open transition.
      std::unique_lock<std::shared_mutex> lock(slot.gpu_mutex);
      if (ProbeSlot(shard, slot, keys, results, info)) {
        CloseBreaker(slot);
        return;
      }
    }

    // Degraded mode: the host tree is complete, so the software-pipelined
    // CPU search answers the bucket exactly — reduced throughput, same
    // results.
    PipelinedSearch(slot.tree.host_tree(), keys.data(), keys.size(),
                    options_.cpu_fallback_depth, results->data());
    cpu_fallback_buckets_.Increment();
    cpu_fallback_lookups_.Add(keys.size());
    if (info != nullptr) info->cpu_fallback = true;
  }

  void ReadLoop(Shard& shard, int worker_index) {
    HBTREE_TRACE_ONLY(const std::string worker_name =
                          "serve.shard" + std::to_string(shard.index) +
                          ".read" + std::to_string(worker_index);)
    HBTREE_TRACE_THREAD_NAME(worker_name.c_str());
    (void)worker_index;
#if defined(__linux__)
    // See ServerOptions::read_worker_nice: bulk dispatch yields the core
    // to the latency-critical commit path when they contend.
    if (options_.read_worker_nice > 0) {
      setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                  options_.read_worker_nice);
    }
#endif
    // Per-shard arrival rate is ~1/num_shards of the aggregate, and
    // co-workers on the same queue split that stream again; scale the
    // fill window to match (see ServerOptions::max_batch_delay).
    const std::chrono::microseconds fill_wait =
        options_.max_batch_delay *
        static_cast<int>(shards_.size() * options_.num_read_workers);
    std::vector<ReadOp> batch;
    std::vector<K> keys;
    std::vector<std::size_t> key_op;  // bucket position of keys[i]
    std::vector<LookupResult<K>> results;
    for (;;) {
      // The adaptive controller may resize the shard's effective M
      // between windows; each window reads the current value once.
      std::size_t bucket_size;
      {
        std::lock_guard<std::mutex> lock(shard.adapt_mutex);
        bucket_size = static_cast<std::size_t>(shard.effective_bucket);
      }
      batch.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("bucket.fill", "serve");
        n = shard.read_queue.PopBatch(&batch, bucket_size,
                                      std::chrono::microseconds(10'000),
                                      fill_wait);
      }
      if (n == 0) {
        if (shard.read_queue.closed() && shard.read_queue.size() == 0) {
          return;
        }
        continue;
      }

      // Load shedding: an op whose deadline passed while it queued gets a
      // typed timeout now instead of a stale-but-late answer. Ops whose
      // remaining budget is under the fill window count as
      // deadline-tight: they made it, but another window of batching
      // would have shed them — a shrink signal for the controller.
      const Clock::time_point now = Clock::now();
      std::size_t live = 0;
      std::size_t tight = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (now > batch[i].deadline) {
          CountShedRead(shard, batch[i].tenant);
          ReadResult<K> shed;
          shed.status =
              Status::DeadlineExceeded("read deadline passed in queue");
          batch[i].done.set_value(std::move(shed));
          continue;
        }
        if (batch[i].deadline != Clock::time_point::max() &&
            batch[i].deadline - now < fill_wait) {
          ++tight;
        }
        if (live != i) batch[live] = std::move(batch[i]);
        ++live;
      }
      batch.resize(live);
      // Backlog left behind after this pop: a half-empty window with
      // ops still queued means a co-worker drained the other half (or
      // arrivals outpace this worker), not light load — only a window
      // that expired with the queue drained votes shrink.
      const std::size_t backlog =
          options_.adaptive_bucket ? shard.read_queue.size() : 0;
      AdaptBucket(shard, n, bucket_size, tight, live, backlog);
      if (batch.empty()) continue;

      // Queue wait (push -> dispatch), per op: the shard-imbalance
      // signal. The bucket's worst wait becomes a trace span ending now.
      std::uint64_t max_wait_ns = 0;
      for (const ReadOp& op : batch) {
        const std::uint64_t wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - op.admitted)
                .count());
        queue_wait_.Record(wait_ns);
        shard.queue_wait->Record(wait_ns);
        max_wait_ns = std::max(max_wait_ns, wait_ns);
      }
      HBTREE_TRACE_COMPLETE("queue.wait", "serve",
                            obs::TraceSession::NowUs() - max_wait_ns / 1e3,
                            max_wait_ns / 1e3, "ops", batch.size());

      auto guard = shard.snapshots.Acquire();
      TreeSlot& slot = guard.slot();

      // Priority-ordered graceful degradation: when the pinned slot's
      // breaker is open the shard is in CPU-fallback mode with a
      // fraction of its normal capacity, so low-priority ops are dropped
      // up front (kUnavailable — the request was not served and the
      // client should back off) to keep the remaining capacity for
      // normal/high traffic. Normal priority still sheds only by its own
      // deadline; high priority is never shed by policy.
      if (slot.breaker_open.load(std::memory_order_relaxed)) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch[i].priority == Priority::kLow) {
            CountShedRead(shard, batch[i].tenant);
            degraded_sheds_.Increment();
            ReadResult<K> shed;
            shed.status = Status::Unavailable(
                "low-priority read shed in degraded mode");
            batch[i].done.set_value(std::move(shed));
            continue;
          }
          if (kept != i) batch[kept] = std::move(batch[i]);
          ++kept;
        }
        batch.resize(kept);
        if (batch.empty()) continue;
      }

      // Keyspace heat: every op this bucket actually dispatches (shed
      // ops never touched the tree) lands one sketch record, attributed
      // to its tenant. One multiply plus one relaxed add per op.
      HBTREE_HEAT_ONLY(for (const ReadOp& heat_op : batch) {
        shard.heat_sketch->Record(
            static_cast<std::uint64_t>(heat_op.key),
            static_cast<std::size_t>(heat_op.tenant));
      })

      keys.clear();
      key_op.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches == 0) {
          keys.push_back(batch[i].key);
          key_op.push_back(i);
        }
      }

      std::vector<ReadResult<K>> out(batch.size());
      DispatchInfo dispatch_info;
      if (!keys.empty()) {
        const Clock::time_point dispatch_start = Clock::now();
        results.assign(keys.size(), LookupResult<K>{});
        DispatchBucket(shard, slot, keys, &results, &dispatch_info);
        if (options_.model_pacing > 0 && dispatch_info.modelled_us > 0) {
          // Model pacing: hold the bucket until its wall time covers the
          // modelled device time, so serving capacity tracks the
          // simulated platform (see ServerOptions::model_pacing). The
          // futures resolve after the sleep — clients observe the paced
          // service time.
          std::this_thread::sleep_until(
              dispatch_start +
              std::chrono::microseconds(static_cast<std::int64_t>(
                  dispatch_info.modelled_us * options_.model_pacing)));
        }
        for (std::size_t i = 0; i < keys.size(); ++i) {
          out[key_op[i]].lookup = results[i];
        }
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches > 0) {
          // Range queries resolve against the same pinned snapshot; the
          // leaf-sequential scan is the CPU's share regardless (Section
          // 5.4), so it runs host-side here. A scan exhausting this
          // shard's range continues into the next shard's snapshot,
          // pinned as it enters (per-shard consistency; see class docs).
          out[i].range.resize(batch[i].max_matches);
          int matched;
#if HBTREE_OBS_HEAT
          // Traced scan: descent and leaf-chain touches land in the
          // shard's `scan` stage tracer. The heat mutex is released
          // before continuing into the next shard (locks are only ever
          // taken in increasing shard order, so no cycle).
          {
            std::lock_guard<std::mutex> heat_lock(shard.heat_pipeline->mu);
            matched = slot.tree.host_tree().RangeScan(
                batch[i].key, batch[i].max_matches, out[i].range.data(),
                &shard.heat_pipeline->scan);
          }
#else
          matched = slot.tree.host_tree().RangeScan(
              batch[i].key, batch[i].max_matches, out[i].range.data());
#endif
          for (std::size_t next = static_cast<std::size_t>(shard.index) + 1;
               matched < batch[i].max_matches && next < shards_.size();
               ++next) {
            auto next_guard = shards_[next]->snapshots.Acquire();
#if HBTREE_OBS_HEAT
            std::lock_guard<std::mutex> heat_lock(
                shards_[next]->heat_pipeline->mu);
            matched += next_guard.slot().tree.host_tree().RangeScan(
                shard_bounds_[next - 1], batch[i].max_matches - matched,
                out[i].range.data() + matched,
                &shards_[next]->heat_pipeline->scan);
#else
            matched += next_guard.slot().tree.host_tree().RangeScan(
                shard_bounds_[next - 1], batch[i].max_matches - matched,
                out[i].range.data() + matched);
#endif
          }
          out[i].range.resize(matched);
        }
      }

      read_buckets_.Increment();
      shard.read_buckets->Increment();
      {
        HBTREE_TRACE_SPAN_ARG("bucket.complete", "serve", "ops",
                              static_cast<double>(batch.size()));
        const Clock::time_point completed = Clock::now();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const bool is_range = batch[i].max_matches > 0;
          TenantHandles& tenant = tenant_metrics_[static_cast<std::size_t>(
              batch[i].tenant)];
          batch[i].done.set_value(std::move(out[i]));
          RecordLatencyWithExemplar(&read_latency_, batch[i].admitted,
                                    completed, shard.index,
                                    dispatch_info.span_id,
                                    dispatch_info.modelled_us);
          RecordLatencyWithExemplar(tenant.read_latency, batch[i].admitted,
                                    completed, shard.index,
                                    dispatch_info.span_id,
                                    dispatch_info.modelled_us);
          if (is_range) {
            ranges_done_.Increment();
            tenant.ranges->Increment();
          } else {
            lookups_done_.Increment();
            tenant.lookups->Increment();
          }
        }
      }
    }
  }

  void UpdateLoop(Shard& shard) {
    HBTREE_TRACE_ONLY(const std::string worker_name =
                          "serve.shard" + std::to_string(shard.index) +
                          ".update";)
    HBTREE_TRACE_THREAD_NAME(worker_name.c_str());
    std::vector<UpdateOp> ops;
    std::vector<UpdateQuery<K>> batch;
    std::vector<std::size_t> live;
    for (;;) {
      ops.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("update.fill", "serve");
        // Same arrival-rate scaling as the read fill window: a shard sees
        // 1/num_shards of the update stream, and a half-filled commit
        // still pays the full publish cost (double apply + mirror sync +
        // reader drain), so small time-sliced batches are the worst case.
        n = shard.update_queue.PopBatch(
            &ops, static_cast<std::size_t>(options_.update_batch_size),
            std::chrono::microseconds(10'000),
            options_.max_batch_delay * static_cast<int>(shards_.size()));
      }
      if (n == 0) {
        if (shard.update_queue.closed() && shard.update_queue.size() == 0) {
          return;
        }
        continue;
      }

      // Shed expired updates before committing anything: a shed update is
      // promised to NOT have been applied.
      const Clock::time_point now = Clock::now();
      batch.clear();
      live.clear();
      batch.reserve(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (now > ops[i].deadline) {
          CountShedUpdate(shard, ops[i].tenant);
          ops[i].done.set_value(UpdateResult{
              Status::DeadlineExceeded("update deadline passed in queue"),
              0});
          continue;
        }
        const std::uint64_t wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - ops[i].admitted)
                .count());
        queue_wait_.Record(wait_ns);
        shard.queue_wait->Record(wait_ns);
        HBTREE_HEAT_ONLY(shard.heat_sketch->Record(
            static_cast<std::uint64_t>(ops[i].query.pair.key),
            static_cast<std::size_t>(ops[i].tenant));)
        live.push_back(i);
        batch.push_back(ops[i].query);
      }
      if (batch.empty()) continue;

      // Left-right commit: apply to the standby instance, swap the
      // epoch so new read buckets see the batch, drain readers still on
      // the old instance, then converge it with the same batch. Host
      // application always completes; a failed device sync only leaves
      // that slot's mirror stale (the read workers' breaker reroutes it
      // to the CPU until a probe resyncs), so the updates commit and
      // their futures succeed either way.
      BatchUpdateStats first_pass{};
      bool recorded = false;
      Status sync_status = Status::Ok();
      std::uint64_t sync_retries = 0;
      std::uint64_t commit_span_id = 0;
      {
        // Identified like bucket.dispatch: update-latency exemplars point
        // at the commit span that published their batch.
        HBTREE_TRACE_ONLY(
            obs::ScopedSpan commit_span("update.commit", "serve", "updates",
                                        static_cast<double>(batch.size()));
            commit_span_id = commit_span.EnsureSpanId();)
        shard.snapshots.Publish(
            [&](TreeSlot& slot) {
              BatchUpdateStats pass;
              const Status status =
                  TryRunBatchUpdate(slot.tree, batch, options_.update_method,
                                    options_.update, &pass);
              sync_retries += pass.sync_retries;
              if (!status.ok() && sync_status.ok()) sync_status = status;
              if (!recorded) {
                first_pass = pass;
                recorded = true;
              }
            },
            [&] {
              // Commit point: the epoch flipped, so every lookup admitted
              // from here on sees this batch (readers still pinned to the
              // old instance acquired before the flip and get the
              // pre-batch snapshot they are entitled to). Resolve the ops
              // now — the reader drain and the converge pass that follow
              // only protect the retired copy and would otherwise double
              // the latency every committed update observes.
              const std::uint64_t seq =
                  shard.committed_batches.fetch_add(
                      1, std::memory_order_acq_rel) +
                  1;
              committed_batches_.fetch_add(1, std::memory_order_acq_rel);
              committed_batches_metric_.Increment();
              shard.update_batches->Increment();
              const Clock::time_point committed = Clock::now();
              for (std::size_t idx : live) {
                UpdateOp& op = ops[idx];
                op.done.set_value(UpdateResult{Status::Ok(), seq});
                RecordLatencyWithExemplar(&update_latency_, op.admitted,
                                          committed, shard.index,
                                          commit_span_id,
                                          first_pass.total_us);
                updates_done_.Increment();
                tenant_metrics_[static_cast<std::size_t>(op.tenant)]
                    .updates->Increment();
              }
            });
      }
      sync_retries_.Add(sync_retries);
      if (!sync_status.ok()) {
        sync_failures_.Increment();
      }

      epoch_gauge_.Set(static_cast<double>(epoch()));
      {
        std::lock_guard<std::mutex> lock(sim_mutex_);
        sim_update_us_ += first_pass.total_us;
        shard.sim_update_us += first_pass.total_us;
        applied_ += first_pass.applied;
        structural_ += first_pass.structural;
        sim_sync_us_ += first_pass.sync_us;
        delta_syncs_ += first_pass.delta_syncs;
        full_syncs_ += first_pass.full_syncs;
        delta_sync_nodes_ += first_pass.delta_nodes;
      }
    }
  }

  /// Adaptive bucket controller, one vote per fill window. `popped` is
  /// what the window actually shipped against an effective M of
  /// `window_m`; `tight`/`live` count deadline-tight vs dispatched ops.
  /// Repeated half-empty or deadline-tight windows halve M (bounded by
  /// the adapt floor) — a bucket the arrival rate cannot fill only adds
  /// fill-window latency and per-op fixed cost; repeated full windows
  /// double it back (bounded by the configured M, so the startup bucket
  /// buffers always suffice).
  void AdaptBucket(Shard& shard, std::size_t popped, std::size_t window_m,
                   std::size_t tight, std::size_t live,
                   std::size_t backlog) {
    if (!options_.adaptive_bucket) return;
    std::lock_guard<std::mutex> lock(shard.adapt_mutex);
    if (static_cast<std::size_t>(shard.effective_bucket) != window_m) {
      return;  // a co-worker resized mid-window; this vote is stale
    }
    const bool half_empty = popped * 2 < window_m && backlog == 0;
    const bool deadline_tight = live > 0 && tight * 4 >= live;
    if (half_empty || deadline_tight) {
      shard.grow_streak = 0;
      if (++shard.shrink_streak >= options_.adapt_shrink_after &&
          shard.effective_bucket > adapt_floor_) {
        shard.effective_bucket =
            std::max(adapt_floor_, shard.effective_bucket / 2);
        shard.shrink_streak = 0;
        m_shrinks_.Increment();
        shard.m_shrinks->Increment();
        shard.bucket_m->Set(static_cast<double>(shard.effective_bucket));
        HBTREE_TRACE_INSTANT("bucket.m_shrink", "serve");
      }
    } else if (popped >= window_m) {
      shard.shrink_streak = 0;
      if (++shard.grow_streak >= options_.adapt_grow_after &&
          shard.effective_bucket < options_.pipeline.bucket_size) {
        shard.effective_bucket = std::min(options_.pipeline.bucket_size,
                                          shard.effective_bucket * 2);
        shard.grow_streak = 0;
        m_grows_.Increment();
        shard.m_grows->Increment();
        shard.bucket_m->Set(static_cast<double>(shard.effective_bucket));
        HBTREE_TRACE_INSTANT("bucket.m_grow", "serve");
      }
    } else {
      shard.shrink_streak = 0;
      shard.grow_streak = 0;
    }
  }

  // -- Segment temperature (heat observability) ---------------------------

  static void AccumulatePool(obs::PoolTemperature* total,
                             const obs::PoolTemperature& part) {
    total->segments += part.segments;
    total->hot += part.hot;
    total->warm += part.warm;
    total->cold += part.cold;
    total->cold_fraction =
        total->segments > 0
            ? static_cast<double>(total->cold) / total->segments
            : 0;
  }

  template <typename Pool>
  static std::vector<std::uint64_t> CollectTouches(const Pool& pool) {
    std::vector<std::uint64_t> touches(pool.chunk_count());
    for (std::size_t i = 0; i < touches.size(); ++i) {
      touches[i] = pool.chunk_touches(i);
    }
    return touches;
  }

  void PublishPoolGauges(const char* pool,
                         const obs::PoolTemperature& temp) {
    const std::string prefix = std::string("mem.pool.") + pool + ".";
    metrics_.gauge(prefix + "segments")
        .Set(static_cast<double>(temp.segments));
    metrics_.gauge(prefix + "hot").Set(static_cast<double>(temp.hot));
    metrics_.gauge(prefix + "warm").Set(static_cast<double>(temp.warm));
    metrics_.gauge(prefix + "cold").Set(static_cast<double>(temp.cold));
    metrics_.gauge(prefix + "cold_fraction").Set(temp.cold_fraction);
  }

  /// One temperature epoch: classifies every shard's pinned snapshot
  /// pools from their cumulative chunk-touch counters and publishes the
  /// aggregate as mem.pool.<pool>.* gauges. Runs on the reporter cadence
  /// plus once at Shutdown — never on the serving hot path. Pinning the
  /// snapshot keeps the pool's chunk list stable while it is read (the
  /// update worker only mutates the instance readers have drained from).
  void ObservePoolTemperatures() {
    obs::PoolTemperature inner_total;
    obs::PoolTemperature leaf_total;
    for (const auto& shard : shards_) {
      auto guard = shard->snapshots.Acquire();
      const auto& tree = guard.slot().tree.host_tree();
      std::lock_guard<std::mutex> lock(shard->heat_mutex);
      shard->pool_inner =
          shard->temp_inner.Observe(CollectTouches(tree.inner_pool()));
      shard->pool_leaf =
          shard->temp_leaf.Observe(CollectTouches(tree.leaf_pool()));
      AccumulatePool(&inner_total, shard->pool_inner);
      AccumulatePool(&leaf_total, shard->pool_leaf);
    }
    PublishPoolGauges("inner", inner_total);
    PublishPoolGauges("leaf", leaf_total);
  }

  void ReporterLoop() {
    HBTREE_TRACE_THREAD_NAME("serve.metrics_reporter");
    std::unique_lock<std::mutex> lock(reporter_mutex_);
    for (;;) {
      if (reporter_cv_.wait_for(lock, options_.metrics_report_interval,
                                [this] { return reporter_stop_; })) {
        return;
      }
      lock.unlock();
      HBTREE_HEAT_ONLY(ObservePoolTemperatures();)
      const obs::MetricsSnapshot window = metrics_.CollectWindow();
      slo_tracker_.Observe(window);
      if (options_.metrics_report_sink) {
        options_.metrics_report_sink(window);
      } else {
        std::fprintf(stderr, "[serve.metrics window %.2fs]\n%s\n",
                     window.window_seconds,
                     obs::MetricsRegistry::ToText(window).c_str());
      }
      lock.lock();
    }
  }

  ServerOptions options_;

  /// Owns every serving counter/histogram plus the slots' gpusim.*
  /// metrics. Declared before the shards: slot destructors release
  /// device memory, which updates the used-bytes gauge, so the registry
  /// must outlive them.
  obs::MetricsRegistry metrics_;

  /// Resolved tenant topology (options_.tenants, or DefaultTenants()
  /// when none was configured) and the matching metric handles.
  /// Immutable after Init.
  std::vector<TenantSpec> tenants_ = DefaultTenants();
  std::vector<TenantHandles> tenant_metrics_;
  /// Smallest effective bucket the adaptive controller may reach.
  int adapt_floor_ = 1;

  /// Key-range shards (stable addresses: workers hold references).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// shard_bounds_[i] = smallest bootstrap key owned by shard i+1; empty
  /// for a single shard. Immutable after Init.
  std::vector<K> shard_bounds_;

  std::atomic<bool> stopped_{false};
  // Initialized at declaration (not only in Init()) so Stats() on a
  // partially constructed server can never divide by a garbage duration.
  Clock::time_point started_at_ = Clock::now();

  std::thread reporter_thread_;
  std::mutex reporter_mutex_;
  std::condition_variable reporter_cv_;
  bool reporter_stop_ = false;  // guarded by reporter_mutex_

  // Metric handles into metrics_ (declared above, before the shards).
  // Update hot paths cost exactly what the raw std::atomic members they
  // replaced did (one relaxed RMW).
  obs::Counter& lookups_done_ = metrics_.counter("serve.lookups");
  obs::Counter& ranges_done_ = metrics_.counter("serve.ranges");
  obs::Counter& updates_done_ = metrics_.counter("serve.updates");
  obs::Counter& read_buckets_ = metrics_.counter("serve.read_buckets");
  // Stays a raw atomic: the commit-sequence handoff needs acq_rel RMW
  // semantics the registry's relaxed counters deliberately do not offer.
  std::atomic<std::uint64_t> committed_batches_{0};
  obs::Counter& committed_batches_metric_ =
      metrics_.counter("serve.committed_batches");
  obs::Gauge& epoch_gauge_ = metrics_.gauge("serve.epoch");
  obs::Histogram& read_latency_ = metrics_.histogram("serve.read_latency");
  obs::Histogram& update_latency_ =
      metrics_.histogram("serve.update_latency");
  obs::Histogram& queue_wait_ = metrics_.histogram("serve.queue_wait");

  obs::Counter& shed_reads_ = metrics_.counter("serve.shed_reads");
  obs::Counter& shed_updates_ = metrics_.counter("serve.shed_updates");
  obs::Counter& degraded_sheds_ = metrics_.counter("serve.degraded_sheds");
  obs::Counter& m_shrinks_ = metrics_.counter("serve.m_shrinks");
  obs::Counter& m_grows_ = metrics_.counter("serve.m_grows");
  obs::Counter& transfer_retries_ =
      metrics_.counter("serve.transfer_retries");
  obs::Counter& kernel_retries_ = metrics_.counter("serve.kernel_retries");
  obs::Counter& sync_retries_ = metrics_.counter("serve.sync_retries");
  obs::Counter& device_faults_ = metrics_.counter("serve.device_faults");
  obs::Counter& sync_failures_ = metrics_.counter("serve.sync_failures");
  obs::Counter& breaker_opens_ = metrics_.counter("serve.breaker_opens");
  obs::Counter& breaker_closes_ = metrics_.counter("serve.breaker_closes");
  obs::Counter& probe_attempts_ = metrics_.counter("serve.probe_attempts");
  obs::Counter& cpu_fallback_buckets_ =
      metrics_.counter("serve.cpu_fallback_buckets");
  obs::Counter& cpu_fallback_lookups_ =
      metrics_.counter("serve.cpu_fallback_lookups");

  /// Burn-rate accounting over options_.slos, fed one window per
  /// reporter tick plus the final window at Shutdown().
  obs::SloTracker slo_tracker_{&metrics_};

  mutable std::mutex sim_mutex_;
  double sim_pipeline_us_ = 0;
  double sim_update_us_ = 0;
  double sim_sync_us_ = 0;
  std::uint64_t delta_syncs_ = 0;
  std::uint64_t full_syncs_ = 0;
  std::uint64_t delta_sync_nodes_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t structural_ = 0;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SERVER_H_
