#ifndef HBTREE_SERVE_SERVER_H_
#define HBTREE_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/types.h"
#include "core/workload.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_regular.h"
#include "serve/admission_queue.h"
#include "serve/latency_histogram.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "sim/platform.h"

namespace hbtree::serve {

/// Serving-layer tuning knobs.
struct ServerOptions {
  /// Simulated platform each tree instance runs against (every snapshot
  /// slot gets its own device + transfer engine, so the reader's kernel
  /// launches never share mutable simulator state with the writer's
  /// I-segment syncs).
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");

  /// Pipeline configuration for read buckets. `bucket_size` is the
  /// admission bucket M (the paper settles on 16K, Section 6.3); the CPU
  /// rate fields should come from calibration (see
  /// bench_support/serve_runner.h).
  PipelineConfig pipeline;

  /// Batch-update configuration and method (Section 5.6). The default
  /// asynchronous-parallel method matches the epoch-swap design: the
  /// whole batch lands in main memory, then one bulk I-segment sync.
  BatchUpdateConfig update;
  UpdateMethod update_method = UpdateMethod::kAsyncParallel;

  /// Tree build configuration. Leaf slack keeps most online inserts
  /// non-structural, as the paper's update analysis assumes.
  double leaf_fill = 0.9;

  /// Admission-queue capacity per lane (reads / updates); producers block
  /// when a lane is full (backpressure).
  std::size_t queue_capacity = 64 * 1024;

  /// Updates per committed batch (flush threshold).
  int update_batch_size = 16 * 1024;

  /// How long a batcher waits for a partial bucket/batch to fill before
  /// shipping it — the added latency bound under light load.
  std::chrono::microseconds max_batch_delay{200};
};

/// Result of one read operation (point lookup or range query).
template <typename K>
struct ReadResult {
  LookupResult<K> lookup;           // valid for point lookups
  std::vector<KeyValue<K>> range;   // valid for range queries
};

/// Multi-threaded serving front-end over the regular HB+-tree.
///
/// Client threads submit point lookups, range queries, and updates; the
/// serving layer batches admitted reads into pipeline-sized buckets and
/// dispatches them through RunSearchPipeline, while updates accumulate
/// into groups executed by RunBatchUpdate (Section 5.6). Reads run
/// against an epoch-swapped snapshot (SnapshotPair), so lookups proceed
/// concurrently with a batch-update pass — the paper's asynchronous
/// update model lifted from "searches keep using the stale I-segment"
/// to "searches keep using a consistent full tree".
///
/// Threads: any number of producers; one read batcher; one update
/// committer. All Submit* methods are thread-safe and return futures.
template <typename K>
class Server {
 public:
  using Clock = std::chrono::steady_clock;

  Server(const ServerOptions& options,
         const std::vector<KeyValue<K>>& sorted_pairs)
      : options_(options),
        read_queue_(options.queue_capacity),
        update_queue_(options.queue_capacity),
        slot_a_(options),
        slot_b_(options),
        snapshots_(&slot_a_, &slot_b_) {
    HBTREE_CHECK(options.pipeline.bucket_size > 0);
    HBTREE_CHECK(options.update_batch_size > 0);
    HBTREE_CHECK_MSG(slot_a_.tree.Build(sorted_pairs) &&
                         slot_b_.tree.Build(sorted_pairs),
                     "I-segment does not fit into device memory");
    started_at_ = Clock::now();
    read_worker_ = std::thread([this] { ReadLoop(); });
    update_worker_ = std::thread([this] { UpdateLoop(); });
  }

  ~Server() { Shutdown(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Client API ---------------------------------------------------------

  /// Admits a point lookup; blocks if the read lane is full.
  std::future<ReadResult<K>> SubmitLookup(K key) {
    ReadOp op;
    op.key = key;
    op.max_matches = 0;
    return AdmitRead(std::move(op));
  }

  /// Admits a range query for up to `max_matches` pairs with key >= key.
  std::future<ReadResult<K>> SubmitRange(K key, int max_matches) {
    HBTREE_CHECK(max_matches > 0);
    ReadOp op;
    op.key = key;
    op.max_matches = max_matches;
    return AdmitRead(std::move(op));
  }

  /// Admits an update. The future resolves to the sequence number of the
  /// batch that committed it (after both snapshot instances converged).
  std::future<std::uint64_t> SubmitUpdate(UpdateQuery<K> update) {
    UpdateOp op;
    op.query = update;
    op.admitted = Clock::now();
    std::future<std::uint64_t> result = op.done.get_future();
    if (!update_queue_.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      op.done.set_exception(std::make_exception_ptr(
          std::runtime_error("update submitted to a stopped server")));
    }
    return result;
  }

  // Blocking conveniences.
  LookupResult<K> Lookup(K key) { return SubmitLookup(key).get().lookup; }
  std::vector<KeyValue<K>> Range(K key, int max_matches) {
    return SubmitRange(key, max_matches).get().range;
  }
  std::uint64_t Update(UpdateQuery<K> update) {
    return SubmitUpdate(update).get();
  }

  // -- Introspection ------------------------------------------------------

  /// Number of update batches fully committed (both instances converged).
  std::uint64_t committed_batches() const {
    return committed_batches_.load(std::memory_order_acquire);
  }
  /// Number of update batches whose first (visible) application has been
  /// published; lookups admitted after this point see the batch.
  std::uint64_t epoch() const { return snapshots_.epoch(); }

  ServeStats Stats() const {
    ServeStats stats;
    stats.lookups = lookups_done_.load(std::memory_order_relaxed);
    stats.ranges = ranges_done_.load(std::memory_order_relaxed);
    stats.updates = updates_done_.load(std::memory_order_relaxed);
    stats.read_buckets = read_buckets_.load(std::memory_order_relaxed);
    stats.update_batches = committed_batches();
    stats.avg_bucket_fill =
        stats.read_buckets > 0
            ? static_cast<double>(stats.lookups) / stats.read_buckets
            : 0;
    stats.read_latency = read_latency_.Summarize();
    stats.update_latency = update_latency_.Summarize();
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - started_at_).count();
    if (stats.wall_seconds > 0) {
      stats.reads_per_second =
          (stats.lookups + stats.ranges) / stats.wall_seconds;
      stats.updates_per_second = stats.updates / stats.wall_seconds;
    }
    {
      std::lock_guard<std::mutex> lock(sim_mutex_);
      stats.sim_pipeline_us = sim_pipeline_us_;
      stats.sim_update_us = sim_update_us_;
      stats.applied = applied_;
      stats.structural = structural_;
    }
    stats.epoch = snapshots_.epoch();
    return stats;
  }

  /// Stops admission, drains both lanes, and joins the workers. Safe to
  /// call more than once.
  void Shutdown() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    read_queue_.Close();
    update_queue_.Close();
    if (read_worker_.joinable()) read_worker_.join();
    if (update_worker_.joinable()) update_worker_.join();
  }

 private:
  /// One snapshot instance: a full tree with its own registry, device,
  /// and transfer engine, so the two instances share no mutable state.
  struct TreeSlot {
    PageRegistry registry;
    gpu::Device device;
    gpu::TransferEngine transfer;
    HBRegularTree<K> tree;

    explicit TreeSlot(const ServerOptions& options)
        : device(options.platform.gpu),
          transfer(&device, options.platform.pcie),
          tree(MakeTreeConfig(options), &registry, &device, &transfer) {}

    static typename HBRegularTree<K>::Config MakeTreeConfig(
        const ServerOptions& options) {
      typename HBRegularTree<K>::Config config;
      config.tree.leaf_fill = options.leaf_fill;
      return config;
    }
  };

  struct ReadOp {
    K key;
    int max_matches = 0;  // 0 = point lookup
    Clock::time_point admitted;
    std::promise<ReadResult<K>> done;
  };

  struct UpdateOp {
    UpdateQuery<K> query;
    Clock::time_point admitted;
    std::promise<std::uint64_t> done;
  };

  std::future<ReadResult<K>> AdmitRead(ReadOp op) {
    op.admitted = Clock::now();
    std::future<ReadResult<K>> result = op.done.get_future();
    if (!read_queue_.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      op.done.set_exception(std::make_exception_ptr(
          std::runtime_error("read submitted to a stopped server")));
    }
    return result;
  }

  void RecordLatency(LatencyHistogram* histogram, Clock::time_point start) {
    histogram->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }

  void ReadLoop() {
    const std::size_t bucket_size =
        static_cast<std::size_t>(options_.pipeline.bucket_size);
    std::vector<ReadOp> batch;
    std::vector<K> keys;
    std::vector<std::size_t> key_op;  // bucket position of keys[i]
    std::vector<LookupResult<K>> results;
    for (;;) {
      batch.clear();
      const std::size_t n = read_queue_.PopBatch(
          &batch, bucket_size, std::chrono::microseconds(10'000),
          options_.max_batch_delay);
      if (n == 0) {
        if (read_queue_.closed() && read_queue_.size() == 0) return;
        continue;
      }

      auto guard = snapshots_.Acquire();
      TreeSlot& slot = guard.slot();

      keys.clear();
      key_op.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches == 0) {
          keys.push_back(batch[i].key);
          key_op.push_back(i);
        }
      }

      std::vector<ReadResult<K>> out(batch.size());
      if (!keys.empty()) {
        results.assign(keys.size(), LookupResult<K>{});
        PipelineStats pipeline_stats = RunSearchPipeline(
            slot.tree, keys.data(), keys.size(), options_.pipeline,
            &results);
        for (std::size_t i = 0; i < keys.size(); ++i) {
          out[key_op[i]].lookup = results[i];
        }
        std::lock_guard<std::mutex> lock(sim_mutex_);
        sim_pipeline_us_ += pipeline_stats.total_us;
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches > 0) {
          // Range queries resolve against the same pinned snapshot; the
          // leaf-sequential scan is the CPU's share regardless (Section
          // 5.4), so it runs host-side here.
          out[i].range.resize(batch[i].max_matches);
          const int matched = slot.tree.host_tree().RangeScan(
              batch[i].key, batch[i].max_matches, out[i].range.data());
          out[i].range.resize(matched);
        }
      }

      read_buckets_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const bool is_range = batch[i].max_matches > 0;
        batch[i].done.set_value(std::move(out[i]));
        RecordLatency(&read_latency_, batch[i].admitted);
        if (is_range) {
          ranges_done_.fetch_add(1, std::memory_order_relaxed);
        } else {
          lookups_done_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  void UpdateLoop() {
    std::vector<UpdateOp> ops;
    std::vector<UpdateQuery<K>> batch;
    for (;;) {
      ops.clear();
      const std::size_t n = update_queue_.PopBatch(
          &ops, static_cast<std::size_t>(options_.update_batch_size),
          std::chrono::microseconds(10'000), options_.max_batch_delay);
      if (n == 0) {
        if (update_queue_.closed() && update_queue_.size() == 0) return;
        continue;
      }

      batch.clear();
      batch.reserve(ops.size());
      for (const UpdateOp& op : ops) batch.push_back(op.query);

      // Left-right commit: apply to the standby instance, swap the
      // epoch so new read buckets see the batch, drain readers still on
      // the old instance, then converge it with the same batch.
      BatchUpdateStats first_pass{};
      bool recorded = false;
      snapshots_.Publish([&](TreeSlot& slot) {
        BatchUpdateStats pass = RunBatchUpdate(
            slot.tree, batch, options_.update_method, options_.update);
        if (!recorded) {
          first_pass = pass;
          recorded = true;
        }
      });

      const std::uint64_t seq =
          committed_batches_.fetch_add(1, std::memory_order_acq_rel) + 1;
      {
        std::lock_guard<std::mutex> lock(sim_mutex_);
        sim_update_us_ += first_pass.total_us;
        applied_ += first_pass.applied;
        structural_ += first_pass.structural;
      }
      for (UpdateOp& op : ops) {
        op.done.set_value(seq);
        RecordLatency(&update_latency_, op.admitted);
        updates_done_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  ServerOptions options_;
  AdmissionQueue<ReadOp> read_queue_;
  AdmissionQueue<UpdateOp> update_queue_;
  TreeSlot slot_a_;
  TreeSlot slot_b_;
  SnapshotPair<TreeSlot> snapshots_;

  std::thread read_worker_;
  std::thread update_worker_;
  std::atomic<bool> stopped_{false};
  Clock::time_point started_at_;

  std::atomic<std::uint64_t> lookups_done_{0};
  std::atomic<std::uint64_t> ranges_done_{0};
  std::atomic<std::uint64_t> updates_done_{0};
  std::atomic<std::uint64_t> read_buckets_{0};
  std::atomic<std::uint64_t> committed_batches_{0};
  LatencyHistogram read_latency_;
  LatencyHistogram update_latency_;

  mutable std::mutex sim_mutex_;
  double sim_pipeline_us_ = 0;
  double sim_update_us_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t structural_ = 0;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SERVER_H_
