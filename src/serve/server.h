#ifndef HBTREE_SERVE_SERVER_H_
#define HBTREE_SERVE_SERVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/macros.h"
#include "core/status.h"
#include "core/types.h"
#include "core/workload.h"
#include "cpubtree/pipelined_search.h"
#include "fault/fault_injector.h"
#include "hybrid/batch_update.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_regular.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/admission_queue.h"
#include "serve/latency_histogram.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "sim/platform.h"

namespace hbtree::serve {

/// Default serving SLOs (see ServerOptions::slos): wall-clock read p99
/// under 200 ms with a 1% error budget, and at most 1% of admitted
/// operations shed. Deliberately loose — they are burn-rate baselines
/// for dashboards, not this host's performance envelope; benches and
/// deployments tighten them per workload.
inline std::vector<obs::SloSpec> DefaultServeSlos() {
  obs::SloSpec read_p99;
  read_p99.name = "read_p99";
  read_p99.kind = obs::SloSpec::Kind::kLatencyP99;
  read_p99.histogram = "serve.read_latency";
  read_p99.threshold_us = 200'000;
  read_p99.budget = 0.01;

  obs::SloSpec shed_ratio;
  shed_ratio.name = "shed_ratio";
  shed_ratio.kind = obs::SloSpec::Kind::kRatio;
  shed_ratio.bad_counters = {"serve.shed_reads", "serve.shed_updates"};
  shed_ratio.total_counters = {"serve.lookups",    "serve.ranges",
                               "serve.updates",    "serve.shed_reads",
                               "serve.shed_updates"};
  shed_ratio.budget = 0.01;

  return {read_p99, shed_ratio};
}

/// Serving-layer tuning knobs.
struct ServerOptions {
  /// Simulated platform each tree instance runs against (every snapshot
  /// slot gets its own device + transfer engine, so the reader's kernel
  /// launches never share mutable simulator state with the writer's
  /// I-segment syncs).
  sim::PlatformSpec platform = sim::PlatformSpec::Parse("m1");

  /// Pipeline configuration for read buckets. `bucket_size` is the
  /// admission bucket M (the paper settles on 16K, Section 6.3); the CPU
  /// rate fields should come from calibration (see
  /// bench_support/serve_runner.h).
  PipelineConfig pipeline;

  /// GPU sub-buckets per admission bucket. 1 ships each admission bucket
  /// as a single pipeline bucket (no intra-dispatch overlap); >1 splits
  /// it so the double-buffered schedule overlaps consecutive sub-buckets'
  /// H2D/kernel/D2H stages within one dispatch — the paper's Fig. 10
  /// pipelining applied to serving, and what makes the overlap visible
  /// on the modelled trace tracks (--trace_out).
  int pipeline_depth = 1;

  /// Smallest sub-bucket worth a separate kernel launch. Partial
  /// admission buckets (common under sharding, where each queue sees
  /// 1/num_shards of the arrival stream) are dispatched with a reduced
  /// effective depth so the per-launch setup cost is amortized over at
  /// least this many keys — splitting a trickle bucket pipeline_depth
  /// ways would multiply the fixed cost instead of hiding it.
  int min_sub_bucket = 1024;

  /// Key-range shards. Each shard is an independent snapshot pair with
  /// its own admission queues, update worker, read workers and circuit
  /// breakers; the bootstrap key space is split into `num_shards`
  /// contiguous ranges of equal cardinality. Shards commit batches and
  /// dispatch buckets in parallel, and each shard's tree is ~1/N the
  /// size (one fewer inner level to search at sufficient N).
  int num_shards = 1;

  /// Read workers (bucket dispatchers) per shard, all drawing from the
  /// shard's read queue and dispatching against the same pinned snapshot.
  /// The shared simulated device is thread-safe (see gpusim/device.h);
  /// each in-flight bucket needs its own query/result buffers in device
  /// memory, which Create() validates up front.
  int num_read_workers = 1;

  /// Batch-update configuration and method (Section 5.6). The default
  /// asynchronous-parallel method matches the epoch-swap design: the
  /// whole batch lands in main memory, then one bulk I-segment sync.
  BatchUpdateConfig update;
  UpdateMethod update_method = UpdateMethod::kAsyncParallel;

  /// Tree build configuration. Leaf slack keeps most online inserts
  /// non-structural, as the paper's update analysis assumes.
  double leaf_fill = 0.9;

  /// Admission-queue capacity per lane (reads / updates, per shard);
  /// producers block when a lane is full (backpressure).
  std::size_t queue_capacity = 64 * 1024;

  /// Updates per committed batch (flush threshold).
  int update_batch_size = 16 * 1024;

  /// How long a batcher waits for a partial bucket/batch to fill before
  /// shipping it — the added latency bound under light load. Read workers
  /// scale this window by num_shards: a shard sees ~1/N of the aggregate
  /// arrival rate, so holding the window fixed would shrink bucket fill
  /// by N and let the per-bucket kernel/transfer setup cost dominate.
  /// Scaling keeps the expected fill (and the fixed-cost share per op)
  /// constant while the wait stays at the single-shard dispatch interval.
  std::chrono::microseconds max_batch_delay{200};

  // -- Observability -------------------------------------------------------

  /// When positive, a background reporter thread collects
  /// MetricsRegistry::CollectWindow() every interval while the server is
  /// running and hands the windowed snapshot to `metrics_report_sink`
  /// (or dumps it as text to stderr when no sink is set).
  std::chrono::milliseconds metrics_report_interval{0};
  std::function<void(const obs::MetricsSnapshot&)> metrics_report_sink;

  /// Service-level objectives fed from the reporter's windowed snapshots
  /// (and a final window at Shutdown()). Burn rates surface in
  /// ServeStats::slos and as `slo.<name>.*` registry gauges. Clear to
  /// disable tracking.
  std::vector<obs::SloSpec> slos = DefaultServeSlos();

  // -- Fault tolerance ----------------------------------------------------

  /// Fault-injection policy armed on each snapshot slot's device after a
  /// clean bootstrap (every slot gets a decorrelated seed). Disabled by
  /// default; arm it in fault-tolerance tests and benches.
  fault::FaultConfig fault;

  /// Circuit breaker: after this many consecutive GPU bucket failures the
  /// slot's device path opens (buckets serve CPU-only) ...
  int breaker_failure_threshold = 3;
  /// ... and every Nth bucket while open probes the device path (resync
  /// if stale, then one pipelined bucket); a successful probe closes the
  /// breaker.
  int breaker_probe_interval = 4;

  /// Software-pipelining depth for the CPU-only degraded path (16 is the
  /// paper's optimum, Figure 7).
  int cpu_fallback_depth = 16;

  /// Default per-request deadline budget; zero means no deadline. A
  /// request whose deadline passes before it is dispatched resolves with
  /// kDeadlineExceeded instead of occupying the pipeline (load shedding).
  std::chrono::microseconds default_deadline{0};
};

/// Result of one read operation (point lookup or range query). `status`
/// is kOk for served requests; shed or rejected requests carry
/// kDeadlineExceeded / kUnavailable / kInvalidArgument and leave the
/// payload fields empty.
template <typename K>
struct ReadResult {
  Status status = Status::Ok();
  LookupResult<K> lookup;           // valid for point lookups
  std::vector<KeyValue<K>> range;   // valid for range queries
};

/// Result of one update. `sequence` is the commit sequence number of the
/// batch that applied it within its key-range shard (valid when status is
/// kOk); sequences are monotonic per shard, not totally ordered across
/// shards.
struct UpdateResult {
  Status status = Status::Ok();
  std::uint64_t sequence = 0;
};

/// Multi-threaded serving front-end over the regular HB+-tree.
///
/// Client threads submit point lookups, range queries, and updates; each
/// request routes to the key-range shard owning its key. A shard is an
/// independent epoch-swapped snapshot pair (two full tree instances) with
/// its own admission queues, one update worker, and
/// `num_read_workers` read workers batching admitted reads into
/// pipeline-sized buckets and dispatching them through the heterogeneous
/// search pipeline. Shards share nothing but the metrics registry, so
/// they commit batches and dispatch buckets in parallel; within a shard,
/// concurrent read workers share the pinned snapshot's simulated device
/// (thread-safe, see gpusim/device.h).
///
/// Range queries resolve per-shard-snapshot consistent: the scan starts
/// in the shard owning the start key and continues into higher shards,
/// pinning each shard's snapshot as it enters — each shard's segment is
/// consistent, but a scan spanning shards may observe different commit
/// points in different shards (same contract as per-shard sequences).
///
/// Fault tolerance: device failures surface as typed Statuses from the
/// Try* pipeline entry points and are absorbed here — a per-slot circuit
/// breaker flips the bucket path to the CPU-only pipelined search after
/// repeated failures (the host tree is always complete, so degraded mode
/// loses throughput, not correctness) and periodic probes restore the GPU
/// path once the device recovers. Breaker state is per snapshot slot and
/// shared by the shard's read workers (atomics; probes take the slot's
/// exclusive lock so a resync never races an in-flight bucket). Requests
/// never abort the process and every future resolves.
///
/// Threads: any number of producers; per shard, `num_read_workers` read
/// workers and one update committer; plus an optional metrics reporter.
/// All Submit* methods are thread-safe and return futures.
template <typename K>
class Server {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds a server or reports why it cannot be built (invalid options,
  /// I-segment mirror or per-worker bucket buffers exceeding device
  /// memory) via `*status_out` — construction failures are expected
  /// operating conditions on a capacity-limited device, not programming
  /// errors, so they do not abort. Returns nullptr on failure.
  static std::unique_ptr<Server> Create(
      const ServerOptions& options,
      const std::vector<KeyValue<K>>& sorted_pairs,
      Status* status_out = nullptr) {
    std::unique_ptr<Server> server(new Server(options));
    const Status status = server->Init(sorted_pairs);
    if (status_out != nullptr) *status_out = status;
    if (!status.ok()) server.reset();
    return server;
  }

  ~Server() { Shutdown(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Client API ---------------------------------------------------------

  /// Admits a point lookup; blocks if the owning shard's read lane is
  /// full (until the deadline, if one applies). `deadline` overrides
  /// options.default_deadline for this request; zero keeps the default.
  std::future<ReadResult<K>> SubmitLookup(
      K key, std::chrono::microseconds deadline = {}) {
    ReadOp op;
    op.key = key;
    op.max_matches = 0;
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits a range query for up to `max_matches` pairs with key >= key.
  /// A non-positive `max_matches` resolves the future immediately with
  /// kInvalidArgument (a malformed request must not crash the server).
  std::future<ReadResult<K>> SubmitRange(
      K key, int max_matches, std::chrono::microseconds deadline = {}) {
    ReadOp op;
    op.key = key;
    op.max_matches = max_matches;
    if (max_matches <= 0) {
      std::future<ReadResult<K>> result = op.done.get_future();
      ReadResult<K> rejected;
      rejected.status =
          Status::InvalidArgument("range max_matches must be positive");
      op.done.set_value(std::move(rejected));
      return result;
    }
    return AdmitRead(std::move(op), deadline);
  }

  /// Admits an update. On success the future carries the sequence number
  /// of the shard batch that committed it (after both snapshot instances
  /// converged); shed or rejected updates carry a non-ok status and were
  /// NOT applied.
  std::future<UpdateResult> SubmitUpdate(
      UpdateQuery<K> update, std::chrono::microseconds deadline = {}) {
    UpdateOp op;
    op.query = update;
    op.admitted = Clock::now();
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    std::future<UpdateResult> result = op.done.get_future();
    Shard& shard = *shards_[ShardFor(update.pair.key)];
    AdmissionQueue<UpdateOp>& queue = shard.update_queue;
    if (op.deadline != Clock::time_point::max()) {
      switch (queue.PushUntil(std::move(op), op.deadline)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout:
          shed_updates_.Increment();
          shard.shed_updates->Increment();
          op.done.set_value(UpdateResult{
              Status::DeadlineExceeded("update shed at admission"), 0});
          break;
        case PushResult::kClosed:
          op.done.set_value(UpdateResult{
              Status::Unavailable("update submitted to a stopped server"),
              0});
          break;
      }
    } else if (!queue.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      op.done.set_value(UpdateResult{
          Status::Unavailable("update submitted to a stopped server"), 0});
    }
    return result;
  }

  // Blocking conveniences.
  LookupResult<K> Lookup(K key) { return SubmitLookup(key).get().lookup; }
  std::vector<KeyValue<K>> Range(K key, int max_matches) {
    return SubmitRange(key, max_matches).get().range;
  }
  UpdateResult Update(UpdateQuery<K> update) {
    return SubmitUpdate(update).get();
  }

  // -- Introspection ------------------------------------------------------

  /// Number of update batches fully committed (both instances converged),
  /// summed over shards.
  std::uint64_t committed_batches() const {
    return committed_batches_.load(std::memory_order_acquire);
  }
  /// Sum of the shards' snapshot epochs: the number of update batches
  /// whose first (visible) application has been published. A lookup
  /// admitted after a batch's future resolved sees that batch (it routes
  /// to the shard that committed it).
  std::uint64_t epoch() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard->snapshots.epoch();
    return sum;
  }

  ServeStats Stats() const {
    ServeStats stats;
    stats.num_shards = options_.num_shards;
    stats.num_read_workers = options_.num_read_workers;
    stats.lookups = lookups_done_.value();
    stats.ranges = ranges_done_.value();
    stats.updates = updates_done_.value();
    stats.read_buckets = read_buckets_.value();
    stats.update_batches = committed_batches();
    stats.avg_bucket_fill =
        stats.read_buckets > 0
            ? static_cast<double>(stats.lookups) / stats.read_buckets
            : 0;
    stats.read_latency = read_latency_.LifetimeSummary();
    stats.update_latency = update_latency_.LifetimeSummary();
    stats.queue_wait = queue_wait_.LifetimeSummary();
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - started_at_).count();
    if (stats.wall_seconds > 0) {
      stats.reads_per_second =
          (stats.lookups + stats.ranges) / stats.wall_seconds;
      stats.updates_per_second = stats.updates / stats.wall_seconds;
    }
    {
      std::lock_guard<std::mutex> lock(sim_mutex_);
      stats.sim_pipeline_us = sim_pipeline_us_;
      stats.sim_update_us = sim_update_us_;
      stats.applied = applied_;
      stats.structural = structural_;
      // Modelled makespan: shards are independent devices, so their busy
      // times overlap; within a shard, reads and update syncs share one
      // device and are charged serially (conservative).
      for (const auto& shard : shards_) {
        stats.modelled_makespan_us =
            std::max(stats.modelled_makespan_us,
                     shard->sim_pipeline_us + shard->sim_update_us);
      }
    }
    if (stats.modelled_makespan_us > 0) {
      stats.modelled_ops_per_second =
          (stats.lookups + stats.ranges + stats.updates) * 1e6 /
          stats.modelled_makespan_us;
    }
    stats.epoch = epoch();

    stats.shed_reads = shed_reads_.value();
    stats.shed_updates = shed_updates_.value();
    stats.transfer_retries = transfer_retries_.value();
    stats.kernel_retries = kernel_retries_.value();
    stats.sync_retries = sync_retries_.value();
    stats.device_faults = device_faults_.value();
    stats.sync_failures = sync_failures_.value();
    stats.breaker_opens = breaker_opens_.value();
    stats.breaker_closes = breaker_closes_.value();
    stats.probe_attempts = probe_attempts_.value();
    stats.cpu_fallback_buckets = cpu_fallback_buckets_.value();
    stats.cpu_fallback_lookups = cpu_fallback_lookups_.value();
    for (const auto& shard : shards_) {
      stats.faults_injected += shard->slot_a.injector.total_injected() +
                               shard->slot_b.injector.total_injected();
    }
    stats.slos = slo_tracker_.Status();
    return stats;
  }

  /// The server's metrics registry: every ServeStats counter above, the
  /// per-shard `serve.shard<N>.*` series, plus the device-level
  /// `gpusim.*` metrics of every snapshot slot. Hand it to
  /// obs::MetricsRegistry::ToJson/ToText for export, or CollectWindow()
  /// for interval rates.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Stops admission, drains every shard's lanes, and joins the workers.
  /// Safe to call more than once.
  void Shutdown() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    for (auto& shard : shards_) {
      shard->read_queue.Close();
      shard->update_queue.Close();
    }
    for (auto& shard : shards_) {
      for (std::thread& worker : shard->read_workers) {
        if (worker.joinable()) worker.join();
      }
      if (shard->update_worker.joinable()) shard->update_worker.join();
    }
    {
      std::lock_guard<std::mutex> lock(reporter_mutex_);
      reporter_stop_ = true;
    }
    reporter_cv_.notify_all();
    if (reporter_thread_.joinable()) reporter_thread_.join();
    // Flush the tail window: a run shorter than the reporting interval
    // would otherwise never report (or feed the SLO tracker) at all. The
    // flush also runs with no reporter configured when SLOs are tracked,
    // so Stats().slos reflects the run — silently to the tracker only,
    // never to stderr (that channel belongs to an explicitly configured
    // reporter).
    if (options_.metrics_report_interval.count() > 0 ||
        !options_.slos.empty()) {
      const obs::MetricsSnapshot window = metrics_.CollectWindow();
      slo_tracker_.Observe(window);
      if (options_.metrics_report_sink) {
        options_.metrics_report_sink(window);
      } else if (options_.metrics_report_interval.count() > 0) {
        std::fprintf(stderr, "[serve.metrics final window %.2fs]\n%s\n",
                     window.window_seconds,
                     obs::MetricsRegistry::ToText(window).c_str());
      }
    }
  }

 private:
  /// One snapshot instance: a full tree with its own registry, device,
  /// transfer engine, and fault injector, so no two instances share
  /// mutable tree state (read workers of one shard share the pinned
  /// instance's thread-safe device).
  struct TreeSlot {
    PageRegistry registry;
    gpu::Device device;
    gpu::TransferEngine transfer;
    HBRegularTree<K> tree;
    fault::FaultInjector injector;

    // Circuit-breaker state, shared by the shard's read workers
    // (atomics: concurrent dispatchers may fail and probe in parallel).
    std::atomic<int> consecutive_failures{0};
    std::atomic<bool> breaker_open{false};
    std::atomic<int> buckets_since_probe{0};

    /// Probes resync the device mirror (realloc + bulk copy), which must
    /// not race another worker's in-flight GPU bucket on this slot:
    /// dispatches hold shared, probe resyncs hold exclusive.
    std::shared_mutex gpu_mutex;

    /// Model-track block this slot's pipeline spans render on (+1 keeps
    /// block 0 for un-sharded direct pipeline runs); labelled
    /// "shard<N>/slot<side>" in the trace export.
    const int track_base;

    TreeSlot(const ServerOptions& options, std::uint64_t slot_index)
        : device(options.platform.gpu),
          transfer(&device, options.platform.pcie),
          tree(MakeTreeConfig(options), &registry, &device, &transfer),
          injector(SlotFaultConfig(options.fault, slot_index)),
          track_base(static_cast<int>(slot_index + 1) *
                     obs::TraceSession::kModelTrackStride) {}

    static typename HBRegularTree<K>::Config MakeTreeConfig(
        const ServerOptions& options) {
      typename HBRegularTree<K>::Config config;
      config.tree.leaf_fill = options.leaf_fill;
      return config;
    }

    /// Decorrelates the slots' fault streams without asking callers for
    /// a seed per slot (slot_index is unique across shards: 2*shard+side).
    static fault::FaultConfig SlotFaultConfig(fault::FaultConfig config,
                                              std::uint64_t slot_index) {
      config.seed += slot_index * 7919;
      return config;
    }
  };

  struct ReadOp {
    K key;
    int max_matches = 0;  // 0 = point lookup
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<ReadResult<K>> done;
  };

  struct UpdateOp {
    UpdateQuery<K> query;
    Clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<UpdateResult> done;
  };

  /// What a bucket dispatch reports back for latency attribution: the
  /// trace identity of its `bucket.dispatch` span (0 when tracing is off
  /// or inactive) and the modelled device time the bucket was charged —
  /// the fields tail exemplars carry (see obs::Exemplar).
  struct DispatchInfo {
    std::uint64_t span_id = 0;
    double modelled_us = 0;
    bool cpu_fallback = false;
  };

  /// One key-range shard: an independent snapshot pair with its own
  /// admission lanes and workers. Shards never touch each other's trees
  /// or devices; the only cross-shard read is a range scan continuing
  /// into the next shard's pinned snapshot.
  struct Shard {
    const int index;
    AdmissionQueue<ReadOp> read_queue;
    AdmissionQueue<UpdateOp> update_queue;
    TreeSlot slot_a;
    TreeSlot slot_b;
    SnapshotPair<TreeSlot> snapshots;
    /// Per-shard commit sequence (returned to this shard's update
    /// futures).
    std::atomic<std::uint64_t> committed_batches{0};

    // Per-shard metric handles (serve.shard<N>.*), bound in Init.
    obs::Counter* read_buckets = nullptr;
    obs::Counter* update_batches = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* shed_reads = nullptr;
    obs::Counter* shed_updates = nullptr;
    obs::Histogram* queue_wait = nullptr;

    // Modelled busy time of this shard's device (guarded by the server's
    // sim_mutex_): read-pipeline and update-path µs on the simulated
    // platform clock. Shards overlap — the serving makespan is the max
    // across shards (see ServeStats::modelled_makespan_us).
    double sim_pipeline_us = 0;
    double sim_update_us = 0;

    std::vector<std::thread> read_workers;
    std::thread update_worker;

    Shard(const ServerOptions& options, int shard_index)
        : index(shard_index),
          read_queue(options.queue_capacity),
          update_queue(options.queue_capacity),
          slot_a(options, static_cast<std::uint64_t>(shard_index) * 2),
          slot_b(options, static_cast<std::uint64_t>(shard_index) * 2 + 1),
          snapshots(&slot_a, &slot_b) {}
  };

  explicit Server(const ServerOptions& options) : options_(options) {}

  /// Shard owning `key`: the number of range bounds <= key.
  /// `shard_bounds_[i]` is the smallest bootstrap key of shard i+1.
  std::size_t ShardFor(K key) const {
    return static_cast<std::size_t>(
        std::upper_bound(shard_bounds_.begin(), shard_bounds_.end(), key) -
        shard_bounds_.begin());
  }

  Status Init(const std::vector<KeyValue<K>>& sorted_pairs) {
    if (options_.pipeline.bucket_size <= 0) {
      return Status::InvalidArgument("pipeline.bucket_size must be positive");
    }
    if (options_.pipeline_depth < 1) {
      return Status::InvalidArgument("pipeline_depth must be >= 1");
    }
    if (options_.update_batch_size <= 0) {
      return Status::InvalidArgument("update_batch_size must be positive");
    }
    if (options_.breaker_failure_threshold <= 0 ||
        options_.breaker_probe_interval <= 0) {
      return Status::InvalidArgument("breaker thresholds must be positive");
    }
    if (options_.num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options_.num_read_workers < 1) {
      return Status::InvalidArgument("num_read_workers must be >= 1");
    }
    const int num_shards = options_.num_shards;
    const std::size_t n = sorted_pairs.size();
    if (num_shards > 1) {
      if (n < static_cast<std::size_t>(num_shards)) {
        return Status::InvalidArgument(
            "num_shards exceeds the bootstrap key count — every shard "
            "needs at least one key to define its range");
      }
      for (int i = 1; i < num_shards; ++i) {
        const K bound = sorted_pairs[n * static_cast<std::size_t>(i) /
                                     static_cast<std::size_t>(num_shards)]
                            .key;
        if (!shard_bounds_.empty() && !(shard_bounds_.back() < bound)) {
          return Status::InvalidArgument(
              "num_shards exceeds the distinct bootstrap keys — shard "
              "range bounds must be strictly increasing");
        }
        shard_bounds_.push_back(bound);
      }
    }

    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(options_, i));
    }

    // Bootstrap is fault-free: the injectors arm only after every mirror
    // built, so an injected fault can never masquerade as "tree does not
    // fit" at startup.
    for (int i = 0; i < num_shards; ++i) {
      const std::size_t lo = n * static_cast<std::size_t>(i) /
                             static_cast<std::size_t>(num_shards);
      const std::size_t hi = n * static_cast<std::size_t>(i + 1) /
                             static_cast<std::size_t>(num_shards);
      const std::vector<KeyValue<K>> slice(sorted_pairs.begin() + lo,
                                           sorted_pairs.begin() + hi);
      Shard& shard = *shards_[i];
      if (!shard.slot_a.tree.Build(slice) ||
          !shard.slot_b.tree.Build(slice)) {
        return Status::DeviceOom("I-segment does not fit into device memory");
      }
      HBTREE_RETURN_IF_ERROR(ValidateBucketBacking(shard));
    }

    for (auto& shard : shards_) {
      if (options_.fault.enabled()) {
        shard->slot_a.device.set_fault_injector(&shard->slot_a.injector);
        shard->slot_b.device.set_fault_injector(&shard->slot_b.injector);
      }
      // Every slot publishes into the server's registry: gpusim.*
      // counters aggregate across all devices.
      shard->slot_a.device.set_metrics_registry(&metrics_);
      shard->slot_b.device.set_metrics_registry(&metrics_);
      const int i = shard->index;
      shard->read_buckets = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "read_buckets"));
      shard->update_batches = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "update_batches"));
      shard->breaker_opens = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "breaker_opens"));
      shard->shed_reads = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "shed_reads"));
      shard->shed_updates = &metrics_.counter(
          obs::MetricsRegistry::ShardedName("serve", i, "shed_updates"));
      shard->queue_wait = &metrics_.histogram(
          obs::MetricsRegistry::ShardedName("serve", i, "queue_wait"));
      // Label each slot's model-track block so a multi-shard trace keeps
      // one set of resource tracks per slot instead of interleaving
      // every shard's pipeline on the shared sim.* tracks.
      HBTREE_TRACE_ONLY(obs::TraceSession::RegisterModelTrackPrefix(
                            shard->slot_a.track_base,
                            "shard" + std::to_string(i) + "/slot0");
                        obs::TraceSession::RegisterModelTrackPrefix(
                            shard->slot_b.track_base,
                            "shard" + std::to_string(i) + "/slot1");)
    }

    for (const obs::SloSpec& spec : options_.slos) {
      slo_tracker_.AddTarget(spec);
    }

    started_at_ = Clock::now();
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      for (int w = 0; w < options_.num_read_workers; ++w) {
        s->read_workers.emplace_back([this, s, w] { ReadLoop(*s, w); });
      }
      s->update_worker = std::thread([this, s] { UpdateLoop(*s); });
    }
    if (options_.metrics_report_interval.count() > 0) {
      reporter_thread_ = std::thread([this] { ReporterLoop(); });
    }
    return Status::Ok();
  }

  /// Every concurrent dispatch needs its own query/result buffers in the
  /// slot's device arena, on top of the I-segment mirror Build() already
  /// placed there. Failing now with an actionable message beats
  /// degenerate serving where every bucket OOMs onto the CPU path.
  Status ValidateBucketBacking(Shard& shard) const {
    const std::size_t m =
        static_cast<std::size_t>(options_.pipeline.bucket_size);
    const bool balanced = options_.pipeline.cpu_descend_levels > 0 ||
                          options_.pipeline.cpu_split_ratio < 1.0;
    const std::size_t per_worker =
        m * (sizeof(K) + sizeof(std::uint64_t) +
             (balanced ? sizeof(std::uint32_t) : 0));
    const std::size_t need =
        per_worker * static_cast<std::size_t>(options_.num_read_workers);
    for (TreeSlot* slot : {&shard.slot_a, &shard.slot_b}) {
      const std::size_t used = slot->device.used_bytes();
      const std::size_t capacity = slot->device.capacity_bytes();
      if (used + need > capacity) {
        char msg[256];
        std::snprintf(
            msg, sizeof(msg),
            "shard %d: %d read worker(s) need %zu bytes of bucket buffers "
            "but only %zu of %zu device bytes remain after the I-segment "
            "mirror — reduce num_read_workers or pipeline.bucket_size, or "
            "raise num_shards",
            shard.index, options_.num_read_workers, need, capacity - used,
            capacity);
        return Status::DeviceOom(msg);
      }
    }
    return Status::Ok();
  }

  std::future<ReadResult<K>> AdmitRead(ReadOp op,
                                       std::chrono::microseconds deadline) {
    op.admitted = Clock::now();
    const std::chrono::microseconds budget =
        deadline.count() != 0 ? deadline : options_.default_deadline;
    if (budget.count() != 0) op.deadline = op.admitted + budget;
    std::future<ReadResult<K>> result = op.done.get_future();
    Shard& shard = *shards_[ShardFor(op.key)];
    AdmissionQueue<ReadOp>& queue = shard.read_queue;
    if (op.deadline != Clock::time_point::max()) {
      switch (queue.PushUntil(std::move(op), op.deadline)) {
        case PushResult::kOk:
          break;
        case PushResult::kTimeout: {
          shed_reads_.Increment();
          shard.shed_reads->Increment();
          ReadResult<K> shed;
          shed.status = Status::DeadlineExceeded("read shed at admission");
          op.done.set_value(std::move(shed));
          break;
        }
        case PushResult::kClosed: {
          ReadResult<K> rejected;
          rejected.status =
              Status::Unavailable("read submitted to a stopped server");
          op.done.set_value(std::move(rejected));
          break;
        }
      }
    } else if (!queue.Push(std::move(op))) {
      // Benign race with Shutdown(): reject via the future instead of
      // aborting the process.
      ReadResult<K> rejected;
      rejected.status =
          Status::Unavailable("read submitted to a stopped server");
      op.done.set_value(std::move(rejected));
    }
    return result;
  }

  void RecordLatency(obs::Histogram* histogram, Clock::time_point start) {
    histogram->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }

  /// RecordLatency plus tail-exemplar capture: when tracing is compiled
  /// in and the serving span has an identity, the sample carries a link
  /// back to that span (p99+ buckets keep it; see
  /// obs::Histogram::RecordWithExemplar). Compiled-out builds reduce to
  /// plain RecordLatency — the hot path pays nothing for exemplars.
  void RecordLatencyWithExemplar(obs::Histogram* histogram,
                                 Clock::time_point start, int shard_index,
                                 std::uint64_t span_id, double modelled_us) {
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
#if HBTREE_OBS_TRACING
    if (span_id != 0) {
      obs::Exemplar exemplar;
      exemplar.trace_id = obs::TraceSession::trace_id();
      exemplar.span_id = span_id;
      exemplar.shard = shard_index;
      exemplar.modelled_us = modelled_us;
      histogram->RecordWithExemplar(ns, exemplar);
      return;
    }
#else
    (void)shard_index;
    (void)span_id;
    (void)modelled_us;
#endif
    histogram->Record(ns);
  }

  // -- Circuit breaker (shared by a shard's read workers) ------------------

  void OpenBreaker(Shard& shard, TreeSlot& slot) {
    // exchange: concurrent workers hitting the threshold together open
    // the breaker (and count the open) exactly once.
    if (slot.breaker_open.exchange(true, std::memory_order_relaxed)) return;
    slot.buckets_since_probe.store(0, std::memory_order_relaxed);
    breaker_opens_.Increment();
    shard.breaker_opens->Increment();
    HBTREE_TRACE_INSTANT("breaker.open", "serve");
  }

  void CloseBreaker(TreeSlot& slot) {
    if (!slot.breaker_open.exchange(false, std::memory_order_relaxed)) return;
    slot.consecutive_failures.store(0, std::memory_order_relaxed);
    breaker_closes_.Increment();
    HBTREE_TRACE_INSTANT("breaker.close", "serve");
  }

  /// One GPU bucket through the fault-tolerant pipeline; false on a
  /// terminal device failure (results are then unreliable and the caller
  /// must re-serve the bucket on the CPU).
  bool TryGpuBucket(Shard& shard, TreeSlot& slot, const std::vector<K>& keys,
                    std::vector<LookupResult<K>>* results,
                    DispatchInfo* info) {
    PipelineStats ps;
    PipelineConfig config = options_.pipeline;
    HBTREE_TRACE_ONLY(config.trace_track_base = slot.track_base;)
    // Effective depth shrinks for partial buckets so each sub-bucket keeps
    // at least min_sub_bucket keys (per-launch setup does not amortize
    // below that); full buckets still split pipeline_depth ways.
    const int depth = std::clamp(
        static_cast<int>(keys.size() /
                         std::max(1, options_.min_sub_bucket)),
        1, std::max(1, options_.pipeline_depth));
    if (depth > 1) {
      // Split the batch actually dispatched, not the configured bucket
      // size: partial admission buckets (shipped by max_batch_delay)
      // would otherwise fit in one sub-bucket and lose the overlap.
      const int target = static_cast<int>(
          (keys.size() + static_cast<std::size_t>(depth) - 1) /
          static_cast<std::size_t>(depth));
      config.bucket_size = std::max(
          1, std::min(options_.pipeline.bucket_size, target));
    } else {
      config.bucket_size = std::max(
          1, std::min(options_.pipeline.bucket_size,
                      static_cast<int>(keys.size())));
    }
    const Status status =
        TryRunSearchPipeline(slot.tree, keys.data(), keys.size(),
                             config, results, &ps);
    transfer_retries_.Add(ps.transfer_retries);
    kernel_retries_.Add(ps.kernel_retries);
    if (!status.ok()) return false;
    if (info != nullptr) info->modelled_us = ps.total_us;
    std::lock_guard<std::mutex> lock(sim_mutex_);
    sim_pipeline_us_ += ps.total_us;
    shard.sim_pipeline_us += ps.total_us;
    return true;
  }

  /// Recovery probe: resync the mirror if stale, then run this bucket
  /// through the GPU path. The probe is not wasted work — on success its
  /// results serve the bucket. Caller holds the slot's exclusive lock.
  bool ProbeSlot(Shard& shard, TreeSlot& slot, const std::vector<K>& keys,
                 std::vector<LookupResult<K>>* results, DispatchInfo* info) {
    probe_attempts_.Increment();
    HBTREE_TRACE_INSTANT("breaker.probe", "serve");
    if (!slot.tree.mirror_valid() &&
        !slot.tree.TrySyncISegment().ok()) {
      return false;
    }
    return TryGpuBucket(shard, slot, keys, results, info);
  }

  /// Serves one bucket of point lookups, always filling `results`: the
  /// GPU pipeline when the slot's breaker is closed and its mirror is
  /// fresh, the CPU-only pipelined search otherwise. Correctness rule: a
  /// stale mirror (failed sync) must never serve GPU lookups — it would
  /// silently return pre-update results.
  void DispatchBucket(Shard& shard, TreeSlot& slot,
                      const std::vector<K>& keys,
                      std::vector<LookupResult<K>>* results,
                      DispatchInfo* info = nullptr) {
    // An identified span (not the plain macro): the ops this bucket
    // serves attach tail exemplars pointing at its span_id.
    HBTREE_TRACE_ONLY(
        obs::ScopedSpan dispatch_span("bucket.dispatch", "serve", "keys",
                                      static_cast<double>(keys.size()));
        if (info != nullptr) info->span_id = dispatch_span.EnsureSpanId();)
    if (!slot.breaker_open.load(std::memory_order_relaxed) &&
        !slot.tree.mirror_valid()) {
      OpenBreaker(shard, slot);
    }

    if (!slot.breaker_open.load(std::memory_order_relaxed)) {
      bool ok;
      {
        std::shared_lock<std::shared_mutex> lock(slot.gpu_mutex);
        ok = TryGpuBucket(shard, slot, keys, results, info);
      }
      if (ok) {
        slot.consecutive_failures.store(0, std::memory_order_relaxed);
        return;
      }
      device_faults_.Increment();
      if (slot.consecutive_failures.fetch_add(1, std::memory_order_relaxed) +
              1 >=
          options_.breaker_failure_threshold) {
        OpenBreaker(shard, slot);
      }
    } else if ((slot.buckets_since_probe.fetch_add(
                    1, std::memory_order_relaxed) +
                1) %
                   options_.breaker_probe_interval ==
               0) {
      // Every Nth open bucket probes. The counter is monotonic (no reset
      // on probe) so concurrent workers keep the modulo cadence without a
      // CAS loop; OpenBreaker zeroes it on the open transition.
      std::unique_lock<std::shared_mutex> lock(slot.gpu_mutex);
      if (ProbeSlot(shard, slot, keys, results, info)) {
        CloseBreaker(slot);
        return;
      }
    }

    // Degraded mode: the host tree is complete, so the software-pipelined
    // CPU search answers the bucket exactly — reduced throughput, same
    // results.
    PipelinedSearch(slot.tree.host_tree(), keys.data(), keys.size(),
                    options_.cpu_fallback_depth, results->data());
    cpu_fallback_buckets_.Increment();
    cpu_fallback_lookups_.Add(keys.size());
    if (info != nullptr) info->cpu_fallback = true;
  }

  void ReadLoop(Shard& shard, int worker_index) {
    HBTREE_TRACE_ONLY(const std::string worker_name =
                          "serve.shard" + std::to_string(shard.index) +
                          ".read" + std::to_string(worker_index);)
    HBTREE_TRACE_THREAD_NAME(worker_name.c_str());
    (void)worker_index;
    const std::size_t bucket_size =
        static_cast<std::size_t>(options_.pipeline.bucket_size);
    // Per-shard arrival rate is ~1/num_shards of the aggregate, and
    // co-workers on the same queue split that stream again; scale the
    // fill window to match (see ServerOptions::max_batch_delay).
    const std::chrono::microseconds fill_wait =
        options_.max_batch_delay *
        static_cast<int>(shards_.size() * options_.num_read_workers);
    std::vector<ReadOp> batch;
    std::vector<K> keys;
    std::vector<std::size_t> key_op;  // bucket position of keys[i]
    std::vector<LookupResult<K>> results;
    for (;;) {
      batch.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("bucket.fill", "serve");
        n = shard.read_queue.PopBatch(&batch, bucket_size,
                                      std::chrono::microseconds(10'000),
                                      fill_wait);
      }
      if (n == 0) {
        if (shard.read_queue.closed() && shard.read_queue.size() == 0) {
          return;
        }
        continue;
      }

      // Load shedding: an op whose deadline passed while it queued gets a
      // typed timeout now instead of a stale-but-late answer.
      const Clock::time_point now = Clock::now();
      std::size_t live = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (now > batch[i].deadline) {
          shed_reads_.Increment();
          shard.shed_reads->Increment();
          ReadResult<K> shed;
          shed.status =
              Status::DeadlineExceeded("read deadline passed in queue");
          batch[i].done.set_value(std::move(shed));
          continue;
        }
        if (live != i) batch[live] = std::move(batch[i]);
        ++live;
      }
      batch.resize(live);
      if (batch.empty()) continue;

      // Queue wait (push -> dispatch), per op: the shard-imbalance
      // signal. The bucket's worst wait becomes a trace span ending now.
      std::uint64_t max_wait_ns = 0;
      for (const ReadOp& op : batch) {
        const std::uint64_t wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - op.admitted)
                .count());
        queue_wait_.Record(wait_ns);
        shard.queue_wait->Record(wait_ns);
        max_wait_ns = std::max(max_wait_ns, wait_ns);
      }
      HBTREE_TRACE_COMPLETE("queue.wait", "serve",
                            obs::TraceSession::NowUs() - max_wait_ns / 1e3,
                            max_wait_ns / 1e3, "ops", batch.size());

      auto guard = shard.snapshots.Acquire();
      TreeSlot& slot = guard.slot();

      keys.clear();
      key_op.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches == 0) {
          keys.push_back(batch[i].key);
          key_op.push_back(i);
        }
      }

      std::vector<ReadResult<K>> out(batch.size());
      DispatchInfo dispatch_info;
      if (!keys.empty()) {
        results.assign(keys.size(), LookupResult<K>{});
        DispatchBucket(shard, slot, keys, &results, &dispatch_info);
        for (std::size_t i = 0; i < keys.size(); ++i) {
          out[key_op[i]].lookup = results[i];
        }
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].max_matches > 0) {
          // Range queries resolve against the same pinned snapshot; the
          // leaf-sequential scan is the CPU's share regardless (Section
          // 5.4), so it runs host-side here. A scan exhausting this
          // shard's range continues into the next shard's snapshot,
          // pinned as it enters (per-shard consistency; see class docs).
          out[i].range.resize(batch[i].max_matches);
          int matched = slot.tree.host_tree().RangeScan(
              batch[i].key, batch[i].max_matches, out[i].range.data());
          for (std::size_t next = static_cast<std::size_t>(shard.index) + 1;
               matched < batch[i].max_matches && next < shards_.size();
               ++next) {
            auto next_guard = shards_[next]->snapshots.Acquire();
            matched += next_guard.slot().tree.host_tree().RangeScan(
                shard_bounds_[next - 1], batch[i].max_matches - matched,
                out[i].range.data() + matched);
          }
          out[i].range.resize(matched);
        }
      }

      read_buckets_.Increment();
      shard.read_buckets->Increment();
      {
        HBTREE_TRACE_SPAN_ARG("bucket.complete", "serve", "ops",
                              static_cast<double>(batch.size()));
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const bool is_range = batch[i].max_matches > 0;
          batch[i].done.set_value(std::move(out[i]));
          RecordLatencyWithExemplar(&read_latency_, batch[i].admitted,
                                    shard.index, dispatch_info.span_id,
                                    dispatch_info.modelled_us);
          if (is_range) {
            ranges_done_.Increment();
          } else {
            lookups_done_.Increment();
          }
        }
      }
    }
  }

  void UpdateLoop(Shard& shard) {
    HBTREE_TRACE_ONLY(const std::string worker_name =
                          "serve.shard" + std::to_string(shard.index) +
                          ".update";)
    HBTREE_TRACE_THREAD_NAME(worker_name.c_str());
    std::vector<UpdateOp> ops;
    std::vector<UpdateQuery<K>> batch;
    std::vector<std::size_t> live;
    for (;;) {
      ops.clear();
      std::size_t n;
      {
        HBTREE_TRACE_SPAN("update.fill", "serve");
        // Same arrival-rate scaling as the read fill window: a shard sees
        // 1/num_shards of the update stream, and a half-filled commit
        // still pays the full publish cost (double apply + mirror sync +
        // reader drain), so small time-sliced batches are the worst case.
        n = shard.update_queue.PopBatch(
            &ops, static_cast<std::size_t>(options_.update_batch_size),
            std::chrono::microseconds(10'000),
            options_.max_batch_delay * static_cast<int>(shards_.size()));
      }
      if (n == 0) {
        if (shard.update_queue.closed() && shard.update_queue.size() == 0) {
          return;
        }
        continue;
      }

      // Shed expired updates before committing anything: a shed update is
      // promised to NOT have been applied.
      const Clock::time_point now = Clock::now();
      batch.clear();
      live.clear();
      batch.reserve(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (now > ops[i].deadline) {
          shed_updates_.Increment();
          shard.shed_updates->Increment();
          ops[i].done.set_value(UpdateResult{
              Status::DeadlineExceeded("update deadline passed in queue"),
              0});
          continue;
        }
        const std::uint64_t wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - ops[i].admitted)
                .count());
        queue_wait_.Record(wait_ns);
        shard.queue_wait->Record(wait_ns);
        live.push_back(i);
        batch.push_back(ops[i].query);
      }
      if (batch.empty()) continue;

      // Left-right commit: apply to the standby instance, swap the
      // epoch so new read buckets see the batch, drain readers still on
      // the old instance, then converge it with the same batch. Host
      // application always completes; a failed device sync only leaves
      // that slot's mirror stale (the read workers' breaker reroutes it
      // to the CPU until a probe resyncs), so the updates commit and
      // their futures succeed either way.
      BatchUpdateStats first_pass{};
      bool recorded = false;
      Status sync_status = Status::Ok();
      std::uint64_t sync_retries = 0;
      std::uint64_t commit_span_id = 0;
      {
        // Identified like bucket.dispatch: update-latency exemplars point
        // at the commit span that published their batch.
        HBTREE_TRACE_ONLY(
            obs::ScopedSpan commit_span("update.commit", "serve", "updates",
                                        static_cast<double>(batch.size()));
            commit_span_id = commit_span.EnsureSpanId();)
        shard.snapshots.Publish([&](TreeSlot& slot) {
          BatchUpdateStats pass;
          const Status status =
              TryRunBatchUpdate(slot.tree, batch, options_.update_method,
                                options_.update, &pass);
          sync_retries += pass.sync_retries;
          if (!status.ok() && sync_status.ok()) sync_status = status;
          if (!recorded) {
            first_pass = pass;
            recorded = true;
          }
        });
      }
      sync_retries_.Add(sync_retries);
      if (!sync_status.ok()) {
        sync_failures_.Increment();
      }

      const std::uint64_t seq =
          shard.committed_batches.fetch_add(1, std::memory_order_acq_rel) +
          1;
      committed_batches_.fetch_add(1, std::memory_order_acq_rel);
      committed_batches_metric_.Increment();
      shard.update_batches->Increment();
      epoch_gauge_.Set(static_cast<double>(epoch()));
      {
        std::lock_guard<std::mutex> lock(sim_mutex_);
        sim_update_us_ += first_pass.total_us;
        shard.sim_update_us += first_pass.total_us;
        applied_ += first_pass.applied;
        structural_ += first_pass.structural;
      }
      for (std::size_t idx : live) {
        UpdateOp& op = ops[idx];
        op.done.set_value(UpdateResult{Status::Ok(), seq});
        RecordLatencyWithExemplar(&update_latency_, op.admitted, shard.index,
                                  commit_span_id, first_pass.total_us);
        updates_done_.Increment();
      }
    }
  }

  void ReporterLoop() {
    HBTREE_TRACE_THREAD_NAME("serve.metrics_reporter");
    std::unique_lock<std::mutex> lock(reporter_mutex_);
    for (;;) {
      if (reporter_cv_.wait_for(lock, options_.metrics_report_interval,
                                [this] { return reporter_stop_; })) {
        return;
      }
      lock.unlock();
      const obs::MetricsSnapshot window = metrics_.CollectWindow();
      slo_tracker_.Observe(window);
      if (options_.metrics_report_sink) {
        options_.metrics_report_sink(window);
      } else {
        std::fprintf(stderr, "[serve.metrics window %.2fs]\n%s\n",
                     window.window_seconds,
                     obs::MetricsRegistry::ToText(window).c_str());
      }
      lock.lock();
    }
  }

  ServerOptions options_;

  /// Owns every serving counter/histogram plus the slots' gpusim.*
  /// metrics. Declared before the shards: slot destructors release
  /// device memory, which updates the used-bytes gauge, so the registry
  /// must outlive them.
  obs::MetricsRegistry metrics_;

  /// Key-range shards (stable addresses: workers hold references).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// shard_bounds_[i] = smallest bootstrap key owned by shard i+1; empty
  /// for a single shard. Immutable after Init.
  std::vector<K> shard_bounds_;

  std::atomic<bool> stopped_{false};
  // Initialized at declaration (not only in Init()) so Stats() on a
  // partially constructed server can never divide by a garbage duration.
  Clock::time_point started_at_ = Clock::now();

  std::thread reporter_thread_;
  std::mutex reporter_mutex_;
  std::condition_variable reporter_cv_;
  bool reporter_stop_ = false;  // guarded by reporter_mutex_

  // Metric handles into metrics_ (declared above, before the shards).
  // Update hot paths cost exactly what the raw std::atomic members they
  // replaced did (one relaxed RMW).
  obs::Counter& lookups_done_ = metrics_.counter("serve.lookups");
  obs::Counter& ranges_done_ = metrics_.counter("serve.ranges");
  obs::Counter& updates_done_ = metrics_.counter("serve.updates");
  obs::Counter& read_buckets_ = metrics_.counter("serve.read_buckets");
  // Stays a raw atomic: the commit-sequence handoff needs acq_rel RMW
  // semantics the registry's relaxed counters deliberately do not offer.
  std::atomic<std::uint64_t> committed_batches_{0};
  obs::Counter& committed_batches_metric_ =
      metrics_.counter("serve.committed_batches");
  obs::Gauge& epoch_gauge_ = metrics_.gauge("serve.epoch");
  obs::Histogram& read_latency_ = metrics_.histogram("serve.read_latency");
  obs::Histogram& update_latency_ =
      metrics_.histogram("serve.update_latency");
  obs::Histogram& queue_wait_ = metrics_.histogram("serve.queue_wait");

  obs::Counter& shed_reads_ = metrics_.counter("serve.shed_reads");
  obs::Counter& shed_updates_ = metrics_.counter("serve.shed_updates");
  obs::Counter& transfer_retries_ =
      metrics_.counter("serve.transfer_retries");
  obs::Counter& kernel_retries_ = metrics_.counter("serve.kernel_retries");
  obs::Counter& sync_retries_ = metrics_.counter("serve.sync_retries");
  obs::Counter& device_faults_ = metrics_.counter("serve.device_faults");
  obs::Counter& sync_failures_ = metrics_.counter("serve.sync_failures");
  obs::Counter& breaker_opens_ = metrics_.counter("serve.breaker_opens");
  obs::Counter& breaker_closes_ = metrics_.counter("serve.breaker_closes");
  obs::Counter& probe_attempts_ = metrics_.counter("serve.probe_attempts");
  obs::Counter& cpu_fallback_buckets_ =
      metrics_.counter("serve.cpu_fallback_buckets");
  obs::Counter& cpu_fallback_lookups_ =
      metrics_.counter("serve.cpu_fallback_lookups");

  /// Burn-rate accounting over options_.slos, fed one window per
  /// reporter tick plus the final window at Shutdown().
  obs::SloTracker slo_tracker_{&metrics_};

  mutable std::mutex sim_mutex_;
  double sim_pipeline_us_ = 0;
  double sim_update_us_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t structural_ = 0;
};

}  // namespace hbtree::serve

#endif  // HBTREE_SERVE_SERVER_H_
