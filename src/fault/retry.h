#ifndef HBTREE_FAULT_RETRY_H_
#define HBTREE_FAULT_RETRY_H_

#include <cstdint>
#include <utility>

#include "core/status.h"
#include "obs/trace.h"

namespace hbtree::fault {

/// Bounded retry with exponential backoff for transient device faults.
///
/// The backoff is *modelled* time, not a real sleep: the simulated
/// platform charges the µs to the operation's timeline exactly like a
/// transfer cost, so benches see the latency a real driver-level retry
/// loop would add without slowing the harness down.
struct RetryPolicy {
  int max_retries = 3;       // retries after the first attempt
  double backoff_us = 25.0;  // modelled delay before the first retry
  double multiplier = 2.0;   // backoff growth per retry
};

/// Runs `attempt` (a callable returning Status) until it succeeds, fails
/// terminally, or the retry budget is exhausted. Only transient statuses
/// (transfer/kernel faults) are retried. `retries` and `backoff_us`
/// accumulate (never reset) so one counter can span many operations.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, Fn&& attempt,
                      std::uint64_t* retries = nullptr,
                      double* backoff_us = nullptr) {
  double delay = policy.backoff_us;
  Status status = attempt();
  for (int r = 0; r < policy.max_retries && status.IsTransient(); ++r) {
    if (retries != nullptr) ++*retries;
    if (backoff_us != nullptr) *backoff_us += delay;
    delay *= policy.multiplier;
    HBTREE_TRACE_INSTANT("device.retry", "fault");
    status = attempt();
  }
  return status;
}

}  // namespace hbtree::fault

#endif  // HBTREE_FAULT_RETRY_H_
