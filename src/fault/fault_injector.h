#ifndef HBTREE_FAULT_FAULT_INJECTOR_H_
#define HBTREE_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "core/status.h"

namespace hbtree::fault {

/// Device-side operations that can be made to fail. The sites mirror the
/// failure modes a real CUDA deployment survives: allocation (OOM /
/// fragmentation), H2D and D2H transfers (bus faults, ECC retries), and
/// kernel execution (launch failures, preemption timeouts).
enum class Site : int {
  kDeviceAlloc = 0,
  kTransferH2D = 1,
  kTransferD2H = 2,
  kKernel = 3,
};
inline constexpr int kSiteCount = 4;

const char* SiteName(Site site);

/// Per-site injection policy. Both mechanisms compose: an operation fails
/// if its ordinal is scheduled *or* the probability draw fires.
struct SitePolicy {
  /// Probability in [0, 1] that any one operation at this site faults.
  double probability = 0.0;
  /// Deterministic schedule: 1-based operation ordinals (per site) that
  /// fault regardless of probability. Lets tests force exact sequences,
  /// e.g. "fail transfers 3..6" to open a circuit breaker on cue.
  std::vector<std::uint64_t> fail_ordinals;

  bool enabled() const { return probability > 0 || !fail_ordinals.empty(); }
};

/// Injection configuration for one device (serving slots each get their
/// own injector so the two snapshot instances fault independently).
struct FaultConfig {
  std::uint64_t seed = 0;
  SitePolicy sites[kSiteCount];

  SitePolicy& site(Site s) { return sites[static_cast<int>(s)]; }
  const SitePolicy& site(Site s) const {
    return sites[static_cast<int>(s)];
  }

  bool enabled() const {
    for (const SitePolicy& policy : sites) {
      if (policy.enabled()) return true;
    }
    return false;
  }

  /// Convenience: the same probability on every site.
  static FaultConfig Uniform(double probability, std::uint64_t seed);
  /// Convenience: probability on the transfer sites only (the fault class
  /// the retry/backoff policy targets).
  static FaultConfig Transfers(double probability, std::uint64_t seed);
};

/// Seedable, thread-safe fault source consulted by the simulated device
/// layer. One instance per Device; the read and update workers of a
/// serving slot may consult it concurrently, so state is mutex-guarded
/// (injection sits on modelled-µs paths, not real hot loops).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Decides whether the next operation at `site` faults; advances the
  /// site's ordinal either way.
  bool ShouldFail(Site site);

  /// Convenience wrapper: Ok, or the typed error for the site.
  Status Check(Site site);

  /// Typed error for `site` without consuming an ordinal (for callers
  /// that observed a failure by other means, e.g. a null TryMalloc).
  static Status ErrorFor(Site site);

  // -- Introspection (all thread-safe) -----------------------------------
  std::uint64_t checks(Site site) const;
  std::uint64_t injected(Site site) const;
  std::uint64_t total_injected() const;

 private:
  struct SiteState {
    std::uint64_t ordinal = 0;  // operations seen
    std::uint64_t injected = 0;
  };

  FaultConfig config_;
  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  SiteState state_[kSiteCount];
};

}  // namespace hbtree::fault

#endif  // HBTREE_FAULT_FAULT_INJECTOR_H_
