#include "fault/fault_injector.h"

#include <algorithm>

namespace hbtree::fault {

const char* SiteName(Site site) {
  switch (site) {
    case Site::kDeviceAlloc:
      return "device-alloc";
    case Site::kTransferH2D:
      return "transfer-h2d";
    case Site::kTransferD2H:
      return "transfer-d2h";
    case Site::kKernel:
      return "kernel";
  }
  return "unknown";
}

FaultConfig FaultConfig::Uniform(double probability, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  for (SitePolicy& policy : config.sites) policy.probability = probability;
  return config;
}

FaultConfig FaultConfig::Transfers(double probability, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.site(Site::kTransferH2D).probability = probability;
  config.site(Site::kTransferD2H).probability = probability;
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {
  for (SitePolicy& policy : config_.sites) {
    std::sort(policy.fail_ordinals.begin(), policy.fail_ordinals.end());
  }
}

bool FaultInjector::ShouldFail(Site site) {
  const int index = static_cast<int>(site);
  const SitePolicy& policy = config_.sites[index];
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = state_[index];
  const std::uint64_t ordinal = ++state.ordinal;
  bool fail = std::binary_search(policy.fail_ordinals.begin(),
                                 policy.fail_ordinals.end(), ordinal);
  // The draw is consumed only when a probability is configured, so a
  // schedule-only policy stays byte-for-byte deterministic.
  if (!fail && policy.probability > 0 && unit_(rng_) < policy.probability) {
    fail = true;
  }
  if (fail) ++state.injected;
  return fail;
}

Status FaultInjector::Check(Site site) {
  if (!ShouldFail(site)) return Status::Ok();
  return ErrorFor(site);
}

Status FaultInjector::ErrorFor(Site site) {
  switch (site) {
    case Site::kDeviceAlloc:
      return Status::DeviceOom("injected device allocation failure");
    case Site::kTransferH2D:
      return Status::TransferFailure("injected H2D transfer fault");
    case Site::kTransferD2H:
      return Status::TransferFailure("injected D2H transfer fault");
    case Site::kKernel:
      return Status::KernelFailure("injected kernel execution fault");
  }
  return Status::Error("injected fault");
}

std::uint64_t FaultInjector::checks(Site site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_[static_cast<int>(site)].ordinal;
}

std::uint64_t FaultInjector::injected(Site site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_[static_cast<int>(site)].injected;
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const SiteState& state : state_) total += state.injected;
  return total;
}

}  // namespace hbtree::fault
