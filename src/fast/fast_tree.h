#ifndef HBTREE_FAST_FAST_TREE_H_
#define HBTREE_FAST_FAST_TREE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/macros.h"
#include "core/trace.h"
#include "core/types.h"
#include "mem/page_allocator.h"

namespace hbtree {

/// FAST — Fast Architecture Sensitive Tree (Kim et al., SIGMOD 2010) —
/// reimplemented as the comparison baseline of Section 6.2 / Figure 9.
///
/// FAST is a static implicit *binary* search tree whose nodes are
/// rearranged hierarchically so that the 3 (64-bit keys) or 4 (32-bit
/// keys) levels of a subtree share one cache line: one line fetch serves
/// several binary steps. Leaves map to positions of the sorted key-value
/// array, where the final equality check and value retrieval happen.
///
/// This implementation keeps FAST's essential architecture sensitivity —
/// cache-line blocking and branch-free in-block search — while omitting
/// the paper's additional page-level blocking tier (its effect is TLB
/// locality, which our huge-page allocation provides instead).
template <typename K>
class FastTree {
 public:
  static constexpr K kMax = KeyTraits<K>::kMax;
  /// Depth of one cache-line block: 3 levels (7 keys of 8 B) or 4 levels
  /// (15 keys of 4 B) fit one 64-byte line.
  static constexpr int kBlockDepth = sizeof(K) == 8 ? 3 : 4;
  /// Keys per block, padded to a full line.
  static constexpr int kBlockSlots = KeyTraits<K>::kPerCacheLine;
  static constexpr int kBlockKeys = (1 << kBlockDepth) - 1;
  /// Block fanout: children blocks per block.
  static constexpr int kBlockFanout = 1 << kBlockDepth;

  struct Config {
    PageSize tree_page = PageSize::k1G;
    PageSize data_page = PageSize::k1G;
  };

  FastTree(const Config& config, PageRegistry* registry)
      : config_(config), registry_(registry) {}

  /// Builds from key-sorted unique pairs.
  void Build(const std::vector<KeyValue<K>>& sorted_pairs);

  /// Point lookup.
  template <typename Tracer = NullTracer>
  LookupResult<K> Search(K key, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    Tracer* t = tracer;
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      if (t == nullptr) t = &null_tracer;
    }
    t->OnQueryStart();
    const std::uint64_t pos = LowerBoundIndex(key, t);
    LookupResult<K> result{false, 0};
    if (pos < size_) {
      const KeyValue<K>& kv = pairs_.template as<KeyValue<K>>()[pos];
      t->OnAccess(&kv, sizeof(kv));
      if (kv.key == key) result = LookupResult<K>{true, kv.value};
    }
    t->OnQueryEnd();
    return result;
  }

  /// Index of the first pair with key >= `key` (== size() if none).
  template <typename Tracer = NullTracer>
  std::uint64_t LowerBoundIndex(K key, Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    Tracer* t = tracer;
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      if (t == nullptr) t = &null_tracer;
    }
    const K* blocks = tree_.template as<K>();
    std::uint64_t block = 0;  // block index within its level
    std::uint64_t level_base = 0;
    std::uint64_t level_blocks = 1;
    std::uint64_t path = 0;  // leaf path accumulated over all levels
    for (int bl = 0; bl < block_levels_; ++bl) {
      const K* line = blocks + (level_base + block) * kBlockSlots;
      t->OnAccess(line, kCacheLineSize);
      // Branch-free descent through the in-block binary levels. Node r at
      // in-block depth d sits at slot (2^d - 1) + r.
      unsigned in_block = 0;
      for (int d = 0; d < kBlockDepth; ++d) {
        const K sep = line[(1u << d) - 1 + in_block];
        in_block = 2 * in_block + (sep < key ? 1 : 0);
      }
      path = (path << kBlockDepth) | in_block;
      level_base += level_blocks;
      level_blocks *= kBlockFanout;
      block = block * kBlockFanout + in_block;
    }
    return path;  // leaf index == lower-bound position (padded misses land
                  // beyond size_)
  }

  /// Partial blocked descent for heterogeneous load balancing: follows
  /// `block_depth` block levels from the root and returns the block index
  /// within level `block_depth` together with the leaf-path prefix packed
  /// as the block index itself (blocks and path prefixes coincide).
  template <typename Tracer = NullTracer>
  std::uint64_t DescendBlocks(K key, int block_depth,
                              Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    Tracer* t = tracer;
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      if (t == nullptr) t = &null_tracer;
    }
    const K* blocks = tree_.template as<K>();
    std::uint64_t block = 0;
    std::uint64_t level_base = 0;
    std::uint64_t level_blocks = 1;
    for (int bl = 0; bl < block_depth; ++bl) {
      const K* line = blocks + (level_base + block) * kBlockSlots;
      t->OnAccess(line, kCacheLineSize);
      unsigned in_block = 0;
      for (int d = 0; d < kBlockDepth; ++d) {
        const K sep = line[(1u << d) - 1 + in_block];
        in_block = 2 * in_block + (sep < key ? 1 : 0);
      }
      level_base += level_blocks;
      level_blocks *= kBlockFanout;
      block = block * kBlockFanout + in_block;
    }
    return block;
  }

  /// The final CPU step of a hybridized FAST search: check position `pos`
  /// of the sorted pair array against `key`.
  template <typename Tracer = NullTracer>
  LookupResult<K> VerifyAt(std::uint64_t pos, K key,
                           Tracer* tracer = nullptr) const {
    NullTracer null_tracer;
    Tracer* t = tracer;
    if constexpr (std::is_same_v<Tracer, NullTracer>) {
      if (t == nullptr) t = &null_tracer;
    }
    if (pos >= size_) return LookupResult<K>{false, 0};
    const KeyValue<K>& kv = pairs_.template as<KeyValue<K>>()[pos];
    t->OnAccess(&kv, sizeof(kv));
    if (kv.key == key) return LookupResult<K>{true, kv.value};
    return LookupResult<K>{false, 0};
  }

  std::size_t size() const { return size_; }
  /// Total binary depth (multiple of kBlockDepth).
  int depth() const { return depth_; }
  int block_levels() const { return block_levels_; }
  std::size_t tree_bytes() const { return tree_.size(); }
  /// Raw blocked separator array (for mirroring into device memory).
  const K* tree_data() const { return tree_.template as<K>(); }

 private:
  Config config_;
  PageRegistry* registry_;
  std::size_t size_ = 0;
  int depth_ = 0;
  int block_levels_ = 0;
  PagedBuffer tree_;   // blocked separator array
  PagedBuffer pairs_;  // sorted key-value data
};

template <typename K>
void FastTree<K>::Build(const std::vector<KeyValue<K>>& sorted_pairs) {
  HBTREE_CHECK(!sorted_pairs.empty());
  size_ = sorted_pairs.size();

  // Binary depth, rounded up to whole blocks.
  depth_ = 1;
  while ((1ull << depth_) < size_) ++depth_;
  depth_ = (depth_ + kBlockDepth - 1) / kBlockDepth * kBlockDepth;
  block_levels_ = depth_ / kBlockDepth;

  // Total blocks over all block levels: (C^L - 1) / (C - 1).
  std::uint64_t total_blocks = 0;
  std::uint64_t level_blocks = 1;
  for (int bl = 0; bl < block_levels_; ++bl) {
    total_blocks += level_blocks;
    level_blocks *= kBlockFanout;
  }
  tree_.Reset(total_blocks * kCacheLineSize, config_.tree_page, registry_);
  pairs_.Reset(size_ * sizeof(KeyValue<K>), config_.data_page, registry_);
  std::memcpy(pairs_.data(), sorted_pairs.data(),
              size_ * sizeof(KeyValue<K>));

  // Block-level base offsets.
  std::vector<std::uint64_t> level_bases(block_levels_);
  std::uint64_t base = 0;
  std::uint64_t blocks_at = 1;
  for (int bl = 0; bl < block_levels_; ++bl) {
    level_bases[bl] = base;
    base += blocks_at;
    blocks_at *= kBlockFanout;
  }

  // Fill every internal node of the conceptual binary tree directly: the
  // node at depth d with path p covers leaves [p << (D-d), (p+1) << (D-d))
  // and its separator is the maximum of the left half.
  K* blocks = tree_.template as<K>();
  for (int d = 0; d < depth_; ++d) {
    const int bl = d / kBlockDepth;        // block level
    const int in_depth = d % kBlockDepth;  // depth within the block
    const std::uint64_t nodes_at_depth = 1ull << d;
    for (std::uint64_t p = 0; p < nodes_at_depth; ++p) {
      // Separator = max of left subtree = element just below the midpoint.
      const std::uint64_t mid =
          (p << (depth_ - d)) + (1ull << (depth_ - d - 1));
      const K sep = mid - 1 < size_ ? sorted_pairs[mid - 1].key : kMax;
      // Blocked slot: block index = top bits of the path above this
      // block's levels; in-block node index = the remaining low bits.
      const std::uint64_t block_in_level = p >> in_depth;
      const unsigned in_block =
          static_cast<unsigned>(p & ((1ull << in_depth) - 1));
      K* line = blocks + (level_bases[bl] + block_in_level) * kBlockSlots;
      line[(1u << in_depth) - 1 + in_block] = sep;
    }
  }
  // The unused padding slot of each line is never read; its value is
  // irrelevant.
}

}  // namespace hbtree

#endif  // HBTREE_FAST_FAST_TREE_H_
