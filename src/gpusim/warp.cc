#include "gpusim/warp.h"

#include <algorithm>

#include "core/macros.h"

namespace hbtree::gpu {

WarpScope::WarpScope(Device* device, KernelStats* stats, int active_lanes)
    : device_(device), stats_(stats), active_lanes_(active_lanes) {
  HBTREE_CHECK(device != nullptr && stats != nullptr);
  HBTREE_CHECK(active_lanes >= 1 && active_lanes <= kWarpSize);
}

WarpScope::~WarpScope() { ++stats_->warps_executed; }

void WarpScope::RecordAccess(DevicePtr base,
                             const std::uint64_t* lane_offsets, int lanes,
                             std::size_t width) {
  // Coalescing: collect the distinct aligned 64-byte segments the lanes
  // touch; each distinct segment is one memory transaction (the GPU
  // "translates the access into one or more aligned data transfers",
  // Section 5.2). An element straddling a segment boundary costs two.
  std::uint64_t segments[2 * kWarpSize];
  int count = 0;
  bool sorted = true;
  for (int i = 0; i < lanes; ++i) {
    std::uint64_t first = (base.offset + lane_offsets[i]) / kTransactionBytes;
    std::uint64_t last =
        (base.offset + lane_offsets[i] + width - 1) / kTransactionBytes;
    if (count > 0 && first < segments[count - 1]) sorted = false;
    segments[count++] = first;
    if (last != first) segments[count++] = last;
  }
  // The batch kernels emit lane offsets in ascending order (sorted
  // queries, ascending lanes within a team), so the segment list usually
  // arrives pre-sorted and only adjacent duplicates need collapsing.
  if (!sorted) std::sort(segments, segments + count);
  const auto* end = std::unique(segments, segments + count);
  for (const std::uint64_t* seg = segments; seg != end; ++seg) {
    ++stats_->memory_transactions;
    // Each transaction consumes DRAM bandwidth only when it misses the
    // device L2 — this is what lets skewed query streams outrun uniform
    // ones on the GPU as well (Figure 12).
    if (device_->AccessL2(DevicePtr{base.alloc_id, *seg * kTransactionBytes})) {
      stats_->l2_bytes += kTransactionBytes;
    } else {
      stats_->dram_bytes += kTransactionBytes;
    }
  }
  stats_->warp_instructions += 1;  // the load/store instruction itself
  stats_->memory_gathers += 1;
}

void WarpScope::SharedAccess(const int* lane_banks, int lanes) {
  // Conflict degree = max number of lanes hitting the same bank; the warp
  // replays the access that many times.
  int per_bank[kSharedBanks] = {0};
  for (int i = 0; i < lanes; ++i) {
    HBTREE_DCHECK(lane_banks[i] >= 0 && lane_banks[i] < kSharedBanks);
    ++per_bank[lane_banks[i]];
  }
  int degree = 1;
  for (int b = 0; b < kSharedBanks; ++b) degree = std::max(degree, per_bank[b]);
  stats_->shared_accesses += 1;
  stats_->shared_bank_conflicts += static_cast<std::uint64_t>(degree - 1);
  stats_->warp_instructions += static_cast<std::uint64_t>(degree);
}

}  // namespace hbtree::gpu
