#include "gpusim/device.h"

#include <cstring>

#include "core/macros.h"

namespace hbtree::gpu {

Device::Device(const sim::GpuSpec& spec)
    : spec_(spec),
      l2_(sim::CacheLevel::Config{"gpu-l2", spec.l2_bytes,
                                  spec.l2_associativity, 64}) {}

void Device::set_metrics_registry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = DeviceMetrics{};
    return;
  }
  metrics_.bytes_h2d = &registry->counter("gpusim.bytes_h2d");
  metrics_.bytes_d2h = &registry->counter("gpusim.bytes_d2h");
  metrics_.transfers = &registry->counter("gpusim.transfers");
  metrics_.kernel_launches = &registry->counter("gpusim.kernel_launches");
  metrics_.occupancy = &registry->gauge("gpusim.occupancy");
  metrics_.used_bytes = &registry->gauge("gpusim.device_used_bytes");
  metrics_.used_bytes->Set(static_cast<double>(used_));
}

bool Device::AccessL2(DevicePtr ptr) {
  // Segment id: allocation id in the high bits, 64-byte segment in the low
  // bits — distinct allocations can never alias.
  const std::uint64_t segment =
      (static_cast<std::uint64_t>(ptr.alloc_id) << 40) | (ptr.offset / 64);
  return l2_.Access(segment);
}

DevicePtr Device::TryMalloc(std::size_t bytes) {
  if (bytes == 0 || used_ + bytes > spec_.memory_bytes) return DevicePtr{};
  if (injector_ != nullptr &&
      injector_->ShouldFail(fault::Site::kDeviceAlloc)) {
    return DevicePtr{};
  }
  Allocation alloc;
  alloc.data = std::make_unique<std::byte[]>(bytes);
  alloc.size = bytes;
  alloc.live = true;
  used_ += bytes;
  if (metrics_.used_bytes != nullptr) {
    metrics_.used_bytes->Set(static_cast<double>(used_));
  }
  // Reuse a dead slot if available to keep ids bounded.
  for (std::size_t i = 0; i < allocations_.size(); ++i) {
    if (!allocations_[i].live) {
      allocations_[i] = std::move(alloc);
      return DevicePtr{static_cast<std::uint32_t>(i), 0};
    }
  }
  allocations_.push_back(std::move(alloc));
  return DevicePtr{static_cast<std::uint32_t>(allocations_.size() - 1), 0};
}

DevicePtr Device::Malloc(std::size_t bytes) {
  DevicePtr ptr = TryMalloc(bytes);
  HBTREE_CHECK_MSG(!ptr.is_null(),
                   "device out of memory: requested %zu, used %zu of %zu",
                   bytes, used_, static_cast<std::size_t>(spec_.memory_bytes));
  return ptr;
}

void Device::Free(DevicePtr ptr) {
  if (ptr.is_null()) return;
  HBTREE_CHECK(ptr.alloc_id < allocations_.size());
  Allocation& alloc = allocations_[ptr.alloc_id];
  HBTREE_CHECK(alloc.live);
  HBTREE_CHECK_MSG(ptr.offset == 0, "Free requires the allocation base");
  used_ -= alloc.size;
  alloc.data.reset();
  alloc.size = 0;
  alloc.live = false;
  if (metrics_.used_bytes != nullptr) {
    metrics_.used_bytes->Set(static_cast<double>(used_));
  }
}

const Device::Allocation& Device::Resolve(DevicePtr ptr) const {
  HBTREE_CHECK(!ptr.is_null());
  HBTREE_CHECK(ptr.alloc_id < allocations_.size());
  const Allocation& alloc = allocations_[ptr.alloc_id];
  HBTREE_CHECK(alloc.live);
  HBTREE_CHECK(ptr.offset <= alloc.size);
  return alloc;
}

std::byte* Device::HostView(DevicePtr ptr) {
  const Allocation& alloc = Resolve(ptr);
  return alloc.data.get() + ptr.offset;
}

const std::byte* Device::HostView(DevicePtr ptr) const {
  const Allocation& alloc = Resolve(ptr);
  return alloc.data.get() + ptr.offset;
}

std::size_t Device::AllocationSize(DevicePtr ptr) const {
  return Resolve(ptr).size;
}

TransferEngine::TransferEngine(Device* device, const sim::PcieSpec& pcie)
    : device_(device), pcie_(pcie) {
  HBTREE_CHECK(device != nullptr);
}

double TransferEngine::CopyToDevice(DevicePtr dst, const void* src,
                                    std::size_t bytes) {
  std::memcpy(device_->HostView(dst), src, bytes);
  bytes_h2d_ += bytes;
  ++transfers_;
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_h2d->Add(bytes);
    m->transfers->Increment();
  }
  return HostToDeviceUs(bytes);
}

double TransferEngine::CopyToHost(void* dst, DevicePtr src,
                                  std::size_t bytes) {
  std::memcpy(dst, device_->HostView(src), bytes);
  bytes_d2h_ += bytes;
  ++transfers_;
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_d2h->Add(bytes);
    m->transfers->Increment();
  }
  return DeviceToHostUs(bytes);
}

Status TransferEngine::TryCopyToDevice(DevicePtr dst, const void* src,
                                       std::size_t bytes, double* us) {
  fault::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr) {
    HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kTransferH2D));
  }
  const double t = CopyToDevice(dst, src, bytes);
  if (us != nullptr) *us = t;
  return Status::Ok();
}

Status TransferEngine::TryCopyToHost(void* dst, DevicePtr src,
                                     std::size_t bytes, double* us) {
  fault::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr) {
    HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kTransferD2H));
  }
  const double t = CopyToHost(dst, src, bytes);
  if (us != nullptr) *us = t;
  return Status::Ok();
}

double TransferEngine::CopyOnDevice(DevicePtr dst, DevicePtr src,
                                    std::size_t bytes) {
  std::memmove(device_->HostView(dst), device_->HostView(src), bytes);
  // Device-local copies move at device bandwidth (read + write).
  return bytes * 2.0 / (device_->spec().memory_bandwidth_gbps * 1e3);
}

double TransferEngine::StreamedCopyToDevice(DevicePtr dst, const void* src,
                                            std::size_t bytes) {
  std::memcpy(device_->HostView(dst), src, bytes);
  bytes_h2d_ += bytes;
  ++transfers_;
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_h2d->Add(bytes);
    m->transfers->Increment();
  }
  return pcie_.streamed_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_h2d_gbps * 1e3);
}

double TransferEngine::HostToDeviceUs(std::size_t bytes) const {
  return pcie_.transfer_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_h2d_gbps * 1e3);
}

double TransferEngine::DeviceToHostUs(std::size_t bytes) const {
  return pcie_.transfer_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_d2h_gbps * 1e3);
}

}  // namespace hbtree::gpu
