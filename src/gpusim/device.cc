#include "gpusim/device.h"

#include <cstring>

#include "core/macros.h"

namespace hbtree::gpu {

Device::Device(const sim::GpuSpec& spec)
    : spec_(spec),
      l2_(sim::CacheLevel::Config{"gpu-l2", spec.l2_bytes,
                                  spec.l2_associativity, 64}) {}

Device::~Device() {
  const std::uint32_t count = slot_count_.load(std::memory_order_acquire);
  for (std::uint32_t chunk_index = 0; chunk_index * kChunkSlots < count;
       ++chunk_index) {
    Allocation* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
      delete[] chunk[i].data.load(std::memory_order_acquire);
    }
    delete[] chunk;
  }
}

void Device::set_metrics_registry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = DeviceMetrics{};
    return;
  }
  metrics_.bytes_h2d = &registry->counter("gpusim.bytes_h2d");
  metrics_.bytes_d2h = &registry->counter("gpusim.bytes_d2h");
  metrics_.transfers = &registry->counter("gpusim.transfers");
  metrics_.kernel_launches = &registry->counter("gpusim.kernel_launches");
  metrics_.occupancy = &registry->gauge("gpusim.occupancy");
  metrics_.used_bytes = &registry->gauge("gpusim.device_used_bytes");
  metrics_.used_bytes->Set(
      static_cast<double>(used_.load(std::memory_order_relaxed)));
}

bool Device::AccessL2(DevicePtr ptr) {
  // Segment id: allocation id in the high bits, 64-byte segment in the low
  // bits — distinct allocations can never alias.
  const std::uint64_t segment =
      (static_cast<std::uint64_t>(ptr.alloc_id) << 40) | (ptr.offset / 64);
  std::lock_guard<std::mutex> lock(l2_mutex_);
  return l2_.Access(segment);
}

DevicePtr Device::TryMalloc(std::size_t bytes) {
  if (bytes == 0) return DevicePtr{};
  std::lock_guard<std::mutex> lock(arena_mutex_);
  if (used_.load(std::memory_order_relaxed) + bytes > spec_.memory_bytes) {
    return DevicePtr{};
  }
  if (injector_ != nullptr &&
      injector_->ShouldFail(fault::Site::kDeviceAlloc)) {
    return DevicePtr{};
  }

  // Reuse a dead slot if available to keep ids bounded; otherwise claim
  // the next high-water slot, growing the chunk table as needed.
  std::uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = slot_count_.load(std::memory_order_relaxed);
    HBTREE_CHECK_MSG(id < kMaxChunks * kChunkSlots,
                     "device allocation table exhausted (%u slots)", id);
    const std::uint32_t chunk_index = id >> kChunkShift;
    if (chunks_[chunk_index].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk_index].store(new Allocation[kChunkSlots],
                                 std::memory_order_release);
    }
    slot_count_.store(id + 1, std::memory_order_release);
  }

  Allocation& slot =
      chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
          [id & (kChunkSlots - 1)];
  slot.size.store(bytes, std::memory_order_relaxed);
  // Publication point: readers acquire on `data` and then see `size`.
  slot.data.store(new std::byte[bytes], std::memory_order_release);
  used_.fetch_add(bytes, std::memory_order_relaxed);
  if (metrics_.used_bytes != nullptr) {
    metrics_.used_bytes->Set(
        static_cast<double>(used_.load(std::memory_order_relaxed)));
  }
  return DevicePtr{id, 0};
}

DevicePtr Device::Malloc(std::size_t bytes) {
  DevicePtr ptr = TryMalloc(bytes);
  HBTREE_CHECK_MSG(!ptr.is_null(),
                   "device out of memory: requested %zu, used %zu of %zu",
                   bytes, used_.load(std::memory_order_relaxed),
                   static_cast<std::size_t>(spec_.memory_bytes));
  return ptr;
}

void Device::Free(DevicePtr ptr) {
  if (ptr.is_null()) return;
  std::lock_guard<std::mutex> lock(arena_mutex_);
  Allocation& slot = SlotRef(ptr);
  std::byte* data = slot.data.load(std::memory_order_relaxed);
  HBTREE_CHECK(data != nullptr);
  HBTREE_CHECK_MSG(ptr.offset == 0, "Free requires the allocation base");
  const std::size_t bytes = slot.size.load(std::memory_order_relaxed);
  slot.data.store(nullptr, std::memory_order_release);
  slot.size.store(0, std::memory_order_relaxed);
  delete[] data;
  free_slots_.push_back(ptr.alloc_id);
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (metrics_.used_bytes != nullptr) {
    metrics_.used_bytes->Set(
        static_cast<double>(used_.load(std::memory_order_relaxed)));
  }
}

Device::Allocation& Device::SlotRef(DevicePtr ptr) const {
  HBTREE_CHECK(!ptr.is_null());
  HBTREE_CHECK(ptr.alloc_id < slot_count_.load(std::memory_order_acquire));
  Allocation* chunk =
      chunks_[ptr.alloc_id >> kChunkShift].load(std::memory_order_acquire);
  HBTREE_CHECK(chunk != nullptr);
  return chunk[ptr.alloc_id & (kChunkSlots - 1)];
}

std::byte* Device::HostView(DevicePtr ptr) {
  Allocation& slot = SlotRef(ptr);
  std::byte* data = slot.data.load(std::memory_order_acquire);
  HBTREE_CHECK(data != nullptr);
  HBTREE_CHECK(ptr.offset <= slot.size.load(std::memory_order_relaxed));
  return data + ptr.offset;
}

const std::byte* Device::HostView(DevicePtr ptr) const {
  Allocation& slot = SlotRef(ptr);
  std::byte* data = slot.data.load(std::memory_order_acquire);
  HBTREE_CHECK(data != nullptr);
  HBTREE_CHECK(ptr.offset <= slot.size.load(std::memory_order_relaxed));
  return data + ptr.offset;
}

std::size_t Device::AllocationSize(DevicePtr ptr) const {
  Allocation& slot = SlotRef(ptr);
  HBTREE_CHECK(slot.data.load(std::memory_order_acquire) != nullptr);
  return slot.size.load(std::memory_order_relaxed);
}

TransferEngine::TransferEngine(Device* device, const sim::PcieSpec& pcie)
    : device_(device), pcie_(pcie) {
  HBTREE_CHECK(device != nullptr);
}

double TransferEngine::CopyToDevice(DevicePtr dst, const void* src,
                                    std::size_t bytes) {
  std::memcpy(device_->HostView(dst), src, bytes);
  bytes_h2d_.fetch_add(bytes, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_h2d->Add(bytes);
    m->transfers->Increment();
  }
  return HostToDeviceUs(bytes);
}

double TransferEngine::CopyToHost(void* dst, DevicePtr src,
                                  std::size_t bytes) {
  std::memcpy(dst, device_->HostView(src), bytes);
  bytes_d2h_.fetch_add(bytes, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_d2h->Add(bytes);
    m->transfers->Increment();
  }
  return DeviceToHostUs(bytes);
}

Status TransferEngine::TryCopyToDevice(DevicePtr dst, const void* src,
                                       std::size_t bytes, double* us) {
  fault::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr) {
    HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kTransferH2D));
  }
  const double t = CopyToDevice(dst, src, bytes);
  if (us != nullptr) *us = t;
  return Status::Ok();
}

Status TransferEngine::TryCopyToHost(void* dst, DevicePtr src,
                                     std::size_t bytes, double* us) {
  fault::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr) {
    HBTREE_RETURN_IF_ERROR(injector->Check(fault::Site::kTransferD2H));
  }
  const double t = CopyToHost(dst, src, bytes);
  if (us != nullptr) *us = t;
  return Status::Ok();
}

double TransferEngine::CopyOnDevice(DevicePtr dst, DevicePtr src,
                                    std::size_t bytes) {
  std::memmove(device_->HostView(dst), device_->HostView(src), bytes);
  // Device-local copies move at device bandwidth (read + write).
  return bytes * 2.0 / (device_->spec().memory_bandwidth_gbps * 1e3);
}

double TransferEngine::StreamedCopyToDevice(DevicePtr dst, const void* src,
                                            std::size_t bytes) {
  std::memcpy(device_->HostView(dst), src, bytes);
  bytes_h2d_.fetch_add(bytes, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if (const Device::DeviceMetrics* m = device_->metrics()) {
    m->bytes_h2d->Add(bytes);
    m->transfers->Increment();
  }
  return pcie_.streamed_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_h2d_gbps * 1e3);
}

double TransferEngine::StreamedHostToDeviceUs(std::size_t bytes) const {
  return pcie_.streamed_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_h2d_gbps * 1e3);
}

double TransferEngine::HostToDeviceUs(std::size_t bytes) const {
  return pcie_.transfer_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_h2d_gbps * 1e3);
}

double TransferEngine::DeviceToHostUs(std::size_t bytes) const {
  return pcie_.transfer_init_us +
         static_cast<double>(bytes) / (pcie_.bandwidth_d2h_gbps * 1e3);
}

}  // namespace hbtree::gpu
