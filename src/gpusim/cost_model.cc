#include "gpusim/cost_model.h"

#include <algorithm>

namespace hbtree::gpu {

KernelTime EstimateKernelTime(const sim::GpuSpec& spec,
                              const KernelStats& stats) {
  KernelTime t;
  t.launch_us = spec.kernel_launch_us;
  if (stats.warps_executed == 0) {
    t.total_us = t.launch_us;
    t.bound = "launch";
    return t;
  }

  // Bandwidth term: achieved DRAM bandwidth for scattered 64 B
  // transactions, plus L2-served traffic at roughly 4x DRAM bandwidth.
  const double bytes_per_us =
      spec.memory_bandwidth_gbps * 1e3 * spec.random_access_efficiency;
  t.memory_us = static_cast<double>(stats.dram_bytes) / bytes_per_us +
                static_cast<double>(stats.l2_bytes) / (bytes_per_us * 3.0);

  // Instruction-issue term: warp instructions retire at
  // sm_count * warp_ipc_per_sm per cycle.
  const double instr_per_us =
      spec.sm_count * spec.warp_ipc_per_sm * spec.core_clock_ghz * 1e3;
  t.compute_us =
      static_cast<double>(stats.warp_instructions) / instr_per_us;

  // Latency term: a warp's dependent loads (one gather per tree level)
  // serialize, but the transactions of one gather — and the gathers of
  // all resident warps — overlap. With W warps capped by the resident
  // limit, the kernel cannot finish faster than
  // gathers * latency / min(W, resident).
  const double resident = static_cast<double>(
      std::min<std::uint64_t>(stats.warps_executed,
                              static_cast<std::uint64_t>(
                                  spec.max_resident_warps)));
  t.occupancy = spec.max_resident_warps > 0
                    ? resident / static_cast<double>(spec.max_resident_warps)
                    : 0.0;
  // Gathers served by the L2 observe roughly a third of DRAM latency.
  const double total_bytes =
      static_cast<double>(stats.dram_bytes + stats.l2_bytes);
  const double dram_share =
      total_bytes > 0 ? stats.dram_bytes / total_bytes : 1.0;
  const double blended_latency_ns =
      spec.memory_latency_ns * (dram_share + (1.0 - dram_share) / 3.0);
  t.latency_us = static_cast<double>(stats.memory_gathers) *
                 blended_latency_ns / resident / 1e3;

  double body = std::max({t.memory_us, t.compute_us, t.latency_us});
  if (body == t.memory_us) {
    t.bound = "memory";
  } else if (body == t.compute_us) {
    t.bound = "compute";
  } else {
    t.bound = "latency";
  }
  t.total_us = t.launch_us + body;
  return t;
}

}  // namespace hbtree::gpu
