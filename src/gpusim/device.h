#ifndef HBTREE_GPUSIM_DEVICE_H_
#define HBTREE_GPUSIM_DEVICE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "sim/cache_sim.h"
#include "sim/platform.h"

namespace hbtree::gpu {

/// Handle to simulated device memory. Like a CUDA device pointer it is not
/// host-dereferenceable; kernels and transfer functions resolve it through
/// the owning Device. Offset arithmetic is supported so that array
/// indexing inside kernels mirrors real device code.
struct DevicePtr {
  static constexpr std::uint32_t kNullAlloc = 0xffffffffu;

  std::uint32_t alloc_id = kNullAlloc;
  std::uint64_t offset = 0;

  bool is_null() const { return alloc_id == kNullAlloc; }

  DevicePtr operator+(std::uint64_t bytes) const {
    return DevicePtr{alloc_id, offset + bytes};
  }
};

/// A simulated discrete GPU: a capacity-limited device memory plus the
/// spec numbers the kernel cost model consumes.
///
/// The capacity limit is not a nicety — it is the core constraint the
/// paper's hybrid design exists to escape ("GPU performance is bounded by
/// memory capacity", Section 1). Allocation fails exactly as cudaMalloc
/// would when the I-segment (or a whole tree, for the pure-GPU strawman)
/// does not fit into the 3 GB of a GTX 780.
///
/// Thread safety: one device is shared by every read worker dispatching
/// against a pinned snapshot slot, so the arena is concurrent-safe.
/// - TryMalloc/Free/Malloc mutate slot bookkeeping under `arena_mutex_`.
/// - HostView/AllocationSize are lock-free: allocation slots live in
///   chunked stable storage and publish their backing buffer with a
///   release store, so readers need only an acquire load. The caller
///   contract matches real CUDA: accessing an allocation concurrently
///   with its Free is undefined (the serving layer guarantees this
///   structurally — snapshot drain before mutation, and an exclusive
///   probe lock around mirror resyncs).
/// - AccessL2 serializes on `l2_mutex_`: the L2 is one physical resource,
///   so concurrent kernel streams interleave their segment accesses in
///   arrival order (see DESIGN.md §9 for the modelled-time semantics).
/// - set_fault_injector/set_metrics_registry are setup-time calls and
///   must not race device traffic.
class Device {
 public:
  explicit Device(const sim::GpuSpec& spec);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocates device memory; returns a null pointer if `bytes` does not
  /// fit into the remaining capacity (the CUDA out-of-memory analogue) or
  /// if the armed fault injector fails the allocation.
  DevicePtr TryMalloc(std::size_t bytes);
  /// Allocates device memory; aborts on out-of-memory. Reserved for call
  /// sites that sized the allocation beforehand and genuinely cannot
  /// recover — recoverable paths use TryMalloc and propagate a Status.
  DevicePtr Malloc(std::size_t bytes);
  void Free(DevicePtr ptr);

  /// Arms (or disarms, with nullptr) a fault source consulted by
  /// TryMalloc and by the transfer/kernel layers via fault_injector().
  /// The injector must outlive the device; ownership stays with the
  /// caller (the serving layer owns one per snapshot slot).
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return injector_; }

  /// Cached metric handles for the device layers. Looked up once when a
  /// registry is attached so the per-transfer/per-launch hot paths pay a
  /// null check plus a relaxed fetch_add, never a name lookup.
  struct DeviceMetrics {
    obs::Counter* bytes_h2d = nullptr;
    obs::Counter* bytes_d2h = nullptr;
    obs::Counter* transfers = nullptr;
    obs::Counter* kernel_launches = nullptr;
    obs::Gauge* occupancy = nullptr;
    obs::Gauge* used_bytes = nullptr;
  };

  /// Attaches (or with nullptr detaches) a metrics registry; the device
  /// and its transfer engine then publish `gpusim.*` counters/gauges into
  /// it. The registry must outlive the device; multiple devices may share
  /// one registry (counters aggregate across them).
  void set_metrics_registry(obs::MetricsRegistry* registry);
  /// Non-null once a registry is attached.
  const DeviceMetrics* metrics() const {
    return metrics_.transfers != nullptr ? &metrics_ : nullptr;
  }

  /// Host-visible backing storage of an allocation (+offset). Used by the
  /// functional kernel executor and the transfer engine — the moral
  /// equivalent of the GDDR behind a device pointer. Lock-free.
  std::byte* HostView(DevicePtr ptr);
  const std::byte* HostView(DevicePtr ptr) const;

  template <typename T>
  T* HostViewAs(DevicePtr ptr) {
    return reinterpret_cast<T*>(HostView(ptr));
  }
  template <typename T>
  const T* HostViewAs(DevicePtr ptr) const {
    return reinterpret_cast<const T*>(HostView(ptr));
  }

  std::size_t AllocationSize(DevicePtr ptr) const;

  std::size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::size_t capacity_bytes() const { return spec_.memory_bytes; }
  const sim::GpuSpec& spec() const { return spec_; }

  /// Simulates one 64-byte-segment access through the device L2; returns
  /// true on hit (the segment does not consume DRAM bandwidth). Keyed by
  /// (allocation, segment) so distinct allocations never alias. The L2 is
  /// one physical resource: concurrent streams serialize on an internal
  /// mutex and interleave in arrival order.
  bool AccessL2(DevicePtr ptr);
  /// Direct L2 access for single-threaded inspection (tests, reports);
  /// not synchronized against concurrent AccessL2 traffic.
  sim::CacheLevel& l2() { return l2_; }

 private:
  /// One allocation slot. Slots live in chunked stable storage so a
  /// reader holding an id can resolve it without a lock while other
  /// threads allocate (which may add chunks but never moves a slot).
  /// `data` doubles as the liveness flag (null == dead) and is the
  /// release/acquire publication point for `size` and the buffer
  /// contents written before publication.
  struct Allocation {
    std::atomic<std::byte*> data{nullptr};
    std::atomic<std::size_t> size{0};
  };

  static constexpr std::uint32_t kChunkShift = 10;  // 1024 slots per chunk
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  static constexpr std::uint32_t kMaxChunks = 4096;

  /// Bounds-checks `ptr` and returns its slot. Lock-free; the slot may be
  /// dead (data == null) — callers needing liveness check `data`.
  Allocation& SlotRef(DevicePtr ptr) const;

  sim::GpuSpec spec_;

  /// Guards slot bookkeeping (free list, high-water mark, chunk growth).
  mutable std::mutex arena_mutex_;
  std::array<std::atomic<Allocation*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> slot_count_{0};   // high-water mark
  std::vector<std::uint32_t> free_slots_;      // dead ids for reuse
  std::atomic<std::size_t> used_{0};

  /// The L2 model mutates LRU state on every access; one mutex makes the
  /// shared cache safe for concurrent kernel streams.
  mutable std::mutex l2_mutex_;
  sim::CacheLevel l2_;

  fault::FaultInjector* injector_ = nullptr;
  DeviceMetrics metrics_;
};

/// RAII device allocation: TryMalloc on construction (null on OOM or
/// injected allocation fault — check ok()), Free on destruction, so
/// error paths that return early cannot leak device memory.
class ScopedDeviceAlloc {
 public:
  ScopedDeviceAlloc(Device* device, std::size_t bytes)
      : device_(device),
        ptr_(bytes > 0 ? device->TryMalloc(bytes) : DevicePtr{}) {}
  ~ScopedDeviceAlloc() {
    if (!ptr_.is_null()) device_->Free(ptr_);
  }
  ScopedDeviceAlloc(const ScopedDeviceAlloc&) = delete;
  ScopedDeviceAlloc& operator=(const ScopedDeviceAlloc&) = delete;

  bool ok() const { return !ptr_.is_null(); }
  DevicePtr get() const { return ptr_; }

 private:
  Device* device_;
  DevicePtr ptr_;
};

/// Host<->device transfer engine. Copies are functional (the data really
/// moves, so results are verifiable); the returned times follow the
/// paper's own transfer model T = T_init + bytes / Bandwidth (Section 5.4).
///
/// Thread-safe: copies into distinct allocations proceed concurrently
/// (memcpy into disjoint buffers); the byte/transfer counters are relaxed
/// atomics.
class TransferEngine {
 public:
  TransferEngine(Device* device, const sim::PcieSpec& pcie);

  /// Copies host → device; returns the modelled transfer time in µs.
  double CopyToDevice(DevicePtr dst, const void* src, std::size_t bytes);
  /// Copies device → host; returns the modelled transfer time in µs.
  double CopyToHost(void* dst, DevicePtr src, std::size_t bytes);

  /// Fault-aware copies: consult the device's armed injector before
  /// moving data. On an injected fault nothing is copied and a typed
  /// transient Status is returned; on success `*us` (optional) receives
  /// the modelled transfer time. With no injector armed these are
  /// identical to the unconditional copies above.
  Status TryCopyToDevice(DevicePtr dst, const void* src, std::size_t bytes,
                         double* us = nullptr);
  Status TryCopyToHost(void* dst, DevicePtr src, std::size_t bytes,
                       double* us = nullptr);
  /// Copies device → device (same GPU); charged at device bandwidth.
  double CopyOnDevice(DevicePtr dst, DevicePtr src, std::size_t bytes);

  double HostToDeviceUs(std::size_t bytes) const;
  double DeviceToHostUs(std::size_t bytes) const;
  /// Modelled cost of one streamed (queued) H2D transfer of `bytes`,
  /// without performing it — planning input for the delta-vs-full
  /// I-segment sync decision.
  double StreamedHostToDeviceUs(std::size_t bytes) const;

  /// Copies host -> device as one of many small queued transfers (the
  /// synchronized update method's unit); charged the amortized streamed
  /// initialization cost instead of a full submission latency.
  double StreamedCopyToDevice(DevicePtr dst, const void* src,
                              std::size_t bytes);

  std::uint64_t bytes_h2d() const {
    return bytes_h2d_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_d2h() const {
    return bytes_d2h_.load(std::memory_order_relaxed);
  }
  std::uint64_t transfers() const {
    return transfers_.load(std::memory_order_relaxed);
  }

 private:
  Device* device_;
  sim::PcieSpec pcie_;
  std::atomic<std::uint64_t> bytes_h2d_{0};
  std::atomic<std::uint64_t> bytes_d2h_{0};
  std::atomic<std::uint64_t> transfers_{0};
};

}  // namespace hbtree::gpu

#endif  // HBTREE_GPUSIM_DEVICE_H_
