#ifndef HBTREE_GPUSIM_DEVICE_H_
#define HBTREE_GPUSIM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/status.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "sim/cache_sim.h"
#include "sim/platform.h"

namespace hbtree::gpu {

/// Handle to simulated device memory. Like a CUDA device pointer it is not
/// host-dereferenceable; kernels and transfer functions resolve it through
/// the owning Device. Offset arithmetic is supported so that array
/// indexing inside kernels mirrors real device code.
struct DevicePtr {
  static constexpr std::uint32_t kNullAlloc = 0xffffffffu;

  std::uint32_t alloc_id = kNullAlloc;
  std::uint64_t offset = 0;

  bool is_null() const { return alloc_id == kNullAlloc; }

  DevicePtr operator+(std::uint64_t bytes) const {
    return DevicePtr{alloc_id, offset + bytes};
  }
};

/// A simulated discrete GPU: a capacity-limited device memory plus the
/// spec numbers the kernel cost model consumes.
///
/// The capacity limit is not a nicety — it is the core constraint the
/// paper's hybrid design exists to escape ("GPU performance is bounded by
/// memory capacity", Section 1). Allocation fails exactly as cudaMalloc
/// would when the I-segment (or a whole tree, for the pure-GPU strawman)
/// does not fit into the 3 GB of a GTX 780.
class Device {
 public:
  explicit Device(const sim::GpuSpec& spec);

  /// Allocates device memory; returns a null pointer if `bytes` does not
  /// fit into the remaining capacity (the CUDA out-of-memory analogue) or
  /// if the armed fault injector fails the allocation.
  DevicePtr TryMalloc(std::size_t bytes);
  /// Allocates device memory; aborts on out-of-memory. Reserved for call
  /// sites that sized the allocation beforehand and genuinely cannot
  /// recover — recoverable paths use TryMalloc and propagate a Status.
  DevicePtr Malloc(std::size_t bytes);
  void Free(DevicePtr ptr);

  /// Arms (or disarms, with nullptr) a fault source consulted by
  /// TryMalloc and by the transfer/kernel layers via fault_injector().
  /// The injector must outlive the device; ownership stays with the
  /// caller (the serving layer owns one per snapshot slot).
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return injector_; }

  /// Cached metric handles for the device layers. Looked up once when a
  /// registry is attached so the per-transfer/per-launch hot paths pay a
  /// null check plus a relaxed fetch_add, never a name lookup.
  struct DeviceMetrics {
    obs::Counter* bytes_h2d = nullptr;
    obs::Counter* bytes_d2h = nullptr;
    obs::Counter* transfers = nullptr;
    obs::Counter* kernel_launches = nullptr;
    obs::Gauge* occupancy = nullptr;
    obs::Gauge* used_bytes = nullptr;
  };

  /// Attaches (or with nullptr detaches) a metrics registry; the device
  /// and its transfer engine then publish `gpusim.*` counters/gauges into
  /// it. The registry must outlive the device; multiple devices may share
  /// one registry (counters aggregate across them).
  void set_metrics_registry(obs::MetricsRegistry* registry);
  /// Non-null once a registry is attached.
  const DeviceMetrics* metrics() const {
    return metrics_.transfers != nullptr ? &metrics_ : nullptr;
  }

  /// Host-visible backing storage of an allocation (+offset). Used by the
  /// functional kernel executor and the transfer engine — the moral
  /// equivalent of the GDDR behind a device pointer.
  std::byte* HostView(DevicePtr ptr);
  const std::byte* HostView(DevicePtr ptr) const;

  template <typename T>
  T* HostViewAs(DevicePtr ptr) {
    return reinterpret_cast<T*>(HostView(ptr));
  }
  template <typename T>
  const T* HostViewAs(DevicePtr ptr) const {
    return reinterpret_cast<const T*>(HostView(ptr));
  }

  std::size_t AllocationSize(DevicePtr ptr) const;

  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return spec_.memory_bytes; }
  const sim::GpuSpec& spec() const { return spec_; }

  /// Simulates one 64-byte-segment access through the device L2; returns
  /// true on hit (the segment does not consume DRAM bandwidth). Keyed by
  /// (allocation, segment) so distinct allocations never alias.
  bool AccessL2(DevicePtr ptr);
  sim::CacheLevel& l2() { return l2_; }

 private:
  struct Allocation {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    bool live = false;
  };

  const Allocation& Resolve(DevicePtr ptr) const;

  sim::GpuSpec spec_;
  std::vector<Allocation> allocations_;
  std::size_t used_ = 0;
  sim::CacheLevel l2_;
  fault::FaultInjector* injector_ = nullptr;
  DeviceMetrics metrics_;
};

/// RAII device allocation: TryMalloc on construction (null on OOM or
/// injected allocation fault — check ok()), Free on destruction, so
/// error paths that return early cannot leak device memory.
class ScopedDeviceAlloc {
 public:
  ScopedDeviceAlloc(Device* device, std::size_t bytes)
      : device_(device),
        ptr_(bytes > 0 ? device->TryMalloc(bytes) : DevicePtr{}) {}
  ~ScopedDeviceAlloc() {
    if (!ptr_.is_null()) device_->Free(ptr_);
  }
  ScopedDeviceAlloc(const ScopedDeviceAlloc&) = delete;
  ScopedDeviceAlloc& operator=(const ScopedDeviceAlloc&) = delete;

  bool ok() const { return !ptr_.is_null(); }
  DevicePtr get() const { return ptr_; }

 private:
  Device* device_;
  DevicePtr ptr_;
};

/// Host<->device transfer engine. Copies are functional (the data really
/// moves, so results are verifiable); the returned times follow the
/// paper's own transfer model T = T_init + bytes / Bandwidth (Section 5.4).
class TransferEngine {
 public:
  TransferEngine(Device* device, const sim::PcieSpec& pcie);

  /// Copies host → device; returns the modelled transfer time in µs.
  double CopyToDevice(DevicePtr dst, const void* src, std::size_t bytes);
  /// Copies device → host; returns the modelled transfer time in µs.
  double CopyToHost(void* dst, DevicePtr src, std::size_t bytes);

  /// Fault-aware copies: consult the device's armed injector before
  /// moving data. On an injected fault nothing is copied and a typed
  /// transient Status is returned; on success `*us` (optional) receives
  /// the modelled transfer time. With no injector armed these are
  /// identical to the unconditional copies above.
  Status TryCopyToDevice(DevicePtr dst, const void* src, std::size_t bytes,
                         double* us = nullptr);
  Status TryCopyToHost(void* dst, DevicePtr src, std::size_t bytes,
                       double* us = nullptr);
  /// Copies device → device (same GPU); charged at device bandwidth.
  double CopyOnDevice(DevicePtr dst, DevicePtr src, std::size_t bytes);

  double HostToDeviceUs(std::size_t bytes) const;
  double DeviceToHostUs(std::size_t bytes) const;

  /// Copies host -> device as one of many small queued transfers (the
  /// synchronized update method's unit); charged the amortized streamed
  /// initialization cost instead of a full submission latency.
  double StreamedCopyToDevice(DevicePtr dst, const void* src,
                              std::size_t bytes);

  std::uint64_t bytes_h2d() const { return bytes_h2d_; }
  std::uint64_t bytes_d2h() const { return bytes_d2h_; }
  std::uint64_t transfers() const { return transfers_; }

 private:
  Device* device_;
  sim::PcieSpec pcie_;
  std::uint64_t bytes_h2d_ = 0;
  std::uint64_t bytes_d2h_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace hbtree::gpu

#endif  // HBTREE_GPUSIM_DEVICE_H_
