#ifndef HBTREE_GPUSIM_WARP_H_
#define HBTREE_GPUSIM_WARP_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "gpusim/device.h"

namespace hbtree::gpu {

/// Aggregate execution statistics of one kernel launch, consumed by the
/// kernel cost model.
struct KernelStats {
  std::uint64_t warps_executed = 0;
  std::uint64_t warp_instructions = 0;    // issued warp-wide instructions
  std::uint64_t memory_gathers = 0;       // dependent warp-wide loads/stores
  std::uint64_t memory_transactions = 0;  // coalesced 64 B segments
  std::uint64_t dram_bytes = 0;           // segment bytes missing device L2
  std::uint64_t l2_bytes = 0;             // segment bytes served by L2
  std::uint64_t shared_accesses = 0;
  std::uint64_t shared_bank_conflicts = 0;
  std::uint64_t divergent_branches = 0;

  /// Level-wise dispatch accounting (DESIGN.md §14), indexed by tree
  /// level: `node_loads_by_level[l]` counts the distinct inner nodes the
  /// launch actually loaded from device memory at level l (one per run of
  /// sorted queries sharing a node), `node_queries_by_level[l]` the
  /// queries resolved there. Empty for per-query kernels.
  std::vector<std::uint64_t> node_loads_by_level;
  std::vector<std::uint64_t> node_queries_by_level;

  KernelStats& operator+=(const KernelStats& other) {
    warps_executed += other.warps_executed;
    warp_instructions += other.warp_instructions;
    memory_gathers += other.memory_gathers;
    memory_transactions += other.memory_transactions;
    dram_bytes += other.dram_bytes;
    l2_bytes += other.l2_bytes;
    shared_accesses += other.shared_accesses;
    shared_bank_conflicts += other.shared_bank_conflicts;
    divergent_branches += other.divergent_branches;
    MergeLevels(&node_loads_by_level, other.node_loads_by_level);
    MergeLevels(&node_queries_by_level, other.node_queries_by_level);
    return *this;
  }

 private:
  static void MergeLevels(std::vector<std::uint64_t>* into,
                          const std::vector<std::uint64_t>& from) {
    if (from.size() > into->size()) into->resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) (*into)[i] += from[i];
  }
};

/// Warp-synchronous execution scope.
///
/// Kernels in this repository are written in the warp-synchronous style
/// the paper's Snippet 3 uses: threads of a warp proceed in lockstep, so a
/// per-lane loop between two statements is semantically a `__syncthreads`
/// at warp granularity. The scope's job is the accounting a real GPU does
/// in hardware:
///
///  * `Gather` / `Scatter` — per-lane device memory accesses, coalesced
///    into aligned 32/64/128-byte transactions exactly as the CUDA
///    programming guide describes (Appendix C); the transaction count is
///    what makes 64-byte-node layouts win (Section 5.2).
///  * `SharedAccess` — shared memory with 32-bank conflict modelling.
///  * `Instruction` — warp-wide instruction issue (the compute side of the
///    cost model).
///  * `DivergentBranch` — a warp fork that serializes both paths.
class WarpScope {
 public:
  static constexpr int kWarpSize = 32;
  static constexpr int kSharedBanks = 32;
  static constexpr std::uint64_t kTransactionBytes = 64;

  WarpScope(Device* device, KernelStats* stats, int active_lanes = kWarpSize);
  ~WarpScope();

  int active_lanes() const { return active_lanes_; }

  /// Per-lane gather: lane i reads one element of `width` bytes at
  /// `base + lane_offsets[i]`. Returns nothing; callers read through the
  /// typed helpers below. Counts coalesced transactions.
  void RecordAccess(DevicePtr base, const std::uint64_t* lane_offsets,
                    int lanes, std::size_t width);

  /// Typed per-lane load: out[i] = *(T*)(base + lane_offsets[i]).
  /// Functional (reads the backing store) + accounted.
  template <typename T>
  void Gather(DevicePtr base, const std::uint64_t* lane_offsets, int lanes,
              T* out) {
    RecordAccess(base, lane_offsets, lanes, sizeof(T));
    for (int i = 0; i < lanes; ++i) {
      // memcpy, not a typed load: lane offsets need not be aligned to T
      // (a real GPU gather has no such requirement either).
      std::memcpy(&out[i], device_->HostView(base + lane_offsets[i]),
                  sizeof(T));
    }
  }

  /// Typed per-lane store: *(T*)(base + lane_offsets[i]) = values[i].
  template <typename T>
  void Scatter(DevicePtr base, const std::uint64_t* lane_offsets, int lanes,
               const T* values) {
    RecordAccess(base, lane_offsets, lanes, sizeof(T));
    for (int i = 0; i < lanes; ++i) {
      std::memcpy(device_->HostView(base + lane_offsets[i]), &values[i],
                  sizeof(T));
    }
  }

  /// One warp-wide shared-memory access; `lane_banks[i]` is the bank
  /// (word address % 32) lane i touches. Conflicting lanes serialize.
  void SharedAccess(const int* lane_banks, int lanes);

  /// One warp-wide shared-memory access where lane i touches bank
  /// `i % kSharedBanks` — the stride-1 word layout every kernel here uses
  /// for its per-thread flag arrays. The conflict degree is then
  /// ceil(lanes / kSharedBanks) by construction (at most one replay per
  /// full wrap of the banks), so the accounting is closed-form and the
  /// per-call 32-bank histogram of SharedAccess() is skipped. Charges
  /// exactly what SharedAccess(identity_banks, lanes) would.
  void SharedAccessUniform(int lanes) {
    const int degree = (lanes + kSharedBanks - 1) / kSharedBanks;
    stats_->shared_accesses += 1;
    stats_->shared_bank_conflicts += static_cast<std::uint64_t>(degree - 1);
    stats_->warp_instructions += static_cast<std::uint64_t>(degree);
  }

  /// `count` warp-wide ALU/control instructions.
  void Instruction(int count = 1) {
    stats_->warp_instructions += static_cast<std::uint64_t>(count);
  }

  /// A data-dependent branch where `paths` distinct code paths are taken
  /// within the warp; the hardware serializes them (Appendix C).
  void DivergentBranch(int paths) {
    if (paths > 1) {
      stats_->divergent_branches += 1;
      stats_->warp_instructions += static_cast<std::uint64_t>(paths - 1);
    }
  }

  Device* device() { return device_; }

 private:
  Device* device_;
  KernelStats* stats_;
  int active_lanes_;
};

}  // namespace hbtree::gpu

#endif  // HBTREE_GPUSIM_WARP_H_
