#ifndef HBTREE_GPUSIM_COST_MODEL_H_
#define HBTREE_GPUSIM_COST_MODEL_H_

#include "gpusim/warp.h"
#include "sim/platform.h"

namespace hbtree::gpu {

/// Modelled execution time of one kernel launch.
struct KernelTime {
  double total_us = 0;
  double launch_us = 0;    // K_init in the Section 5.4 cost model
  double memory_us = 0;    // bandwidth-bound component
  double compute_us = 0;   // instruction-issue-bound component
  double latency_us = 0;   // latency-bound component (low occupancy)
  /// Achieved occupancy: resident warps / max resident warps, in [0, 1].
  /// Small bucket launches under-fill the machine and score low here.
  double occupancy = 0;
  /// Which component dominated (for utilization reporting).
  const char* bound = "memory";
};

/// Roofline-style kernel time estimate.
///
/// A GPU hides memory latency with resident warps rather than caches
/// (Section 5.1): with enough warps in flight, execution time is the
/// maximum of the bandwidth term and the instruction-issue term. When the
/// launch is too small to fill the machine (few resident warps), the
/// latency term dominates — which is exactly why the bucket size M matters
/// in Figure 11 and why K_init punishes small buckets.
KernelTime EstimateKernelTime(const sim::GpuSpec& spec,
                              const KernelStats& stats);

}  // namespace hbtree::gpu

#endif  // HBTREE_GPUSIM_COST_MODEL_H_
