#ifndef HBTREE_BENCH_SUPPORT_CALIBRATE_H_
#define HBTREE_BENCH_SUPPORT_CALIBRATE_H_

#include <cstdint>
#include <vector>

#include "core/simd.h"
#include "core/types.h"
#include "cpubtree/implicit_btree.h"
#include "cpubtree/regular_btree.h"
#include "mem/page_allocator.h"
#include "sim/cpu_cost_model.h"
#include "sim/platform.h"

namespace hbtree::bench {

/// Calibration helpers: run *traced* searches through the platform
/// simulator and turn the measured memory profile into the modelled rates
/// the figure harnesses and the bucket pipeline consume.
///
/// Every helper warms the cache/TLB simulators first and measures steady
/// state, mirroring how the paper measures sustained throughput.

struct ModelOptions {
  int threads = 0;          // 0 = the platform's hardware thread count
  int pipeline_depth = 16;  // software pipeline depth (Section 4.2)
  std::size_t warmup = std::size_t{1} << 16;
  std::size_t measured = std::size_t{1} << 17;
};

struct SearchMeasurement {
  sim::CpuTracer::Profile profile;
  sim::CpuEstimate estimate;
};

namespace calibrate_internal {

inline sim::CpuExecutionParams MakeParams(const sim::PlatformSpec& platform,
                                          NodeSearchAlgo algo,
                                          const ModelOptions& options) {
  sim::CpuExecutionParams params;
  params.threads =
      options.threads > 0 ? options.threads : platform.cpu.threads;
  params.pipeline_depth = options.pipeline_depth;
  params.compute_ns_per_access = sim::ComputeNsPerAccess(platform.cpu, algo);
  return params;
}

}  // namespace calibrate_internal

/// Generic traced measurement: `op(tracer, i)` performs the i-th query
/// (bracketing it with OnQueryStart/End itself or relying on the callee).
template <typename Fn>
SearchMeasurement MeasureCpuOp(const sim::PlatformSpec& platform,
                               const PageRegistry& registry,
                               NodeSearchAlgo algo,
                               const ModelOptions& options, Fn&& op) {
  sim::CpuTracer tracer(platform.cpu, &registry);
  for (std::size_t i = 0; i < options.warmup; ++i) op(tracer, i);
  tracer.ResetStats();
  for (std::size_t i = 0; i < options.measured; ++i) {
    op(tracer, options.warmup + i);
  }
  SearchMeasurement m;
  m.profile = tracer.profile();
  m.estimate = sim::EstimateCpuThroughput(
      platform.cpu, m.profile,
      calibrate_internal::MakeParams(platform, algo, options));
  return m;
}

/// Full-search measurement for any tree exposing
/// `Search(key, Tracer*)` — the CPU-optimized trees and FAST.
template <typename Tree, typename K>
SearchMeasurement MeasureCpuSearch(const Tree& tree,
                                   const std::vector<K>& queries,
                                   const sim::PlatformSpec& platform,
                                   const PageRegistry& registry,
                                   NodeSearchAlgo algo,
                                   const ModelOptions& options = {}) {
  HBTREE_CHECK(!queries.empty());
  sim::CpuTracer tracer(platform.cpu, &registry);
  const std::size_t total = queries.size();
  for (std::size_t i = 0; i < options.warmup; ++i) {
    tree.Search(queries[i % total], &tracer);
  }
  tracer.ResetStats();
  for (std::size_t i = 0; i < options.measured; ++i) {
    tree.Search(queries[(options.warmup + i) % total], &tracer);
  }
  SearchMeasurement m;
  m.profile = tracer.profile();
  m.estimate = sim::EstimateCpuThroughput(
      platform.cpu, m.profile,
      calibrate_internal::MakeParams(platform, algo, options));
  return m;
}

/// CPU rates needed by the heterogeneous pipeline (Section 5.4/5.5):
/// the leaf-search rate (queries per µs — numerically equal to MQPS) and
/// the per-level cost of a partial inner descent.
struct HbCpuRates {
  double leaf_queries_per_us = 1.0;
  double descend_us_per_level = 0.0;
  /// Modelled CPU cost (µs per query) of descending exactly `d` levels
  /// from the root; index 0 is 0. The top levels live in cache, so
  /// cost[d] grows much slower than d * (average level cost) — this is
  /// what makes the load-balancing scheme profitable (Section 5.5).
  std::vector<double> descend_us_by_depth = {0.0};
};

/// Implicit HB+-tree: leaf step = one L-segment line search per query.
template <typename K>
HbCpuRates CalibrateHbCpuRates(const ImplicitBTree<K>& tree,
                               const std::vector<K>& queries,
                               const sim::PlatformSpec& platform,
                               const PageRegistry& registry,
                               const ModelOptions& options = {}) {
  HBTREE_CHECK(!queries.empty());
  const NodeSearchAlgo algo = tree.config().search_algo;
  const std::size_t total = queries.size();
  HbCpuRates rates;
  {
    sim::CpuTracer tracer(platform.cpu, &registry);
    auto run = [&](std::size_t begin, std::size_t count, bool traced) {
      for (std::size_t i = 0; i < count; ++i) {
        const K q = queries[(begin + i) % total];
        const std::uint64_t line = tree.FindLeafLine(q);
        if (traced) {
          tracer.OnQueryStart();
          tree.SearchLeafLine(line, q, &tracer);
          tracer.OnQueryEnd();
        }
      }
    };
    run(0, options.warmup, true);
    tracer.ResetStats();
    run(options.warmup, options.measured, true);
    rates.leaf_queries_per_us =
        sim::EstimateCpuThroughput(
            platform.cpu, tracer.profile(),
            calibrate_internal::MakeParams(platform, algo, options))
            .mqps;
  }
  if (tree.height() > 0) {
    // Inner-descent cost: trace partial descents of every depth. Using a
    // smaller sample per depth keeps calibration cheap.
    ModelOptions depth_options = options;
    depth_options.warmup = options.warmup / 4;
    depth_options.measured = options.measured / 4;
    for (int depth = 1; depth <= tree.height(); ++depth) {
      sim::CpuTracer tracer(platform.cpu, &registry);
      auto run = [&](std::size_t begin, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          tracer.OnQueryStart();
          tree.DescendLevels(queries[(begin + i) % total], depth, &tracer);
          tracer.OnQueryEnd();
        }
      };
      run(0, depth_options.warmup);
      tracer.ResetStats();
      run(depth_options.warmup, depth_options.measured);
      const double mqps =
          sim::EstimateCpuThroughput(
              platform.cpu, tracer.profile(),
              calibrate_internal::MakeParams(platform, algo, depth_options))
              .mqps;
      rates.descend_us_by_depth.push_back(1.0 / mqps);
    }
    rates.descend_us_per_level =
        rates.descend_us_by_depth.back() / tree.height();
  }
  return rates;
}

/// Regular HB+-tree: leaf step = one big-leaf line search per query.
template <typename K>
HbCpuRates CalibrateHbCpuRates(const RegularBTree<K>& tree,
                               const std::vector<K>& queries,
                               const sim::PlatformSpec& platform,
                               const PageRegistry& registry,
                               const ModelOptions& options = {}) {
  HBTREE_CHECK(!queries.empty());
  const NodeSearchAlgo algo = tree.config().search_algo;
  const std::size_t total = queries.size();
  HbCpuRates rates;
  {
    sim::CpuTracer tracer(platform.cpu, &registry);
    auto run = [&](std::size_t begin, std::size_t count) {
      for (std::size_t i = 0; i < count; ++i) {
        const K q = queries[(begin + i) % total];
        auto pos = tree.FindLeafPosition(q);
        tracer.OnQueryStart();
        tree.SearchLeafLine(pos, q, &tracer);
        tracer.OnQueryEnd();
      }
    };
    run(0, options.warmup);
    tracer.ResetStats();
    run(options.warmup, options.measured);
    rates.leaf_queries_per_us =
        sim::EstimateCpuThroughput(
            platform.cpu, tracer.profile(),
            calibrate_internal::MakeParams(platform, algo, options))
            .mqps;
  }
  if (tree.height() > 1) {
    ModelOptions depth_options = options;
    depth_options.warmup = options.warmup / 4;
    depth_options.measured = options.measured / 4;
    for (int depth = 1; depth <= tree.height() - 1; ++depth) {
      sim::CpuTracer tracer(platform.cpu, &registry);
      auto run = [&](std::size_t begin, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          tracer.OnQueryStart();
          tree.DescendLevels(queries[(begin + i) % total], depth, &tracer);
          tracer.OnQueryEnd();
        }
      };
      run(0, depth_options.warmup);
      tracer.ResetStats();
      run(depth_options.warmup, depth_options.measured);
      const double mqps =
          sim::EstimateCpuThroughput(
              platform.cpu, tracer.profile(),
              calibrate_internal::MakeParams(platform, algo, depth_options))
              .mqps;
      rates.descend_us_by_depth.push_back(1.0 / mqps);
    }
    rates.descend_us_per_level =
        rates.descend_us_by_depth.back() / (tree.height() - 1);
  }
  return rates;
}

/// Modelled single-thread cost of one update query (inner descent + leaf
/// edit), µs — feeds the Section 5.6 update experiments.
template <typename K>
double EstimateUpdateCostUs(const RegularBTree<K>& tree,
                            const std::vector<K>& probe_keys,
                            const sim::PlatformSpec& platform,
                            const PageRegistry& registry,
                            const ModelOptions& options = {}) {
  ModelOptions single = options;
  single.threads = 1;
  single.pipeline_depth = 1;  // updates are dependent, not pipelined
  SearchMeasurement m = MeasureCpuSearch(tree, probe_keys, platform,
                                         registry,
                                         tree.config().search_algo, single);
  // An update pays the search plus roughly half a leaf-line rewrite; the
  // factor matches the paper's observation that updates run close to
  // (but below) search speed.
  return 1.3 / m.estimate.mqps;
}

/// Streaming-bandwidth model of the implicit tree's rebuild phases
/// (Figure 15): merging the update batch into the sorted array and
/// rewriting both segments are bandwidth-bound passes over the data.
struct RebuildModel {
  double l_build_us = 0;    // merge + L-segment rewrite
  double i_build_us = 0;    // I-segment rewrite
  double transfer_us = 0;   // I-segment PCIe upload
};

inline RebuildModel ModelImplicitRebuild(std::size_t l_bytes,
                                         std::size_t i_bytes,
                                         const sim::PlatformSpec& platform) {
  RebuildModel model;
  const double bytes_per_us = platform.cpu.dram_bandwidth_gbps * 1e3;
  // Rebuilding is several bandwidth-bound passes over the data: merging
  // the sorted update batch into the pair array (read old + batch, write
  // new), re-permuting values, and writing the leaf lines — about ten
  // L-segment-sized passes end to end.
  model.l_build_us = 10.0 * l_bytes / bytes_per_us;
  // I-segment: read children maxima per level, write nodes — plus one
  // pass over the leaf level for the bottom separators.
  model.i_build_us = (3.0 * i_bytes + 1.0 * l_bytes / 4) / bytes_per_us;
  model.transfer_us = platform.pcie.transfer_init_us +
                      i_bytes / (platform.pcie.bandwidth_h2d_gbps * 1e3);
  return model;
}

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_CALIBRATE_H_
