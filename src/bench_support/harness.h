#ifndef HBTREE_BENCH_SUPPORT_HARNESS_H_
#define HBTREE_BENCH_SUPPORT_HARNESS_H_

#include <cstddef>
#include <vector>

#include "bench_support/args.h"
#include "bench_support/calibrate.h"
#include "bench_support/table.h"
#include "core/workload.h"
#include "gpusim/device.h"
#include "sim/platform.h"

namespace hbtree::bench {

/// Dataset-size sweep from --min_log2/--max_log2 (inclusive, powers of
/// two). The paper sweeps 2^23 (8M) to 2^30 (1B); defaults here are
/// smaller so the full suite runs quickly — pass larger bounds to
/// reproduce at paper scale.
inline std::vector<std::size_t> SizeSweepFromArgs(const Args& args,
                                                  int default_min,
                                                  int default_max,
                                                  int step = 1) {
  const int lo = static_cast<int>(args.GetInt("min_log2", default_min));
  const int hi = static_cast<int>(args.GetInt("max_log2", default_max));
  std::vector<std::size_t> sizes;
  for (int log2n = lo; log2n <= hi; log2n += step) {
    sizes.push_back(std::size_t{1} << log2n);
  }
  return sizes;
}

/// A simulated heterogeneous platform instance (device + PCIe link).
struct SimPlatform {
  sim::PlatformSpec spec;
  gpu::Device device;
  gpu::TransferEngine transfer;

  explicit SimPlatform(const sim::PlatformSpec& s)
      : spec(s), device(s.gpu), transfer(&device, s.pcie) {}
};

inline sim::PlatformSpec PlatformFromArgs(const Args& args,
                                          const char* default_name) {
  return sim::PlatformSpec::Parse(
      args.GetString("platform", default_name));
}

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_HARNESS_H_
