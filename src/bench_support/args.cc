#include "bench_support/args.h"

#include <cstdio>
#include <cstdlib>

#include "core/macros.h"

namespace hbtree::bench {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HBTREE_CHECK_MSG(arg.rfind("--", 0) == 0, "bad flag '%s'", arg.c_str());
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Args::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Args::GetString(const std::string& key,
                            const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Args::GetInt(const std::string& key,
                          std::int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

void Args::PrintActive() const {
  for (const auto& [key, value] : values_) {
    std::printf("# flag --%s=%s\n", key.c_str(), value.c_str());
  }
}

}  // namespace hbtree::bench
