#include "bench_support/table.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hbtree::bench {

Table::Table(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void Table::PrintTitle(const std::string& title) const {
  std::printf("\n=== %s ===\n", title.c_str());
}

void Table::PrintHeader() const {
  for (const auto& column : columns_) {
    std::printf("%-*s", width_, column.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (int j = 0; j < width_ - 2; ++j) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void Table::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& cell : cells) {
    std::printf("%-*s", width_, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Table::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::Log2Size(std::size_t n) {
  char buffer[64];
  const double log2n = std::log2(static_cast<double>(n));
  if (n >= (1ull << 30)) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64 "G (2^%.0f)",
                  static_cast<std::uint64_t>(n >> 30), log2n);
  } else if (n >= (1ull << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64 "M (2^%.0f)",
                  static_cast<std::uint64_t>(n >> 20), log2n);
  } else if (n >= (1ull << 10)) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64 "K (2^%.0f)",
                  static_cast<std::uint64_t>(n >> 10), log2n);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%zu", n);
  }
  return buffer;
}

}  // namespace hbtree::bench
