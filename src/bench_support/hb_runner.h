#ifndef HBTREE_BENCH_SUPPORT_HB_RUNNER_H_
#define HBTREE_BENCH_SUPPORT_HB_RUNNER_H_

#include <vector>

#include "bench_support/calibrate.h"
#include "bench_support/harness.h"
#include "hybrid/bucket_pipeline.h"
#include "hybrid/hb_implicit.h"
#include "hybrid/hb_regular.h"

namespace hbtree::bench {

/// Bundles an HB+-tree with its calibrated CPU rates — the setup every
/// hybrid figure harness repeats.
template <typename K, typename HBTreeT>
class HbBench {
 public:
  HbBench(SimPlatform* sim, const std::vector<KeyValue<K>>& data,
          const std::vector<K>& calibration_queries,
          typename HBTreeT::Config config = {})
      : sim_(sim),
        tree_(config, &registry_, &sim->device, &sim->transfer) {
    HBTREE_CHECK_MSG(tree_.Build(data),
                     "I-segment does not fit into device memory");
    rates_ = CalibrateHbCpuRates(tree_.host_tree(), calibration_queries,
                                 sim->spec, registry_);
  }

  /// The leaf rate seen by the pipeline: calibrated leaf-search rate with
  /// the per-query pipeline overhead added to each thread's time.
  double EffectiveLeafRate() const {
    const double threads = sim_->spec.cpu.threads;
    const double thread_time_ns =
        threads * 1e3 / rates_.leaf_queries_per_us +
        sim_->spec.cpu.hybrid_overhead_ns;
    return threads * 1e3 / thread_time_ns;
  }

  PipelineConfig MakeConfig(
      BucketStrategy strategy = BucketStrategy::kDoubleBuffered,
      int bucket_size = 16 * 1024) const {
    PipelineConfig config;
    config.bucket_size = bucket_size;
    config.strategy = strategy;
    config.cpu_queries_per_us = EffectiveLeafRate();
    config.cpu_descend_us_per_level = rates_.descend_us_per_level;
    config.cpu_descend_us_by_depth = rates_.descend_us_by_depth;
    return config;
  }

  PipelineStats Run(const std::vector<K>& queries,
                    const PipelineConfig& config,
                    std::vector<LookupResult<K>>* results = nullptr) {
    return RunSearchPipeline(tree_, queries.data(), queries.size(), config,
                             results);
  }

  HBTreeT& tree() { return tree_; }
  PageRegistry& registry() { return registry_; }
  const HbCpuRates& rates() const { return rates_; }

 private:
  SimPlatform* sim_;
  PageRegistry registry_;
  HBTreeT tree_;
  HbCpuRates rates_;
};

template <typename K>
using HbImplicitBench = HbBench<K, HBImplicitTree<K>>;
template <typename K>
using HbRegularBench = HbBench<K, HBRegularTree<K>>;

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_HB_RUNNER_H_
