#ifndef HBTREE_BENCH_SUPPORT_TABLE_H_
#define HBTREE_BENCH_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace hbtree::bench {

/// Fixed-width console table, used by every figure harness to print the
/// same rows/series the paper's plots show.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14);

  void PrintTitle(const std::string& title) const;
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

  /// Formatting helpers.
  static std::string Num(double value, int precision = 2);
  static std::string Log2Size(std::size_t n);  // "8M (2^23)"

 private:
  std::vector<std::string> columns_;
  int width_;
};

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_TABLE_H_
