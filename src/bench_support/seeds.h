#ifndef HBTREE_BENCH_SUPPORT_SEEDS_H_
#define HBTREE_BENCH_SUPPORT_SEEDS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_support/report.h"
#include "core/random.h"

namespace hbtree::bench {

/// Every named sub-seed a serving bench needs, derived from the one
/// --seed flag by a fixed SplitMix64 chain. Before this existed each
/// bench hand-rolled its own offsets (seed+1, seed+2, seed+17, ...), so
/// two benches given the same --seed silently drew correlated streams and
/// a bench adding one more consumer reshuffled everything after it. The
/// chain gives every purpose an independent, order-stable seed, and
/// Record() writes the effective values into the report's meta so a rerun
/// can be checked against the exact streams the report used.
struct SeedPlan {
  explicit SeedPlan(std::uint64_t master_seed) : master(master_seed) {
    std::uint64_t state = master_seed ^ 0x73656564706c616eull;  // "seedplan"
    dataset = SplitMix64(state);
    calibrate = SplitMix64(state);
    queries = SplitMix64(state);
    updates = SplitMix64(state);
    workload = SplitMix64(state);
    faults = SplitMix64(state);
  }

  std::uint64_t master;     // the --seed flag value
  std::uint64_t dataset;    // bootstrap key/value generation
  std::uint64_t calibrate;  // platform cost calibration probes
  std::uint64_t queries;    // lookup query stream
  std::uint64_t updates;    // update stream
  std::uint64_t workload;   // YCSB op streams (per-client seeds derive
                            // from this inside workload::OpStream)
  std::uint64_t faults;     // fault-injection schedules

  /// Records the master seed (numeric, part of the report's identity)
  /// and the derived seeds (exact hex strings) under meta.
  void Record(BenchReport& report) const {
    report.MetaNum("seed", static_cast<double>(master));
    report.Meta("seed_dataset", Hex(dataset));
    report.Meta("seed_calibrate", Hex(calibrate));
    report.Meta("seed_queries", Hex(queries));
    report.Meta("seed_updates", Hex(updates));
    report.Meta("seed_workload", Hex(workload));
    report.Meta("seed_faults", Hex(faults));
  }

  static std::string Hex(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  }
};

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_SEEDS_H_
