#ifndef HBTREE_BENCH_SUPPORT_ARGS_H_
#define HBTREE_BENCH_SUPPORT_ARGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace hbtree::bench {

/// Minimal `--key=value` flag parser shared by the figure harnesses.
///
/// Common flags across benches:
///   --platform=m1|m2     simulated platform (default per figure)
///   --min_log2, --max_log2   dataset size sweep bounds (log2 of N)
///   --queries_log2       measured queries per data point
///   --seed               workload seed
class Args {
 public:
  Args(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& key,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;

  /// Prints every flag that was set (for log provenance).
  void PrintActive() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_ARGS_H_
