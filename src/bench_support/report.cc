#include "bench_support/report.h"

#include <algorithm>
#include <cstdio>

#include "bench_support/table.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace hbtree::bench {

BenchReport::Row& BenchReport::Row::Num(const std::string& column,
                                        double value, int precision) {
  Cell cell;
  cell.numeric = true;
  cell.number = value;
  cell.precision = precision;
  cells_.emplace_back(column, std::move(cell));
  return *this;
}

BenchReport::Row& BenchReport::Row::Text(const std::string& column,
                                         const std::string& value) {
  Cell cell;
  cell.text = value;
  cells_.emplace_back(column, std::move(cell));
  return *this;
}

void BenchReport::Meta(const std::string& key, const std::string& value) {
  Cell cell;
  cell.text = value;
  meta_.emplace_back(key, std::move(cell));
}

void BenchReport::MetaNum(const std::string& key, double value) {
  Cell cell;
  cell.numeric = true;
  cell.number = value;
  meta_.emplace_back(key, std::move(cell));
}

BenchReport::Row& BenchReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

BenchReport::Row& BenchReport::AddServeStatsRow(
    Row& row, const serve::ServeStats& stats) {
  row.Num("shards", stats.num_shards, 0)
      .Num("read_workers", stats.num_read_workers, 0)
      .Num("reads_per_s", stats.reads_per_second, 0)
      .Num("updates_per_s", stats.updates_per_second, 0)
      .Num("read_p50_us", stats.read_latency.p50_us, 1)
      .Num("read_p99_us", stats.read_latency.p99_us, 1)
      .Num("queue_wait_p99_us", stats.queue_wait.p99_us, 1)
      .Num("modelled_ops_per_s", stats.modelled_ops_per_second, 0)
      .Num("sync_us", stats.sim_sync_us, 0)
      .Num("delta_syncs", static_cast<double>(stats.delta_syncs), 0)
      .Num("full_syncs", static_cast<double>(stats.full_syncs), 0)
      .Num("retries",
           static_cast<double>(stats.transfer_retries + stats.kernel_retries +
                               stats.sync_retries),
           0)
      .Num("device_faults", static_cast<double>(stats.device_faults), 0)
      .Num("breaker_opens", static_cast<double>(stats.breaker_opens), 0)
      .Num("breaker_closes", static_cast<double>(stats.breaker_closes), 0)
      .Num("cpu_fallback_buckets",
           static_cast<double>(stats.cpu_fallback_buckets), 0)
      .Num("shed", static_cast<double>(stats.shed_reads + stats.shed_updates),
           0);
  // Worst burn rate across the tracked SLOs (0 with none observed): >1
  // means some objective spent its error budget faster than tolerated
  // during this run.
  double max_burn = 0;
  for (const obs::SloStatus& slo : stats.slos) {
    max_burn = std::max(max_burn, slo.burn_short);
  }
  row.Num("slo_max_burn", max_burn, 2);
  return row;
}

BenchReport::Row& BenchReport::AddTenantStatsRow(
    Row& row, int tenant, const serve::TenantServeStats& stats,
    double wall_seconds) {
  row.Num("tenant", tenant, 0)
      .Text("name", stats.name)
      .Text("priority", serve::PriorityName(stats.priority))
      .Num("weight", stats.weight, 0)
      .Num("served", static_cast<double>(stats.served()), 0)
      .Num("shed", static_cast<double>(stats.shed()), 0)
      .Num("shed_pct", stats.shed_ratio() * 100.0, 2)
      .Num("goodput_per_s",
           wall_seconds > 0 ? stats.served() / wall_seconds : 0, 0)
      .Num("read_p50_us", stats.read_latency.p50_us, 1)
      .Num("read_p99_us", stats.read_latency.p99_us, 1);
  return row;
}

void BenchReport::SetStages(const obs::StageWaterfall& stages) {
  stages_ = stages;
}

void BenchReport::SetHeat(const obs::HeatSection& heat) { heat_ = heat; }

void BenchReport::PrintTable(const std::string& title,
                             int column_width) const {
  // Column set: union over rows, in first-appearance order.
  std::vector<std::string> columns;
  for (const Row& row : rows_) {
    for (const auto& [column, cell] : row.cells_) {
      bool known = false;
      for (const std::string& c : columns) {
        if (c == column) {
          known = true;
          break;
        }
      }
      if (!known) columns.push_back(column);
    }
  }
  // Widen uniformly so long canonical names ("cpu_fallback_buckets") keep
  // the header aligned with the cells.
  for (const std::string& c : columns) {
    column_width = std::max(column_width, static_cast<int>(c.size()) + 2);
  }
  Table table(columns, column_width);
  table.PrintTitle(title);
  table.PrintHeader();
  for (const Row& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const std::string& column : columns) {
      const Cell* found = nullptr;
      for (const auto& [name, cell] : row.cells_) {
        if (name == column) {
          found = &cell;
          break;
        }
      }
      if (found == nullptr) {
        cells.push_back("-");
      } else if (found->numeric) {
        cells.push_back(Table::Num(found->number, found->precision));
      } else {
        cells.push_back(found->text);
      }
    }
    table.PrintRow(cells);
  }
}

std::string BenchReport::ToJson(const obs::MetricsSnapshot* metrics) const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("hbtree.bench.v1");
  w.Key("bench");
  w.String(name_);
  w.Key("meta");
  w.BeginObject();
  for (const auto& [key, cell] : meta_) {
    w.Key(key);
    if (cell.numeric) {
      w.Number(cell.number);
    } else {
      w.String(cell.text);
    }
  }
  w.EndObject();
  w.Key("rows");
  w.BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject();
    for (const auto& [column, cell] : row.cells_) {
      w.Key(column);
      if (cell.numeric) {
        w.Number(cell.number);
      } else {
        w.String(cell.text);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  if (!stages_.empty()) {
    auto append_stages =
        [&w](const std::vector<std::pair<std::string, obs::StageStats>>&
                 stages) {
          w.BeginObject();
          for (const auto& [stage, s] : stages) {
            w.Key(stage);
            w.BeginObject();
            w.Key("count");
            w.Uint(s.count);
            w.Key("total_us");
            w.Number(s.total_us);
            w.Key("mean_us");
            w.Number(s.mean_us());
            w.Key("max_us");
            w.Number(s.max_us);
            w.Key("share");
            w.Number(s.share);
            w.EndObject();
          }
          w.EndObject();
        };
    w.Key("stages");
    w.BeginObject();
    w.Key("total_us");
    w.Number(stages_.total_us);
    w.Key("aggregate");
    append_stages(stages_.stages);
    w.Key("groups");
    w.BeginObject();
    for (const obs::StageGroup& group : stages_.groups) {
      w.Key(group.name);
      append_stages(group.stages);
    }
    w.EndObject();
    w.EndObject();
  }
  if (!heat_.empty()) {
    w.Key("heat");
    obs::AppendHeatJson(w, heat_);
  }
  if (metrics != nullptr) {
    w.Key("metrics");
    obs::MetricsRegistry::AppendJson(*metrics, &w);
  }
  w.EndObject();
  return w.str();
}

bool BenchReport::WriteJson(const std::string& path,
                            const obs::MetricsSnapshot* metrics) const {
  const std::string json = ToJson(metrics);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (ok) {
    std::printf("wrote %s (%zu bytes, schema hbtree.bench.v1)\n",
                path.c_str(), json.size());
  } else {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
  }
  return ok;
}

void MaybeStartTrace(const Args& args) {
  if (!args.Has("trace_out")) return;
  obs::TraceSession::Start();
}

void MaybeWriteTrace(const Args& args) {
  if (!args.Has("trace_out")) return;
  const std::string path = args.GetString("trace_out", "");
  obs::TraceSession::Stop();
  if (obs::TraceSession::event_count() == 0) {
    // This TU cannot see the bench's own HBTREE_OBS_TRACING setting, but
    // an empty session after a real workload means the spans were
    // compiled out of the binary.
    std::printf(
        "note: 0 trace events recorded — was this bench built with "
        "HBTREE_OBS_TRACING=1?\n");
  }
  if (obs::TraceSession::WriteChromeJson(path)) {
    std::printf("wrote %s (%zu trace events; load in Perfetto or "
                "chrome://tracing)\n",
                path.c_str(), obs::TraceSession::event_count());
  } else {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
  }
}

}  // namespace hbtree::bench
