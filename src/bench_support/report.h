#ifndef HBTREE_BENCH_SUPPORT_REPORT_H_
#define HBTREE_BENCH_SUPPORT_REPORT_H_

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/args.h"
#include "obs/heat.h"
#include "obs/metrics.h"
#include "obs/span_aggregator.h"
#include "serve/serve_stats.h"

namespace hbtree::bench {

/// Shared bench reporter: every figure/serving harness builds rows here
/// and gets a consistent console table plus a machine-readable JSON dump
/// (schema `hbtree.bench.v1`, validated by scripts/validate_metrics.py).
///
/// Column names are part of the schema: lowercase snake_case with the
/// unit suffixed (`reads_per_s`, `read_p99_us`, `mqps`). The serving
/// benches must route through AddServeStatsRow() so their column set
/// cannot drift between binaries again.
class BenchReport {
 public:
  struct Cell {
    bool numeric = false;
    double number = 0;
    int precision = 2;  // console formatting only; JSON keeps the double
    std::string text;
  };

  /// One result row; columns appear in insertion order.
  class Row {
   public:
    Row& Num(const std::string& column, double value, int precision = 2);
    Row& Text(const std::string& column, const std::string& value);

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, Cell>> cells_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Run provenance recorded under "meta" in the JSON (platform, sizes,
  /// seeds — whatever a reader needs to reproduce the row set).
  void Meta(const std::string& key, const std::string& value);
  void MetaNum(const std::string& key, double value);

  /// Rows live as long as the report; the returned reference stays valid
  /// across further AddRow calls.
  Row& AddRow();

  /// The canonical serving-layer column set, in canonical order:
  /// shards, read_workers, reads_per_s, updates_per_s, read_p50_us,
  /// read_p99_us, queue_wait_p99_us, modelled_ops_per_s (modelled
  /// serving capacity — total ops over the busiest shard's modelled busy
  /// time), sync_us (modelled I-segment mirror sync time), delta_syncs /
  /// full_syncs (which path each sync took), retries (transfer + kernel
  /// + sync), device_faults, breaker_opens, breaker_closes,
  /// cpu_fallback_buckets, shed (reads + updates). Callers may prepend
  /// their sweep variable before calling and append extra columns after.
  Row& AddServeStatsRow(Row& row, const serve::ServeStats& stats);

  /// The canonical per-tenant column set for multi-tenant serving
  /// benches, one row per tenant: tenant (index), name, priority,
  /// weight, served, shed, shed_pct, goodput_per_s (served ops over the
  /// stats' wall seconds — HIGHER_BETTER in regression gates),
  /// read_p50_us, read_p99_us. Callers prepend their sweep variable
  /// before calling, exactly like AddServeStatsRow.
  Row& AddTenantStatsRow(Row& row, int tenant,
                         const serve::TenantServeStats& stats,
                         double wall_seconds);

  /// Attaches a stage waterfall (obs::SpanAggregator::FromSession() of a
  /// traced run), emitted as the JSON's "stages" section: where the ops'
  /// time went per pipeline stage, aggregate and per shard/slot. A
  /// report carries at most one waterfall — conventionally the last
  /// (largest-topology) run, matching the embedded metrics snapshot.
  void SetStages(const obs::StageWaterfall& stages);

  /// Attaches a heat section (serve::Server::Heat() of a heat-enabled
  /// run), emitted as the JSON's "heat" section: the keyspace hot-range
  /// report, per-stage tree-level traffic, and pool temperatures. An
  /// empty section (heat compiled out) is silently dropped from the JSON.
  void SetHeat(const obs::HeatSection& heat);

  /// Console table over the union of row columns (first-appearance
  /// order); missing cells print "-".
  void PrintTable(const std::string& title, int column_width = 10) const;

  /// `hbtree.bench.v1` JSON; `metrics` (optional) embeds an
  /// `hbtree.metrics.v1` snapshot under "metrics".
  std::string ToJson(const obs::MetricsSnapshot* metrics = nullptr) const;
  /// Writes ToJson() to `path`; prints the path (or the error) to stdout/
  /// stderr. Returns false on I/O failure.
  bool WriteJson(const std::string& path,
                 const obs::MetricsSnapshot* metrics = nullptr) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, Cell>> meta_;
  std::deque<Row> rows_;  // deque: AddRow must not invalidate references
  obs::StageWaterfall stages_;
  obs::HeatSection heat_;
};

// -- Shared observability flags ---------------------------------------------
//
// Every serving/figure bench accepts:
//   --trace_out=<path>     record a TraceSession for the run and export
//                          Chrome trace-event JSON (load in Perfetto).
//                          Only spans compiled into the bench binary are
//                          recorded (HBTREE_OBS_TRACING=1 targets).
//   --metrics_json=<path>  write the BenchReport JSON (with embedded
//                          metrics snapshot where the bench has one).

/// Starts a trace session if --trace_out was given.
void MaybeStartTrace(const Args& args);
/// Stops the session (if one was started) and writes the Chrome JSON to
/// the --trace_out path. Safe to call without a prior MaybeStartTrace.
void MaybeWriteTrace(const Args& args);

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_REPORT_H_
