#ifndef HBTREE_BENCH_SUPPORT_SERVE_RUNNER_H_
#define HBTREE_BENCH_SUPPORT_SERVE_RUNNER_H_

#include <vector>

#include "bench_support/calibrate.h"
#include "bench_support/harness.h"
#include "core/workload.h"
#include "serve/server.h"

namespace hbtree::bench {

/// Builds ServerOptions with the pipeline's CPU rates calibrated for
/// `data` on `platform` — the serve-layer analogue of HbBench's setup.
/// A throwaway host tree is built once for calibration; the server then
/// builds its own snapshot pair from the same data.
template <typename K>
serve::ServerOptions CalibratedServerOptions(
    const sim::PlatformSpec& platform, const std::vector<KeyValue<K>>& data,
    std::uint64_t seed, int bucket_size = 16 * 1024) {
  serve::ServerOptions options;
  options.platform = platform;
  options.pipeline.bucket_size = bucket_size;

  PageRegistry registry;
  typename RegularBTree<K>::Config config;
  config.leaf_fill = options.leaf_fill;
  RegularBTree<K> tree(config, &registry);
  tree.Build(data);
  const std::vector<K> queries = MakeLookupQueries(data, seed);
  const HbCpuRates rates =
      CalibrateHbCpuRates(tree, queries, platform, registry);
  options.pipeline.cpu_queries_per_us = rates.leaf_queries_per_us;
  options.pipeline.cpu_descend_us_per_level = rates.descend_us_per_level;
  options.pipeline.cpu_descend_us_by_depth = rates.descend_us_by_depth;
  options.update.cpu_update_us =
      EstimateUpdateCostUs(tree, queries, platform, registry);
  return options;
}

}  // namespace hbtree::bench

#endif  // HBTREE_BENCH_SUPPORT_SERVE_RUNNER_H_
