#include "core/status.h"

namespace hbtree {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kDeviceOom:
      return "device-oom";
    case StatusCode::kTransferFailure:
      return "transfer-failure";
    case StatusCode::kKernelFailure:
      return "kernel-failure";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace hbtree
