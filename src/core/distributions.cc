#include "core/distributions.h"

#include <cmath>
#include <cstdlib>

#include "core/macros.h"

namespace hbtree {

namespace {

// Parameters from Section 6.3.
constexpr double kNormalMu = 0.5;
constexpr double kNormalSigma = 0.35355339059327373;  // sqrt(0.125)
constexpr double kGammaShape = 3.0;
constexpr double kGammaScale = 3.0;
// Gamma(3, 3) mass is overwhelmingly below ~45 (P[X > 45] < 1e-5); samples
// are rescaled by this bound and clamped so the mapping into [0, 1] is
// stable and heavy skew toward small values is preserved.
constexpr double kGammaUpperBound = 45.0;
constexpr double kZipfAlpha = 2.0;
// Number of distinct ranks used for the Zipf sampler. Large enough that the
// rank grid is much finer than any tree's key spacing at the sizes we test.
constexpr std::uint64_t kZipfRanks = 1ull << 24;

}  // namespace

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kGamma:
      return "gamma";
    case Distribution::kZipf:
      return "zipf";
  }
  return "unknown";
}

Distribution ParseDistribution(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "normal") return Distribution::kNormal;
  if (name == "gamma") return Distribution::kGamma;
  if (name == "zipf") return Distribution::kZipf;
  HBTREE_CHECK_MSG(false, "unknown distribution '%s'", name.c_str());
  return Distribution::kUniform;
}

DistributionSampler::DistributionSampler(Distribution distribution,
                                         std::uint64_t seed)
    : distribution_(distribution), rng_(seed) {}

double DistributionSampler::Next() {
  switch (distribution_) {
    case Distribution::kUniform:
      return rng_.NextDouble();
    case Distribution::kNormal: {
      double v = kNormalMu + kNormalSigma * NextNormal();
      if (v < 0.0) v = 0.0;
      if (v > 1.0) v = 1.0;
      return v;
    }
    case Distribution::kGamma: {
      double v = NextGamma(kGammaShape, kGammaScale) / kGammaUpperBound;
      if (v > 1.0) v = 1.0;
      return v;
    }
    case Distribution::kZipf:
      return NextZipf();
  }
  return 0.0;
}

double DistributionSampler::NextNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = rng_.NextDouble();
  double u2 = rng_.NextDouble();
  while (u1 <= 1e-300) u1 = rng_.NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double DistributionSampler::NextGamma(double shape, double scale) {
  // Marsaglia & Tsang (2000), "A simple method for generating gamma
  // variables". Valid for shape >= 1, which holds for the paper's k = 3.
  HBTREE_DCHECK(shape >= 1.0);
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextNormal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng_.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double DistributionSampler::NextZipf() {
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) for
  // Zipf(alpha) over ranks [1, kZipfRanks]. For alpha = 2 the helper
  // H(x) = -1/x has the closed-form inverse used below.
  const double alpha = kZipfAlpha;
  auto h = [alpha](double x) {
    return std::pow(x, 1.0 - alpha) / (1.0 - alpha);
  };
  auto h_inv = [alpha](double y) {
    return std::pow((1.0 - alpha) * y, 1.0 / (1.0 - alpha));
  };
  static const double kHx0 = h(0.5) - 1.0;
  const double h_max = h(kZipfRanks + 0.5);
  for (;;) {
    double u = kHx0 + rng_.NextDouble() * (h_max - kHx0);
    double x = h_inv(u);
    std::uint64_t rank = static_cast<std::uint64_t>(x + 0.5);
    if (rank < 1) rank = 1;
    if (rank > kZipfRanks) rank = kZipfRanks;
    double rank_d = static_cast<double>(rank);
    if (u >= h(rank_d + 0.5) - std::pow(rank_d, -alpha)) {
      // Map rank r (1 = most popular) onto [0, 1].
      return (rank_d - 1.0) / static_cast<double>(kZipfRanks - 1);
    }
  }
}

}  // namespace hbtree
