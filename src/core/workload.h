#ifndef HBTREE_CORE_WORKLOAD_H_
#define HBTREE_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/distributions.h"
#include "core/random.h"
#include "core/types.h"

namespace hbtree {

/// Workload generation following Section 6.1: keys and values are drawn
/// uniformly from [0, 2^n - 1], the tree is built from the sorted set, and
/// the query stream is the same keys after a Knuth shuffle.
///
/// Keys are unique (duplicates are rejected during generation) and the
/// maximum key value is reserved as the sentinel for empty slots.

/// Generates `n` unique keys, sorted ascending, uniform over the key domain
/// excluding the all-ones sentinel.
template <typename K>
std::vector<K> GenerateSortedUniqueKeys(std::size_t n, std::uint64_t seed);

/// Generates a sorted dataset of `n` unique keys with random values.
template <typename K>
std::vector<KeyValue<K>> GenerateDataset(std::size_t n, std::uint64_t seed);

/// Returns the dataset's keys after a Knuth shuffle — the paper's point
/// lookup query stream (every query hits).
template <typename K>
std::vector<K> MakeLookupQueries(const std::vector<KeyValue<K>>& dataset,
                                 std::uint64_t seed);

/// Draws `count` query keys from the *key domain* according to a
/// distribution sample in [0, 1] mapped linearly onto [0, kMax), as in the
/// skew experiment (Section 6.3). Queries may miss.
template <typename K>
std::vector<K> MakeDistributedQueries(std::size_t count,
                                      Distribution distribution,
                                      std::uint64_t seed);

/// A range query: scan starting at `first_key`, returning up to
/// `match_count` pairs (Figure 17 fixes the number of matching keys).
template <typename K>
struct RangeQuery {
  K first_key;
  int match_count;
};

/// Builds range queries whose start keys exist in the dataset, each asking
/// for exactly `match_count` matches.
template <typename K>
std::vector<RangeQuery<K>> MakeRangeQueries(
    const std::vector<KeyValue<K>>& dataset, std::size_t count,
    int match_count, std::uint64_t seed);

/// An update request for the batch update experiments (Section 5.6).
template <typename K>
struct UpdateQuery {
  enum class Kind { kInsert, kDelete } kind;
  KeyValue<K> pair;
};

/// Builds a batch of updates: `insert_fraction` inserts of fresh keys (not
/// in the dataset), the rest deletions of existing keys.
template <typename K>
std::vector<UpdateQuery<K>> MakeUpdateBatch(
    const std::vector<KeyValue<K>>& dataset, std::size_t count,
    double insert_fraction, std::uint64_t seed);

}  // namespace hbtree

#endif  // HBTREE_CORE_WORKLOAD_H_
