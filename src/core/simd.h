#ifndef HBTREE_CORE_SIMD_H_
#define HBTREE_CORE_SIMD_H_

#include <cstdint>
#include <string>

#include "core/types.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define HBTREE_HAVE_AVX2 1
#else
#define HBTREE_HAVE_AVX2 0
#endif

namespace hbtree {

/// Intra-node search algorithms evaluated in Section 4.2 / Appendix A.
/// All of them compute, for one cache line of sorted keys, the number of
/// keys strictly smaller than the query — i.e. the minimum index i such
/// that `query <= keys[i]`, which is also the index of the child to follow.
enum class NodeSearchAlgo {
  kSequential,       // scalar loop, the paper's baseline
  kLinearSimd,       // Snippet 1: two full-width vector compares
  kHierarchicalSimd  // Snippet 2: boundary compare, then one refinement
};

const char* NodeSearchAlgoName(NodeSearchAlgo algo);
NodeSearchAlgo ParseNodeSearchAlgo(const std::string& name);

/// Returns true when the SIMD paths below use real AVX2 instructions
/// (otherwise they fall back to branchless scalar code).
constexpr bool HasAvx2() { return HBTREE_HAVE_AVX2 != 0; }

// ---------------------------------------------------------------------------
// Scalar reference / baseline implementations.
// ---------------------------------------------------------------------------

/// Scalar early-exit loop over `count` sorted keys; the "sequential"
/// baseline of Figure 8. Returns #{i : keys[i] < query}.
template <typename K>
inline int SearchLineSequential(const K* keys, int count, K query) {
  int i = 0;
  while (i < count && keys[i] < query) ++i;
  return i;
}

/// Branchless scalar lower bound over one cache line; used as the fallback
/// body of the SIMD entry points on non-AVX2 builds.
template <typename K>
inline int SearchLineBranchless(const K* keys, int count, K query) {
  int result = 0;
  for (int i = 0; i < count; ++i) result += keys[i] < query ? 1 : 0;
  return result;
}

// ---------------------------------------------------------------------------
// 64-bit key line search (8 keys per cache line).
// ---------------------------------------------------------------------------

#if HBTREE_HAVE_AVX2
namespace simd_internal {

/// AVX2 offers only signed 64-bit compares; flipping the sign bit maps
/// unsigned order onto signed order.
inline __m256i FlipSign64(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(
                                 static_cast<long long>(0x8000000000000000ull)));
}

inline __m256i FlipSign32(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi32(
                                 static_cast<int>(0x80000000u)));
}

/// Number of lanes (of four 64-bit keys) strictly smaller than the query.
inline int CountLess4x64(const std::uint64_t* keys, __m256i vquery_flipped) {
  __m256i vec = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  __m256i cmp = _mm256_cmpgt_epi64(vquery_flipped, FlipSign64(vec));
  int mask = _mm256_movemask_pd(_mm256_castsi256_pd(cmp));
  return __builtin_popcount(static_cast<unsigned>(mask));
}

/// Number of lanes (of eight 32-bit keys) strictly smaller than the query.
inline int CountLess8x32(const std::uint32_t* keys, __m256i vquery_flipped) {
  __m256i vec = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  __m256i cmp = _mm256_cmpgt_epi32(vquery_flipped, FlipSign32(vec));
  int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
  return __builtin_popcount(static_cast<unsigned>(mask));
}

}  // namespace simd_internal
#endif  // HBTREE_HAVE_AVX2

/// Linear AVX search over 8 sorted 64-bit keys (paper Snippet 1): both
/// half-lines are compared unconditionally, so the code is free of control
/// dependencies.
inline int SearchLine64LinearAvx(const std::uint64_t* keys,
                                 std::uint64_t query) {
#if HBTREE_HAVE_AVX2
  __m256i vquery = simd_internal::FlipSign64(
      _mm256_set1_epi64x(static_cast<long long>(query)));
  return simd_internal::CountLess4x64(keys, vquery) +
         simd_internal::CountLess4x64(keys + 4, vquery);
#else
  return SearchLineBranchless(keys, 8, query);
#endif
}

/// Hierarchical AVX search over 8 sorted 64-bit keys (paper Snippet 2):
/// boundary keys keys[2] and keys[5] pick one of three 3-key thirds; one
/// more two-key compare finishes the search. Loads less data than the
/// linear variant at the price of a control dependency.
inline int SearchLine64HierarchicalAvx(const std::uint64_t* keys,
                                       std::uint64_t query) {
#if HBTREE_HAVE_AVX2
  const __m128i sign = _mm_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  __m128i vquery =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(query)), sign);
  // Boundary keys keys[2] and keys[5] select one of the three thirds.
  __m128i bounds = _mm_xor_si128(
      _mm_set_epi64x(static_cast<long long>(keys[5]),
                     static_cast<long long>(keys[2])),
      sign);
  __m128i cmp = _mm_cmpgt_epi64(vquery, bounds);
  int mask = _mm_movemask_pd(_mm_castsi128_pd(cmp));
  int base = 3 * __builtin_popcount(static_cast<unsigned>(mask));
  // One more two-key compare inside the selected third finishes the search.
  __m128i pair = _mm_xor_si128(
      _mm_set_epi64x(static_cast<long long>(keys[base + 1]),
                     static_cast<long long>(keys[base])),
      sign);
  cmp = _mm_cmpgt_epi64(vquery, pair);
  mask = _mm_movemask_pd(_mm_castsi128_pd(cmp));
  return base + __builtin_popcount(static_cast<unsigned>(mask));
#else
  return SearchLineBranchless(keys, 8, query);
#endif
}

/// Dispatch helper for a full 8-key 64-bit line.
inline int SearchLine64(const std::uint64_t* keys, std::uint64_t query,
                        NodeSearchAlgo algo) {
  switch (algo) {
    case NodeSearchAlgo::kSequential:
      return SearchLineSequential(keys, 8, query);
    case NodeSearchAlgo::kLinearSimd:
      return SearchLine64LinearAvx(keys, query);
    case NodeSearchAlgo::kHierarchicalSimd:
      return SearchLine64HierarchicalAvx(keys, query);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// 32-bit key line search (16 keys per cache line).
// ---------------------------------------------------------------------------

/// Linear AVX search over 16 sorted 32-bit keys: two 8-wide compares.
inline int SearchLine32LinearAvx(const std::uint32_t* keys,
                                 std::uint32_t query) {
#if HBTREE_HAVE_AVX2
  __m256i vquery = simd_internal::FlipSign32(
      _mm256_set1_epi32(static_cast<int>(query)));
  return simd_internal::CountLess8x32(keys, vquery) +
         simd_internal::CountLess8x32(keys + 8, vquery);
#else
  return SearchLineBranchless(keys, 16, query);
#endif
}

/// Hierarchical search over 16 sorted 32-bit keys: one 8-wide compare of
/// the odd-position keys narrows the answer to two candidates; a single
/// scalar compare resolves it.
inline int SearchLine32HierarchicalAvx(const std::uint32_t* keys,
                                       std::uint32_t query) {
#if HBTREE_HAVE_AVX2
  alignas(32) std::uint32_t odd[8] = {keys[1], keys[3],  keys[5],  keys[7],
                                      keys[9], keys[11], keys[13], keys[15]};
  __m256i vquery = simd_internal::FlipSign32(
      _mm256_set1_epi32(static_cast<int>(query)));
  int c = simd_internal::CountLess8x32(odd, vquery);
  // keys[2c-1] < query <= keys[2c+1]; the answer is 2c or 2c+1.
  if (c == 8) return 16;
  return 2 * c + (keys[2 * c] < query ? 1 : 0);
#else
  return SearchLineBranchless(keys, 16, query);
#endif
}

/// Dispatch helper for a full 16-key 32-bit line.
inline int SearchLine32(const std::uint32_t* keys, std::uint32_t query,
                        NodeSearchAlgo algo) {
  switch (algo) {
    case NodeSearchAlgo::kSequential:
      return SearchLineSequential(keys, 16, query);
    case NodeSearchAlgo::kLinearSimd:
      return SearchLine32LinearAvx(keys, query);
    case NodeSearchAlgo::kHierarchicalSimd:
      return SearchLine32HierarchicalAvx(keys, query);
  }
  return 0;
}

/// Width-generic dispatch over one full cache line of keys.
template <typename K>
inline int SearchCacheLine(const K* keys, K query, NodeSearchAlgo algo) {
  if constexpr (sizeof(K) == 8) {
    return SearchLine64(keys, query, algo);
  } else {
    return SearchLine32(keys, query, algo);
  }
}

}  // namespace hbtree

#endif  // HBTREE_CORE_SIMD_H_
