#ifndef HBTREE_CORE_DISTRIBUTIONS_H_
#define HBTREE_CORE_DISTRIBUTIONS_H_

#include <string>

#include "core/random.h"

namespace hbtree {

/// Query-key distributions evaluated in the paper's skew experiment
/// (Section 6.3, Figure 12). Samples are drawn in [0, 1] and linearly
/// mapped onto the key domain by the workload generator.
enum class Distribution {
  kUniform,
  /// Normal(mu = 0.5, sigma^2 = 0.125), clamped to [0, 1].
  kNormal,
  /// Gamma(k = 3, theta = 3), rescaled into [0, 1].
  kGamma,
  /// Zipf(alpha = 2) over a large rank domain, mapped into [0, 1].
  kZipf,
};

const char* DistributionName(Distribution d);

/// Parses "uniform" / "normal" / "gamma" / "zipf"; aborts on anything else.
Distribution ParseDistribution(const std::string& name);

/// Stateful sampler producing values in [0, 1] for a given distribution,
/// with the exact parameters used in the paper.
class DistributionSampler {
 public:
  DistributionSampler(Distribution distribution, std::uint64_t seed);

  /// Returns the next sample in [0, 1].
  double Next();

  Distribution distribution() const { return distribution_; }

 private:
  double NextNormal();
  double NextGamma(double shape, double scale);
  double NextZipf();

  Distribution distribution_;
  Rng rng_;
  // Box-Muller produces samples in pairs; the spare is cached here.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hbtree

#endif  // HBTREE_CORE_DISTRIBUTIONS_H_
