#include "core/simd.h"

#include "core/macros.h"

namespace hbtree {

const char* NodeSearchAlgoName(NodeSearchAlgo algo) {
  switch (algo) {
    case NodeSearchAlgo::kSequential:
      return "sequential";
    case NodeSearchAlgo::kLinearSimd:
      return "linear-simd";
    case NodeSearchAlgo::kHierarchicalSimd:
      return "hierarchical-simd";
  }
  return "unknown";
}

NodeSearchAlgo ParseNodeSearchAlgo(const std::string& name) {
  if (name == "sequential") return NodeSearchAlgo::kSequential;
  if (name == "linear-simd") return NodeSearchAlgo::kLinearSimd;
  if (name == "hierarchical-simd") return NodeSearchAlgo::kHierarchicalSimd;
  HBTREE_CHECK_MSG(false, "unknown node search algorithm '%s'", name.c_str());
  return NodeSearchAlgo::kSequential;
}

}  // namespace hbtree
