#ifndef HBTREE_CORE_MACROS_H_
#define HBTREE_CORE_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Unconditional invariant check. Used for programming errors that must
/// never happen in a correct build; prints the failing expression and
/// aborts. Kept active in release builds because index corruption must not
/// pass silently.
#define HBTREE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HBTREE_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Check with a printf-style message appended.
#define HBTREE_CHECK_MSG(cond, ...)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HBTREE_CHECK failed: %s at %s:%d: ", #cond,     \
                   __FILE__, __LINE__);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only check, compiled out of release builds.
#ifndef NDEBUG
#define HBTREE_DCHECK(cond) HBTREE_CHECK(cond)
#else
#define HBTREE_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define HBTREE_LIKELY(x) __builtin_expect(!!(x), 1)
#define HBTREE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define HBTREE_LIKELY(x) (x)
#define HBTREE_UNLIKELY(x) (x)
#endif

#endif  // HBTREE_CORE_MACROS_H_
