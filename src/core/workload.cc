#include "core/workload.h"

#include <algorithm>

#include "core/macros.h"

namespace hbtree {

template <typename K>
std::vector<K> GenerateSortedUniqueKeys(std::size_t n, std::uint64_t seed) {
  // The all-ones value is reserved as the empty-slot sentinel (Section 4.1),
  // so keys are drawn from [0, kMax - 1].
  const K bound = KeyTraits<K>::kMax;  // exclusive bound == kMax
  Rng rng(seed);
  std::vector<K> keys;
  keys.reserve(n + n / 16 + 16);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<K>(rng.NextBounded(bound)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  // Top up until we have n unique keys. For 64-bit keys collisions are
  // vanishingly rare; for 32-bit keys at large n a few rounds suffice.
  while (keys.size() < n) {
    std::size_t missing = n - keys.size();
    std::vector<K> extra;
    extra.reserve(missing + missing / 8 + 8);
    for (std::size_t i = 0; i < missing + missing / 8 + 8; ++i) {
      extra.push_back(static_cast<K>(rng.NextBounded(bound)));
    }
    std::sort(extra.begin(), extra.end());
    extra.erase(std::unique(extra.begin(), extra.end()), extra.end());
    std::vector<K> merged;
    merged.reserve(keys.size() + extra.size());
    std::set_union(keys.begin(), keys.end(), extra.begin(), extra.end(),
                   std::back_inserter(merged));
    keys = std::move(merged);
  }
  keys.resize(n);
  return keys;
}

template <typename K>
std::vector<KeyValue<K>> GenerateDataset(std::size_t n, std::uint64_t seed) {
  std::vector<K> keys = GenerateSortedUniqueKeys<K>(n, seed);
  Rng rng(seed ^ 0xabcdef0123456789ull);
  std::vector<KeyValue<K>> dataset(n);
  for (std::size_t i = 0; i < n; ++i) {
    dataset[i].key = keys[i];
    dataset[i].value = static_cast<K>(rng.Next());
  }
  return dataset;
}

template <typename K>
std::vector<K> MakeLookupQueries(const std::vector<KeyValue<K>>& dataset,
                                 std::uint64_t seed) {
  std::vector<K> queries(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    queries[i] = dataset[i].key;
  }
  Rng rng(seed ^ 0x517cc1b727220a95ull);
  KnuthShuffle(queries, rng);
  return queries;
}

template <typename K>
std::vector<K> MakeDistributedQueries(std::size_t count,
                                      Distribution distribution,
                                      std::uint64_t seed) {
  DistributionSampler sampler(distribution, seed);
  std::vector<K> queries(count);
  const double domain = static_cast<double>(KeyTraits<K>::kMax) - 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    queries[i] = static_cast<K>(sampler.Next() * domain);
  }
  return queries;
}

template <typename K>
std::vector<RangeQuery<K>> MakeRangeQueries(
    const std::vector<KeyValue<K>>& dataset, std::size_t count,
    int match_count, std::uint64_t seed) {
  HBTREE_CHECK(dataset.size() >= static_cast<std::size_t>(match_count));
  Rng rng(seed ^ 0x2545f4914f6cdd1dull);
  const std::size_t max_start = dataset.size() - match_count;
  std::vector<RangeQuery<K>> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t start = rng.NextBounded(max_start + 1);
    queries[i] = RangeQuery<K>{dataset[start].key, match_count};
  }
  return queries;
}

template <typename K>
std::vector<UpdateQuery<K>> MakeUpdateBatch(
    const std::vector<KeyValue<K>>& dataset, std::size_t count,
    double insert_fraction, std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const std::size_t insert_count =
      static_cast<std::size_t>(count * insert_fraction);
  std::vector<UpdateQuery<K>> batch;
  batch.reserve(count);

  // Inserts: fresh keys absent from the dataset.
  auto key_exists = [&dataset](K key) {
    auto it = std::lower_bound(
        dataset.begin(), dataset.end(), key,
        [](const KeyValue<K>& kv, K k) { return kv.key < k; });
    return it != dataset.end() && it->key == key;
  };
  for (std::size_t i = 0; i < insert_count; ++i) {
    K key;
    do {
      key = static_cast<K>(rng.NextBounded(KeyTraits<K>::kMax));
    } while (key_exists(key));
    batch.push_back(UpdateQuery<K>{UpdateQuery<K>::Kind::kInsert,
                                   {key, static_cast<K>(rng.Next())}});
  }

  // Deletes: distinct existing keys.
  std::size_t delete_count = count - insert_count;
  HBTREE_CHECK(delete_count <= dataset.size());
  // Floyd's algorithm for sampling without replacement would need a set;
  // with delete_count << n, rejection on a bitmap of picked indices is
  // simpler and fast enough for workload generation.
  std::vector<bool> picked(dataset.size(), false);
  for (std::size_t i = 0; i < delete_count; ++i) {
    std::size_t idx;
    do {
      idx = rng.NextBounded(dataset.size());
    } while (picked[idx]);
    picked[idx] = true;
    batch.push_back(
        UpdateQuery<K>{UpdateQuery<K>::Kind::kDelete, dataset[idx]});
  }
  KnuthShuffle(batch, rng);
  return batch;
}

// Explicit instantiations for the two key widths the paper evaluates.
#define HBTREE_INSTANTIATE(K)                                                \
  template std::vector<K> GenerateSortedUniqueKeys<K>(std::size_t,           \
                                                      std::uint64_t);        \
  template std::vector<KeyValue<K>> GenerateDataset<K>(std::size_t,          \
                                                       std::uint64_t);       \
  template std::vector<K> MakeLookupQueries<K>(                              \
      const std::vector<KeyValue<K>>&, std::uint64_t);                       \
  template std::vector<K> MakeDistributedQueries<K>(                         \
      std::size_t, Distribution, std::uint64_t);                             \
  template std::vector<RangeQuery<K>> MakeRangeQueries<K>(                   \
      const std::vector<KeyValue<K>>&, std::size_t, int, std::uint64_t);     \
  template std::vector<UpdateQuery<K>> MakeUpdateBatch<K>(                   \
      const std::vector<KeyValue<K>>&, std::size_t, double, std::uint64_t);

HBTREE_INSTANTIATE(Key64)
HBTREE_INSTANTIATE(Key32)
#undef HBTREE_INSTANTIATE

}  // namespace hbtree
