#ifndef HBTREE_CORE_TRACE_H_
#define HBTREE_CORE_TRACE_H_

#include <cstddef>

namespace hbtree {

/// Memory-access tracing hook.
///
/// Tree traversal code is written once as a template over a tracer type.
/// The default `NullTracer` compiles away entirely, leaving the untraced
/// fast path; the platform simulator supplies a tracer that feeds every
/// access into its cache, TLB, and cost models (DESIGN.md Section 1).
///
/// The tracer contract:
///  * `OnAccess(addr, bytes)` — one logical memory access (tree code issues
///    one per touched cache line).
///  * `OnQueryStart()` / `OnQueryEnd()` — brackets the accesses belonging
///    to one index query, so per-query latency can be attributed.
struct NullTracer {
  void OnAccess(const void* /*addr*/, std::size_t /*bytes*/) {}
  void OnQueryStart() {}
  void OnQueryEnd() {}
};

}  // namespace hbtree

#endif  // HBTREE_CORE_TRACE_H_
