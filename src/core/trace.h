#ifndef HBTREE_CORE_TRACE_H_
#define HBTREE_CORE_TRACE_H_

#include <cstddef>
#include <cstdint>

namespace hbtree {

/// Memory-access tracing hook.
///
/// Tree traversal code is written once as a template over a tracer type.
/// The default `NullTracer` compiles away entirely, leaving the untraced
/// fast path; the platform simulator supplies a tracer that feeds every
/// access into its cache, TLB, and cost models (DESIGN.md Section 1).
///
/// The tracer contract:
///  * `OnAccess(addr, bytes)` — one logical memory access (tree code issues
///    one per touched cache line).
///  * `OnQueryStart()` / `OnQueryEnd()` — brackets the accesses belonging
///    to one index query, so per-query latency can be attributed.
struct NullTracer {
  void OnAccess(const void* /*addr*/, std::size_t /*bytes*/) {}
  void OnQueryStart() {}
  void OnQueryEnd() {}
};

/// Structural node classes for traffic attribution (DESIGN.md Section 13).
/// `kInner` nodes live in the inner pool (I-segment hot fragments);
/// `kLastInner` is the lowest inner level, paired one-to-one with its
/// `kBigLeaf` (both share a leaf-pool slot, Section 4.1).
enum class NodeClass { kInner = 0, kLastInner = 1, kBigLeaf = 2 };

/// Optional per-node tracer hook: tracers that additionally implement
/// `OnNodeTouch(level, cls, node)` get one call per structural node a
/// traversal touches, and the owning pool records the touch for
/// segment-temperature tracking. For tracers without the hook (NullTracer,
/// the cost-model CpuTracer) this compiles away entirely.
template <typename Tracer, typename Pool>
inline void TraceNodeTouch(Tracer* t, const Pool& pool, int level,
                           NodeClass cls, std::uint32_t node) {
  if constexpr (requires { t->OnNodeTouch(level, cls, node); }) {
    pool.NoteTouch(node);
    t->OnNodeTouch(level, cls, node);
  }
}

}  // namespace hbtree

#endif  // HBTREE_CORE_TRACE_H_
