#ifndef HBTREE_CORE_RANDOM_H_
#define HBTREE_CORE_RANDOM_H_

#include <cstdint>
#include <vector>

namespace hbtree {

/// SplitMix64 — used to seed the main generator and as a cheap stateless
/// mixer. Reference: Steele, Lea, Flood, "Fast splittable pseudorandom
/// number generators", OOPSLA 2014.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, high-quality, and
/// deterministic across platforms — every experiment in this repository is
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    for (auto& word : state_) word = SplitMix64(seed);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // 128-bit multiply keeps the bias negligible for any realistic bound.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// In-place Fisher-Yates / Knuth shuffle, the permutation the paper applies
/// to the build set before using it as the query stream (Section 6.1).
template <typename T>
void KnuthShuffle(std::vector<T>& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = rng.NextBounded(i);
    std::swap(items[i - 1], items[j]);
  }
}

}  // namespace hbtree

#endif  // HBTREE_CORE_RANDOM_H_
