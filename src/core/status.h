#ifndef HBTREE_CORE_STATUS_H_
#define HBTREE_CORE_STATUS_H_

#include <string>
#include <utility>

namespace hbtree {

/// Minimal error-reporting type for recoverable failures (I/O, format
/// errors). Programming errors still abort via HBTREE_CHECK; Status is for
/// conditions a caller can reasonably handle.
class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status status;
    status.ok_ = false;
    status.message_ = std::move(message);
    return status;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Early-return helper for call sites that propagate failures.
#define HBTREE_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::hbtree::Status _status = (expr);          \
    if (!_status.ok()) return _status;          \
  } while (0)

}  // namespace hbtree

#endif  // HBTREE_CORE_STATUS_H_
