#ifndef HBTREE_CORE_STATUS_H_
#define HBTREE_CORE_STATUS_H_

#include <string>
#include <utility>

namespace hbtree {

/// Failure classes a caller can dispatch on. Programming errors still
/// abort via HBTREE_CHECK; these codes cover conditions the system is
/// expected to survive (device faults, overload, bad client input).
enum class StatusCode {
  kOk = 0,
  /// Unclassified recoverable failure (I/O, format errors).
  kInternal,
  /// Malformed request parameters; the request is rejected, the server
  /// keeps running.
  kInvalidArgument,
  /// Device allocation failed (the cudaMalloc out-of-memory analogue).
  kDeviceOom,
  /// A host<->device transfer faulted. Transient: retry may succeed.
  kTransferFailure,
  /// A kernel launch/execution faulted. Transient: retry may succeed.
  kKernelFailure,
  /// The request's deadline expired before it was served (load shedding).
  kDeadlineExceeded,
  /// The serving path is unavailable (e.g. submitted to a stopped server).
  kUnavailable,
};

const char* StatusCodeName(StatusCode code);

/// Minimal error-reporting type for recoverable failures. Carries a code
/// so callers can distinguish transient device faults (worth retrying)
/// from terminal conditions (OOM, bad arguments).
class Status {
 public:
  /// Default-constructs as OK (convenient for out-parameters).
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status DeviceOom(std::string message) {
    return Status(StatusCode::kDeviceOom, std::move(message));
  }
  static Status TransferFailure(std::string message) {
    return Status(StatusCode::kTransferFailure, std::move(message));
  }
  static Status KernelFailure(std::string message) {
    return Status(StatusCode::kKernelFailure, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Whether a bounded retry of the failed operation may succeed.
  /// Transfer and kernel faults model transient bus/ECC glitches; OOM and
  /// argument errors do not go away on their own.
  bool IsTransient() const {
    return code_ == StatusCode::kTransferFailure ||
           code_ == StatusCode::kKernelFailure;
  }

  explicit operator bool() const { return ok(); }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Early-return helper for call sites that propagate failures.
#define HBTREE_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::hbtree::Status _status = (expr);          \
    if (!_status.ok()) return _status;          \
  } while (0)

}  // namespace hbtree

#endif  // HBTREE_CORE_STATUS_H_
