#ifndef HBTREE_CORE_TYPES_H_
#define HBTREE_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace hbtree {

/// 64-bit key type used by the "64-bit" tree variants in the paper.
using Key64 = std::uint64_t;
/// 32-bit key type used by the "32-bit" tree variants in the paper.
using Key32 = std::uint32_t;

/// Width of one cache line in bytes. All node layouts in the paper are
/// expressed in cache-line units (Section 4.1).
inline constexpr std::size_t kCacheLineSize = 64;

/// A key-value pair as stored in leaf nodes. The paper stores values of the
/// same width as keys, so the pair is 16 bytes (64-bit) or 8 bytes (32-bit).
template <typename K>
struct KeyValue {
  K key;
  K value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

static_assert(sizeof(KeyValue<Key64>) == 16);
static_assert(sizeof(KeyValue<Key32>) == 8);

/// Traits shared by the supported key widths.
///
/// `kMax` (2^n - 1) is the sentinel the paper writes into every empty key
/// slot so node search never needs the node size (Section 4.1).
template <typename K>
struct KeyTraits {
  static_assert(std::is_same_v<K, Key64> || std::is_same_v<K, Key32>,
                "HB+-tree supports 32-bit and 64-bit unsigned keys");

  static constexpr K kMax = std::numeric_limits<K>::max();
  /// Keys (or values) per cache line: 8 for 64-bit, 16 for 32-bit.
  static constexpr int kPerCacheLine =
      static_cast<int>(kCacheLineSize / sizeof(K));
  /// Key-value pairs per leaf cache line: 4 for 64-bit, 8 for 32-bit.
  static constexpr int kPairsPerCacheLine =
      static_cast<int>(kCacheLineSize / sizeof(KeyValue<K>));
};

/// Result of a point lookup.
template <typename K>
struct LookupResult {
  bool found = false;
  K value = 0;

  friend bool operator==(const LookupResult&, const LookupResult&) = default;
};

}  // namespace hbtree

#endif  // HBTREE_CORE_TYPES_H_
